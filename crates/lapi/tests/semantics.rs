//! End-to-end semantics tests for the LAPI library: the Figure-1 event
//! flow, counter behaviour, fences, active messages under reordering, and
//! the polling/interrupt progress rules.

#![allow(clippy::needless_range_loop)] // index-as-coordinate loops are clearer here

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use lapi::{Addr, HdrOutcome, LapiContext, LapiError, LapiWorld, Mode, Qenv, RmwOp, Senv};
use spsim::{run_spmd_with, MachineConfig, VDur};

fn world(n: usize, mode: Mode) -> Vec<LapiContext> {
    LapiWorld::init(n, MachineConfig::default(), mode)
}

#[test]
fn put_deposits_and_signals_all_three_counters() {
    let ctxs = world(2, Mode::Interrupt);
    run_spmd_with(ctxs, |rank, ctx| {
        // Symmetric allocation: same addresses and counter ids everywhere.
        let buf = ctx.alloc(64);
        let tgt_cntr = ctx.new_counter();
        let addrs = ctx.address_init(buf);
        let remotes = ctx.counter_init(&tgt_cntr);
        if rank == 0 {
            let org = ctx.new_counter();
            let cmpl = ctx.new_counter();
            let data = vec![7u8; 64];
            ctx.put(
                1,
                addrs[1],
                &data,
                Some(remotes[1]),
                Some(&org),
                Some(&cmpl),
            )
            .unwrap();
            ctx.waitcntr(&org, 1); // buffer reusable
            ctx.waitcntr(&cmpl, 1); // landed remotely
            assert!(ctx.now().as_us() > 0.0);
        } else {
            ctx.waitcntr(&tgt_cntr, 1); // target-side arrival
            assert_eq!(ctx.mem_read(buf, 64), vec![7u8; 64]);
        }
        ctx.gfence().unwrap();
    });
}

#[test]
fn get_pulls_remote_data() {
    let ctxs = world(2, Mode::Interrupt);
    run_spmd_with(ctxs, |rank, ctx| {
        let src = ctx.alloc(32);
        if rank == 1 {
            ctx.mem_write(src, &[9u8; 32]);
        }
        let addrs = ctx.address_init(src);
        if rank == 0 {
            let got = ctx.get_wait(1, addrs[1], 32).unwrap();
            assert_eq!(got, vec![9u8; 32]);
        }
        ctx.gfence().unwrap();
    });
}

#[test]
fn get_signals_target_counter_when_data_copied_out() {
    let ctxs = world(2, Mode::Interrupt);
    run_spmd_with(ctxs, |rank, ctx| {
        let src = ctx.alloc(16);
        let tcnt = ctx.new_counter();
        let addrs = ctx.address_init(src);
        let remotes = ctx.counter_init(&tcnt);
        if rank == 0 {
            let org_addr = ctx.alloc(16);
            let org = ctx.new_counter();
            ctx.get(1, addrs[1], 16, org_addr, Some(remotes[1]), Some(&org))
                .unwrap();
            ctx.waitcntr(&org, 1);
        } else {
            // §2.3: target sees the get complete when data is copied out.
            ctx.waitcntr(&tcnt, 1);
        }
        ctx.gfence().unwrap();
    });
}

#[test]
fn large_put_spans_many_packets_and_reassembles() {
    let ctxs = world(2, Mode::Interrupt);
    run_spmd_with(ctxs, |rank, ctx| {
        let len = 100_000; // > 100 packets of 976B payload
        let buf = ctx.alloc(len);
        let addrs = ctx.address_init(buf);
        if rank == 0 {
            let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            ctx.put_wait(1, addrs[1], &data).unwrap();
            ctx.gfence().unwrap();
        } else {
            ctx.gfence().unwrap();
            let got = ctx.mem_read(buf, len);
            assert!(got.iter().enumerate().all(|(i, &b)| b == (i % 251) as u8));
            // and it really took many packets
            assert!(ctx.stats().packets_dispatched.get() > 100);
        }
    });
}

#[test]
fn zero_length_put_still_signals() {
    let ctxs = world(2, Mode::Interrupt);
    run_spmd_with(ctxs, |rank, ctx| {
        let buf = ctx.alloc(8);
        let tgt = ctx.new_counter();
        let addrs = ctx.address_init(buf);
        let remotes = ctx.counter_init(&tgt);
        if rank == 0 {
            ctx.put(1, addrs[1], &[], Some(remotes[1]), None, None)
                .unwrap();
        } else {
            ctx.waitcntr(&tgt, 1);
        }
        ctx.gfence().unwrap();
    });
}

#[test]
fn amsend_runs_decoupled_handlers() {
    let ctxs = world(2, Mode::Interrupt);
    let hdr_runs = Arc::new(AtomicUsize::new(0));
    let cmpl_runs = Arc::new(AtomicUsize::new(0));
    let hr = Arc::clone(&hdr_runs);
    let cr = Arc::clone(&cmpl_runs);
    run_spmd_with(ctxs, move |rank, ctx| {
        let tgt = ctx.new_counter();
        let remotes = ctx.counter_init(&tgt);
        if rank == 1 {
            let hr = Arc::clone(&hr);
            let cr = Arc::clone(&cr);
            ctx.register_handler(7, move |hctx, info| {
                hr.fetch_add(1, Ordering::SeqCst);
                assert_eq!(info.uhdr, b"hdr-params");
                let buf = hctx.alloc(info.data_len);
                let cr = Arc::clone(&cr);
                HdrOutcome::into_buffer(buf).with_completion(Box::new(move |_c| {
                    cr.fetch_add(1, Ordering::SeqCst);
                }))
            });
        }
        ctx.gfence().unwrap();
        if rank == 0 {
            let cmpl = ctx.new_counter();
            let data = vec![3u8; 5000];
            ctx.amsend(
                1,
                7,
                b"hdr-params",
                &data,
                Some(remotes[1]),
                None,
                Some(&cmpl),
            )
            .unwrap();
            // cmpl_cntr fires only after the completion handler ran (§2.1).
            ctx.waitcntr(&cmpl, 1);
        } else {
            ctx.waitcntr(&tgt, 1);
        }
        ctx.gfence().unwrap();
    });
    assert_eq!(hdr_runs.load(Ordering::SeqCst), 1);
    assert_eq!(cmpl_runs.load(Ordering::SeqCst), 1);
}

#[test]
fn amsend_header_only_message() {
    let ctxs = world(2, Mode::Interrupt);
    run_spmd_with(ctxs, |rank, ctx| {
        let ding = ctx.new_counter();
        let remotes = ctx.counter_init(&ding);
        if rank == 1 {
            ctx.register_handler(1, |_hctx, info| {
                assert_eq!(info.data_len, 0);
                HdrOutcome::none()
            });
        }
        ctx.gfence().unwrap();
        if rank == 0 {
            ctx.amsend(1, 1, b"ping", &[], Some(remotes[1]), None, None)
                .unwrap();
        } else {
            ctx.waitcntr(&ding, 1);
        }
        ctx.gfence().unwrap();
    });
}

#[test]
fn uhdr_size_is_enforced() {
    let ctxs = world(2, Mode::Interrupt);
    run_spmd_with(ctxs, |rank, ctx| {
        if rank == 0 {
            let max = ctx.qenv(Qenv::MaxUhdrSz);
            let too_big = vec![0u8; max + 1];
            let err = ctx
                .amsend(1, 0, &too_big, &[], None, None, None)
                .unwrap_err();
            assert!(matches!(err, LapiError::UhdrTooLarge { .. }));
        }
        ctx.gfence().unwrap();
    });
}

#[test]
fn bad_target_is_rejected() {
    let ctxs = world(2, Mode::Interrupt);
    run_spmd_with(ctxs, |rank, ctx| {
        if rank == 0 {
            let err = ctx.put(5, Addr(0), &[1], None, None, None).unwrap_err();
            assert!(matches!(
                err,
                LapiError::BadTarget {
                    target: 5,
                    ntasks: 2
                }
            ));
        }
        ctx.gfence().unwrap();
    });
}

#[test]
fn rmw_fetch_add_serializes_concurrent_updates() {
    let n = 4;
    let ctxs = world(n, Mode::Interrupt);
    run_spmd_with(ctxs, |rank, ctx| {
        let cell = ctx.alloc(8);
        let addrs = ctx.address_init(cell);
        // everyone hammers node 0's cell
        let per_task = 50u64;
        let mut prevs = Vec::new();
        for _ in 0..per_task {
            let fut = ctx.rmw(0, RmwOp::FetchAndAdd, addrs[0], 1, 0).unwrap();
            prevs.push(fut.wait());
        }
        // previous values within one task strictly increase
        assert!(
            prevs.windows(2).all(|w| w[0] < w[1]),
            "task {rank}: {prevs:?}"
        );
        ctx.gfence().unwrap();
        if rank == 0 {
            assert_eq!(ctx.mem_read_u64(cell), per_task * n as u64);
        }
    });
}

#[test]
fn rmw_compare_and_swap_and_or() {
    let ctxs = world(2, Mode::Interrupt);
    run_spmd_with(ctxs, |rank, ctx| {
        let cell = ctx.alloc(8);
        ctx.mem_write_u64(cell, 10);
        let addrs = ctx.address_init(cell);
        if rank == 0 {
            // CAS that fails
            let prev = ctx
                .rmw(1, RmwOp::CompareAndSwap, addrs[1], 99, 5)
                .unwrap()
                .wait();
            assert_eq!(prev, 10);
            // CAS that succeeds
            let prev = ctx
                .rmw(1, RmwOp::CompareAndSwap, addrs[1], 99, 10)
                .unwrap()
                .wait();
            assert_eq!(prev, 10);
            // Fetch-and-or
            let prev = ctx
                .rmw(1, RmwOp::FetchAndOr, addrs[1], 0b100, 0)
                .unwrap()
                .wait();
            assert_eq!(prev, 99);
            // Swap
            let prev = ctx.rmw(1, RmwOp::Swap, addrs[1], 1, 0).unwrap().wait();
            assert_eq!(prev, 99 | 0b100);
        }
        ctx.gfence().unwrap();
        if rank == 1 {
            assert_eq!(ctx.mem_read_u64(cell), 1);
        }
    });
}

#[test]
fn fence_orders_puts_to_same_target() {
    let ctxs = world(2, Mode::Interrupt);
    run_spmd_with(ctxs, |rank, ctx| {
        let buf = ctx.alloc(8);
        let addrs = ctx.address_init(buf);
        if rank == 0 {
            // Two overlapping puts; fence between them forces order (§2.5).
            ctx.put(1, addrs[1], &[1u8; 8], None, None, None).unwrap();
            ctx.fence(1).unwrap();
            ctx.put(1, addrs[1], &[2u8; 8], None, None, None).unwrap();
            ctx.fence(1).unwrap();
            assert_eq!(ctx.pending(1), 0);
        }
        ctx.gfence().unwrap();
        if rank == 1 {
            assert_eq!(ctx.mem_read(buf, 8), vec![2u8; 8]);
        }
    });
}

#[test]
fn gfence_flushes_everyone() {
    let n = 4;
    let ctxs = world(n, Mode::Interrupt);
    run_spmd_with(ctxs, |rank, ctx| {
        let buf = ctx.alloc(8 * n);
        let addrs = ctx.address_init(buf);
        for t in 0..n {
            if t != rank {
                ctx.put(
                    t,
                    addrs[t].offset(8 * rank),
                    &(rank as u64).to_le_bytes(),
                    None,
                    None,
                    None,
                )
                .unwrap();
            }
        }
        ctx.gfence().unwrap();
        for t in 0..n {
            if t != rank {
                let mut b = [0u8; 8];
                b.copy_from_slice(&ctx.mem_read(buf.offset(8 * t), 8));
                assert_eq!(u64::from_le_bytes(b), t as u64);
            }
        }
        ctx.gfence().unwrap();
    });
}

#[test]
fn polling_mode_completes_with_polling_target() {
    let ctxs = world(2, Mode::Polling);
    run_spmd_with(ctxs, |rank, ctx| {
        assert_eq!(ctx.qenv(Qenv::InterruptSet), 0);
        let buf = ctx.alloc(16);
        let tgt = ctx.new_counter();
        let addrs = ctx.address_init(buf);
        let remotes = ctx.counter_init(&tgt);
        if rank == 0 {
            let cmpl = ctx.new_counter();
            ctx.put(1, addrs[1], &[5u8; 16], Some(remotes[1]), None, Some(&cmpl))
                .unwrap();
            ctx.waitcntr(&cmpl, 1); // drives origin-side progress
        } else {
            ctx.waitcntr(&tgt, 1); // target must poll: waitcntr polls
            assert_eq!(ctx.mem_read(buf, 16), vec![5u8; 16]);
        }
        ctx.gfence().unwrap();
    });
}

#[test]
#[should_panic(expected = "simulated deadlock")]
fn polling_mode_without_target_polling_deadlocks() {
    // The paper's §2.1 caveat: in polling mode, absent polling there is no
    // progress and programs can deadlock. The origin waits on cmpl_cntr but
    // the target never enters LAPI.
    let ctxs = LapiWorld::init_full(
        2,
        MachineConfig::default(),
        Mode::Polling,
        1,
        Duration::from_millis(300),
    );
    run_spmd_with(ctxs, |rank, ctx| {
        let buf = ctx.alloc(8);
        let addrs = ctx.address_init(buf);
        if rank == 0 {
            let cmpl = ctx.new_counter();
            ctx.put(1, addrs[1], &[1u8; 8], None, None, Some(&cmpl))
                .unwrap();
            ctx.waitcntr(&cmpl, 1); // never satisfied: target never polls
        } else {
            // Target does real work but no LAPI calls — and must outlive
            // the origin's escape window without dropping its context.
            std::thread::sleep(Duration::from_millis(900));
        }
    });
}

#[test]
fn senv_switches_mode_at_runtime() {
    let ctxs = world(2, Mode::Polling);
    run_spmd_with(ctxs, |rank, ctx| {
        ctx.senv(Senv::InterruptSet(true));
        assert_eq!(ctx.qenv(Qenv::InterruptSet), 1);
        let buf = ctx.alloc(8);
        let addrs = ctx.address_init(buf);
        if rank == 0 {
            ctx.put_wait(1, addrs[1], &[3u8; 8]).unwrap();
        }
        ctx.gfence().unwrap();
        if rank == 1 {
            // interrupt mode: data arrived with no polling on our part
            assert_eq!(ctx.mem_read(buf, 8), vec![3u8; 8]);
            assert!(ctx.stats().interrupts.get() > 0);
        }
    });
}

#[test]
fn interrupt_mode_charges_interrupts_polling_does_not() {
    let run = |mode: Mode| {
        let ctxs = world(2, mode);
        let res = run_spmd_with(ctxs, |rank, ctx| {
            let buf = ctx.alloc(8);
            let tgt = ctx.new_counter();
            let addrs = ctx.address_init(buf);
            let remotes = ctx.counter_init(&tgt);
            if rank == 0 {
                let cmpl = ctx.new_counter();
                ctx.put(1, addrs[1], &[1u8; 8], Some(remotes[1]), None, Some(&cmpl))
                    .unwrap();
                ctx.waitcntr(&cmpl, 1);
            } else {
                // In polling mode the target must poll for anything to
                // happen; waitcntr provides that progress.
                ctx.waitcntr(&tgt, 1);
            }
            ctx.gfence().unwrap();
            ctx.stats().interrupts.get()
        });
        res[1]
    };
    assert!(run(Mode::Interrupt) > 0);
    assert_eq!(run(Mode::Polling), 0);
}

#[test]
fn counters_group_multiple_messages() {
    let ctxs = world(2, Mode::Interrupt);
    run_spmd_with(ctxs, |rank, ctx| {
        let buf = ctx.alloc(80);
        let addrs = ctx.address_init(buf);
        if rank == 0 {
            let cmpl = ctx.new_counter();
            for i in 0..10usize {
                ctx.put(
                    1,
                    addrs[1].offset(8 * i),
                    &[i as u8; 8],
                    None,
                    None,
                    Some(&cmpl),
                )
                .unwrap();
            }
            // One wait for the whole group (§2.3).
            ctx.waitcntr(&cmpl, 10);
            assert_eq!(ctx.getcntr(&cmpl), 0);
        }
        ctx.gfence().unwrap();
        if rank == 1 {
            for i in 0..10usize {
                assert_eq!(ctx.mem_read(buf.offset(8 * i), 8), vec![i as u8; 8]);
            }
        }
    });
}

#[test]
fn concurrent_puts_may_complete_out_of_order_but_fence_serializes() {
    // §2.5: two unfenced puts to overlapping buffers leave the region
    // undefined; with an intervening fence the second wins. We assert the
    // *fenced* guarantee (the defined case).
    let ctxs = world(2, Mode::Interrupt);
    run_spmd_with(ctxs, |rank, ctx| {
        let buf = ctx.alloc(4096);
        let addrs = ctx.address_init(buf);
        if rank == 0 {
            for round in 0..20u8 {
                ctx.put(1, addrs[1], &vec![round; 4096], None, None, None)
                    .unwrap();
                ctx.fence(1).unwrap();
            }
        }
        ctx.gfence().unwrap();
        if rank == 1 {
            assert_eq!(ctx.mem_read(buf, 4096), vec![19u8; 4096]);
        }
    });
}

#[test]
fn am_reassembly_survives_heavy_reordering_and_loss() {
    // Crank route skew and drop probability: fragments arrive out of order
    // and late; reassembly and the early-data stash must still produce the
    // exact payload. Polling mode makes this deterministic: every packet is
    // already queued (in arrival-time order) before the target processes
    // any of them, so virtual reordering is actually observed.
    let mut cfg = MachineConfig::default().with_drop_prob(0.3);
    cfg.route_skew = VDur::from_us(40);
    let stored = Arc::new(parking_lot::Mutex::new(None::<Addr>));
    let stored2 = Arc::clone(&stored);
    let ctxs = LapiWorld::init_seeded(2, cfg, Mode::Polling, 123);
    run_spmd_with(ctxs, move |rank, ctx| {
        let done = ctx.new_counter();
        let remotes = ctx.counter_init(&done);
        if rank == 1 {
            let stored = Arc::clone(&stored2);
            ctx.register_handler(2, move |hctx, info| {
                let buf = hctx.alloc(info.data_len);
                *stored.lock() = Some(buf);
                HdrOutcome::into_buffer(buf)
            });
        }
        ctx.barrier();
        let data: Vec<u8> = (0..40_000).map(|i| (i * 7 % 256) as u8).collect();
        if rank == 0 {
            ctx.amsend(1, 2, b"x", &data, Some(remotes[1]), None, None)
                .unwrap();
            ctx.barrier(); // let everything land in the target's queue
            ctx.gfence().unwrap();
        } else {
            ctx.barrier(); // all packets are now queued, none processed
            ctx.waitcntr(&done, 1); // processes them in arrival-time order
            let buf = stored.lock().expect("header handler ran");
            assert_eq!(ctx.mem_read(buf, data.len()), data);
            assert!(
                ctx.stats().early_am_data.get() > 0,
                "expected stashed early fragments under heavy skew/loss"
            );
            ctx.gfence().unwrap();
        }
    });
}

#[test]
fn term_makes_context_unusable() {
    let mut ctxs = world(2, Mode::Interrupt);
    run_spmd_with(std::mem::take(&mut ctxs), |_rank, mut ctx| {
        ctx.gfence().unwrap();
        ctx.term().unwrap();
        assert!(matches!(ctx.term(), Err(LapiError::Terminated)));
        assert!(matches!(
            ctx.put(0, Addr(0), &[1], None, None, None),
            Err(LapiError::Terminated)
        ));
    });
}

#[test]
fn qenv_reports_environment() {
    let ctxs = world(3, Mode::Interrupt);
    run_spmd_with(ctxs, |rank, ctx| {
        assert_eq!(ctx.qenv(Qenv::TaskId), rank);
        assert_eq!(ctx.qenv(Qenv::NumTasks), 3);
        assert_eq!(ctx.qenv(Qenv::MaxUhdrSz), 900);
        assert_eq!(ctx.qenv(Qenv::MaxDataSz), 1024 - 48);
        ctx.gfence().unwrap();
    });
}

#[test]
fn loopback_operations_work() {
    let ctxs = world(2, Mode::Interrupt);
    run_spmd_with(ctxs, |rank, ctx| {
        let buf = ctx.alloc(8);
        let addrs = ctx.address_init(buf);
        // put to myself
        ctx.put_wait(rank, addrs[rank], &[42u8; 8]).unwrap();
        assert_eq!(ctx.mem_read(buf, 8), vec![42u8; 8]);
        ctx.gfence().unwrap();
    });
}

#[test]
fn pipelined_puts_overlap_on_the_wire() {
    // The "unordered pipelining" claim (§2.1): k pipelined puts finish much
    // faster than k fenced (serialized) puts. Polling mode keeps the
    // comparison bit-deterministic regardless of host load; lossless wire
    // (regardless of SPSIM_FAULT_PROFILE) because this is a *timing* ratio
    // — retransmission stalls would swamp the pipelining signal.
    let elapsed = |serialize: bool| {
        let ctxs = LapiWorld::init(2, MachineConfig::default().with_no_faults(), Mode::Polling);
        let times = run_spmd_with(ctxs, move |rank, ctx| {
            let buf = ctx.alloc(64 * 1024);
            let tgt = ctx.new_counter();
            let addrs = ctx.address_init(buf);
            let remotes = ctx.counter_init(&tgt);
            ctx.barrier();
            let t0 = ctx.now();
            if rank == 0 {
                for i in 0..16usize {
                    ctx.put(
                        1,
                        addrs[1].offset(4096 * i),
                        &[1u8; 4096],
                        Some(remotes[1]),
                        None,
                        None,
                    )
                    .unwrap();
                    if serialize {
                        ctx.fence(1).unwrap();
                    }
                }
                ctx.fence(1).unwrap();
            } else {
                // polling target: drive progress one message at a time
                // (serialized) or for the whole burst (pipelined)
                for _ in 0..16 {
                    ctx.waitcntr(&tgt, 1);
                }
            }
            ctx.barrier();
            ctx.now() - t0
        });
        times[0]
    };
    let pipelined = elapsed(false);
    let serialized = elapsed(true);
    assert!(
        pipelined.as_us() * 2.0 < serialized.as_us(),
        "pipelined {pipelined} vs serialized {serialized}"
    );
}
