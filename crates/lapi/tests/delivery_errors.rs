//! Error unwinding on the issuing paths: when the adapter's reliability
//! protocol exhausts its retransmission budget (dead link), the issuing
//! call must surface `LapiError::DeliveryTimeout` and leave the context
//! clean — no leaked outstanding-op counts (fence would hang), no stale
//! rmw tickets, no counter ticks for data that never moved. The paper's
//! `err_hndlr` registered at `LAPI_Init` maps to exactly this condition.

use std::time::Duration;

use lapi::{LapiError, LapiWorld, Mode, RmwOp};
use spsim::{run_spmd_with, FaultPlan, MachineConfig, VTime};

/// A fabric whose 0 -> 1 link swallows every data packet from the first
/// instant, with a small retry budget so the sender gives up quickly.
fn dead_link_cfg() -> MachineConfig {
    MachineConfig::default()
        .with_no_faults()
        .with_faults(FaultPlan::new().with_link_dead(0, 1, VTime::ZERO))
        .with_max_retransmits(4)
}

fn assert_timeout_toward(r: Result<(), LapiError>, want: usize) {
    match r {
        Err(LapiError::DeliveryTimeout {
            target, retries, ..
        }) => {
            assert_eq!(target, want, "timeout must name the unreachable task");
            assert_eq!(retries, 4, "the configured retry budget was spent");
        }
        other => panic!("expected DeliveryTimeout toward {want}, got {other:?}"),
    }
}

#[test]
fn get_over_dead_link_times_out_and_unwinds() {
    let ctxs = LapiWorld::init_full(
        2,
        dead_link_cfg(),
        Mode::Polling,
        7,
        Duration::from_secs(10),
    );
    run_spmd_with(ctxs, |rank, ctx| {
        let buf = ctx.alloc(64);
        let addrs = ctx.address_init(buf);
        if rank == 0 {
            let org = ctx.new_counter();
            let r = ctx.get(1, addrs[1], 64, buf, None, Some(&org));
            assert_timeout_toward(r, 1);
            // The failed op is fully unwound: nothing outstanding toward
            // the dead target, and the origin counter never ticked.
            assert_eq!(ctx.pending(1), 0, "failed get must not leak pending ops");
            assert_eq!(ctx.getcntr(&org), 0, "no data landed, no counter tick");
        }
        // Collectives ride the in-memory exchange, not the fabric, so the
        // ranks can still agree to exit over a dead link.
        ctx.barrier();
    });
}

#[test]
fn rmw_over_dead_link_times_out_and_retires_its_ticket() {
    let ctxs = LapiWorld::init_full(
        2,
        dead_link_cfg(),
        Mode::Polling,
        7,
        Duration::from_secs(10),
    );
    run_spmd_with(ctxs, |rank, ctx| {
        let cell = ctx.alloc(8);
        let addrs = ctx.address_init(cell);
        if rank == 0 {
            let r = ctx.rmw(1, RmwOp::FetchAndAdd, addrs[1], 5, 0).map(|_| ());
            assert_timeout_toward(r, 1);
            assert_eq!(
                ctx.rmw_pending(),
                0,
                "a ticket whose issue failed must be retired before the error surfaces"
            );
        }
        ctx.barrier();
    });
}

#[test]
fn failure_toward_one_task_leaves_other_flows_healthy() {
    // Three tasks, one dead directed link (0 -> 1). After rank 0 burns its
    // retry budget toward task 1, the same origin must still be able to
    // get *and* rmw against task 2, and fence(2) must not hang on state
    // leaked by the failure.
    let ctxs = LapiWorld::init_full(
        3,
        dead_link_cfg(),
        Mode::Interrupt,
        7,
        Duration::from_secs(10),
    );
    run_spmd_with(ctxs, |rank, ctx| {
        let buf = ctx.alloc(8);
        ctx.mem_write(buf, &[rank as u8; 8]);
        let addrs = ctx.address_init(buf);
        ctx.barrier();
        if rank == 0 {
            assert_timeout_toward(ctx.get(1, addrs[1], 8, buf, None, None), 1);
            assert_eq!(ctx.rmw_pending(), 0);

            // Healthy flow, same context: blocking get returns task 2's
            // bytes, and the rmw future resolves with the previous value.
            let got = ctx.get_wait(2, addrs[2], 8).expect("get toward 2");
            assert_eq!(got, vec![2u8; 8]);
            let prev = ctx
                .rmw(2, RmwOp::FetchAndAdd, addrs[2], 1, 0)
                .expect("rmw toward 2")
                .wait();
            assert_eq!(prev, u64::from_le_bytes([2u8; 8]));
            ctx.fence(2)
                .expect("fence(2) must not see leaked pending ops");
            assert_eq!(ctx.rmw_pending(), 0);
        }
        ctx.barrier();
    });
}
