//! Tests of the §6 extensions: the noncontiguous (`putv`/`getv`) interface
//! and multiple completion-handler threads.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use lapi::{HdrOutcome, IoVec, LapiError, LapiWorld, Mode};
use spsim::{run_spmd_with, MachineConfig, VDur};

#[test]
fn putv_scatters_across_vectors() {
    let ctxs = LapiWorld::init(2, MachineConfig::default(), Mode::Interrupt);
    run_spmd_with(ctxs, |rank, ctx| {
        let buf = ctx.alloc(1000);
        let tgt = ctx.new_counter();
        let addrs = ctx.address_init(buf);
        let remotes = ctx.counter_init(&tgt);
        if rank == 0 {
            // three disjoint runs, out of address order
            let vecs = [
                IoVec {
                    addr: addrs[1].offset(500),
                    len: 100,
                },
                IoVec {
                    addr: addrs[1],
                    len: 50,
                },
                IoVec {
                    addr: addrs[1].offset(200),
                    len: 25,
                },
            ];
            let data: Vec<u8> = (0..175).map(|i| i as u8).collect();
            ctx.putv(1, &vecs, &data, Some(remotes[1]), None, None)
                .expect("putv");
        } else {
            ctx.waitcntr(&tgt, 1);
            let m = ctx.mem_read(buf, 1000);
            assert!(m[500..600].iter().enumerate().all(|(i, &b)| b == i as u8));
            assert!(m[0..50]
                .iter()
                .enumerate()
                .all(|(i, &b)| b == (100 + i) as u8));
            assert!(m[200..225]
                .iter()
                .enumerate()
                .all(|(i, &b)| b == (150 + i) as u8));
            // untouched gaps stay zero
            assert!(m[50..200].iter().all(|&b| b == 0));
        }
        ctx.gfence().expect("gfence");
    });
}

#[test]
fn putv_large_stream_spans_packets() {
    let ctxs = LapiWorld::init(2, MachineConfig::default(), Mode::Interrupt);
    run_spmd_with(ctxs, |rank, ctx| {
        let n_vecs = 40;
        let run = 977; // just over one packet payload per run
        let buf = ctx.alloc(n_vecs * 1024);
        let addrs = ctx.address_init(buf);
        if rank == 0 {
            let vecs: Vec<IoVec> = (0..n_vecs)
                .map(|k| IoVec {
                    addr: addrs[1].offset(k * 1024),
                    len: run,
                })
                .collect();
            let total = n_vecs * run;
            let data: Vec<u8> = (0..total).map(|i| (i % 253) as u8).collect();
            let cmpl = ctx.new_counter();
            ctx.putv(1, &vecs, &data, None, None, Some(&cmpl))
                .expect("putv");
            ctx.waitcntr(&cmpl, 1);
        }
        ctx.gfence().expect("gfence");
        if rank == 1 {
            let mut stream_i = 0usize;
            for k in 0..n_vecs {
                let got = ctx.mem_read(buf.offset(k * 1024), run);
                for &b in &got {
                    assert_eq!(b, (stream_i % 253) as u8, "stream offset {stream_i}");
                    stream_i += 1;
                }
            }
        }
    });
}

#[test]
fn getv_gathers_remote_vectors() {
    let ctxs = LapiWorld::init(2, MachineConfig::default(), Mode::Interrupt);
    run_spmd_with(ctxs, |rank, ctx| {
        let buf = ctx.alloc(8192);
        if rank == 1 {
            ctx.mem_write(
                buf,
                &(0..=255u16)
                    .cycle()
                    .take(8192)
                    .map(|v| v as u8)
                    .collect::<Vec<_>>(),
            );
        }
        let addrs = ctx.address_init(buf);
        if rank == 0 {
            let vecs = [
                IoVec {
                    addr: addrs[1].offset(1000),
                    len: 10,
                },
                IoVec {
                    addr: addrs[1],
                    len: 5,
                },
                IoVec {
                    addr: addrs[1].offset(3000),
                    len: 2000,
                },
            ];
            let dst = ctx.alloc(2015);
            let org = ctx.new_counter();
            ctx.getv(1, &vecs, dst, None, Some(&org)).expect("getv");
            ctx.waitcntr(&org, 1);
            let got = ctx.mem_read(dst, 2015);
            let expect: Vec<u8> = (1000..1010)
                .chain(0..5)
                .chain(3000..5000)
                .map(|i| (i % 256) as u8)
                .collect();
            assert_eq!(got, expect);
        }
        ctx.gfence().expect("gfence");
    });
}

#[test]
fn vector_table_size_is_enforced() {
    let ctxs = LapiWorld::init(2, MachineConfig::default(), Mode::Interrupt);
    run_spmd_with(ctxs, |rank, ctx| {
        if rank == 0 {
            let too_many: Vec<IoVec> = (0..ctx.max_vecs() + 1)
                .map(|k| IoVec {
                    addr: lapi::Addr(k as u64 * 8),
                    len: 8,
                })
                .collect();
            let err = ctx
                .putv(
                    1,
                    &too_many,
                    &vec![0u8; 8 * too_many.len()],
                    None,
                    None,
                    None,
                )
                .unwrap_err();
            assert!(matches!(err, LapiError::TooManyVecs { .. }));
        }
        ctx.gfence().expect("gfence");
    });
}

#[test]
fn putv_survives_reordering_and_loss() {
    let mut cfg = MachineConfig::default().with_drop_prob(0.2);
    cfg.route_skew = VDur::from_us(30);
    let ctxs = LapiWorld::init_seeded(2, cfg, Mode::Interrupt, 31);
    run_spmd_with(ctxs, |rank, ctx| {
        let buf = ctx.alloc(60_000);
        let addrs = ctx.address_init(buf);
        if rank == 0 {
            let vecs: Vec<IoVec> = (0..30)
                .map(|k| IoVec {
                    addr: addrs[1].offset(k * 2000),
                    len: 1500,
                })
                .collect();
            let data: Vec<u8> = (0..30 * 1500).map(|i| (i * 13 % 251) as u8).collect();
            let cmpl = ctx.new_counter();
            ctx.putv(1, &vecs, &data, None, None, Some(&cmpl))
                .expect("putv");
            ctx.waitcntr(&cmpl, 1);
        }
        ctx.gfence().expect("gfence");
        if rank == 1 {
            let mut stream_i = 0;
            for k in 0..30 {
                for &b in &ctx.mem_read(buf.offset(k * 2000), 1500) {
                    assert_eq!(b, (stream_i * 13 % 251) as u8);
                    stream_i += 1;
                }
            }
        }
    });
}

#[test]
fn multiple_completion_threads_run_handlers_concurrently() {
    // §6 extension: with several completion threads, two slow completion
    // handlers overlap in *real* time (virtual cost is still charged to
    // the single node clock). Real-time overlap is an OS-thread property:
    // under the pooled M:N scheduler a 1-worker host would serialize the
    // handlers (their `thread::sleep` blocks the worker), so this test
    // pins the legacy thread-per-context runtime.
    struct ModeGuard;
    impl Drop for ModeGuard {
        fn drop(&mut self) {
            spsim::set_sched_mode(None);
        }
    }
    spsim::set_sched_mode(Some(spsim::SchedMode::Threads));
    let _guard = ModeGuard;
    let ctxs = LapiWorld::init_ext(
        2,
        MachineConfig::default(),
        Mode::Interrupt,
        1,
        Duration::from_secs(30),
        3,
    );
    let peak = Arc::new(AtomicUsize::new(0));
    let live = Arc::new(AtomicUsize::new(0));
    let p2 = Arc::clone(&peak);
    let l2 = Arc::clone(&live);
    run_spmd_with(ctxs, move |rank, ctx| {
        if rank == 1 {
            let peak = Arc::clone(&p2);
            let live = Arc::clone(&l2);
            ctx.register_handler(5, move |hctx, info| {
                let buf = hctx.alloc(info.data_len.max(1));
                let peak = Arc::clone(&peak);
                let live = Arc::clone(&live);
                HdrOutcome::into_buffer(buf).with_completion(Box::new(move |_c| {
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(30));
                    live.fetch_sub(1, Ordering::SeqCst);
                }))
            });
        }
        ctx.gfence().expect("gfence");
        if rank == 0 {
            let cmpl = ctx.new_counter();
            for _ in 0..6 {
                ctx.amsend(1, 5, b"go", &[1, 2, 3], None, None, Some(&cmpl))
                    .expect("amsend");
            }
            ctx.waitcntr(&cmpl, 6);
        }
        ctx.gfence().expect("gfence");
    });
    assert!(
        peak.load(Ordering::SeqCst) >= 2,
        "completion handlers never overlapped (peak {})",
        peak.load(Ordering::SeqCst)
    );
}
