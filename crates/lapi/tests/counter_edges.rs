//! Edge semantics of LAPI completion counters (§2.3): `LAPI_Waitcntr`
//! consumes credit that is already present without blocking, `LAPI_Setcntr`
//! overwrites the value while in-flight increments still land on top of
//! the new value, and zero-byte transfers signal every associated counter
//! exactly once even though no data moves.

use lapi::{LapiWorld, Mode};
use spsim::{run_spmd_with, MachineConfig};

fn world(n: usize, mode: Mode) -> Vec<lapi::LapiContext> {
    LapiWorld::init(n, MachineConfig::default().with_no_faults(), mode)
}

#[test]
fn waitcntr_on_already_satisfied_counter_returns_immediately() {
    let ctxs = world(2, Mode::Interrupt);
    run_spmd_with(ctxs, |rank, ctx| {
        if rank == 0 {
            let c = ctx.new_counter();
            ctx.setcntr(&c, 5);
            // Credit is already there: the wait consumes 3 of it without
            // ever blocking (a block would hit the deadlock escape, since
            // nobody is going to bump this counter).
            ctx.waitcntr(&c, 3);
            assert_eq!(ctx.getcntr(&c), 2, "wait decrements by exactly val");
            // The remaining credit satisfies a second wait the same way.
            ctx.waitcntr(&c, 2);
            assert_eq!(ctx.getcntr(&c), 0);
        }
        ctx.barrier();
    });
}

#[test]
fn setcntr_overwrite_composes_with_in_flight_increment() {
    // Polling mode makes the race deterministic: the put's counter bump is
    // processed only inside the target's own LAPI calls, so the target can
    // overwrite the counter while the increment is provably still in
    // flight (queued or on the wire), then observe it land on top of the
    // new value.
    let ctxs = world(2, Mode::Polling);
    run_spmd_with(ctxs, |rank, ctx| {
        let buf = ctx.alloc(8);
        let addrs = ctx.address_init(buf);
        let tgt = ctx.new_counter();
        let remotes = ctx.counter_init(&tgt);
        ctx.barrier();
        if rank == 0 {
            let cmpl = ctx.new_counter();
            ctx.put(1, addrs[1], &[9u8; 8], Some(remotes[1]), None, Some(&cmpl))
                .unwrap();
            ctx.waitcntr(&cmpl, 1);
        } else {
            // The barrier is in-memory: passing it processes no packets,
            // so the bump cannot have been applied yet.
            assert_eq!(ctx.getcntr(&tgt), 0);
            ctx.setcntr(&tgt, 10);
            // The wait polls the adapter; the in-flight increment lands on
            // top of the overwritten value: 10 + 1 = 11.
            ctx.waitcntr(&tgt, 11);
            assert_eq!(ctx.getcntr(&tgt), 0, "11 credits consumed in one wait");
            assert_eq!(ctx.mem_read(buf, 8), vec![9u8; 8]);
        }
        ctx.barrier();
    });
}

#[test]
fn zero_byte_put_and_get_fire_counters_exactly_once() {
    // A zero-length transfer is a pure synchronization event (the
    // conformance harness leans on this for its drain tokens): all three
    // put counters and the get's origin counter must tick exactly once.
    let ctxs = world(2, Mode::Interrupt);
    run_spmd_with(ctxs, |rank, ctx| {
        let buf = ctx.alloc(8);
        let addrs = ctx.address_init(buf);
        let tgt = ctx.new_counter();
        let remotes = ctx.counter_init(&tgt);
        ctx.barrier();
        if rank == 0 {
            let org = ctx.new_counter();
            let cmpl = ctx.new_counter();
            ctx.put(1, addrs[1], &[], Some(remotes[1]), Some(&org), Some(&cmpl))
                .unwrap();
            ctx.waitcntr(&org, 1);
            ctx.waitcntr(&cmpl, 1);
            assert_eq!(ctx.getcntr(&org), 0, "org fired exactly once");
            assert_eq!(ctx.getcntr(&cmpl), 0, "cmpl fired exactly once");

            let get_org = ctx.new_counter();
            ctx.get(1, addrs[1], 0, buf, None, Some(&get_org)).unwrap();
            ctx.waitcntr(&get_org, 1);
            assert_eq!(ctx.getcntr(&get_org), 0, "zero-byte get fired exactly once");
        } else {
            ctx.waitcntr(&tgt, 1);
            assert_eq!(ctx.getcntr(&tgt), 0, "tgt fired exactly once");
        }
        ctx.gfence().unwrap();
    });
}
