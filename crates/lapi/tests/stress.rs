//! Stress and contention tests: many nodes, floods, mixed operation soup,
//! and the single-header-handler guarantee under pressure.

#![allow(clippy::needless_range_loop)] // index-as-coordinate loops are clearer here

use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};
use std::sync::Arc;

use lapi::{HdrOutcome, LapiWorld, Mode};
use spsim::{run_spmd_with, MachineConfig};

#[test]
fn all_to_all_puts_eight_nodes() {
    let n = 8;
    let ctxs = LapiWorld::init(n, MachineConfig::default(), Mode::Interrupt);
    run_spmd_with(ctxs, |rank, ctx| {
        // everyone owns one slot per peer
        let buf = ctx.alloc(8 * n);
        let addrs = ctx.address_init(buf);
        for round in 0..5u64 {
            for t in 0..n {
                let val = (round << 32) | ((rank as u64) << 8) | t as u64;
                ctx.put(
                    t,
                    addrs[t].offset(8 * rank),
                    &val.to_le_bytes(),
                    None,
                    None,
                    None,
                )
                .expect("put");
            }
            ctx.gfence().expect("gfence");
            for s in 0..n {
                let got =
                    u64::from_le_bytes(ctx.mem_read(buf.offset(8 * s), 8).try_into().expect("8"));
                assert_eq!(got, (round << 32) | ((s as u64) << 8) | rank as u64);
            }
            ctx.gfence().expect("gfence");
        }
    });
}

#[test]
fn header_handlers_never_run_concurrently() {
    // §2.1: "At any given instance LAPI ensures that only one header
    // handler per LAPI context is allowed to execute." Flood one node
    // from three others and watch for overlap.
    let n = 4;
    let ctxs = LapiWorld::init(n, MachineConfig::default(), Mode::Interrupt);
    let overlap = Arc::new(AtomicUsize::new(0));
    let inside = Arc::new(AtomicUsize::new(0));
    let ov = Arc::clone(&overlap);
    let ins = Arc::clone(&inside);
    run_spmd_with(ctxs, move |rank, ctx| {
        let done = ctx.new_counter();
        let remotes = ctx.counter_init(&done);
        if rank == 0 {
            let ov = Arc::clone(&ov);
            let ins = Arc::clone(&ins);
            ctx.register_handler(3, move |hctx, info| {
                if ins.fetch_add(1, Ordering::SeqCst) > 0 {
                    ov.fetch_add(1, Ordering::SeqCst);
                }
                let buf = hctx.alloc(info.data_len.max(1));
                // linger a little in real time to give overlap a chance
                std::thread::sleep(std::time::Duration::from_micros(200));
                ins.fetch_sub(1, Ordering::SeqCst);
                HdrOutcome::into_buffer(buf)
            });
        }
        ctx.gfence().expect("gfence");
        if rank != 0 {
            for i in 0..40 {
                ctx.amsend(
                    0,
                    3,
                    &[rank as u8, i],
                    &[7u8; 128],
                    Some(remotes[0]),
                    None,
                    None,
                )
                .expect("amsend");
            }
            ctx.fence(0).expect("fence");
        } else {
            ctx.waitcntr(&done, 3 * 40);
        }
        ctx.gfence().expect("gfence");
    });
    assert_eq!(
        overlap.load(Ordering::SeqCst),
        0,
        "header handlers overlapped"
    );
}

#[test]
fn mixed_operation_soup_settles_consistently() {
    // Every node fires a random mix of puts, rmws and AMs at shared
    // state; invariants must hold after a global fence regardless of the
    // interleaving.
    let n = 4;
    let per_node = 60u64;
    let ctxs = LapiWorld::init(n, MachineConfig::default(), Mode::Interrupt);
    let am_sum = Arc::new(AtomicI64::new(0));
    let am_sum2 = Arc::clone(&am_sum);
    run_spmd_with(ctxs, move |rank, ctx| {
        // shared state on node 0: an rmw cell + a put slot per node
        let cell = ctx.alloc(8);
        let slots = ctx.alloc(8 * n);
        let cells = ctx.address_init(cell);
        let slot_bases = ctx.address_init(slots);
        let am_sum = Arc::clone(&am_sum2);
        if rank == 0 {
            let sink = Arc::clone(&am_sum);
            ctx.register_handler(9, move |_hctx, info| {
                let v = i64::from_le_bytes(info.uhdr.try_into().expect("8 bytes"));
                sink.fetch_add(v, Ordering::SeqCst);
                HdrOutcome::none()
            });
        }
        ctx.gfence().expect("gfence");
        let mut rmws = 0u64;
        let mut am_total = 0i64;
        for i in 0..per_node {
            match (i + rank as u64) % 3 {
                0 => {
                    ctx.put(
                        0,
                        slot_bases[0].offset(8 * rank),
                        &(i + 1).to_le_bytes(),
                        None,
                        None,
                        None,
                    )
                    .expect("put");
                }
                1 => {
                    let f = ctx
                        .rmw(0, lapi::RmwOp::FetchAndAdd, cells[0], 3, 0)
                        .expect("rmw");
                    let _ = f.wait();
                    rmws += 1;
                }
                _ => {
                    let v = (rank as i64 + 1) * (i as i64 + 1);
                    am_total += v;
                    ctx.amsend(0, 9, &v.to_le_bytes(), &[], None, None, None)
                        .expect("amsend");
                }
            }
        }
        ctx.gfence().expect("gfence");
        // collect per-node contributions for the invariants
        let total_rmws: u64 = ctx.exchange(rmws).iter().sum();
        let total_am: i64 = ctx
            .exchange(am_total as u64)
            .iter()
            .map(|&v| v as i64)
            .sum();
        if rank == 0 {
            assert_eq!(
                ctx.mem_read_u64(cell),
                total_rmws * 3,
                "rmw adds lost or doubled"
            );
            assert_eq!(
                am_sum.load(Ordering::SeqCst),
                total_am,
                "active-message sum diverged"
            );
            // each node's last put is the last fenced value (puts to a
            // node's own slot are ordered only by the final gfence; the
            // slot must hold *some* value that node wrote)
            for s in 0..n {
                let got =
                    u64::from_le_bytes(ctx.mem_read(slots.offset(8 * s), 8).try_into().expect("8"));
                assert!(got == 0 || got <= per_node, "slot {s} corrupted: {got}");
            }
        }
        ctx.gfence().expect("gfence");
    });
}

#[test]
fn flood_with_loss_and_reordering_converges() {
    let mut cfg = MachineConfig::default().with_drop_prob(0.15);
    cfg.route_skew = spsim::VDur::from_us(20);
    let n = 5;
    let ctxs = LapiWorld::init_seeded(n, cfg, Mode::Interrupt, 4242);
    run_spmd_with(ctxs, |rank, ctx| {
        let buf = ctx.alloc(20_000 * n);
        let addrs = ctx.address_init(buf);
        // every node streams a 20KB block to every other node
        let data: Vec<u8> = (0..20_000).map(|i| ((i + rank * 7) % 256) as u8).collect();
        for t in 0..n {
            if t != rank {
                ctx.put(t, addrs[t].offset(20_000 * rank), &data, None, None, None)
                    .expect("put");
            }
        }
        ctx.gfence().expect("gfence");
        for s in 0..n {
            if s != rank {
                let got = ctx.mem_read(buf.offset(20_000 * s), 20_000);
                assert!(
                    got.iter()
                        .enumerate()
                        .all(|(i, &b)| b == ((i + s * 7) % 256) as u8),
                    "stream from {s} corrupted"
                );
            }
        }
        // loss really happened and was recovered
        let retr: u64 = ctx.wire_stats().retransmits.get();
        let total = ctx.exchange(retr).iter().sum::<u64>();
        assert!(total > 0, "expected retransmissions under 15% loss");
        ctx.gfence().expect("gfence");
    });
}

#[test]
fn sixteen_node_job_runs() {
    let n = 16;
    let ctxs = LapiWorld::init(n, MachineConfig::default(), Mode::Interrupt);
    run_spmd_with(ctxs, |rank, ctx| {
        let cell = ctx.alloc(8);
        let cells = ctx.address_init(cell);
        // ring reduce via rmw on node 0
        let f = ctx
            .rmw(0, lapi::RmwOp::FetchAndAdd, cells[0], rank as u64, 0)
            .expect("rmw");
        let _ = f.wait();
        ctx.gfence().expect("gfence");
        if rank == 0 {
            assert_eq!(ctx.mem_read_u64(cell), (0..n as u64).sum());
        }
        ctx.gfence().expect("gfence");
    });
}
