//! Same-seed trace identity (lint rule L2's reason for existing).
//!
//! After the HashMap→BTreeMap migration in the engines, a fixed-seed run of
//! a 3-node workload must produce a byte-identical rendered trace every
//! time. The workload stays inside the simulator's deterministic envelope:
//!
//! * polling mode — interrupt delivery racing the main thread against real
//!   time is *intentionally* outside it;
//! * causally serialized traffic — each rank only transmits after the
//!   previous rank's message has landed (token-passing rotation, then
//!   strictly sequential gets), so no two node threads ever contend for an
//!   ejection-link reservation. Free-running many-to-one traffic reserves
//!   links in real-time arrival order and is deliberately not covered.
//!
//! Within that envelope, any run-to-run divergence means an
//! ordering-sensitive path is iterating a randomized collection — exactly
//! what the BTreeMap migration (and lint rule L2) exists to prevent.

use lapi::{LapiContext, LapiWorld, Mode};
use spsim::{run_spmd_with, DeliveryPath, FaultPlan, MachineConfig, VTime};

const SEED: u64 = 0x7E57_5EED;
const LEN: usize = 192;

fn run_once() -> String {
    run_once_on(MachineConfig::default())
}

fn run_once_on(cfg: MachineConfig) -> String {
    let session = spsim::trace::session();
    let ctxs = LapiWorld::init_seeded(3, cfg, Mode::Polling, SEED);
    run_spmd_with(ctxs, |rank, ctx| workload(rank, &ctx));
    let timeline = session.finish();
    assert_eq!(
        timeline.evicted, 0,
        "trace ring overflowed; shrink workload"
    );
    timeline.render()
}

fn workload(rank: usize, ctx: &LapiContext) {
    let buf = ctx.alloc(256);
    let well = ctx.alloc(LEN);
    // Written before the collectives below, which double as an
    // "everyone is ready" barrier — so gets against the well see this.
    ctx.mem_write(well, &[rank as u8 + 0x40; LEN]);
    let addrs = ctx.address_init(buf);
    let wells = ctx.address_init(well);
    let org = ctx.new_counter();
    let cmpl = ctx.new_counter();
    let tgt = ctx.new_counter();
    let remotes = ctx.counter_init(&tgt);

    // Token-passing rotation: rank r puts to (r+1)%3, but only after the
    // previous rank's put has landed here — so exactly one rank is driving
    // the fabric at a time.
    if rank > 0 {
        ctx.waitcntr(&tgt, 1);
    }
    let next = (rank + 1) % 3;
    let data = vec![rank as u8 + 1; LEN];
    ctx.put(
        next,
        addrs[next],
        &data,
        Some(remotes[next]),
        Some(&org),
        Some(&cmpl),
    )
    .unwrap();
    // Waitcntr is LAPI_Waitcntr: it decrements by `val`, so every wait
    // below counts the *delta* since the previous one.
    ctx.waitcntr(&org, 1);
    ctx.waitcntr(&cmpl, 1);
    if rank == 0 {
        ctx.waitcntr(&tgt, 1); // rank 2's put (ranks 1, 2 consumed theirs as the token)
    }

    let prev = (rank + 2) % 3;
    assert_eq!(ctx.mem_read(buf, LEN), vec![prev as u8 + 1; LEN]);

    // Rank 0 pulls each peer's well, one get at a time (the org wait
    // serializes them). The gets bump the peers' target counters; the
    // peers' tgt wait keeps them polling so the requests get served.
    if rank == 0 {
        for peer in [1usize, 2] {
            let scratch = ctx.alloc(LEN);
            ctx.get(
                peer,
                wells[peer],
                LEN,
                scratch,
                Some(remotes[peer]),
                Some(&org),
            )
            .unwrap();
            ctx.waitcntr(&org, 1);
            assert_eq!(ctx.mem_read(scratch, LEN), vec![peer as u8 + 0x40; LEN]);
        }
    } else {
        ctx.waitcntr(&tgt, 1);
    }
    ctx.gfence().unwrap();
    ctx.barrier();
}

#[test]
fn same_seed_three_node_trace_is_byte_identical() {
    let first = run_once();
    let second = run_once();
    assert!(!first.is_empty(), "workload produced no trace events");
    assert_eq!(
        first, second,
        "same-seed runs diverged — an ordering-sensitive path is iterating \
         a randomized collection (see lint rule L2)"
    );
}

/// Crash-envelope variant: 2-node polling world, rank 1 crash-stopped
/// at `VTime::ZERO` so every packet toward it is black-holed at the
/// fabric from rank 0's own thread — no real-time race against the
/// victim's teardown, hence a byte-stable trace (see
/// `check::CrashRunOutcome::digest` for the envelope's rationale).
fn crash_run_once_on(cfg: MachineConfig) -> String {
    let session = spsim::trace::session();
    let cfg = cfg.with_faults(FaultPlan::new().with_crash(1, VTime::ZERO));
    let ctxs = LapiWorld::init_seeded(2, cfg, Mode::Polling, SEED);
    run_spmd_with(ctxs, |rank, mut ctx| crash_workload(rank, &mut ctx));
    let timeline = session.finish();
    assert_eq!(
        timeline.evicted, 0,
        "trace ring overflowed; shrink workload"
    );
    timeline.render()
}

fn crash_workload(rank: usize, ctx: &mut LapiContext) {
    let buf = ctx.alloc(64);
    let addrs = ctx.address_init(buf);
    let org = ctx.new_counter();
    let cmpl = ctx.new_counter();
    if rank == 1 {
        ctx.crash_stop();
        return;
    }
    // liveness: the very first put exhausts its retransmits against the
    // black-holed link and latches the peer dead, ending the loop.
    let mut errors = 0usize;
    while !ctx.dead_peers().contains(&1) {
        if ctx
            .put(1, addrs[1], &[7u8; 32], None, Some(&org), Some(&cmpl))
            .is_err()
        {
            errors += 1;
        }
    }
    assert!(errors >= 1, "a put toward the corpse must have errored");
    let scratch = ctx.alloc(8);
    assert!(
        ctx.get(1, addrs[1], 8, scratch, None, Some(&org)).is_err(),
        "post-death get must fast-fail"
    );
    assert_eq!(ctx.getcntr(&org), 0, "failed ops must not tick org");
    assert_eq!(ctx.getcntr(&cmpl), 0, "failed ops must not tick cmpl");
    assert_eq!(ctx.gfence_surviving().unwrap(), vec![0]);
}

/// Satellite of the node-failure domain: the delivery paths must stay
/// byte-identical *under a node crash* too — retransmission storms,
/// peer-death unwinding, and the degraded fence all ride the same
/// (time, tie, seq) order through either path.
#[test]
fn heap_and_ring_paths_stay_identical_under_node_crash() {
    let cfg = |path| {
        MachineConfig::default()
            .with_no_faults()
            .with_delivery_path(path)
    };
    let heap = crash_run_once_on(cfg(DeliveryPath::Heap));
    let rings = crash_run_once_on(cfg(DeliveryPath::Rings));
    assert!(!heap.is_empty(), "crash workload produced no trace events");
    assert_eq!(heap, rings, "delivery paths diverged under a node crash");
    assert_eq!(
        heap,
        crash_run_once_on(cfg(DeliveryPath::Heap)),
        "same-seed crash runs must replay byte-identically"
    );
}

// ----------------------------------------------------- scheduler equivalence
//
// PR 10's M:N scheduler must be *invisible* to virtual time: the same seed
// must replay byte-identically whether nodes run thread-per-node
// (`SPSIM_SCHED=threads`) or as fibers on a pooled worker set, and at any
// worker count (`SPSIM_WORKERS`), including a single worker, where every
// blocking point must yield correctly or the run livelocks.

/// Serializes the tests that flip the process-global scheduler knobs so
/// each one actually measures the mode it claims to.
static SCHED_KNOBS: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Restores the default scheduler mode and worker cap even if the test
/// body panics mid-comparison.
struct SchedRestore;
impl Drop for SchedRestore {
    fn drop(&mut self) {
        spsim::set_sched_mode(None);
        spsim::set_worker_cap(None);
    }
}

#[test]
fn pooled_and_threaded_schedulers_produce_byte_identical_traces() {
    let _serial = SCHED_KNOBS.lock().unwrap_or_else(|e| e.into_inner());
    let _restore = SchedRestore;

    spsim::set_sched_mode(Some(spsim::SchedMode::Threads));
    let threads = run_once();

    // Single worker first: the pool grows on demand but never shrinks, so
    // the cap=1 run must precede the cap=4 run within this process.
    spsim::set_sched_mode(Some(spsim::SchedMode::Pool));
    spsim::set_worker_cap(Some(1));
    let pool1 = run_once();
    spsim::set_worker_cap(Some(4));
    let pool4 = run_once();

    assert!(!threads.is_empty(), "workload produced no trace events");
    assert_eq!(
        threads, pool1,
        "thread-per-node and single-worker pooled runs diverged — a \
         blocking point is leaking host scheduling into virtual time"
    );
    assert_eq!(
        pool1, pool4,
        "pooled runs diverged across worker counts — the scheduler's \
         dispatch order is reaching an ordering-sensitive path"
    );
}

#[test]
fn crash_replay_is_byte_identical_under_pooled_scheduler() {
    let _serial = SCHED_KNOBS.lock().unwrap_or_else(|e| e.into_inner());
    let _restore = SchedRestore;
    let cfg = || MachineConfig::default().with_no_faults();

    spsim::set_sched_mode(Some(spsim::SchedMode::Threads));
    let threads = crash_run_once_on(cfg());

    spsim::set_sched_mode(Some(spsim::SchedMode::Pool));
    spsim::set_worker_cap(Some(1));
    let pooled = crash_run_once_on(cfg());

    assert!(
        !threads.is_empty(),
        "crash workload produced no trace events"
    );
    assert_eq!(
        threads, pooled,
        "crash replay diverged between schedulers — retransmit storms and \
         peer-death unwinding must not observe the worker pool"
    );
}

/// The SPSC delivery rings are a drop-in replacement for the legacy
/// `TimedQueue` delivery path: within the deterministic envelope a
/// same-seed run must produce a byte-identical trace through either path,
/// regardless of which one `SPSIM_DELIVERY` selects for the rest of the
/// suite.
#[test]
fn legacy_heap_and_spsc_ring_paths_produce_byte_identical_traces() {
    let heap = run_once_on(MachineConfig::default().with_delivery_path(DeliveryPath::Heap));
    let rings = run_once_on(MachineConfig::default().with_delivery_path(DeliveryPath::Rings));
    assert!(!heap.is_empty(), "workload produced no trace events");
    assert_eq!(
        heap, rings,
        "delivery paths diverged — the ring path must reproduce the \
         TimedQueue's (time, tie, seq) pop order exactly"
    );
}
