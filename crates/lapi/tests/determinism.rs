//! Same-seed trace identity (lint rule L2's reason for existing).
//!
//! After the HashMap→BTreeMap migration in the engines, a fixed-seed run of
//! a 3-node workload must produce a byte-identical rendered trace every
//! time. The workload stays inside the simulator's deterministic envelope:
//!
//! * polling mode — interrupt delivery racing the main thread against real
//!   time is *intentionally* outside it;
//! * causally serialized traffic — each rank only transmits after the
//!   previous rank's message has landed (token-passing rotation, then
//!   strictly sequential gets), so no two node threads ever contend for an
//!   ejection-link reservation. Free-running many-to-one traffic reserves
//!   links in real-time arrival order and is deliberately not covered.
//!
//! Within that envelope, any run-to-run divergence means an
//! ordering-sensitive path is iterating a randomized collection — exactly
//! what the BTreeMap migration (and lint rule L2) exists to prevent.

use lapi::{LapiContext, LapiWorld, Mode};
use spsim::{run_spmd_with, DeliveryPath, MachineConfig};

const SEED: u64 = 0x7E57_5EED;
const LEN: usize = 192;

fn run_once() -> String {
    run_once_on(MachineConfig::default())
}

fn run_once_on(cfg: MachineConfig) -> String {
    let session = spsim::trace::session();
    let ctxs = LapiWorld::init_seeded(3, cfg, Mode::Polling, SEED);
    run_spmd_with(ctxs, |rank, ctx| workload(rank, &ctx));
    let timeline = session.finish();
    assert_eq!(
        timeline.evicted, 0,
        "trace ring overflowed; shrink workload"
    );
    timeline.render()
}

fn workload(rank: usize, ctx: &LapiContext) {
    let buf = ctx.alloc(256);
    let well = ctx.alloc(LEN);
    // Written before the collectives below, which double as an
    // "everyone is ready" barrier — so gets against the well see this.
    ctx.mem_write(well, &[rank as u8 + 0x40; LEN]);
    let addrs = ctx.address_init(buf);
    let wells = ctx.address_init(well);
    let org = ctx.new_counter();
    let cmpl = ctx.new_counter();
    let tgt = ctx.new_counter();
    let remotes = ctx.counter_init(&tgt);

    // Token-passing rotation: rank r puts to (r+1)%3, but only after the
    // previous rank's put has landed here — so exactly one rank is driving
    // the fabric at a time.
    if rank > 0 {
        ctx.waitcntr(&tgt, 1);
    }
    let next = (rank + 1) % 3;
    let data = vec![rank as u8 + 1; LEN];
    ctx.put(
        next,
        addrs[next],
        &data,
        Some(remotes[next]),
        Some(&org),
        Some(&cmpl),
    )
    .unwrap();
    // Waitcntr is LAPI_Waitcntr: it decrements by `val`, so every wait
    // below counts the *delta* since the previous one.
    ctx.waitcntr(&org, 1);
    ctx.waitcntr(&cmpl, 1);
    if rank == 0 {
        ctx.waitcntr(&tgt, 1); // rank 2's put (ranks 1, 2 consumed theirs as the token)
    }

    let prev = (rank + 2) % 3;
    assert_eq!(ctx.mem_read(buf, LEN), vec![prev as u8 + 1; LEN]);

    // Rank 0 pulls each peer's well, one get at a time (the org wait
    // serializes them). The gets bump the peers' target counters; the
    // peers' tgt wait keeps them polling so the requests get served.
    if rank == 0 {
        for peer in [1usize, 2] {
            let scratch = ctx.alloc(LEN);
            ctx.get(
                peer,
                wells[peer],
                LEN,
                scratch,
                Some(remotes[peer]),
                Some(&org),
            )
            .unwrap();
            ctx.waitcntr(&org, 1);
            assert_eq!(ctx.mem_read(scratch, LEN), vec![peer as u8 + 0x40; LEN]);
        }
    } else {
        ctx.waitcntr(&tgt, 1);
    }
    ctx.gfence().unwrap();
    ctx.barrier();
}

#[test]
fn same_seed_three_node_trace_is_byte_identical() {
    let first = run_once();
    let second = run_once();
    assert!(!first.is_empty(), "workload produced no trace events");
    assert_eq!(
        first, second,
        "same-seed runs diverged — an ordering-sensitive path is iterating \
         a randomized collection (see lint rule L2)"
    );
}

/// The SPSC delivery rings are a drop-in replacement for the legacy
/// `TimedQueue` delivery path: within the deterministic envelope a
/// same-seed run must produce a byte-identical trace through either path,
/// regardless of which one `SPSIM_DELIVERY` selects for the rest of the
/// suite.
#[test]
fn legacy_heap_and_spsc_ring_paths_produce_byte_identical_traces() {
    let heap = run_once_on(MachineConfig::default().with_delivery_path(DeliveryPath::Heap));
    let rings = run_once_on(MachineConfig::default().with_delivery_path(DeliveryPath::Rings));
    assert!(!heap.is_empty(), "workload produced no trace events");
    assert_eq!(
        heap, rings,
        "delivery paths diverged — the ring path must reproduce the \
         TimedQueue's (time, tie, seq) pop order exactly"
    );
}
