//! Job setup: `LAPI_Init` for all tasks at once.
//!
//! A parallel job is created with [`LapiWorld::init`], which wires an
//! `n`-node simulated switch, builds one [`LapiContext`] per task, and
//! starts each task's dispatcher and completion threads. The contexts are
//! then moved into node threads (see `spsim::run_spmd_with`).

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use spsim::{MachineConfig, NodeId, VBarrier, VClock, VDur};
use spswitch::Network;

use crate::context::{LapiContext, Mode};
use crate::engine::Engine;
use crate::wire::LapiBody;

/// Collective u64 exchange board (the substrate of `LAPI_Address_init`).
pub(crate) struct Exchange {
    slots: Mutex<Vec<u64>>,
    barrier: VBarrier,
}

impl Exchange {
    fn new(n: usize, cost: VDur) -> Self {
        Exchange {
            slots: Mutex::new(vec![0; n]),
            barrier: VBarrier::new(n, cost),
        }
    }

    pub(crate) fn exchange(&self, clock: &VClock, me: NodeId, value: u64) -> Vec<u64> {
        self.slots.lock()[me] = value;
        self.barrier.wait(clock);
        let out = self.slots.lock().clone();
        // Second phase keeps a fast next exchange from overwriting slots
        // before a slow task has read this round.
        self.barrier.wait(clock);
        out
    }
}

/// Cost model of a job-wide synchronization: a dissemination barrier pays
/// ~log2(n) message latencies.
fn barrier_cost(cfg: &MachineConfig, n: usize) -> VDur {
    let rounds = (usize::BITS - (n.max(2) - 1).leading_zeros()) as u64;
    (cfg.fabric_latency + VDur::from_us(13)) * rounds
}

/// Builder/entry point for a LAPI job.
pub struct LapiWorld;

impl LapiWorld {
    /// `LAPI_Init` for an `n`-task job over a fresh simulated switch.
    /// Returns one context per task, in rank order.
    pub fn init(n: usize, cfg: MachineConfig, mode: Mode) -> Vec<LapiContext> {
        Self::init_seeded(n, cfg, mode, 0x5A17_C0DE)
    }

    /// As [`LapiWorld::init`] with an explicit route/drop seed.
    pub fn init_seeded(n: usize, cfg: MachineConfig, mode: Mode, seed: u64) -> Vec<LapiContext> {
        Self::init_full(n, cfg, mode, seed, Duration::from_secs(30))
    }

    /// Full-control init: `escape` bounds real blocking time before a
    /// simulated deadlock panics (tests of deadlocking programs shrink it).
    pub fn init_full(
        n: usize,
        cfg: MachineConfig,
        mode: Mode,
        seed: u64,
        escape: Duration,
    ) -> Vec<LapiContext> {
        Self::init_ext(n, cfg, mode, seed, escape, 1)
    }

    /// As [`LapiWorld::init_full`] with `completion_threads` completion-
    /// handler threads per node — the §6 "multiple completion handler
    /// threads" extension for SMP nodes (the paper's machine ran one).
    pub fn init_ext(
        n: usize,
        cfg: MachineConfig,
        mode: Mode,
        seed: u64,
        escape: Duration,
        completion_threads: usize,
    ) -> Vec<LapiContext> {
        assert!(
            completion_threads >= 1,
            "need at least one completion thread"
        );
        let cfg = Arc::new(cfg);
        let net: Network<LapiBody> = Network::new(n, Arc::clone(&cfg), seed);
        let bcost = barrier_cost(&cfg, n);
        let barrier = VBarrier::new(n, bcost);
        let exchange = Arc::new(Exchange::new(n, bcost));
        net.into_adapters()
            .into_iter()
            .map(|ad| {
                let engine = Engine::new(ad, mode, escape);
                let d_engine = Arc::clone(&engine);
                let dispatcher =
                    spsim::spawn_service(format!("lapi-disp-{}", d_engine.id()), move || {
                        d_engine.dispatcher_loop()
                    });
                let completion = (0..completion_threads)
                    .map(|k| {
                        let c_engine = Arc::clone(&engine);
                        spsim::spawn_service(
                            format!("lapi-cmpl-{}-{k}", c_engine.id()),
                            move || c_engine.completion_loop(),
                        )
                    })
                    .collect();
                LapiContext {
                    engine,
                    dispatcher: Some(dispatcher),
                    completion,
                    barrier: barrier.clone(),
                    exchange: Arc::clone(&exchange),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_builds_rank_ordered_contexts() {
        let ctxs = LapiWorld::init(3, MachineConfig::default(), Mode::Interrupt);
        for (i, c) in ctxs.iter().enumerate() {
            assert_eq!(c.id(), i);
            assert_eq!(c.tasks(), 3);
        }
    }

    #[test]
    fn barrier_cost_scales_logarithmically() {
        let cfg = MachineConfig::default();
        let c2 = barrier_cost(&cfg, 2);
        let c8 = barrier_cost(&cfg, 8);
        let c512 = barrier_cost(&cfg, 512);
        assert!(c2 < c8 && c8 < c512);
        assert_eq!(c8, c2 * 3);
    }

    #[test]
    fn exchange_returns_everyones_value() {
        let ex = Exchange::new(4, VDur::from_us(1));
        let clocks: Vec<VClock> = (0..4).map(|_| VClock::new()).collect();
        let results: Vec<Vec<u64>> = std::thread::scope(|s| {
            let handles: Vec<_> = clocks
                .iter()
                .enumerate()
                .map(|(i, cl)| {
                    let ex = &ex;
                    s.spawn(move || ex.exchange(cl, i, 100 + i as u64))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for r in &results {
            assert_eq!(r, &vec![100, 101, 102, 103]);
        }
    }
}
