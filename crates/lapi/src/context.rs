//! The per-task LAPI context: the public API surface of Table 1.

use std::sync::Arc;

use spsim::{trace, NodeId, ServiceHandle, VClock, VDur, VTime};

use crate::addr::Addr;
use crate::counter::{Counter, RemoteCounter};
use crate::engine::{Engine, RmwFuture};
use crate::error::LapiError;
use crate::handlers::{AmInfo, HdrOutcome};
use crate::stats::LapiStats;
use crate::wire::RmwOp;
use crate::world::Exchange;
use crate::LapiResult;

pub use crate::engine::Mode;

/// `LAPI_Qenv` selectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Qenv {
    /// This task's id.
    TaskId,
    /// Number of tasks in the job.
    NumTasks,
    /// Maximum user-header size for `amsend` (the paper's ≈900 bytes of
    /// user data that ride in a single AM packet, §5.3.1).
    MaxUhdrSz,
    /// Maximum payload of a single switch packet under the LAPI header.
    MaxDataSz,
    /// 1 if interrupt mode is on, 0 if polling.
    InterruptSet,
}

/// `LAPI_Senv` settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Senv {
    /// Switch between interrupt and polling modes.
    InterruptSet(bool),
}

/// One task's LAPI context (`LAPI_Init` creates it; see [`crate::LapiWorld`]).
pub struct LapiContext {
    pub(crate) engine: Arc<Engine>,
    pub(crate) dispatcher: Option<ServiceHandle>,
    pub(crate) completion: Vec<ServiceHandle>,
    pub(crate) barrier: spsim::VBarrier,
    pub(crate) exchange: Arc<Exchange>,
}

impl LapiContext {
    // ----------------------------------------------------------- identity

    /// This task's id (`LAPI_Qenv(TASK_ID)`).
    pub fn id(&self) -> NodeId {
        self.engine.id()
    }

    /// Number of tasks in the job (`LAPI_Qenv(NUM_TASKS)`).
    pub fn tasks(&self) -> usize {
        self.engine.tasks()
    }

    /// The node's virtual clock.
    pub fn clock(&self) -> &VClock {
        self.engine.clock()
    }

    /// Current virtual time.
    pub fn now(&self) -> VTime {
        self.engine.clock().now()
    }

    /// The simulated machine's cost model.
    pub fn machine(&self) -> &spsim::MachineConfig {
        self.engine.config()
    }

    /// Charge local computation to the node (models application work).
    pub fn compute(&self, cost: VDur) {
        self.engine.clock().advance(cost);
    }

    /// Protocol statistics.
    pub fn stats(&self) -> &LapiStats {
        &self.engine.stats
    }

    /// Wire-level statistics of this node's adapter.
    pub fn wire_stats(&self) -> &spswitch::AdapterStats {
        self.engine.adapter().stats()
    }

    /// Operations issued toward `target` whose data has not yet landed
    /// remotely (what `fence(target)` would wait on).
    pub fn pending(&self, target: NodeId) -> i64 {
        self.engine.outstanding_to(target)
    }

    /// `LAPI_Rmw` tickets still awaiting a reply. A ticket whose issue
    /// failed (e.g. [`crate::LapiError::DeliveryTimeout`]) is unwound
    /// before the error surfaces, so after every outstanding
    /// [`crate::RmwFuture`] has resolved this is 0.
    pub fn rmw_pending(&self) -> usize {
        self.engine.rmw_pending()
    }

    /// `LAPI_Qenv`.
    pub fn qenv(&self, q: Qenv) -> usize {
        let cfg = self.engine.config();
        match q {
            Qenv::TaskId => self.id(),
            Qenv::NumTasks => self.tasks(),
            Qenv::MaxUhdrSz => cfg.lapi_max_uhdr,
            Qenv::MaxDataSz => cfg.payload_per_packet(cfg.lapi_header_bytes),
            Qenv::InterruptSet => (self.engine.mode() == Mode::Interrupt) as usize,
        }
    }

    /// `LAPI_Senv`.
    pub fn senv(&self, s: Senv) {
        match s {
            Senv::InterruptSet(on) => {
                self.engine
                    .set_mode(if on { Mode::Interrupt } else { Mode::Polling })
            }
        }
    }

    // ------------------------------------------------------------- memory

    /// Allocate `len` bytes in this task's address space.
    pub fn alloc(&self, len: usize) -> Addr {
        self.engine.alloc(len)
    }

    /// Read local memory.
    pub fn mem_read(&self, addr: Addr, len: usize) -> Vec<u8> {
        self.engine.mem_read(addr, len)
    }

    /// Write local memory.
    pub fn mem_write(&self, addr: Addr, data: &[u8]) {
        self.engine.mem_write(addr, data)
    }

    /// Read f64s from local memory.
    pub fn mem_read_f64s(&self, addr: Addr, n: usize) -> Vec<f64> {
        self.engine.with_space(|s| s.read_f64s(addr, n))
    }

    /// Write f64s to local memory.
    pub fn mem_write_f64s(&self, addr: Addr, vals: &[f64]) {
        self.engine.with_space_mut(|s| s.write_f64s(addr, vals))
    }

    /// Read the u64 cell at `addr` (e.g. an Rmw target).
    pub fn mem_read_u64(&self, addr: Addr) -> u64 {
        self.engine.with_space(|s| s.read_u64(addr))
    }

    /// Write the u64 cell at `addr`.
    pub fn mem_write_u64(&self, addr: Addr, v: u64) {
        self.engine.with_space_mut(|s| s.write_u64(addr, v))
    }

    // ----------------------------------------------------------- counters

    /// Create a counter (ids are allocated in call order, so symmetric
    /// SPMD allocation yields matching ids on every task).
    pub fn new_counter(&self) -> Counter {
        self.engine.new_counter()
    }

    /// `LAPI_Setcntr`.
    pub fn setcntr(&self, c: &Counter, val: i64) {
        c.set(val)
    }

    /// `LAPI_Getcntr`.
    pub fn getcntr(&self, c: &Counter) -> i64 {
        c.get()
    }

    /// `LAPI_Waitcntr`: wait until `c` reaches `val`, then decrement by
    /// `val`. Drives progress in polling mode.
    pub fn waitcntr(&self, c: &Counter, val: i64) {
        self.engine.wait_counter(c, val)
    }

    /// `LAPI_Probe`: process any arrived packets (polling-mode progress).
    /// Returns the number of packets processed.
    pub fn probe(&self) -> usize {
        self.engine.probe()
    }

    // ----------------------------------------------------- communication

    /// Register an active-message header handler under `id`.
    pub fn register_handler<F>(&self, id: u32, f: F)
    where
        F: Fn(&crate::handlers::HandlerCtx<'_>, AmInfo<'_>) -> HdrOutcome + Send + Sync + 'static,
    {
        self.engine.register_handler(id, Box::new(f));
    }

    /// Register this task's communication error handler — the `err_hndlr`
    /// argument of the real `LAPI_Init`. It is invoked (from whichever
    /// thread detects the failure) for delivery timeouts that have no user
    /// call to return through, e.g. a dispatcher-side get reply hitting a
    /// dead link. Without a handler such failures are fatal, as in the
    /// real library. Replaces any previously registered handler.
    pub fn register_err_hndlr<F>(&self, f: F)
    where
        F: Fn(&LapiError) + Send + Sync + 'static,
    {
        self.engine.register_err_hndlr(Arc::new(f));
    }

    /// `LAPI_Put`: copy `data` into `target`'s space at `tgt_addr`.
    /// Non-blocking; the three counters signal the events of Figure 1.
    pub fn put(
        &self,
        target: NodeId,
        tgt_addr: Addr,
        data: &[u8],
        tgt_cntr: Option<RemoteCounter>,
        org_cntr: Option<&Counter>,
        cmpl_cntr: Option<&Counter>,
    ) -> LapiResult {
        self.engine.issue_put(
            self.engine.config().lapi_put_issue,
            target,
            tgt_addr,
            data,
            tgt_cntr,
            org_cntr,
            cmpl_cntr,
        )
    }

    /// Blocking put: issue and wait for origin-side completion at the
    /// target (`cmpl_cntr`), per the paper's note that blocking variants
    /// are the non-blocking call plus an immediate wait.
    pub fn put_wait(&self, target: NodeId, tgt_addr: Addr, data: &[u8]) -> LapiResult {
        let cmpl = self.new_counter();
        self.put(target, tgt_addr, data, None, None, Some(&cmpl))?;
        self.waitcntr(&cmpl, 1);
        Ok(())
    }

    /// `LAPI_Putv` (the §6 "non-contiguous interface" extension): scatter
    /// the contiguous `data` across `target`'s vector table in one
    /// message — removing both the multiple-request overhead and the
    /// packing-copy overhead of AM-based noncontiguous transfers.
    #[allow(clippy::too_many_arguments)]
    pub fn putv(
        &self,
        target: NodeId,
        vecs: &[crate::wire::IoVec],
        data: &[u8],
        tgt_cntr: Option<RemoteCounter>,
        org_cntr: Option<&Counter>,
        cmpl_cntr: Option<&Counter>,
    ) -> LapiResult {
        self.engine.issue_putv(
            self.engine.config().lapi_put_issue,
            target,
            vecs,
            data,
            tgt_cntr,
            org_cntr,
            cmpl_cntr,
        )
    }

    /// `LAPI_Getv` (§6 extension): gather `target`'s vector table into the
    /// contiguous local buffer at `org_addr`.
    pub fn getv(
        &self,
        target: NodeId,
        vecs: &[crate::wire::IoVec],
        org_addr: Addr,
        tgt_cntr: Option<RemoteCounter>,
        org_cntr: Option<&Counter>,
    ) -> LapiResult {
        self.engine
            .issue_getv(target, vecs, org_addr, tgt_cntr, org_cntr)
    }

    /// Maximum vector-table entries per `putv`/`getv` message.
    pub fn max_vecs(&self) -> usize {
        let cfg = self.engine.config();
        cfg.payload_per_packet(cfg.lapi_header_bytes) / crate::wire::IoVec::DESC_BYTES
    }

    /// `LAPI_Get`: copy `len` bytes from `target`'s `tgt_addr` into the
    /// local `org_addr`. Non-blocking; `org_cntr` fires when data lands.
    pub fn get(
        &self,
        target: NodeId,
        tgt_addr: Addr,
        len: usize,
        org_addr: Addr,
        tgt_cntr: Option<RemoteCounter>,
        org_cntr: Option<&Counter>,
    ) -> LapiResult {
        self.engine
            .issue_get(target, tgt_addr, len, org_addr, tgt_cntr, org_cntr)
    }

    /// Blocking get: issue, wait, and return the fetched bytes.
    pub fn get_wait(&self, target: NodeId, tgt_addr: Addr, len: usize) -> LapiResult<Vec<u8>> {
        let org_addr = self.alloc(len);
        let org = self.new_counter();
        self.get(target, tgt_addr, len, org_addr, None, Some(&org))?;
        self.waitcntr(&org, 1);
        Ok(self.mem_read(org_addr, len))
    }

    /// `LAPI_Amsend`: active message to `handler` at `target` with user
    /// header `uhdr` and data `udata`.
    #[allow(clippy::too_many_arguments)]
    pub fn amsend(
        &self,
        target: NodeId,
        handler: u32,
        uhdr: &[u8],
        udata: &[u8],
        tgt_cntr: Option<RemoteCounter>,
        org_cntr: Option<&Counter>,
        cmpl_cntr: Option<&Counter>,
    ) -> LapiResult {
        self.engine.issue_am(
            self.engine.config().lapi_am_issue,
            target,
            handler,
            uhdr,
            udata,
            tgt_cntr,
            org_cntr,
            cmpl_cntr,
        )
    }

    /// `LAPI_Rmw`: atomic op on the u64 cell at `tgt_addr` of `target`;
    /// the returned future resolves to the previous value. `cmp_val` is
    /// only read by [`RmwOp::CompareAndSwap`].
    pub fn rmw(
        &self,
        target: NodeId,
        op: RmwOp,
        tgt_addr: Addr,
        in_val: u64,
        cmp_val: u64,
    ) -> LapiResult<RmwFuture> {
        self.engine.issue_rmw(target, op, tgt_addr, in_val, cmp_val)
    }

    /// `LAPI_Fence`: wait until all operations this task issued toward
    /// `target` have deposited their data remotely (§5.3.2: completion
    /// handlers may still be running).
    pub fn fence(&self, target: NodeId) -> LapiResult {
        self.engine.fence(target)
    }

    /// `LAPI_Gfence`: fence against all tasks, then synchronize all tasks.
    ///
    /// In polling mode the barrier wait keeps servicing the receive queue:
    /// a peer may still be blocked on a request (rmw, get) it issued before
    /// heading to its own fence, and polling-mode LAPI only makes progress
    /// when the target polls. Parking without draining would strand that
    /// request and deadlock the job.
    pub fn gfence(&self) -> LapiResult {
        self.engine.fence_all()?;
        match self.engine.mode() {
            Mode::Polling => {
                self.barrier
                    .wait_with_progress(self.engine.clock(), || self.engine.drain_arrived());
            }
            Mode::Interrupt => {
                self.barrier.wait(self.engine.clock());
            }
        }
        Ok(())
    }

    /// Survivor-set `LAPI_Gfence`: fence and synchronize over the *live*
    /// members only, as scheduled by the machine's
    /// [`spsim::FaultPlan`] crash entries. Returns the survivor set
    /// (ascending task ids).
    ///
    /// With no node scheduled to crash this is exactly
    /// [`LapiContext::gfence`]. Otherwise every scheduled-dead peer is
    /// first declared dead locally — unblocking operations whose data was
    /// delivered before the crash but whose completion acknowledgement
    /// will never come — a `fence-degraded` trace event records the
    /// degradation, each survivor is fenced, and the barrier releases at
    /// the survivor count instead of the full job size.
    ///
    /// The fault plan is the shared membership ground truth: every
    /// survivor computes the same set deterministically, so all of them
    /// pass the same expected count to the barrier (mixing counts would
    /// release early or strand arrivals). A task that is itself scheduled
    /// dead must not call this; it gets [`LapiError::Terminated`].
    pub fn gfence_surviving(&self) -> LapiResult<Vec<NodeId>> {
        self.engine.check_live()?;
        let survivors = self.machine().faults.survivors(self.tasks());
        if survivors.len() == self.tasks() {
            self.gfence()?;
            return Ok(survivors);
        }
        if !survivors.contains(&self.id()) {
            return Err(LapiError::Terminated);
        }
        // Declare every scheduled-dead peer dead now (idempotent): an op
        // whose data was delivered pre-crash never sees a send failure,
        // so without this proactive declaration nothing would unblock its
        // waiters.
        for t in 0..self.tasks() {
            if t != self.id() && !survivors.contains(&t) {
                let cause = LapiError::DeliveryTimeout {
                    target: t,
                    seq: 0,
                    acked: 0,
                    retries: 0,
                    fast_failed: true,
                    detail: format!(
                        "task {t} scheduled to crash in the fault plan; declared dead \
                         at gfence_surviving"
                    ),
                };
                self.engine.declare_peer_dead(t, &cause);
            }
        }
        trace::emit(
            self.id(),
            self.now(),
            trace::EventKind::FenceDegraded,
            "gfence",
            survivors.len() as u64,
            0,
        );
        for &t in &survivors {
            self.engine.fence(t)?;
        }
        match self.engine.mode() {
            Mode::Polling => {
                self.barrier
                    .wait_among(self.engine.clock(), survivors.len(), || {
                        self.engine.drain_arrived()
                    });
            }
            Mode::Interrupt => {
                self.barrier
                    .wait_among(self.engine.clock(), survivors.len(), || {});
            }
        }
        Ok(survivors)
    }

    /// Barrier without the fence half (job-wide clock alignment); returns
    /// the aligned virtual time.
    pub fn barrier(&self) -> VTime {
        self.barrier.wait(self.engine.clock())
    }

    /// Tasks this context has declared dead (ascending), whether via an
    /// exhausted retransmission budget or a `gfence_surviving` schedule.
    pub fn dead_peers(&self) -> Vec<NodeId> {
        self.engine.dead_peer_list()
    }

    // ------------------------------------------------- address exchange

    /// Collective exchange of one u64 per task; returns the vector indexed
    /// by task id. The building block of `LAPI_Address_init`.
    pub fn exchange(&self, value: u64) -> Vec<u64> {
        self.exchange
            .exchange(self.engine.clock(), self.id(), value)
    }

    /// `LAPI_Address_init`: every task contributes a local address, every
    /// task receives the full table.
    pub fn address_init(&self, addr: Addr) -> Vec<Addr> {
        self.exchange(addr.0).into_iter().map(Addr).collect()
    }

    /// Exchange counter ids so remote origins can name a local counter as
    /// their `tgt_cntr`.
    pub fn counter_init(&self, c: &Counter) -> Vec<RemoteCounter> {
        self.exchange(c.id() as u64)
            .into_iter()
            .map(|v| RemoteCounter(v as u32))
            .collect()
    }

    // -------------------------------------------------------------- term

    /// `LAPI_Term`: shut down this task's context. Call after a final
    /// [`LapiContext::gfence`] so no peer still has traffic toward this
    /// node in flight.
    pub fn term(&mut self) -> LapiResult {
        self.engine.check_live()?;
        self.engine.terminate();
        let propagate = !std::thread::panicking();
        if let Some(h) = self.dispatcher.take() {
            let r = h.join();
            if propagate {
                r.expect("dispatcher thread panicked");
            }
        }
        for h in self.completion.drain(..) {
            let r = h.join();
            if propagate {
                r.expect("completion thread panicked");
            }
        }
        Ok(())
    }

    /// Crash-stop this node mid-run (node-level fault injection): the
    /// context dies instantly without the cooperative `term` handshake.
    /// Service loops stop without draining their backlogs — a crashed
    /// adapter delivers nothing — and every packet received but never
    /// processed is written off so the trace ledger stays balanced
    /// (`injected == delivered + written_off`). Pair it with
    /// [`spsim::FaultPlan::with_crash`] at the same instant so the fabric
    /// black-holes traffic to and from this node; survivors then observe
    /// the death through exhausted retransmissions or
    /// [`LapiContext::gfence_surviving`]. Idempotent; subsequent API calls
    /// return [`LapiError::Terminated`].
    pub fn crash_stop(&mut self) {
        if self.engine.is_terminated() {
            return;
        }
        self.engine.crash();
        self.engine.terminate();
        let propagate = !std::thread::panicking();
        if let Some(h) = self.dispatcher.take() {
            let r = h.join();
            if propagate {
                r.expect("dispatcher thread panicked");
            }
        }
        for h in self.completion.drain(..) {
            let r = h.join();
            if propagate {
                r.expect("completion thread panicked");
            }
        }
        // With the service threads gone, retire whatever they left behind.
        self.engine.write_off_stranded();
    }
}

impl Drop for LapiContext {
    fn drop(&mut self) {
        if !self.engine.is_terminated() {
            self.engine.terminate();
        }
        // Reap service threads without double-panicking during unwinds.
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
        for h in self.completion.drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for LapiContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LapiContext")
            .field("task", &self.id())
            .field("tasks", &self.tasks())
            .field("terminated", &self.engine.check_live().is_err())
            .finish()
    }
}

// Re-exported error for doc links.
#[allow(unused_imports)]
use LapiError as _DocLink;
