//! LAPI error codes.

use std::fmt;

/// Errors returned by LAPI calls (program-visible conditions; internal
/// invariant violations panic instead, as they would corrupt the simulated
/// machine).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LapiError {
    /// Target task id out of range.
    BadTarget {
        /// The offending id.
        target: usize,
        /// Number of tasks in the job.
        ntasks: usize,
    },
    /// The user header exceeds `LAPI_Qenv(MAX_UHDR_SZ)`.
    UhdrTooLarge {
        /// Requested header size.
        len: usize,
        /// The queryable maximum.
        max: usize,
    },
    /// Unknown active-message handler id at the target.
    UnknownHandler(u32),
    /// A `putv`/`getv` vector table exceeds one packet's descriptor room.
    TooManyVecs {
        /// Requested vector count.
        nvecs: usize,
        /// Per-message maximum.
        max: usize,
    },
    /// The context has been terminated (`LAPI_Term`).
    Terminated,
    /// Unknown `LAPI_Qenv`/`LAPI_Senv` selector.
    BadQuery,
    /// The adapter's reliability protocol gave up on a flow: a packet was
    /// retransmitted up to the configured bound without ever being
    /// acknowledged (dead link, or a black-hole window longer than the
    /// retry budget). Mirrors the error the real `LAPI_Init` `err_hndlr`
    /// would receive on an unrecoverable communication failure.
    DeliveryTimeout {
        /// Target task of the undeliverable packet.
        target: usize,
        /// Per-flow sequence number that never got acknowledged.
        seq: u64,
        /// Highest cumulatively acknowledged sequence on the flow.
        acked: u64,
        /// Retransmission attempts spent before giving up.
        retries: u32,
        /// `true` when the failure was detected without wire activity:
        /// the peer was already latched dead in the adapter's
        /// [`spswitch::PeerHealth`] table (or in the engine's peer-death
        /// latch), so the op fast-failed at zero virtual-time cost instead
        /// of burning a full retransmission budget.
        fast_failed: bool,
        /// Human-readable flow/trace diagnostic from the adapter.
        detail: String,
    },
}

impl fmt::Display for LapiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LapiError::BadTarget { target, ntasks } => {
                write!(
                    f,
                    "target task {target} out of range (job has {ntasks} tasks)"
                )
            }
            LapiError::UhdrTooLarge { len, max } => {
                write!(f, "user header of {len} bytes exceeds MAX_UHDR_SZ={max}")
            }
            LapiError::UnknownHandler(id) => write!(f, "unregistered AM handler {id}"),
            LapiError::TooManyVecs { nvecs, max } => {
                write!(
                    f,
                    "vector table of {nvecs} entries exceeds the per-message maximum {max}"
                )
            }
            LapiError::Terminated => write!(f, "LAPI context already terminated"),
            LapiError::BadQuery => write!(f, "unknown Qenv/Senv selector"),
            LapiError::DeliveryTimeout {
                target,
                seq,
                acked,
                retries,
                fast_failed,
                ..
            } => {
                if *fast_failed {
                    write!(
                        f,
                        "delivery to task {target} fast-failed: peer already declared \
                         dead (seq {seq}, cum-acked {acked}, no wire activity)"
                    )
                } else {
                    write!(
                        f,
                        "delivery to task {target} timed out: seq {seq} unacknowledged \
                         (cum-acked {acked}) after {retries} retransmissions"
                    )
                }
            }
        }
    }
}

impl std::error::Error for LapiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LapiError::BadTarget {
            target: 9,
            ntasks: 4,
        };
        assert!(e.to_string().contains("task 9"));
        let e = LapiError::UhdrTooLarge {
            len: 2000,
            max: 900,
        };
        assert!(e.to_string().contains("900"));
    }
}
