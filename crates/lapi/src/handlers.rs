//! Active-message handler types.
//!
//! `LAPI_Amsend` names a *header handler* registered at the target. When the
//! first packet of the message arrives, the dispatcher invokes it with the
//! user header; the handler returns where the message data should land and,
//! optionally, a *completion handler* to run once every packet has been
//! deposited (§2.1 of the paper). Header handlers execute on the dispatcher
//! — one at a time per context, exactly as LAPI guarantees — so they must be
//! short and non-blocking; completion handlers run on the completion
//! thread(s) and may do real work (GA's `accumulate` runs there).

use crate::addr::Addr;
use crate::engine::Engine;
use spsim::NodeId;

/// What the dispatcher tells a header handler about the arriving message.
#[derive(Debug)]
pub struct AmInfo<'a> {
    /// The origin task.
    pub src: NodeId,
    /// The user header the origin attached.
    pub uhdr: &'a [u8],
    /// Total user-data length of the message (0 for header-only messages).
    pub data_len: usize,
}

/// A completion handler: runs after the whole message has been deposited.
pub type CompletionFn = Box<dyn FnOnce(&HandlerCtx<'_>) + Send>;

/// What a header handler returns to the dispatcher.
pub struct HdrOutcome {
    /// Where the message data must be deposited. Required whenever
    /// `data_len > 0` — LAPI forbids returning no buffer for a data-bearing
    /// message (the dispatcher cannot block, §5.3.1).
    pub buffer: Option<Addr>,
    /// Optional completion handler.
    pub completion: Option<CompletionFn>,
}

impl HdrOutcome {
    /// No buffer, no completion handler (header-only messages).
    pub fn none() -> Self {
        HdrOutcome {
            buffer: None,
            completion: None,
        }
    }

    /// Deposit into `buffer`, no completion handler.
    pub fn into_buffer(buffer: Addr) -> Self {
        HdrOutcome {
            buffer: Some(buffer),
            completion: None,
        }
    }

    /// Attach a completion handler.
    pub fn with_completion(mut self, f: CompletionFn) -> Self {
        self.completion = Some(f);
        self
    }
}

/// A header handler, registered under a small integer id which origins name
/// in `amsend` (function *addresses* on the homogeneous SP; a registry id
/// here).
pub type HeaderHandlerFn = Box<dyn Fn(&HandlerCtx<'_>, AmInfo<'_>) -> HdrOutcome + Send + Sync>;

/// The restricted view of the local LAPI context that handlers receive.
///
/// Handlers run in the target's address space with the target's clock; they
/// can touch target memory, charge CPU cost for the work they model, and
/// issue replies (at the cheaper in-handler issue cost — no user-to-library
/// transition). They must **not** block.
pub struct HandlerCtx<'a> {
    pub(crate) engine: &'a Engine,
}

impl HandlerCtx<'_> {
    /// The local task id (where this handler runs).
    pub fn id(&self) -> NodeId {
        self.engine.id()
    }

    /// Number of tasks in the job.
    pub fn tasks(&self) -> usize {
        self.engine.tasks()
    }

    /// Current virtual time of this node.
    pub fn now(&self) -> spsim::VTime {
        self.engine.clock().now()
    }

    /// The simulated machine's cost model.
    pub fn machine(&self) -> &spsim::MachineConfig {
        self.engine.config()
    }

    /// Charge extra CPU cost for work the handler models (e.g. GA's
    /// per-element accumulate arithmetic).
    pub fn charge(&self, cost: spsim::VDur) {
        self.engine.clock().advance(cost);
    }

    /// Allocate local memory.
    pub fn alloc(&self, len: usize) -> Addr {
        self.engine.alloc(len)
    }

    /// Read local memory.
    pub fn mem_read(&self, addr: Addr, len: usize) -> Vec<u8> {
        self.engine.mem_read(addr, len)
    }

    /// Write local memory.
    pub fn mem_write(&self, addr: Addr, data: &[u8]) {
        self.engine.mem_write(addr, data)
    }

    /// Read f64 values from local memory.
    pub fn mem_read_f64s(&self, addr: Addr, n: usize) -> Vec<f64> {
        self.engine.with_space(|s| s.read_f64s(addr, n))
    }

    /// Write f64 values to local memory.
    pub fn mem_write_f64s(&self, addr: Addr, vals: &[f64]) {
        self.engine.with_space_mut(|s| s.write_f64s(addr, vals))
    }

    /// Atomically update local memory under the arena lock (e.g. a GA
    /// accumulate: read, combine, write as one critical section).
    pub fn mem_update(&self, f: impl FnOnce(&mut crate::addr::AddressSpace)) {
        self.engine.with_space_mut(f)
    }

    /// Issue a put *from inside the handler* (reply path): same semantics
    /// as `LapiContext::put` but charged at the in-handler issue cost.
    #[allow(clippy::too_many_arguments)]
    pub fn reply_put(
        &self,
        target: NodeId,
        tgt_addr: Addr,
        data: &[u8],
        tgt_cntr: Option<crate::counter::RemoteCounter>,
        org_cntr: Option<&crate::counter::Counter>,
        cmpl_cntr: Option<&crate::counter::Counter>,
    ) -> crate::LapiResult {
        self.engine.issue_put(
            self.engine.config().lapi_handler_issue,
            target,
            tgt_addr,
            data,
            tgt_cntr,
            org_cntr,
            cmpl_cntr,
        )
    }

    /// Issue an active message from inside the handler (reply path).
    #[allow(clippy::too_many_arguments)]
    pub fn reply_am(
        &self,
        target: NodeId,
        handler: u32,
        uhdr: &[u8],
        udata: &[u8],
        tgt_cntr: Option<crate::counter::RemoteCounter>,
        org_cntr: Option<&crate::counter::Counter>,
        cmpl_cntr: Option<&crate::counter::Counter>,
    ) -> crate::LapiResult {
        self.engine.issue_am(
            self.engine.config().lapi_handler_issue,
            target,
            handler,
            uhdr,
            udata,
            tgt_cntr,
            org_cntr,
            cmpl_cntr,
        )
    }

    /// Increment a *local* counter as a user-visible event at the current
    /// virtual time (handlers signaling the application).
    pub fn signal(&self, counter: &crate::counter::Counter) {
        counter.incr_at(self.engine.clock().now());
    }
}
