//! LAPI wire formats.
//!
//! Every LAPI packet carries a 48-byte protocol header on the wire (the
//! paper's explanation for LAPI's lower peak bandwidth versus MPI's 16-byte
//! headers: the origin must ship all target-side parameters with the data).
//! Here the header fields are the enum payloads below; the 48-byte tax is
//! charged via `MachineConfig::lapi_header_bytes` when sizing packets.

use std::fmt;
use std::ops::{Deref, Range};
use std::sync::Arc;

use crate::addr::Addr;
use crate::counter::CounterId;

/// An immutable, cheaply cloneable byte buffer: a shared allocation plus a
/// window into it.
///
/// Packet bodies cross the simulated switch by value, and the adapter
/// clones them again on fabric duplicates and go-back-N retransmissions.
/// With `Vec<u8>` payloads each of those clones is a fresh allocation and
/// a memcpy of up to a packet's payload; with `Bytes` a message's payload
/// is allocated once at issue time and every fragment, duplicate, and
/// retransmission is a reference-counted window (`Arc` bump) into it.
#[derive(Clone)]
pub struct Bytes {
    buf: Arc<[u8]>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer (no allocation is shared ownership of a static).
    pub fn new() -> Self {
        Bytes {
            buf: Arc::from(&[][..]),
            off: 0,
            len: 0,
        }
    }

    /// A sub-window of this buffer sharing the same allocation.
    pub fn slice(&self, r: Range<usize>) -> Bytes {
        assert!(r.start <= r.end && r.end <= self.len, "slice out of range");
        Bytes {
            buf: Arc::clone(&self.buf),
            off: self.off + r.start,
            len: r.end - r.start,
        }
    }

    /// Window length in bytes.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.len
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf[self.off..self.off + self.len]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            buf: v.into(),
            off: 0,
            len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes {
            buf: Arc::from(s),
            off: 0,
            len: s.len(),
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({}B)", self.len)
    }
}

/// One run of a noncontiguous transfer (the §6 "non-contiguous interface
/// to LAPI_Put and LAPI_Get" extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoVec {
    /// Start address (in the target's space for putv/getv).
    pub addr: Addr,
    /// Run length in bytes.
    pub len: usize,
}

impl IoVec {
    /// Total bytes across a vector list.
    pub fn total(vecs: &[IoVec]) -> usize {
        vecs.iter().map(|v| v.len).sum()
    }

    /// Bytes each descriptor occupies in a packet header.
    pub const DESC_BYTES: usize = 12;
}

/// A message id, unique per origin node (the pair `(src, MsgId)` is
/// globally unique and keys reassembly at the target).
pub type MsgId = u64;

/// The four atomic read-modify-write operations of `LAPI_Rmw`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmwOp {
    /// Unconditionally store `in_val`, return the previous value.
    Swap,
    /// If the cell equals `cmp_val`, store `in_val`; always return previous.
    CompareAndSwap,
    /// Add `in_val`, return the previous value.
    FetchAndAdd,
    /// Bitwise-or `in_val`, return the previous value.
    FetchAndOr,
}

impl RmwOp {
    /// Apply the operation to `prev`, producing the new cell value.
    pub fn apply(self, prev: u64, in_val: u64, cmp_val: u64) -> u64 {
        match self {
            RmwOp::Swap => in_val,
            RmwOp::CompareAndSwap => {
                if prev == cmp_val {
                    in_val
                } else {
                    prev
                }
            }
            RmwOp::FetchAndAdd => prev.wrapping_add(in_val),
            RmwOp::FetchAndOr => prev | in_val,
        }
    }
}

/// Where a data packet's payload lands and what its completion signals.
#[derive(Debug, Clone)]
pub enum DataKind {
    /// A `LAPI_Put` fragment: deposit at `tgt_addr + offset` in the
    /// target's space.
    Put {
        /// Base target address of the whole message.
        tgt_addr: Addr,
        /// Target counter to bump when the full message has landed.
        tgt_cntr: Option<CounterId>,
        /// Origin counter to bump (via a `Done` ack) after landing.
        cmpl_cntr: Option<CounterId>,
    },
    /// The data flowing back for a `LAPI_Get`: deposit at `org_addr +
    /// offset` in the *origin's* space (the packet's destination).
    GetReply {
        /// Base origin address of the whole message.
        org_addr: Addr,
        /// Origin counter to bump when the full reply has landed.
        org_cntr: Option<CounterId>,
    },
    /// A fragment of `LAPI_Amsend` user data: the landing buffer is chosen
    /// by the header handler, found via reassembly state.
    AmData,
    /// A fragment of a `LAPI_Putv` stream: scattered across the vector
    /// table carried by the message's `PutVHeader`.
    VecData,
}

/// Body of one LAPI packet on the simulated switch.
#[derive(Debug, Clone)]
pub enum LapiBody {
    /// A payload-bearing fragment (put data, get-reply data, AM data).
    Data {
        /// Message this fragment belongs to.
        msg_id: MsgId,
        /// Byte offset of this fragment within the message.
        offset: usize,
        /// Total message length (every fragment repeats it; packets can
        /// arrive in any order so each must be self-describing).
        total_len: usize,
        /// Fragment payload.
        data: Bytes,
        /// Deposit/completion routing.
        kind: DataKind,
    },
    /// First packet of a `LAPI_Amsend`: carries the user header and as much
    /// user data as fits after it.
    AmHeader {
        /// Message id (shared with its `Data`/`AmData` fragments).
        msg_id: MsgId,
        /// Registered header-handler to invoke at the target.
        handler: u32,
        /// The user header (≤ `MAX_UHDR_SZ`).
        uhdr: Vec<u8>,
        /// Total user-data length of the message.
        total_len: usize,
        /// Data carried in this first packet, if any.
        chunk: Bytes,
        /// Target counter to bump at completion.
        tgt_cntr: Option<CounterId>,
        /// Origin counter to bump (via `Done`) after the completion handler
        /// has finished.
        cmpl_cntr: Option<CounterId>,
    },
    /// A `LAPI_Get` request: ships target-side parameters to the target,
    /// which replies with `GetReply` fragments.
    GetReq {
        /// Message id for the reply data stream.
        msg_id: MsgId,
        /// Where to read at the target.
        tgt_addr: Addr,
        /// How many bytes.
        len: usize,
        /// Where the reply lands at the origin.
        org_addr: Addr,
        /// Origin counter bumped when the reply has fully landed.
        org_cntr: Option<CounterId>,
        /// Target counter bumped when the data has been copied out.
        tgt_cntr: Option<CounterId>,
    },
    /// A `LAPI_Rmw` request on the u64 cell at `tgt_addr`.
    RmwReq {
        /// Ticket correlating the reply to the origin's waiting slot.
        ticket: u64,
        /// Operation.
        op: RmwOp,
        /// The cell.
        tgt_addr: Addr,
        /// Operand.
        in_val: u64,
        /// Comparand (CompareAndSwap only).
        cmp_val: u64,
    },
    /// Reply to an `RmwReq` with the previous cell value.
    RmwReply {
        /// Ticket of the originating request.
        ticket: u64,
        /// Previous value of the cell.
        prev: u64,
    },
    /// First packet of a `LAPI_Putv` (§6 extension): ships the target
    /// vector table plus as much data as fits; remaining fragments follow
    /// as `Data`/`VecData`.
    PutVHeader {
        /// Message id (shared with `VecData` fragments).
        msg_id: MsgId,
        /// Target vector table (scatter destinations, in stream order).
        vecs: Vec<IoVec>,
        /// Total stream length (= sum of vector lengths).
        total_len: usize,
        /// Data carried in this first packet.
        chunk: Bytes,
        /// Target counter bumped at completion.
        tgt_cntr: Option<CounterId>,
        /// Origin counter bumped (via `Done`) after landing.
        cmpl_cntr: Option<CounterId>,
    },
    /// A `LAPI_Getv` request: gather the target vectors and reply into the
    /// contiguous origin buffer (reuses `GetReply` fragments).
    GetVReq {
        /// Message id for the reply stream.
        msg_id: MsgId,
        /// Target vector table (gather sources, in stream order).
        vecs: Vec<IoVec>,
        /// Where the gathered stream lands at the origin.
        org_addr: Addr,
        /// Origin counter bumped when the reply has fully landed.
        org_cntr: Option<CounterId>,
        /// Target counter bumped when the data has been copied out.
        tgt_cntr: Option<CounterId>,
    },
    /// Message-completion acknowledgement flowing back to the origin.
    Done {
        /// Decrement the origin's outstanding-operation count for the
        /// sending node (fence accounting / data-has-landed).
        fence_decr: bool,
        /// Origin counter to bump (`cmpl_cntr` semantics: at put this means
        /// data landed; at amsend it additionally means the completion
        /// handler finished).
        cmpl_cntr: Option<CounterId>,
    },
}

impl LapiBody {
    /// Payload bytes this packet carries (for wire sizing).
    pub fn payload_len(&self) -> usize {
        match self {
            LapiBody::Data { data, .. } => data.len(),
            LapiBody::AmHeader { uhdr, chunk, .. } => uhdr.len() + chunk.len(),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmw_swap() {
        assert_eq!(RmwOp::Swap.apply(5, 9, 0), 9);
    }

    #[test]
    fn rmw_cas_matches() {
        assert_eq!(RmwOp::CompareAndSwap.apply(5, 9, 5), 9);
        assert_eq!(RmwOp::CompareAndSwap.apply(5, 9, 4), 5);
    }

    #[test]
    fn rmw_fetch_add_wraps() {
        assert_eq!(RmwOp::FetchAndAdd.apply(u64::MAX, 2, 0), 1);
        assert_eq!(RmwOp::FetchAndAdd.apply(10, 5, 0), 15);
    }

    #[test]
    fn rmw_fetch_or() {
        assert_eq!(RmwOp::FetchAndOr.apply(0b0101, 0b0011, 0), 0b0111);
    }

    #[test]
    fn bytes_slices_and_clones_share_one_allocation() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert!(Arc::ptr_eq(&b.buf, &s.buf), "slice must not copy");
        assert_eq!(&s[..], &[2, 3, 4]);
        let c = s.clone();
        assert!(Arc::ptr_eq(&s.buf, &c.buf), "clone must not copy");
        assert_eq!(s, c);
        assert_eq!(s.slice(1..2)[..], [3]);
    }

    #[test]
    #[should_panic(expected = "slice out of range")]
    fn bytes_slice_out_of_range_panics() {
        Bytes::from(vec![0u8; 4]).slice(2..6);
    }

    #[test]
    fn payload_lengths() {
        let d = LapiBody::Data {
            msg_id: 0,
            offset: 0,
            total_len: 4,
            data: vec![0; 4].into(),
            kind: DataKind::AmData,
        };
        assert_eq!(d.payload_len(), 4);
        let h = LapiBody::AmHeader {
            msg_id: 0,
            handler: 0,
            uhdr: vec![0; 10],
            total_len: 0,
            chunk: vec![0; 5].into(),
            tgt_cntr: None,
            cmpl_cntr: None,
        };
        assert_eq!(h.payload_len(), 15);
        let done = LapiBody::Done {
            fence_decr: true,
            cmpl_cntr: None,
        };
        assert_eq!(done.payload_len(), 0);
    }
}
