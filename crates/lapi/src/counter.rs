//! LAPI completion counters.
//!
//! Counters are the paper's completion-signaling mechanism (§2.3): the user
//! associates a counter with events of one or many operations, then either
//! polls it (`LAPI_Getcntr`) or blocks (`LAPI_Waitcntr`, which atomically
//! decrements by the awaited amount on return). One counter may aggregate
//! many messages — GA's generalized counters rely on that.
//!
//! Each increment carries the *virtual time* of the event it signals; a
//! successful wait merges the latest consumed event time into the waiter's
//! clock, so e.g. waiting on an `org_cntr` advances the origin's clock to
//! the instant its buffer actually became reusable.
//!
//! A counter is an opaque shareable object; its [`CounterId`] names it in
//! message headers so a *remote* origin can designate it as the `tgt_cntr`
//! of a put/get/amsend (after learning the id via `LAPI_Address_init`-style
//! exchange).

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use spsim::SimCondvar;
use spsim::{VClock, VTime};

/// Index of a counter within its owning node's counter table.
pub type CounterId = u32;

/// A remote node's counter, as named in operation parameters.
///
/// Obtained by exchanging [`Counter::id`] values between nodes (typically
/// with `LapiContext::exchange`); only meaningful at the node that created
/// the underlying counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RemoteCounter(pub CounterId);

#[derive(Debug)]
struct State {
    value: i64,
    last_event: VTime,
}

#[derive(Debug)]
struct Inner {
    state: Mutex<State>,
    cond: SimCondvar,
}

/// An opaque LAPI counter.
#[derive(Clone, Debug)]
pub struct Counter {
    id: CounterId,
    inner: Arc<Inner>,
}

impl Counter {
    pub(crate) fn new(id: CounterId) -> Self {
        Counter {
            id,
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    value: 0,
                    last_event: VTime::ZERO,
                }),
                cond: SimCondvar::new(),
            }),
        }
    }

    /// This counter's id, for exchanging with remote origins.
    pub fn id(&self) -> CounterId {
        self.id
    }

    /// As a [`RemoteCounter`] parameter (for symmetric SPMD code where the
    /// same allocation order yields the same ids on every node).
    pub fn as_remote(&self) -> RemoteCounter {
        RemoteCounter(self.id)
    }

    /// `LAPI_Setcntr`: overwrite the value (event history is kept).
    pub fn set(&self, val: i64) {
        self.inner.state.lock().value = val;
        self.inner.cond.notify_all();
    }

    /// `LAPI_Getcntr` (non-blocking read).
    pub fn get(&self) -> i64 {
        self.inner.state.lock().value
    }

    /// Virtual time of the latest event signaled on this counter.
    pub fn last_event(&self) -> VTime {
        self.inner.state.lock().last_event
    }

    /// Increment, recording that the signaled event happened at `t`.
    pub(crate) fn incr_at(&self, t: VTime) {
        let mut st = self.inner.state.lock();
        st.value += 1;
        st.last_event = st.last_event.max(t);
        drop(st);
        self.inner.cond.notify_all();
    }

    /// Try to consume `val` without blocking: if the counter has reached
    /// `val`, decrement by `val`, merge the latest event time into `clock`,
    /// and return true.
    pub fn try_consume(&self, clock: &VClock, val: i64) -> bool {
        let mut st = self.inner.state.lock();
        if st.value >= val {
            // Harness mutant (disarmed in production): skip the decrement,
            // leaving stale credit for the conformance oracle to catch.
            if !spsim::mutation::armed(spsim::Mutant::SkipCounterDecrement) {
                st.value -= val;
            }
            let t = st.last_event;
            drop(st);
            clock.merge(t);
            true
        } else {
            false
        }
    }

    /// `LAPI_Waitcntr`: block until the counter reaches `val`, then
    /// decrement it by `val` and merge the latest event time into `clock`.
    ///
    /// The caller's virtual clock is *not* advanced while blocked. `escape`
    /// bounds real blocking time — hitting it panics, flagging a simulated
    /// deadlock (e.g. polling-mode LAPI with nobody polling).
    pub(crate) fn wait_consume(&self, clock: &VClock, val: i64, escape: Duration) {
        let mut st = self.inner.state.lock();
        while st.value < val {
            if self.inner.cond.wait_for(&mut st, escape).timed_out() {
                panic!(
                    "LAPI_Waitcntr: counter {} stuck at {} (< {val}) for {escape:?} \
                     of real time — simulated deadlock\n\
                     [waiter-clock={}ns]\n{}",
                    self.id,
                    st.value,
                    clock.now().as_ns(),
                    spsim::trace::tail_report(spsim::trace::REPORT_TAIL)
                );
            }
        }
        // Harness mutant (disarmed in production): see `try_consume`.
        if !spsim::mutation::armed(spsim::Mutant::SkipCounterDecrement) {
            st.value -= val;
        }
        let t = st.last_event;
        drop(st);
        clock.merge(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn set_get_roundtrip() {
        let c = Counter::new(3);
        assert_eq!(c.id(), 3);
        assert_eq!(c.get(), 0);
        c.set(7);
        assert_eq!(c.get(), 7);
    }

    #[test]
    fn incr_accumulates_and_try_consume() {
        let c = Counter::new(0);
        let clock = VClock::new();
        c.incr_at(VTime::from_us(5));
        c.incr_at(VTime::from_us(9));
        assert!(!c.try_consume(&clock, 3));
        assert_eq!(clock.now(), VTime::ZERO, "failed consume must not merge");
        assert!(c.try_consume(&clock, 2));
        assert_eq!(c.get(), 0);
        assert_eq!(clock.now(), VTime::from_us(9));
    }

    #[test]
    fn waitcntr_decrements_and_merges_event_time() {
        let c = Counter::new(0);
        let c2 = c.clone();
        let clock = VClock::new();
        let h = thread::spawn(move || {
            for i in 1..=5u64 {
                c2.incr_at(VTime::from_us(10 * i));
            }
        });
        c.wait_consume(&clock, 3, Duration::from_secs(5));
        h.join().unwrap();
        assert_eq!(c.get(), 2);
        assert!(clock.now() >= VTime::from_us(30));
    }

    #[test]
    fn wait_wakes_on_set() {
        let c = Counter::new(0);
        let c2 = c.clone();
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            c2.set(10);
        });
        c.wait_consume(&VClock::new(), 10, Duration::from_secs(5));
        h.join().unwrap();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn event_time_is_max_not_last() {
        let c = Counter::new(0);
        c.incr_at(VTime::from_us(100));
        c.incr_at(VTime::from_us(40)); // out-of-order completion
        assert_eq!(c.last_event(), VTime::from_us(100));
    }

    #[test]
    #[should_panic(expected = "simulated deadlock")]
    fn wait_escape_panics() {
        let c = Counter::new(9);
        c.wait_consume(&VClock::new(), 1, Duration::from_millis(30));
    }

    #[test]
    fn clones_share_state() {
        let c = Counter::new(1);
        let d = c.clone();
        d.incr_at(VTime::ZERO);
        assert_eq!(c.get(), 1);
        assert_eq!(c.as_remote(), RemoteCounter(1));
    }
}
