//! Per-context LAPI statistics.

use spsim::StatCounter;

/// Counters of protocol activity, exposed for tests and the bench harness.
#[derive(Clone, Debug, Default)]
pub struct LapiStats {
    /// `LAPI_Put` calls issued.
    pub puts: StatCounter,
    /// `LAPI_Get` calls issued.
    pub gets: StatCounter,
    /// `LAPI_Amsend` calls issued.
    pub amsends: StatCounter,
    /// `LAPI_Rmw` calls issued.
    pub rmws: StatCounter,
    /// Data/AM packets processed by the dispatcher.
    pub packets_dispatched: StatCounter,
    /// Hardware interrupts taken to kick the dispatcher (interrupt mode).
    pub interrupts: StatCounter,
    /// Header handlers executed.
    pub hdr_handlers: StatCounter,
    /// Completion handlers executed.
    pub cmpl_handlers: StatCounter,
    /// `Done` acknowledgements sent back to origins.
    pub done_sent: StatCounter,
    /// Data packets that arrived before their AM header (out-of-order
    /// arrivals that had to be stashed).
    pub early_am_data: StatCounter,
    /// Operations abandoned because the adapter's reliability protocol gave
    /// up on a flow (`LapiError::DeliveryTimeout`), whether surfaced through
    /// the issuing call or routed to the registered `err_hndlr`.
    pub delivery_timeouts: StatCounter,
    /// Peers declared dead by this node (each fires the `err_hndlr` exactly
    /// once with an aggregated diagnostic).
    pub peer_deaths: StatCounter,
    /// Outstanding operations unwound by peer-death propagation: pending
    /// completion counters credited plus rmw tickets poisoned.
    pub ops_cancelled: StatCounter,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero_and_shared() {
        let s = LapiStats::default();
        assert_eq!(s.puts.get(), 0);
        let t = s.clone();
        t.puts.incr();
        assert_eq!(s.puts.get(), 1);
    }
}
