//! Simulated per-node address spaces.
//!
//! On the real SP, LAPI operations name raw virtual addresses in the target
//! process. Our nodes are threads of one host process, so raw pointers would
//! neither be safe nor faithful (every thread could touch every "remote"
//! address directly). Instead each node owns an [`AddressSpace`] — a flat,
//! growable byte arena — and remote memory is named by [`Addr`] offsets into
//! the *target's* arena. Exactly like real addresses, an `Addr` is only
//! meaningful on the node it was allocated on, and programs exchange them
//! with `LAPI_Address_init` before use.

use std::fmt;

/// An address within some node's [`AddressSpace`].
///
/// Plain data: addresses travel inside message headers, exactly like the
/// 64-bit virtual addresses in real LAPI packets.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// Address `off` bytes past `self`.
    #[inline]
    pub fn offset(self, off: usize) -> Addr {
        Addr(self.0 + off as u64)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

/// A node's memory: a flat byte arena with a bump allocator.
///
/// All bounds violations panic — they correspond to wild stores through a
/// bad address in the real system, which is a program bug, not a
/// recoverable condition.
#[derive(Debug, Default)]
pub struct AddressSpace {
    mem: Vec<u8>,
    brk: usize,
}

impl AddressSpace {
    /// An empty address space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate `len` bytes, 8-byte aligned, zero-initialized.
    pub fn alloc(&mut self, len: usize) -> Addr {
        let start = (self.brk + 7) & !7;
        let end = start + len;
        if end > self.mem.len() {
            self.mem.resize(end.max(self.mem.len() * 2).max(4096), 0);
        }
        self.brk = end;
        Addr(start as u64)
    }

    /// Bytes currently allocated.
    pub fn allocated(&self) -> usize {
        self.brk
    }

    fn range(&self, addr: Addr, len: usize) -> std::ops::Range<usize> {
        let start = addr.0 as usize;
        let end = start
            .checked_add(len)
            .unwrap_or_else(|| panic!("address overflow at {addr:?}+{len}"));
        assert!(
            end <= self.brk,
            "out-of-bounds access: {addr:?}+{len} exceeds allocated {} bytes",
            self.brk
        );
        start..end
    }

    /// Read `len` bytes starting at `addr`.
    pub fn read(&self, addr: Addr, len: usize) -> &[u8] {
        &self.mem[self.range(addr, len)]
    }

    /// Copy bytes into `out` starting from `addr`.
    pub fn read_into(&self, addr: Addr, out: &mut [u8]) {
        out.copy_from_slice(self.read(addr, out.len()));
    }

    /// Write `data` starting at `addr`.
    pub fn write(&mut self, addr: Addr, data: &[u8]) {
        let r = self.range(addr, data.len());
        self.mem[r].copy_from_slice(data);
    }

    /// Read one little-endian u64 cell.
    pub fn read_u64(&self, addr: Addr) -> u64 {
        let mut b = [0u8; 8];
        self.read_into(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Write one little-endian u64 cell.
    pub fn write_u64(&mut self, addr: Addr, v: u64) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Read `n` f64 values starting at `addr`.
    pub fn read_f64s(&self, addr: Addr, n: usize) -> Vec<f64> {
        self.read(addr, n * 8)
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect()
    }

    /// Write f64 values starting at `addr`.
    pub fn write_f64s(&mut self, addr: Addr, vals: &[f64]) {
        let mut bytes = Vec::with_capacity(vals.len() * 8);
        for v in vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.write(addr, &bytes);
    }

    /// Apply a read-modify-write on the u64 cell at `addr`, returning the
    /// previous value. Callers must hold the arena lock for atomicity (the
    /// engine does).
    pub fn rmw_u64(&mut self, addr: Addr, f: impl FnOnce(u64) -> u64) -> u64 {
        let prev = self.read_u64(addr);
        self.write_u64(addr, f(prev));
        prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_zeroed() {
        let mut a = AddressSpace::new();
        let p = a.alloc(3);
        let q = a.alloc(8);
        assert_eq!(p.0 % 8, 0);
        assert_eq!(q.0 % 8, 0);
        assert!(q.0 >= p.0 + 3);
        assert_eq!(a.read(q, 8), &[0u8; 8]);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut a = AddressSpace::new();
        let p = a.alloc(16);
        a.write(p, b"hello world!!!!!");
        assert_eq!(a.read(p, 5), b"hello");
        assert_eq!(a.read(p.offset(6), 5), b"world");
    }

    #[test]
    fn u64_cells() {
        let mut a = AddressSpace::new();
        let p = a.alloc(8);
        a.write_u64(p, 0xdead_beef);
        assert_eq!(a.read_u64(p), 0xdead_beef);
        let prev = a.rmw_u64(p, |v| v + 1);
        assert_eq!(prev, 0xdead_beef);
        assert_eq!(a.read_u64(p), 0xdead_bef0);
    }

    #[test]
    fn f64_roundtrip() {
        let mut a = AddressSpace::new();
        let p = a.alloc(4 * 8);
        a.write_f64s(p, &[1.5, -2.5, 3.25, 0.0]);
        assert_eq!(a.read_f64s(p, 4), vec![1.5, -2.5, 3.25, 0.0]);
        assert_eq!(a.read_f64s(p.offset(8), 2), vec![-2.5, 3.25]);
    }

    #[test]
    #[should_panic(expected = "out-of-bounds")]
    fn oob_read_panics() {
        let mut a = AddressSpace::new();
        let p = a.alloc(8);
        let _ = a.read(p, 9);
    }

    #[test]
    #[should_panic(expected = "out-of-bounds")]
    fn unallocated_access_panics() {
        let a = AddressSpace::new();
        let _ = a.read(Addr(0), 1);
    }

    #[test]
    fn grows_on_demand() {
        let mut a = AddressSpace::new();
        let p = a.alloc(10_000);
        let q = a.alloc(100_000);
        a.write(p, &vec![7u8; 10_000]);
        a.write(q, &vec![9u8; 100_000]);
        assert_eq!(a.read(q, 3), &[9, 9, 9]);
        assert!(a.allocated() >= 110_000);
    }
}
