//! The LAPI engine: issue paths, the dispatcher, reassembly, completion.
//!
//! One [`Engine`] exists per node. It is shared by
//!
//! * the **application thread** (issuing operations; in polling mode also
//!   driving the dispatcher logic from inside wait calls),
//! * the **dispatcher thread** (interrupt mode: woken by arriving packets,
//!   charging the interrupt cost, then processing the backlog — the paper's
//!   observation that a packet received while a previous one is still being
//!   processed avoids its interrupt falls out of the drain loop), and
//! * the **completion-handler thread** (running user completion handlers
//!   concurrently with the dispatcher, as §2.1 specifies).
//!
//! All of them charge their CPU costs to the *same* node clock, modelling
//! the single P2SC processor each paper node had.

// BTreeMap, not HashMap: handler tables, reassembly state and rmw slots are
// iterated by diagnostics and live on trace-sensitive paths (lint rule L2).
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use spsim::SimCondvar;
use spsim::{trace, MachineConfig, NodeId, OrDiag, Stamped, TimedQueue, VClock, VTime};
use spswitch::{Adapter, DeliveryTimeout, SendReceipt, WirePacket};

use crate::addr::{Addr, AddressSpace};
use crate::counter::{Counter, CounterId, RemoteCounter};
use crate::error::LapiError;
use crate::handlers::{AmInfo, CompletionFn, HandlerCtx, HeaderHandlerFn};
use crate::stats::LapiStats;
use crate::wire::{Bytes, DataKind, IoVec, LapiBody, MsgId, RmwOp};
use crate::LapiResult;

/// Progress mode (§2.1): the typical mode is interrupt; polling avoids the
/// interrupt cost but requires the target to make LAPI calls for progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Arriving packets interrupt the node; the dispatcher runs unbidden.
    Interrupt,
    /// Progress happens only inside LAPI calls.
    Polling,
}

/// How long a polling wait spins on real time before re-checking (bounds
/// latency of cross-thread wakeups; no effect on virtual time).
const POLL_TICK: Duration = Duration::from_millis(2);

/// How often the parked dispatcher re-checks the mode/termination flags.
const DISPATCH_TICK: Duration = Duration::from_millis(10);

/// User error handler registered at init (the `err_hndlr` argument of the
/// real `LAPI_Init`): invoked for asynchronous communication failures that
/// have no user call to return through (e.g. a dispatcher-side reply hitting
/// a dead link).
pub type ErrHandler = Arc<dyn Fn(&LapiError) + Send + Sync>;

/// Reassembly state of one in-flight inbound message.
enum Reasm {
    /// Put / get-reply fragments (landing addresses ride in each packet).
    Data { received: usize },
    /// Active message whose header has run: we know the buffer.
    Am {
        buffer: Option<Addr>,
        received: usize,
        completion: Option<CompletionFn>,
        tgt_cntr: Option<CounterId>,
        cmpl_cntr: Option<CounterId>,
    },
    /// A putv stream whose vector table has arrived: fragments scatter
    /// through the table.
    VecPut {
        vecs: Vec<IoVec>,
        received: usize,
        tgt_cntr: Option<CounterId>,
        cmpl_cntr: Option<CounterId>,
    },
    /// Active-message or putv data that arrived before its header packet
    /// (out-of-order routes): stash until the header shows up.
    AmEarly { stash: Vec<(usize, Bytes)> },
}

/// Work handed to the completion-handler thread.
struct CmplWork {
    f: Option<CompletionFn>,
    src: NodeId,
    tgt_cntr: Option<CounterId>,
    cmpl_cntr: Option<CounterId>,
}

/// One-shot slot for an rmw reply. Filled with `Ok(prev)` by the reply
/// packet, or poisoned with a structured error when the target is declared
/// dead before the reply arrives (peer-death propagation).
pub(crate) struct RmwSlot {
    st: Mutex<Option<LapiResult<u64>>>,
    cv: SimCondvar,
}

/// Handle to a pending `LAPI_Rmw`: resolves to the previous cell value.
pub struct RmwFuture {
    engine: Arc<Engine>,
    slot: Arc<RmwSlot>,
}

impl RmwFuture {
    /// Block until the reply arrives or the target is declared dead
    /// (driving progress in polling mode). `Ok` carries the previous value
    /// of the target cell; `Err` is the peer-death cancellation.
    pub fn wait_result(&self) -> LapiResult<u64> {
        let engine = &self.engine;
        match engine.mode() {
            Mode::Interrupt => {
                let mut st = self.slot.st.lock();
                let deadline = Instant::now() + engine.escape;
                // liveness: the slot is filled by the dispatcher thread on
                // RmwReply arrival, or poisoned (with cv notify) by
                // declare_peer_dead; wait_until escapes past the deadline.
                while st.is_none() {
                    if self.slot.cv.wait_until(&mut st, deadline).timed_out() {
                        panic!(
                            "{}",
                            engine.deadlock_report(
                                "LAPI_Rmw reply never arrived — simulated deadlock"
                            )
                        );
                    }
                }
                st.clone().or_diag("rmw slot filled but empty after wakeup")
            }
            Mode::Polling => {
                let deadline = Instant::now() + engine.escape;
                // liveness: poll_step drives the dispatcher that fills the
                // slot (or the peer dies and the slot is poisoned); it
                // panics with a diagnostic past the real-time deadline.
                loop {
                    if let Some(r) = self.slot.st.lock().clone() {
                        return r;
                    }
                    engine.poll_step(deadline);
                }
            }
        }
    }

    /// Block until the reply arrives, panicking (with the structured
    /// diagnostic) if the operation was cancelled by peer death. Callers
    /// that can surface errors use [`RmwFuture::wait_result`].
    pub fn wait(&self) -> u64 {
        self.wait_result()
            .unwrap_or_else(|e| spsim::sim_panic!("LAPI_Rmw cancelled: {e}"))
    }

    /// Non-blocking check; panics if the operation was cancelled by peer
    /// death (see [`RmwFuture::try_result`]).
    pub fn try_get(&self) -> Option<u64> {
        self.try_result()
            .map(|r| r.unwrap_or_else(|e| spsim::sim_panic!("LAPI_Rmw cancelled: {e}")))
    }

    /// Non-blocking check preserving the cancellation error.
    pub fn try_result(&self) -> Option<LapiResult<u64>> {
        self.slot.st.lock().clone()
    }
}

/// Per-node LAPI machinery (see module docs).
pub struct Engine {
    adapter: Adapter<LapiBody>,
    space: Mutex<AddressSpace>,
    counters: Mutex<Vec<Counter>>,
    handlers: RwLock<BTreeMap<u32, HeaderHandlerFn>>,
    reasm: Mutex<BTreeMap<(NodeId, MsgId), Reasm>>,
    outstanding: Mutex<Vec<i64>>,
    outstanding_cv: SimCondvar,
    /// Pending rmw tickets with the target each awaits a reply from, so
    /// peer-death propagation can poison exactly the tickets it strands.
    rmw_slots: Mutex<BTreeMap<u64, (NodeId, Arc<RmwSlot>)>>,
    /// Per-peer death latch: flipped exactly once per peer by
    /// [`Engine::declare_peer_dead`], which is the only path allowed to
    /// fire the `err_hndlr` for a communication failure.
    dead_peers: Mutex<Vec<bool>>,
    /// Per-target list of *local* counter ids that a future inbound packet
    /// from that target would bump (put/am/putv `cmpl_cntr` via `Done`,
    /// get/getv `org_cntr` via the data reply). Credited en masse when the
    /// peer is declared dead so `Waitcntr` sleepers wake instead of
    /// deadlocking; the arrival paths gate their bump on un-noting so a
    /// stale packet cannot double-credit.
    pending_cmpl: Mutex<Vec<Vec<CounterId>>>,
    next_msg: AtomicU64,
    next_ticket: AtomicU64,
    mode: Mutex<Mode>,
    mode_cv: SimCondvar,
    cmpl_q: TimedQueue<CmplWork>,
    pub(crate) stats: LapiStats,
    pub(crate) escape: Duration,
    terminated: AtomicBool,
    /// Crash-stop latch (fault injection): unlike plain termination, a
    /// crashed node's service loops stop *without* draining their
    /// backlogs — a crashed adapter delivers nothing — and teardown writes
    /// the stranded packets off instead.
    crashed: AtomicBool,
    err_hndlr: RwLock<Option<ErrHandler>>,
}

impl Engine {
    pub(crate) fn new(adapter: Adapter<LapiBody>, mode: Mode, escape: Duration) -> Arc<Self> {
        let n = adapter.nodes();
        Arc::new(Engine {
            adapter,
            space: Mutex::new(AddressSpace::new()),
            counters: Mutex::new(Vec::new()),
            handlers: RwLock::new(BTreeMap::new()),
            reasm: Mutex::new(BTreeMap::new()),
            outstanding: Mutex::new(vec![0; n]),
            outstanding_cv: SimCondvar::new(),
            rmw_slots: Mutex::new(BTreeMap::new()),
            dead_peers: Mutex::new(vec![false; n]),
            pending_cmpl: Mutex::new(vec![Vec::new(); n]),
            next_msg: AtomicU64::new(1),
            next_ticket: AtomicU64::new(1),
            mode: Mutex::new(mode),
            mode_cv: SimCondvar::new(),
            cmpl_q: TimedQueue::with_escape(escape),
            stats: LapiStats::default(),
            escape,
            terminated: AtomicBool::new(false),
            crashed: AtomicBool::new(false),
            err_hndlr: RwLock::new(None),
        })
    }

    // ------------------------------------------------------------- basics

    pub(crate) fn id(&self) -> NodeId {
        self.adapter.id()
    }

    pub(crate) fn tasks(&self) -> usize {
        self.adapter.nodes()
    }

    pub(crate) fn clock(&self) -> &VClock {
        self.adapter.clock()
    }

    pub(crate) fn config(&self) -> &MachineConfig {
        self.adapter.config()
    }

    pub(crate) fn adapter(&self) -> &Adapter<LapiBody> {
        &self.adapter
    }

    pub(crate) fn is_terminated(&self) -> bool {
        // ordering: Acquire pairs with the Release store in `terminate` so
        // observers of the flag also see the closed queues.
        self.terminated.load(Ordering::Acquire)
    }

    pub(crate) fn is_crashed(&self) -> bool {
        // ordering: Acquire pairs with the Release store in `crash`.
        self.crashed.load(Ordering::Acquire)
    }

    /// Latch the crash-stop flag; the caller follows with [`Self::terminate`]
    /// so the service loops observe both and stop without draining.
    pub(crate) fn crash(&self) {
        // ordering: Release — the loops' Acquire load of the flag must see
        // every write that happened before the crash was declared.
        self.crashed.store(true, Ordering::Release);
    }

    pub(crate) fn check_live(&self) -> LapiResult {
        if self.is_terminated() {
            Err(LapiError::Terminated)
        } else {
            Ok(())
        }
    }

    pub(crate) fn check_target(&self, target: NodeId) -> LapiResult {
        if target >= self.tasks() {
            Err(LapiError::BadTarget {
                target,
                ntasks: self.tasks(),
            })
        } else {
            Ok(())
        }
    }

    pub(crate) fn mode(&self) -> Mode {
        *self.mode.lock()
    }

    /// Emit a trace event on this node's timeline at the current virtual
    /// time. One relaxed atomic load when tracing is disabled.
    #[inline]
    fn tr(&self, kind: trace::EventKind, detail: &'static str, msg_id: u64, bytes: usize) {
        trace::emit(self.id(), self.clock().now(), kind, detail, msg_id, bytes);
    }

    /// Diagnostic snapshot used when a wait hits its real-time escape hatch:
    /// engine state (mode, per-target outstanding ops, reassembly and queue
    /// depths) plus the tail of the merged event timeline when tracing is on.
    pub(crate) fn deadlock_report(&self, what: &str) -> String {
        let outstanding: Vec<i64> = self.outstanding.lock().clone();
        let reasm: Vec<(NodeId, MsgId)> = self.reasm.lock().keys().copied().collect();
        format!(
            "node {} ({:?} mode): {what}\n\
             outstanding ops per target: {outstanding:?}\n\
             incomplete reassemblies (src, msg): {reasm:?}\n\
             rx-queue depth: {} completion-queue depth: {} clock: {}ns\n{}{}",
            self.id(),
            self.mode(),
            self.adapter.rx().len(),
            self.cmpl_q.len(),
            self.clock().now().as_ns(),
            self.adapter.flows_report(),
            trace::tail_report(trace::REPORT_TAIL)
        )
    }

    pub(crate) fn set_mode(&self, mode: Mode) {
        *self.mode.lock() = mode;
        self.mode_cv.notify_all();
    }

    // ----------------------------------------------------- delivery errors

    /// Register the job's communication error handler (`LAPI_Init`'s
    /// `err_hndlr`). Replaces any previous handler.
    pub(crate) fn register_err_hndlr(&self, f: ErrHandler) {
        *self.err_hndlr.write() = Some(f);
    }

    /// Map an adapter-level delivery timeout to the program-visible error.
    fn delivery_error(&self, e: DeliveryTimeout) -> LapiError {
        self.stats.delivery_timeouts.incr();
        LapiError::DeliveryTimeout {
            target: e.dst,
            seq: e.seq,
            acked: e.cum_acked,
            retries: e.retries,
            fast_failed: e.fast_failed,
            detail: e.to_string(),
        }
    }

    /// The structured error returned for an operation refused because its
    /// target was previously declared dead (no wire activity involved).
    fn peer_dead_error(&self, target: NodeId) -> LapiError {
        LapiError::DeliveryTimeout {
            target,
            seq: 0,
            acked: 0,
            retries: 0,
            fast_failed: true,
            detail: format!(
                "node {}: operation against task {target} refused: peer previously \
                 declared dead",
                self.id()
            ),
        }
    }

    /// Has `target` been declared dead by this node?
    pub(crate) fn is_peer_dead(&self, target: NodeId) -> bool {
        self.dead_peers.lock()[target]
    }

    /// Tasks this node has declared dead, ascending.
    pub(crate) fn dead_peer_list(&self) -> Vec<NodeId> {
        self.dead_peers
            .lock()
            .iter()
            .enumerate()
            .filter_map(|(i, &d)| d.then_some(i))
            .collect()
    }

    /// Latch `target` as dead and unwind everything outstanding against it:
    ///
    /// * the adapter's [`spswitch::PeerHealth`] table is marked so later
    ///   sends fast-fail without wire activity;
    /// * fence accounting toward the peer is retired wholesale (fence and
    ///   gfence waiters wake; subsequent fences to the peer fail fast);
    /// * pending completion counters are credited so `Waitcntr` sleepers
    ///   wake instead of deadlocking;
    /// * rmw tickets awaiting a reply from the peer are poisoned with a
    ///   structured cancellation error.
    ///
    /// Returns `true` when this call performed the latch transition.
    /// Exactly one caller per peer ever sees `true`, and only that caller
    /// fires the registered `err_hndlr` — with one aggregated diagnostic,
    /// not one callback per killed flow.
    pub(crate) fn declare_peer_dead(&self, target: NodeId, cause: &LapiError) -> bool {
        {
            let mut dead = self.dead_peers.lock();
            if dead[target] {
                return false;
            }
            dead[target] = true;
        }
        self.stats.peer_deaths.incr();
        self.adapter.peer_health().mark_dead(target);
        let now = self.clock().now();
        trace::emit(
            self.id(),
            now,
            trace::EventKind::PeerDead,
            "peer",
            target as u64,
            0,
        );

        // Retire the fence accounting: ops to a dead peer will never
        // complete, so fence/gfence waiters must wake now.
        let retired = {
            let mut o = self.outstanding.lock();
            let r = o[target].max(0);
            o[target] = 0;
            r
        };
        self.outstanding_cv.notify_all();

        // Credit counters an inbound packet from the peer would have
        // bumped (Done cmpl_cntr, get-reply org_cntr).
        let credited: Vec<CounterId> = std::mem::take(&mut self.pending_cmpl.lock()[target]);
        for &id in &credited {
            trace::emit(
                self.id(),
                now,
                trace::EventKind::OpCancelled,
                "cntr",
                id as u64,
                0,
            );
            self.stats.ops_cancelled.incr();
            self.bump_counter(id, now);
        }

        // Poison rmw tickets stranded by the death.
        let stranded: Vec<(u64, Arc<RmwSlot>)> = {
            let mut slots = self.rmw_slots.lock();
            let tickets: Vec<u64> = slots
                .iter()
                .filter(|(_, (node, _))| *node == target)
                .map(|(t, _)| *t)
                .collect();
            tickets
                .into_iter()
                .map(|t| {
                    let (_, slot) = slots.remove(&t).or_diag("ticket listed but missing");
                    (t, slot)
                })
                .collect()
        };
        for (ticket, slot) in &stranded {
            trace::emit(
                self.id(),
                now,
                trace::EventKind::OpCancelled,
                "rmw",
                *ticket,
                0,
            );
            self.stats.ops_cancelled.incr();
            *slot.st.lock() = Some(Err(LapiError::DeliveryTimeout {
                target,
                seq: *ticket,
                acked: 0,
                retries: 0,
                fast_failed: true,
                detail: format!("rmw ticket {ticket} cancelled: peer {target} declared dead"),
            }));
            slot.cv.notify_all();
        }

        // One aggregated err_hndlr invocation for the whole peer death.
        let err = LapiError::DeliveryTimeout {
            target,
            seq: match cause {
                LapiError::DeliveryTimeout { seq, .. } => *seq,
                _ => 0,
            },
            acked: match cause {
                LapiError::DeliveryTimeout { acked, .. } => *acked,
                _ => 0,
            },
            retries: match cause {
                LapiError::DeliveryTimeout { retries, .. } => *retries,
                _ => 0,
            },
            fast_failed: false,
            detail: format!(
                "node {}: peer {target} declared dead — {retired} outstanding ops \
                 retired, {} pending completions credited, {} rmw tickets poisoned; \
                 cause: {cause}\n{}",
                self.id(),
                credited.len(),
                stranded.len(),
                self.adapter.flows_report(),
            ),
        };
        if let Some(h) = self.err_hndlr.read().clone() {
            h(&err);
        }
        true
    }

    /// Synchronous send on an issue path: a delivery timeout unwinds the
    /// outstanding-op tracking (the op will never complete) and surfaces as
    /// a `LapiError` through the user's call. `pending` is the completion
    /// note the caller registered for this op; it is retracted *before* the
    /// peer-death declaration credits the remaining notes, so the failing
    /// op's own counter never ticks (the caller gets the error directly).
    fn wire_send(
        &self,
        target: NodeId,
        wire_bytes: usize,
        body: LapiBody,
        pending: Option<CounterId>,
    ) -> LapiResult<SendReceipt> {
        match self
            .adapter
            .try_send_at(self.clock().now(), target, wire_bytes, body)
        {
            Ok(r) => Ok(r),
            Err(e) => {
                let err = self.delivery_error(e);
                self.retract_pending(target, pending);
                self.outstanding_decr(target);
                self.declare_peer_dead(target, &err);
                Err(err)
            }
        }
    }

    /// Send from dispatcher/completion context (replies, acknowledgements):
    /// there is no user call to return an error through, so a delivery
    /// timeout is routed to the registered `err_hndlr` via the peer-death
    /// latch; without one it is a fatal condition, as in the real library.
    /// Returns `None` when the packet could not be delivered.
    fn wire_send_async(
        &self,
        target: NodeId,
        wire_bytes: usize,
        body: LapiBody,
    ) -> Option<SendReceipt> {
        match self
            .adapter
            .try_send_at(self.clock().now(), target, wire_bytes, body)
        {
            Ok(r) => Some(r),
            Err(e) => {
                let err = self.delivery_error(e);
                if self.err_hndlr.read().is_none() {
                    panic!(
                        "{}",
                        self.deadlock_report(&format!(
                            "unrecoverable communication failure with no err_hndlr \
                             registered: {err}"
                        ))
                    );
                }
                self.declare_peer_dead(target, &err);
                None
            }
        }
    }

    /// Batched counterpart of [`Self::wire_send`]: inject every fragment of
    /// one message with one batched link reservation
    /// ([`Adapter::try_send_batch_at`]), fragment `i` timed at
    /// `now + i * step`, then charge the clock the same `(k-1) * step` the
    /// fragment-at-a-time loop would have. Returns the last receipt.
    /// `pending` follows the same retract-before-declare rule as
    /// [`Self::wire_send`].
    fn wire_send_batch(
        &self,
        target: NodeId,
        step: spsim::VDur,
        frags: Vec<(usize, LapiBody)>,
        pending: Option<CounterId>,
    ) -> LapiResult<Option<SendReceipt>> {
        let k = frags.len();
        if k == 0 {
            return Ok(None);
        }
        match self
            .adapter
            .try_send_batch_at(self.clock().now(), step, target, frags)
        {
            Ok(receipts) => {
                if k > 1 {
                    self.clock().advance(step * (k as u64 - 1));
                }
                Ok(receipts.into_iter().last())
            }
            Err(e) => {
                let err = self.delivery_error(e);
                self.retract_pending(target, pending);
                self.outstanding_decr(target);
                self.declare_peer_dead(target, &err);
                Err(err)
            }
        }
    }

    /// Batched counterpart of [`Self::wire_send_async`]: same injection and
    /// clock algebra as [`Self::wire_send_batch`], but delivery timeouts are
    /// routed to the registered `err_hndlr` through the peer-death latch
    /// (there is no user call to return through). Returns `None` when the
    /// batch could not be delivered.
    fn wire_send_batch_async(
        &self,
        target: NodeId,
        step: spsim::VDur,
        frags: Vec<(usize, LapiBody)>,
    ) -> Option<SendReceipt> {
        let k = frags.len();
        if k == 0 {
            return None;
        }
        match self
            .adapter
            .try_send_batch_at(self.clock().now(), step, target, frags)
        {
            Ok(receipts) => {
                if k > 1 {
                    self.clock().advance(step * (k as u64 - 1));
                }
                receipts.into_iter().last()
            }
            Err(e) => {
                let err = self.delivery_error(e);
                if self.err_hndlr.read().is_none() {
                    panic!(
                        "{}",
                        self.deadlock_report(&format!(
                            "unrecoverable communication failure with no err_hndlr \
                             registered: {err}"
                        ))
                    );
                }
                self.declare_peer_dead(target, &err);
                None
            }
        }
    }

    // ------------------------------------------------------------- memory

    pub(crate) fn alloc(&self, len: usize) -> Addr {
        self.space.lock().alloc(len)
    }

    pub(crate) fn mem_read(&self, addr: Addr, len: usize) -> Vec<u8> {
        self.space.lock().read(addr, len).to_vec()
    }

    pub(crate) fn mem_write(&self, addr: Addr, data: &[u8]) {
        self.space.lock().write(addr, data)
    }

    pub(crate) fn with_space<R>(&self, f: impl FnOnce(&AddressSpace) -> R) -> R {
        f(&self.space.lock())
    }

    pub(crate) fn with_space_mut<R>(&self, f: impl FnOnce(&mut AddressSpace) -> R) -> R {
        f(&mut self.space.lock())
    }

    // ----------------------------------------------------------- counters

    pub(crate) fn new_counter(&self) -> Counter {
        let mut tab = self.counters.lock();
        let c = Counter::new(tab.len() as CounterId);
        tab.push(c.clone());
        c
    }

    fn counter_by_id(&self, id: CounterId) -> Counter {
        self.counters
            .lock()
            .get(id as usize)
            .unwrap_or_else(|| spsim::sim_panic!("node {}: no counter with id {id}", self.id()))
            .clone()
    }

    fn bump_counter(&self, id: CounterId, at: VTime) {
        trace::emit(
            self.id(),
            at,
            trace::EventKind::Counter,
            "cntr",
            id as u64,
            0,
        );
        self.counter_by_id(id).incr_at(at);
    }

    pub(crate) fn register_handler(&self, id: u32, f: HeaderHandlerFn) {
        self.handlers.write().insert(id, f);
    }

    // -------------------------------------------------------- issue paths

    fn alloc_msg_id(&self) -> MsgId {
        // ordering: pure id allocation — only uniqueness matters, no other
        // memory is published under this counter.
        self.next_msg.fetch_add(1, Ordering::Relaxed)
    }

    fn track_outstanding(&self, target: NodeId) {
        self.outstanding.lock()[target] += 1;
    }

    fn outstanding_decr(&self, target: NodeId) {
        let mut o = self.outstanding.lock();
        if o[target] <= 0 {
            // A stale completion for an op already retired wholesale by
            // peer-death propagation (declare_peer_dead zeroed the slot
            // while this packet was in flight).
            drop(o);
            debug_assert!(
                self.is_peer_dead(target),
                "outstanding count went negative for a live peer"
            );
        } else {
            o[target] -= 1;
            drop(o);
        }
        self.outstanding_cv.notify_all();
    }

    /// Record that a future inbound packet from `target` would bump local
    /// counter `id` (see the `pending_cmpl` field docs).
    fn note_pending(&self, target: NodeId, id: CounterId) {
        self.pending_cmpl.lock()[target].push(id);
    }

    /// Remove one pending note for (`target`, `id`). Returns `false` when
    /// no note remains — the peer was declared dead and the unwinding
    /// already credited the counter, so the caller must not bump it again.
    fn unnote_pending(&self, target: NodeId, id: CounterId) -> bool {
        let mut p = self.pending_cmpl.lock();
        match p[target].iter().position(|&x| x == id) {
            Some(pos) => {
                p[target].remove(pos);
                true
            }
            None => false,
        }
    }

    /// Retract the pending-completion note of an op that failed on its
    /// issue path: the caller surfaces the error synchronously, so no
    /// waiter-wakeup crediting is needed — and the counter must not tick,
    /// because no data moved. If peer-death unwinding raced us and already
    /// credited the note there is nothing to retract; that extra credit is
    /// the asynchronous-death wakeup doing its job.
    fn retract_pending(&self, target: NodeId, id: Option<CounterId>) {
        if let Some(id) = id {
            let _ = self.unnote_pending(target, id);
        }
    }

    pub(crate) fn outstanding_to(&self, target: NodeId) -> i64 {
        self.outstanding.lock()[target]
    }

    pub(crate) fn rmw_pending(&self) -> usize {
        self.rmw_slots.lock().len()
    }

    /// `LAPI_Put`: fragment `data` and inject it toward `target`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn issue_put(
        &self,
        issue_cost: spsim::VDur,
        target: NodeId,
        tgt_addr: Addr,
        data: &[u8],
        tgt_cntr: Option<RemoteCounter>,
        org_cntr: Option<&Counter>,
        cmpl_cntr: Option<&Counter>,
    ) -> LapiResult {
        self.check_live()?;
        self.check_target(target)?;
        self.stats.puts.incr();
        self.track_outstanding(target);
        let cfg = self.config();
        let cap = cfg.payload_per_packet(cfg.lapi_header_bytes);
        let msg_id = self.alloc_msg_id();
        let kind = DataKind::Put {
            tgt_addr,
            tgt_cntr: tgt_cntr.map(|r| r.0),
            cmpl_cntr: cmpl_cntr.map(Counter::id),
        };
        self.clock().advance(issue_cost);
        self.tr(trace::EventKind::Issue, "put", msg_id, data.len());
        // One allocation for the whole message; every fragment is a window.
        let payload = Bytes::from(data);
        let mut frags = Vec::with_capacity(data.len() / cap + 1);
        let mut offset = 0usize;
        loop {
            let end = (offset + cap).min(data.len());
            frags.push((
                cfg.lapi_header_bytes + (end - offset),
                LapiBody::Data {
                    msg_id,
                    offset,
                    total_len: data.len(),
                    data: payload.slice(offset..end),
                    kind: kind.clone(),
                },
            ));
            offset = end;
            if offset >= data.len() {
                break;
            }
        }
        // Note the completion counter before the send so a Done racing in
        // on the dispatcher thread always finds it; the send retracts the
        // note on failure.
        if let Some(c) = cmpl_cntr {
            self.note_pending(target, c.id());
        }
        let last = self.wire_send_batch(
            target,
            cfg.lapi_pkt_issue,
            frags,
            cmpl_cntr.map(Counter::id),
        )?;
        if let (Some(c), Some(r)) = (org_cntr, last) {
            // Origin buffer reusable once the last fragment is on the wire.
            c.incr_at(r.injected_at);
            trace::emit(
                self.id(),
                r.injected_at,
                trace::EventKind::Counter,
                "org",
                msg_id,
                0,
            );
        }
        Ok(())
    }

    /// `LAPI_Get`: ship the request; the target replies with the data.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn issue_get(
        &self,
        target: NodeId,
        tgt_addr: Addr,
        len: usize,
        org_addr: Addr,
        tgt_cntr: Option<RemoteCounter>,
        org_cntr: Option<&Counter>,
    ) -> LapiResult {
        self.check_live()?;
        self.check_target(target)?;
        self.stats.gets.incr();
        self.track_outstanding(target);
        let cfg = self.config();
        self.clock().advance(cfg.lapi_get_issue);
        let get_msg = self.alloc_msg_id();
        self.tr(trace::EventKind::Issue, "get", get_msg, len);
        let body = LapiBody::GetReq {
            msg_id: get_msg,
            tgt_addr,
            len,
            org_addr,
            org_cntr: org_cntr.map(Counter::id),
            tgt_cntr: tgt_cntr.map(|r| r.0),
        };
        // The get completes locally when the reply lands, bumping org_cntr
        // — note it so peer death can credit the waiter.
        if let Some(c) = org_cntr {
            self.note_pending(target, c.id());
        }
        self.wire_send(
            target,
            cfg.lapi_header_bytes,
            body,
            org_cntr.map(Counter::id),
        )?;
        Ok(())
    }

    /// `LAPI_Amsend`: user header + optional data to a registered handler.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn issue_am(
        &self,
        issue_cost: spsim::VDur,
        target: NodeId,
        handler: u32,
        uhdr: &[u8],
        udata: &[u8],
        tgt_cntr: Option<RemoteCounter>,
        org_cntr: Option<&Counter>,
        cmpl_cntr: Option<&Counter>,
    ) -> LapiResult {
        self.check_live()?;
        self.check_target(target)?;
        let cfg = self.config();
        if uhdr.len() > cfg.lapi_max_uhdr {
            return Err(LapiError::UhdrTooLarge {
                len: uhdr.len(),
                max: cfg.lapi_max_uhdr,
            });
        }
        self.stats.amsends.incr();
        self.track_outstanding(target);
        let msg_id = self.alloc_msg_id();
        self.clock().advance(issue_cost);
        self.tr(trace::EventKind::Issue, "amsend", msg_id, udata.len());

        // First packet: uhdr plus whatever data fits after it.
        let payload = Bytes::from(udata);
        let head_cap = cfg
            .packet_size
            .saturating_sub(cfg.lapi_header_bytes + uhdr.len());
        let head_len = udata.len().min(head_cap);
        let cap = cfg.payload_per_packet(cfg.lapi_header_bytes);
        let mut frags = vec![(
            cfg.lapi_header_bytes + uhdr.len() + head_len,
            LapiBody::AmHeader {
                msg_id,
                handler,
                uhdr: uhdr.to_vec(),
                total_len: udata.len(),
                chunk: payload.slice(0..head_len),
                tgt_cntr: tgt_cntr.map(|r| r.0),
                cmpl_cntr: cmpl_cntr.map(Counter::id),
            },
        )];
        // Remaining data as plain AM fragments.
        let mut offset = head_len;
        while offset < udata.len() {
            let end = (offset + cap).min(udata.len());
            frags.push((
                cfg.lapi_header_bytes + (end - offset),
                LapiBody::Data {
                    msg_id,
                    offset,
                    total_len: udata.len(),
                    data: payload.slice(offset..end),
                    kind: DataKind::AmData,
                },
            ));
            offset = end;
        }
        if let Some(c) = cmpl_cntr {
            self.note_pending(target, c.id());
        }
        let last = self
            .wire_send_batch(
                target,
                cfg.lapi_pkt_issue,
                frags,
                cmpl_cntr.map(Counter::id),
            )?
            .or_diag("batch contained at least the header packet");
        if let Some(c) = org_cntr {
            c.incr_at(last.injected_at);
            trace::emit(
                self.id(),
                last.injected_at,
                trace::EventKind::Counter,
                "org",
                msg_id,
                0,
            );
        }
        Ok(())
    }

    /// `LAPI_Putv` (§6 extension): scatter contiguous `data` across the
    /// target's vector table in a single message — no per-segment message
    /// overhead and no packing copies.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn issue_putv(
        &self,
        issue_cost: spsim::VDur,
        target: NodeId,
        vecs: &[IoVec],
        data: &[u8],
        tgt_cntr: Option<RemoteCounter>,
        org_cntr: Option<&Counter>,
        cmpl_cntr: Option<&Counter>,
    ) -> LapiResult {
        self.check_live()?;
        self.check_target(target)?;
        let cfg = self.config();
        let desc_bytes = vecs.len() * IoVec::DESC_BYTES;
        if desc_bytes > cfg.payload_per_packet(cfg.lapi_header_bytes) {
            return Err(LapiError::TooManyVecs {
                nvecs: vecs.len(),
                max: cfg.payload_per_packet(cfg.lapi_header_bytes) / IoVec::DESC_BYTES,
            });
        }
        debug_assert_eq!(IoVec::total(vecs), data.len());
        self.stats.puts.incr();
        self.track_outstanding(target);
        let msg_id = self.alloc_msg_id();
        self.clock()
            .advance(issue_cost + cfg.lapi_vec_desc * vecs.len() as u64);
        self.tr(trace::EventKind::Issue, "putv", msg_id, data.len());

        // Header packet: the vector table plus whatever data still fits.
        let payload = Bytes::from(data);
        let head_cap = cfg
            .packet_size
            .saturating_sub(cfg.lapi_header_bytes + desc_bytes);
        let head_len = data.len().min(head_cap);
        let cap = cfg.payload_per_packet(cfg.lapi_header_bytes);
        let mut frags = vec![(
            cfg.lapi_header_bytes + desc_bytes + head_len,
            LapiBody::PutVHeader {
                msg_id,
                vecs: vecs.to_vec(),
                total_len: data.len(),
                chunk: payload.slice(0..head_len),
                tgt_cntr: tgt_cntr.map(|r| r.0),
                cmpl_cntr: cmpl_cntr.map(Counter::id),
            },
        )];
        let mut offset = head_len;
        while offset < data.len() {
            let end = (offset + cap).min(data.len());
            frags.push((
                cfg.lapi_header_bytes + (end - offset),
                LapiBody::Data {
                    msg_id,
                    offset,
                    total_len: data.len(),
                    data: payload.slice(offset..end),
                    kind: DataKind::VecData,
                },
            ));
            offset = end;
        }
        if let Some(c) = cmpl_cntr {
            self.note_pending(target, c.id());
        }
        let last = self
            .wire_send_batch(
                target,
                cfg.lapi_pkt_issue,
                frags,
                cmpl_cntr.map(Counter::id),
            )?
            .or_diag("batch contained at least the header packet");
        if let Some(c) = org_cntr {
            c.incr_at(last.injected_at);
        }
        Ok(())
    }

    /// `LAPI_Getv` (§6 extension): gather the target's vector table into a
    /// contiguous local buffer.
    pub(crate) fn issue_getv(
        &self,
        target: NodeId,
        vecs: &[IoVec],
        org_addr: Addr,
        tgt_cntr: Option<RemoteCounter>,
        org_cntr: Option<&Counter>,
    ) -> LapiResult {
        self.check_live()?;
        self.check_target(target)?;
        let cfg = self.config();
        let desc_bytes = vecs.len() * IoVec::DESC_BYTES;
        if desc_bytes > cfg.payload_per_packet(cfg.lapi_header_bytes) {
            return Err(LapiError::TooManyVecs {
                nvecs: vecs.len(),
                max: cfg.payload_per_packet(cfg.lapi_header_bytes) / IoVec::DESC_BYTES,
            });
        }
        self.stats.gets.incr();
        self.track_outstanding(target);
        self.clock()
            .advance(cfg.lapi_get_issue + cfg.lapi_vec_desc * vecs.len() as u64);
        let getv_msg = self.alloc_msg_id();
        self.tr(
            trace::EventKind::Issue,
            "getv",
            getv_msg,
            IoVec::total(vecs),
        );
        if let Some(c) = org_cntr {
            self.note_pending(target, c.id());
        }
        self.wire_send(
            target,
            cfg.lapi_header_bytes + desc_bytes,
            LapiBody::GetVReq {
                msg_id: getv_msg,
                vecs: vecs.to_vec(),
                org_addr,
                org_cntr: org_cntr.map(Counter::id),
                tgt_cntr: tgt_cntr.map(|r| r.0),
            },
            org_cntr.map(Counter::id),
        )?;
        Ok(())
    }

    /// `LAPI_Rmw`: atomic read-modify-write on a u64 cell at the target.
    pub(crate) fn issue_rmw(
        self: &Arc<Self>,
        target: NodeId,
        op: RmwOp,
        tgt_addr: Addr,
        in_val: u64,
        cmp_val: u64,
    ) -> LapiResult<RmwFuture> {
        self.check_live()?;
        self.check_target(target)?;
        self.stats.rmws.incr();
        self.track_outstanding(target);
        let cfg = self.config();
        // ordering: ticket allocation only needs uniqueness; the slot itself
        // is published through the rmw_slots mutex below.
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(RmwSlot {
            st: Mutex::new(None),
            cv: SimCondvar::new(),
        });
        self.rmw_slots
            .lock()
            .insert(ticket, (target, Arc::clone(&slot)));
        // Rmw issue is lightweight compared to put/get: it ships only the
        // operands (still a full LAPI header on the wire).
        self.clock().advance(cfg.lapi_handler_issue);
        self.tr(trace::EventKind::Issue, "rmw", ticket, 8);
        let body = LapiBody::RmwReq {
            ticket,
            op,
            tgt_addr,
            in_val,
            cmp_val,
        };
        if let Err(e) =
            self.adapter
                .try_send_at(self.clock().now(), target, cfg.lapi_header_bytes, body)
        {
            let err = self.delivery_error(e);
            // The reply will never come; retire the ticket *before* the
            // death declaration so its poison sweep does not also cancel
            // this op — the caller gets the error synchronously.
            self.rmw_slots.lock().remove(&ticket);
            self.outstanding_decr(target);
            self.declare_peer_dead(target, &err);
            return Err(err);
        }
        Ok(RmwFuture {
            engine: Arc::clone(self),
            slot,
        })
    }

    fn send_done(&self, to: NodeId, fence_decr: bool, cmpl_cntr: Option<CounterId>) {
        self.stats.done_sent.incr();
        let cfg = self.config();
        self.wire_send_async(
            to,
            cfg.ack_bytes,
            LapiBody::Done {
                fence_decr,
                cmpl_cntr,
            },
        );
    }

    // --------------------------------------------------------- dispatcher

    /// Process one arrived packet (clock merged to arrival, dispatch cost
    /// charged here). Called from the dispatcher thread (interrupt mode) or
    /// from inside wait/probe calls (polling mode).
    pub(crate) fn process_packet(&self, s: Stamped<WirePacket<LapiBody>>) {
        let clock = self.clock();
        clock.merge(s.at);
        clock.advance(self.config().lapi_dispatch);
        self.stats.packets_dispatched.incr();
        let src = s.item.src;
        trace::emit(
            self.id(),
            s.at,
            trace::EventKind::Deliver,
            "pkt",
            src as u64,
            s.item.wire_bytes,
        );
        match s.item.body {
            LapiBody::Data {
                msg_id,
                offset,
                total_len,
                data,
                kind,
            } => match kind {
                DataKind::Put {
                    tgt_addr,
                    tgt_cntr,
                    cmpl_cntr,
                } => {
                    self.with_space_mut(|sp| sp.write(tgt_addr.offset(offset), &data));
                    if self.data_complete(src, msg_id, total_len, data.len()) {
                        self.finish_put(src, tgt_cntr, cmpl_cntr);
                    }
                }
                DataKind::GetReply { org_addr, org_cntr } => {
                    self.with_space_mut(|sp| sp.write(org_addr.offset(offset), &data));
                    if self.data_complete(src, msg_id, total_len, data.len()) {
                        let cfg = self.config();
                        clock.advance(cfg.lapi_completion_msg + cfg.lapi_counter_update);
                        if let Some(id) = org_cntr {
                            // Gated on the pending note: if the peer was
                            // declared dead while the reply was in flight,
                            // the unwinding already credited the counter.
                            if self.unnote_pending(src, id) {
                                self.bump_counter(id, clock.now());
                            }
                        }
                        // The reply's arrival is the origin-side completion
                        // of the get: no extra ack needed for fencing.
                        self.outstanding_decr(src);
                    }
                }
                DataKind::AmData => self.am_data(src, msg_id, offset, total_len, data),
                DataKind::VecData => self.vec_data(src, msg_id, offset, total_len, data),
            },
            LapiBody::AmHeader {
                msg_id,
                handler,
                uhdr,
                total_len,
                chunk,
                tgt_cntr,
                cmpl_cntr,
            } => self.am_header(
                src, msg_id, handler, uhdr, total_len, chunk, tgt_cntr, cmpl_cntr,
            ),
            LapiBody::PutVHeader {
                msg_id,
                vecs,
                total_len,
                chunk,
                tgt_cntr,
                cmpl_cntr,
            } => self.putv_header(src, msg_id, vecs, total_len, chunk, tgt_cntr, cmpl_cntr),
            LapiBody::GetVReq {
                msg_id,
                vecs,
                org_addr,
                org_cntr,
                tgt_cntr,
            } => self.serve_getv(src, msg_id, vecs, org_addr, org_cntr, tgt_cntr),
            LapiBody::GetReq {
                msg_id,
                tgt_addr,
                len,
                org_addr,
                org_cntr,
                tgt_cntr,
            } => self.serve_get(src, msg_id, tgt_addr, len, org_addr, org_cntr, tgt_cntr),
            LapiBody::RmwReq {
                ticket,
                op,
                tgt_addr,
                in_val,
                cmp_val,
            } => {
                let cfg = self.config();
                clock.advance(cfg.lapi_counter_update);
                let prev = self
                    .with_space_mut(|sp| sp.rmw_u64(tgt_addr, |v| op.apply(v, in_val, cmp_val)));
                self.wire_send_async(
                    src,
                    cfg.lapi_header_bytes,
                    LapiBody::RmwReply { ticket, prev },
                );
            }
            LapiBody::RmwReply { ticket, prev } => {
                // An unknown ticket is a reply whose waiter was already
                // poisoned and retired by peer-death propagation (the
                // reply raced the declaration): drop it silently — the
                // waiter has woken with the cancellation error and the
                // fence accounting was retired wholesale.
                if let Some((_, slot)) = self.rmw_slots.lock().remove(&ticket) {
                    *slot.st.lock() = Some(Ok(prev));
                    slot.cv.notify_all();
                    self.outstanding_decr(src);
                }
            }
            LapiBody::Done {
                fence_decr,
                cmpl_cntr,
            } => {
                clock.advance(self.config().lapi_counter_update);
                if let Some(id) = cmpl_cntr {
                    // Gated on the pending note — see the GetReply path.
                    if self.unnote_pending(src, id) {
                        self.bump_counter(id, clock.now());
                    }
                }
                if fence_decr {
                    self.outstanding_decr(src);
                }
            }
        }
    }

    /// Returns true when the message is fully received. Single-packet
    /// messages bypass the reassembly table.
    fn data_complete(&self, src: NodeId, msg_id: MsgId, total: usize, got: usize) -> bool {
        if got >= total {
            return true;
        }
        let mut map = self.reasm.lock();
        match map
            .entry((src, msg_id))
            .or_insert(Reasm::Data { received: 0 })
        {
            Reasm::Data { received } => {
                *received += got;
                if *received >= total {
                    map.remove(&(src, msg_id));
                    true
                } else {
                    false
                }
            }
            // sim_panic (not deadlock_report): the reasm lock is held here.
            _ => spsim::sim_panic!("message {msg_id} from {src} mixes AM and data reassembly"),
        }
    }

    fn finish_put(&self, src: NodeId, tgt_cntr: Option<CounterId>, cmpl_cntr: Option<CounterId>) {
        let cfg = self.config();
        let clock = self.clock();
        clock.advance(cfg.lapi_completion_msg + cfg.lapi_counter_update);
        self.tr(trace::EventKind::Complete, "put", src as u64, 0);
        if let Some(id) = tgt_cntr {
            self.bump_counter(id, clock.now());
        }
        self.send_done(src, true, cmpl_cntr);
    }

    #[allow(clippy::too_many_arguments)]
    fn am_header(
        &self,
        src: NodeId,
        msg_id: MsgId,
        handler: u32,
        uhdr: Vec<u8>,
        total_len: usize,
        chunk: Bytes,
        tgt_cntr: Option<CounterId>,
        cmpl_cntr: Option<CounterId>,
    ) {
        let cfg = self.config();
        let clock = self.clock();
        clock.advance(cfg.lapi_hdr_handler);
        self.stats.hdr_handlers.incr();
        self.tr(trace::EventKind::HandlerEnter, "hdr", msg_id, total_len);
        let outcome = {
            let handlers = self.handlers.read();
            let h = handlers.get(&handler).unwrap_or_else(|| {
                // sim_panic (not deadlock_report): the handlers lock is held.
                spsim::sim_panic!(
                    "node {}: active message from {src} names unregistered handler {handler}",
                    self.id()
                )
            });
            h(
                &HandlerCtx { engine: self },
                AmInfo {
                    src,
                    uhdr: &uhdr,
                    data_len: total_len,
                },
            )
        };
        self.tr(trace::EventKind::HandlerExit, "hdr", msg_id, total_len);
        if total_len > 0 && outcome.buffer.is_none() {
            spsim::sim_panic!(
                "node {}: header handler {handler} returned no buffer for a \
                 {total_len}-byte message — LAPI header handlers cannot refuse data (§5.3.1)",
                self.id()
            );
        }

        // Deposit the first chunk and any early-arrived fragments.
        let mut received = chunk.len();
        if let Some(buf) = outcome.buffer {
            if !chunk.is_empty() {
                self.with_space_mut(|sp| sp.write(buf, &chunk));
            }
        }
        let stash = {
            let mut map = self.reasm.lock();
            match map.remove(&(src, msg_id)) {
                Some(Reasm::AmEarly { stash }) => stash,
                // sim_panic (not deadlock_report): the reasm lock is held here.
                Some(_) => spsim::sim_panic!("AM header collides with non-AM reassembly state"),
                None => Vec::new(),
            }
        };
        if let Some(buf) = outcome.buffer {
            for (off, frag) in &stash {
                received += frag.len();
                self.with_space_mut(|sp| sp.write(buf.offset(*off), frag));
            }
        }

        if received >= total_len {
            self.finish_am(src, tgt_cntr, cmpl_cntr, outcome.completion);
        } else {
            self.reasm.lock().insert(
                (src, msg_id),
                Reasm::Am {
                    buffer: outcome.buffer,
                    received,
                    completion: outcome.completion,
                    tgt_cntr,
                    cmpl_cntr,
                },
            );
        }
    }

    fn am_data(&self, src: NodeId, msg_id: MsgId, offset: usize, total: usize, data: Bytes) {
        let mut map = self.reasm.lock();
        match map
            .entry((src, msg_id))
            .or_insert(Reasm::AmEarly { stash: Vec::new() })
        {
            Reasm::Am {
                buffer, received, ..
            } => {
                let buf = buffer.or_diag("data-bearing AM has no buffer");
                *received += data.len();
                let done = *received >= total;
                // Write under the reasm lock is fine: space is a separate lock.
                self.with_space_mut(|sp| sp.write(buf.offset(offset), &data));
                if done {
                    let Some(Reasm::Am {
                        completion,
                        tgt_cntr,
                        cmpl_cntr,
                        ..
                    }) = map.remove(&(src, msg_id))
                    else {
                        unreachable!("entry just matched as Am");
                    };
                    drop(map);
                    self.finish_am(src, tgt_cntr, cmpl_cntr, completion);
                }
            }
            Reasm::AmEarly { stash } => {
                // Header not here yet (slower route): stash the fragment.
                self.stats.early_am_data.incr();
                stash.push((offset, data));
            }
            Reasm::Data { .. } | Reasm::VecPut { .. } => {
                // sim_panic (not deadlock_report): the reasm lock is held here.
                spsim::sim_panic!("AM fragment collides with other reassembly state")
            }
        }
    }

    fn finish_am(
        &self,
        src: NodeId,
        tgt_cntr: Option<CounterId>,
        cmpl_cntr: Option<CounterId>,
        completion: Option<CompletionFn>,
    ) {
        let cfg = self.config();
        let clock = self.clock();
        clock.advance(cfg.lapi_completion_msg);
        self.tr(trace::EventKind::Complete, "amsend", src as u64, 0);
        match completion {
            None => {
                clock.advance(cfg.lapi_counter_update);
                if let Some(id) = tgt_cntr {
                    self.bump_counter(id, clock.now());
                }
                // One ack carries both the fence decrement and cmpl_cntr.
                self.send_done(src, true, cmpl_cntr);
            }
            Some(f) => {
                // Data has landed: release the fence immediately (§5.3.2 —
                // fence does not wait for completion handlers)…
                self.send_done(src, true, None);
                // …and hand the handler to the completion thread, which
                // will bump tgt_cntr and send the cmpl_cntr ack afterwards.
                self.cmpl_q.push(
                    clock.now(),
                    CmplWork {
                        f: Some(f),
                        src,
                        tgt_cntr,
                        cmpl_cntr,
                    },
                );
            }
        }
    }

    /// Scatter `data` at stream offset `offset` across the vector table.
    fn scatter_into_vecs(&self, vecs: &[IoVec], offset: usize, data: &[u8]) {
        self.with_space_mut(|sp| {
            let mut pos = 0usize; // consumed bytes of `data`
            let mut stream = 0usize; // stream offset of current vec start
            for v in vecs {
                let v_end = stream + v.len;
                if offset + pos < v_end && offset + data.len() > stream {
                    let from = (offset + pos).max(stream);
                    let to = (offset + data.len()).min(v_end);
                    let inner = from - stream;
                    sp.write(v.addr.offset(inner), &data[pos..pos + (to - from)]);
                    pos += to - from;
                    if pos == data.len() {
                        break;
                    }
                }
                stream = v_end;
            }
            debug_assert_eq!(pos, data.len(), "fragment fell outside the vector table");
        });
    }

    /// First packet of a putv: record the vector table, deposit the inline
    /// chunk and any early-arrived fragments.
    #[allow(clippy::too_many_arguments)]
    fn putv_header(
        &self,
        src: NodeId,
        msg_id: MsgId,
        vecs: Vec<IoVec>,
        total_len: usize,
        chunk: Bytes,
        tgt_cntr: Option<CounterId>,
        cmpl_cntr: Option<CounterId>,
    ) {
        let cfg = self.config();
        let clock = self.clock();
        clock.advance(cfg.lapi_vec_desc * vecs.len() as u64);
        debug_assert_eq!(IoVec::total(&vecs), total_len);
        let mut received = chunk.len();
        if !chunk.is_empty() {
            self.scatter_into_vecs(&vecs, 0, &chunk);
        }
        let stash = {
            let mut map = self.reasm.lock();
            match map.remove(&(src, msg_id)) {
                Some(Reasm::AmEarly { stash }) => stash,
                // sim_panic (not deadlock_report): the reasm lock is held here.
                Some(_) => spsim::sim_panic!("putv header collides with other reassembly state"),
                None => Vec::new(),
            }
        };
        for (off, frag) in &stash {
            received += frag.len();
            self.scatter_into_vecs(&vecs, *off, frag);
        }
        if received >= total_len {
            self.finish_put(src, tgt_cntr, cmpl_cntr);
        } else {
            self.reasm.lock().insert(
                (src, msg_id),
                Reasm::VecPut {
                    vecs,
                    received,
                    tgt_cntr,
                    cmpl_cntr,
                },
            );
        }
    }

    /// A putv data fragment (scatter it, or stash until the table arrives).
    fn vec_data(&self, src: NodeId, msg_id: MsgId, offset: usize, total: usize, data: Bytes) {
        let mut map = self.reasm.lock();
        match map
            .entry((src, msg_id))
            .or_insert(Reasm::AmEarly { stash: Vec::new() })
        {
            Reasm::VecPut { vecs, received, .. } => {
                *received += data.len();
                let done = *received >= total;
                // Scatter under the reasm lock (space is a separate lock;
                // same order as the AM data path).
                self.scatter_into_vecs(vecs, offset, &data);
                if done {
                    let Some(Reasm::VecPut {
                        tgt_cntr,
                        cmpl_cntr,
                        ..
                    }) = map.remove(&(src, msg_id))
                    else {
                        unreachable!("entry just matched as VecPut");
                    };
                    drop(map);
                    self.finish_put(src, tgt_cntr, cmpl_cntr);
                }
            }
            Reasm::AmEarly { stash } => {
                self.stats.early_am_data.incr();
                stash.push((offset, data));
            }
            // sim_panic (not deadlock_report): the reasm lock is held here.
            _ => spsim::sim_panic!("putv fragment collides with other reassembly state"),
        }
    }

    /// Serve a getv: gather the vector table and stream it back into the
    /// origin's contiguous buffer (no intermediate packing copy — the DMA
    /// gather the §6 extension promises).
    fn serve_getv(
        &self,
        src: NodeId,
        msg_id: MsgId,
        vecs: Vec<IoVec>,
        org_addr: Addr,
        org_cntr: Option<CounterId>,
        tgt_cntr: Option<CounterId>,
    ) {
        let cfg = self.config();
        let clock = self.clock();
        clock.advance(cfg.lapi_handler_issue + cfg.lapi_vec_desc * vecs.len() as u64);
        let total = IoVec::total(&vecs);
        let mut data = Vec::with_capacity(total);
        self.with_space(|sp| {
            for v in &vecs {
                data.extend_from_slice(sp.read(v.addr, v.len));
            }
        });
        let frags = self.reply_frags(cfg, msg_id, data, org_addr, org_cntr);
        // A dead reply flow yields None; the origin's own wait diagnoses it.
        if let (Some(id), Some(r)) = (
            tgt_cntr,
            self.wire_send_batch_async(src, cfg.lapi_pkt_issue, frags),
        ) {
            self.bump_counter(id, r.injected_at);
        }
    }

    /// Fragment a get/getv reply into `(wire_bytes, body)` pairs for one
    /// batched injection: one shared allocation, one window per packet.
    fn reply_frags(
        &self,
        cfg: &spsim::MachineConfig,
        msg_id: MsgId,
        data: Vec<u8>,
        org_addr: Addr,
        org_cntr: Option<CounterId>,
    ) -> Vec<(usize, LapiBody)> {
        let cap = cfg.payload_per_packet(cfg.lapi_header_bytes);
        let kind = DataKind::GetReply { org_addr, org_cntr };
        let payload = Bytes::from(data);
        let mut frags = Vec::with_capacity(payload.len() / cap + 1);
        let mut offset = 0usize;
        loop {
            let end = (offset + cap).min(payload.len());
            frags.push((
                cfg.lapi_header_bytes + (end - offset),
                LapiBody::Data {
                    msg_id,
                    offset,
                    total_len: payload.len(),
                    data: payload.slice(offset..end),
                    kind: kind.clone(),
                },
            ));
            offset = end;
            if offset >= payload.len() {
                break;
            }
        }
        frags
    }

    #[allow(clippy::too_many_arguments)]
    fn serve_get(
        &self,
        src: NodeId,
        msg_id: MsgId,
        tgt_addr: Addr,
        len: usize,
        org_addr: Addr,
        org_cntr: Option<CounterId>,
        tgt_cntr: Option<CounterId>,
    ) {
        let cfg = self.config();
        let clock = self.clock();
        clock.advance(cfg.lapi_handler_issue);
        let data = self.mem_read(tgt_addr, len);
        let frags = self.reply_frags(cfg, msg_id, data, org_addr, org_cntr);
        // A dead reply flow yields None; the origin's own wait diagnoses it.
        if let (Some(id), Some(r)) = (
            tgt_cntr,
            self.wire_send_batch_async(src, cfg.lapi_pkt_issue, frags),
        ) {
            // Target-side completion of a get: data copied out (§2.3).
            self.bump_counter(id, r.injected_at);
        }
    }

    // ----------------------------------------------------------- progress

    /// One polling step: process whatever has arrived, or block (real time,
    /// bounded) for the next packet. Panics past `deadline` — simulated
    /// deadlock.
    // liveness: recv_timeout wakes on every packet the switch delivers to
    // this node's adapter ring; on silence the POLL_TICK real-time bound
    // re-arms the wait until `deadline`, then deadlock_report fires — a
    // dead or non-polling peer cannot park this thread forever.
    fn poll_step(&self, deadline: Instant) {
        self.adapter.pump(self.clock().now());
        match self.adapter.rx().recv_timeout(POLL_TICK) {
            Ok(Some(s)) => self.process_packet(s),
            Ok(None) => {
                if Instant::now() > deadline {
                    panic!(
                        "{}",
                        self.deadlock_report(&format!(
                            "polling-mode LAPI made no progress for {:?} of real time — \
                             simulated deadlock (is the peer polling?)",
                            self.escape
                        ))
                    );
                }
            }
            Err(_) => spsim::sim_panic!("adapter receive queue closed while waiting for progress"),
        }
    }

    /// Process everything already arrived without charging any polling
    /// cost when the queue is empty — the progress hook a parked barrier
    /// wait runs (`LAPI_Gfence` in polling mode). Unlike [`Self::probe`]
    /// it never advances the clock on an empty queue, so virtual time
    /// stays decoupled from how long the barrier waits in real time.
    pub(crate) fn drain_arrived(&self) {
        // Lock-free emptiness hint: this runs on every real-time tick of a
        // parked barrier wait, so don't touch the queue locks when idle.
        if self.adapter.rx().is_empty() {
            return;
        }
        let mut n = 0;
        while let Ok(Some(s)) = self.adapter.rx().try_recv() {
            self.process_packet(s);
            n += 1;
        }
        if n > 0 {
            self.adapter.pump(self.clock().now());
        }
    }

    /// Drain everything already arrived (non-blocking). Returns how many
    /// packets were processed. This is `LAPI_Probe`.
    pub(crate) fn probe(&self) -> usize {
        let mut n = 0;
        // Lock-free emptiness hint gates the drain: polling loops call this
        // back-to-back, and the common case is an empty queue.
        if !self.adapter.rx().is_empty() {
            while let Ok(Some(s)) = self.adapter.rx().try_recv() {
                self.process_packet(s);
                n += 1;
            }
        }
        if n == 0 {
            self.clock().advance(self.config().lapi_poll);
        }
        // Flush any coalesced-ACK deadline that has come due on our
        // outgoing flows (free when the reliability protocol is disarmed).
        self.adapter.pump(self.clock().now());
        n
    }

    /// `LAPI_Waitcntr` with mode-appropriate progress.
    pub(crate) fn wait_counter(&self, c: &Counter, val: i64) {
        match self.mode() {
            Mode::Interrupt => c.wait_consume(self.clock(), val, self.escape),
            Mode::Polling => {
                let deadline = Instant::now() + self.escape;
                // liveness: poll_step drives the dispatcher inline, so
                // this thread produces the counter updates it waits for
                // (peer-death unwinding credits them too); it panics with
                // a diagnostic past the real-time deadline.
                loop {
                    if c.try_consume(self.clock(), val) {
                        return;
                    }
                    self.poll_step(deadline);
                }
            }
        }
    }

    /// `LAPI_Fence(tgt)`: wait until no operation issued from this node to
    /// `tgt` is still in flight (data landed in remote buffers).
    pub(crate) fn fence(&self, target: NodeId) -> LapiResult {
        self.check_live()?;
        self.check_target(target)?;
        // Fail fast and deterministically against a dead peer: the fence
        // cannot be meaningfully satisfied (ops were retired, not
        // completed), so surface the degradation instead of returning a
        // vacuous success.
        if self.is_peer_dead(target) {
            return Err(self.peer_dead_error(target));
        }
        self.tr(trace::EventKind::FenceBegin, "fence", target as u64, 0);
        match self.mode() {
            Mode::Interrupt => {
                let deadline = Instant::now() + self.escape;
                let mut o = self.outstanding.lock();
                // liveness: outstanding_cv is notified by every
                // outstanding_decr and by declare_peer_dead (which zeroes
                // the slot); wait_until escapes past the deadline.
                while o[target] != 0 {
                    if self.outstanding_cv.wait_until(&mut o, deadline).timed_out() {
                        let stuck = o[target];
                        drop(o); // deadlock_report re-takes the lock
                        panic!(
                            "{}",
                            self.deadlock_report(&format!(
                                "LAPI_Fence to {target} stuck ({stuck} ops outstanding) — \
                                 simulated deadlock"
                            ))
                        );
                    }
                }
                drop(o);
                if self.is_peer_dead(target) {
                    return Err(self.peer_dead_error(target));
                }
            }
            Mode::Polling => {
                let deadline = Instant::now() + self.escape;
                // liveness: poll_step drives packet processing (which
                // decrements outstanding) and panics with a diagnostic
                // past the real-time deadline; declare_peer_dead zeroes
                // the slot, observed on the next iteration.
                loop {
                    if self.is_peer_dead(target) {
                        return Err(self.peer_dead_error(target));
                    }
                    if self.outstanding.lock()[target] == 0 {
                        self.tr(trace::EventKind::FenceEnd, "fence", target as u64, 0);
                        return Ok(());
                    }
                    self.poll_step(deadline);
                }
            }
        }
        self.tr(trace::EventKind::FenceEnd, "fence", target as u64, 0);
        Ok(())
    }

    /// Fence against every task (the per-task half of `LAPI_Gfence`).
    pub(crate) fn fence_all(&self) -> LapiResult {
        for t in 0..self.tasks() {
            self.fence(t)?;
        }
        Ok(())
    }

    // ------------------------------------------------------ service loops

    /// Charge the hardware-interrupt cost for a packet that arrived while
    /// the node was (virtually) idle. A packet whose arrival time is
    /// behind the node clock landed while the CPU was still busy with
    /// earlier work, so it is picked up without a fresh interrupt — the
    /// paper's §5.3.1 observation that back-to-back messages avoid
    /// interrupts. Keying on *virtual* rather than real wake-ups keeps the
    /// cost model independent of host thread scheduling.
    fn charge_interrupt_if_idle(&self, at: VTime) {
        let clock = self.clock();
        if at >= clock.now() {
            clock.merge(at);
            clock.advance(self.config().interrupt_cost);
            self.stats.interrupts.incr();
            self.tr(trace::EventKind::Interrupt, "hw-int", 0, 0);
        }
    }

    /// Interrupt-mode dispatcher loop (runs on its own thread).
    pub(crate) fn dispatcher_loop(&self) {
        // liveness: recv_timeout wakes on every arriving packet and every
        // DISPATCH_TICK; mode_cv is notified on mode flips; terminate()
        // closes the rx queue, observed by the re-checks below.
        loop {
            if self.is_terminated() {
                return;
            }
            // Park (cheaply, in real time) while the node is in polling
            // mode: progress is then the application's job.
            {
                let mut mode = self.mode.lock();
                if *mode == Mode::Polling {
                    self.mode_cv.wait_for(&mut mode, DISPATCH_TICK);
                    continue;
                }
            }
            match self.adapter.rx().recv_timeout(DISPATCH_TICK) {
                Err(_) => return, // queue closed: job over
                Ok(None) => continue,
                Ok(Some(s)) => {
                    // A crash-stop stops processing immediately: the packet
                    // in hand (and anything still queued, retired by the
                    // teardown's write_off_stranded) will never be
                    // delivered by this dead node.
                    if self.is_crashed() {
                        self.write_off_packet(&s);
                        return;
                    }
                    self.charge_interrupt_if_idle(s.at);
                    self.process_packet(s);
                    while let Ok(Some(next)) = self.adapter.rx().try_recv() {
                        if self.is_crashed() {
                            self.write_off_packet(&next);
                            return;
                        }
                        self.charge_interrupt_if_idle(next.at);
                        self.process_packet(next);
                    }
                    self.adapter.pump(self.clock().now());
                }
            }
        }
    }

    /// Completion-handler thread loop. Idle waiting is normal here (work
    /// only arrives when messages with completion handlers land), so the
    /// loop polls with a timeout instead of using the deadlock escape.
    pub(crate) fn completion_loop(&self) {
        // liveness: recv_timeout wakes on every queued completion and
        // every DISPATCH_TICK; terminate() closes cmpl_q, which surfaces
        // as Err and ends the loop.
        loop {
            match self.cmpl_q.recv_timeout(DISPATCH_TICK) {
                Err(_) => return,
                Ok(None) => {
                    if self.is_terminated() {
                        return;
                    }
                }
                Ok(Some(Stamped { at, item: work })) => {
                    // A crashed node runs no more completion handlers
                    // (pending work is not ledger-tracked — just drop it).
                    if self.is_crashed() {
                        return;
                    }
                    let cfg = self.config();
                    let clock = self.clock();
                    clock.merge(at);
                    clock.advance(cfg.lapi_cmpl_handler);
                    self.stats.cmpl_handlers.incr();
                    self.tr(trace::EventKind::HandlerEnter, "cmpl", work.src as u64, 0);
                    if let Some(f) = work.f {
                        f(&HandlerCtx { engine: self });
                    }
                    self.tr(trace::EventKind::HandlerExit, "cmpl", work.src as u64, 0);
                    clock.advance(cfg.lapi_counter_update);
                    if let Some(id) = work.tgt_cntr {
                        self.bump_counter(id, clock.now());
                    }
                    if work.cmpl_cntr.is_some() {
                        self.send_done(work.src, false, work.cmpl_cntr);
                    }
                }
            }
        }
    }

    /// Terminate: close queues so the service threads exit.
    pub(crate) fn terminate(&self) {
        self.terminated.store(true, Ordering::Release);
        self.adapter.shutdown();
        self.cmpl_q.close();
        self.mode_cv.notify_all();
    }

    /// Write one received-but-never-processed packet off the trace ledger.
    fn write_off_packet(&self, s: &Stamped<WirePacket<LapiBody>>) {
        trace::emit(
            self.id(),
            s.at,
            trace::EventKind::WriteOff,
            "stranded",
            s.item.src as u64,
            1,
        );
    }

    /// Retire every packet still sitting in the receive queue after a
    /// crash-stop: no dispatcher will ever process them, so each is written
    /// off at its arrival time to keep the trace ledger balanced
    /// (`injected == delivered + written_off`) — a crashed run must tear
    /// down without falsely tripping the quiescence checker.
    pub(crate) fn write_off_stranded(&self) {
        while let Ok(Some(s)) = self.adapter.rx().try_recv() {
            self.write_off_packet(&s);
        }
    }
}
