//! # lapi — the Low-level Applications Programming Interface
//!
//! A Rust reproduction of LAPI, the one-sided communication library of the
//! IBM RS/6000 SP (Shah et al., IPPS 1998), running over the simulated SP
//! switch in [`spswitch`]. The public surface mirrors Table 1 of the paper:
//!
//! | Paper operation | Here |
//! |---|---|
//! | `LAPI_Init`, `LAPI_Term` | [`LapiWorld::init`], [`LapiContext::term`] |
//! | `LAPI_Amsend` | [`LapiContext::amsend`] |
//! | `LAPI_Put`, `LAPI_Get` | [`LapiContext::put`], [`LapiContext::get`] |
//! | `LAPI_Rmw` | [`LapiContext::rmw`] (Swap, CompareAndSwap, FetchAndAdd, FetchAndOr) |
//! | `LAPI_Setcntr`, `LAPI_Waitcntr`, `LAPI_Getcntr` | [`LapiContext::setcntr`], [`LapiContext::waitcntr`], [`LapiContext::getcntr`] |
//! | `LAPI_Fence`, `LAPI_Gfence` | [`LapiContext::fence`], [`LapiContext::gfence`] |
//! | `LAPI_Address_init` | [`LapiContext::address_init`] (and the general [`LapiContext::exchange`]) |
//! | `LAPI_Qenv`, `LAPI_Senv` | [`LapiContext::qenv`], [`LapiContext::senv`] |
//!
//! ## Semantics reproduced from the paper
//!
//! * **Active messages with decoupled handlers** (§2.1): the *header
//!   handler* runs when the first packet of a message arrives and returns
//!   the receive buffer plus an optional *completion handler*; the
//!   completion handler runs once every packet has been deposited. Only one
//!   header handler runs at a time per context (it executes on the
//!   dispatcher); completion handlers run on their own thread(s).
//! * **Unilateral progress**: in interrupt mode the target needs no LAPI
//!   calls for communication to complete; in polling mode progress happens
//!   only inside LAPI calls of the target — including the documented
//!   deadlock if the target never polls.
//! * **Out-of-order delivery** (§2.5): packets of concurrent operations —
//!   and of a single message — may arrive in any order; reassembly and the
//!   three-counter scheme (`org_cntr`, `tgt_cntr`, `cmpl_cntr`) signal the
//!   events of Figure 1 exactly.
//! * **Fences** (§5.3.2): `fence`/`gfence` order *data transfer*, not
//!   completion handlers: they wait until data of outstanding operations is
//!   in the remote user buffers, while `cmpl_cntr` additionally waits for
//!   the completion handler to finish.
//!
//! Remote memory is addressed with [`Addr`] handles into each node's
//! [`AddressSpace`] arena — the simulation-safe stand-in for raw virtual
//! addresses on the SP.

#![warn(missing_docs)]

pub mod addr;
pub mod context;
pub mod counter;
pub mod engine;
pub mod error;
pub mod handlers;
pub mod stats;
pub mod wire;
pub mod world;

pub use addr::{Addr, AddressSpace};
pub use context::{LapiContext, Mode, Qenv, Senv};
pub use counter::{Counter, RemoteCounter};
pub use engine::ErrHandler;
pub use error::LapiError;
pub use handlers::{AmInfo, HandlerCtx, HdrOutcome};
pub use stats::LapiStats;
pub use wire::{IoVec, RmwOp};
pub use world::LapiWorld;

/// Result alias for LAPI calls.
pub type LapiResult<T = ()> = Result<T, LapiError>;
