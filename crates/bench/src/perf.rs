//! The committed wall-clock performance lane (`perf_lane` binary).
//!
//! Unlike the experiment modules — which report *virtual-time* results —
//! this lane measures how fast the simulator itself runs on the host:
//!
//! * **delivery-queue throughput** (simulated packets drained per second of
//!   real time) through both delivery paths: the SPSC rings and the legacy
//!   mutexed `TimedQueue`, with the same multi-producer/single-consumer
//!   shape the switch produces. The rings/heap ratio is the tentpole
//!   speedup this lane exists to pin down;
//! * **adapter-level packet rate**: an end-to-end many-to-one packet storm
//!   through `Network`/`Adapter` under each path;
//! * **sweep runtimes**: wall-clock seconds for the quick Figure 2 and
//!   Figure 3 reproductions, the numbers a contributor actually waits on;
//! * **node-count scaling**: end-to-end wall-clock seconds and
//!   simulated-packets/sec for a ring-neighbor SPMD job at
//!   n ∈ {4, 64, 256, 1024} under the M:N pooled scheduler, plus a
//!   thread-per-node run at n = 4 so the pooled-vs-threads delta is on
//!   record (at 1024 nodes the legacy path would need ~3000 OS threads;
//!   the pooled path runs it on `SPSIM_WORKERS`).
//!
//! Results are written as flat JSON (`BENCH_6.json` was the first committed
//! baseline; `BENCH_10.json` adds the scaling lane) and re-checked in CI:
//! a packets/sec regression of more than 20% against the committed
//! baseline fails the `--check` invocation.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use spsim::{DeliveryPath, DeliveryQueue, DeliveryRings, MachineConfig, TimedQueue, VTime};
use spswitch::{Network, WirePacket};

/// Producers in the queue microbenchmark (the switch's shape: one lane per
/// source node, several nodes sending at one receiver).
const QUEUE_PRODUCERS: usize = 4;
/// Packets per producer in the queue microbenchmark.
const QUEUE_PER_PRODUCER: usize = 150_000;
/// Ring capacity for the queue microbenchmark: small enough that the
/// working set stays in cache (the simulator's own default of 4096 is
/// headroom against backpressure, which this bounded drain never needs).
const QUEUE_RING_CAPACITY: usize = 512;
/// Repetitions per path; the median filters single-core scheduler noise.
const QUEUE_REPS: usize = 3;
/// Senders in the adapter storm (nodes 1..=SENDERS, all sending to node 0).
const STORM_SENDERS: usize = 3;
/// Packets per sender in the adapter storm.
const STORM_PER_SENDER: usize = 50_000;
/// Node counts for the scaling lane.
const SCALE_NODES: [usize; 4] = [4, 64, 256, 1024];
/// Packets each node sends to its ring neighbor in the scaling lane —
/// small, because the quantity under test is the per-node scheduling cost,
/// not steady-state delivery throughput (the storm above covers that).
const SCALE_PER_NODE: usize = 32;

/// One node-count point of the scaling lane.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Simulated nodes in the SPMD job.
    pub nodes: usize,
    /// End-to-end wall-clock seconds (pooled scheduler).
    pub secs: f64,
    /// Simulated packets delivered per wall-clock second.
    pub pps: f64,
}

/// One full run of the lane.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Queue-drain throughput through the SPSC rings (packets/sec).
    pub queue_rings_pps: f64,
    /// Queue-drain throughput through the legacy `TimedQueue` (packets/sec).
    pub queue_heap_pps: f64,
    /// End-to-end adapter packet rate under the ring path (packets/sec).
    pub adapter_rings_pps: f64,
    /// End-to-end adapter packet rate under the heap path (packets/sec).
    pub adapter_heap_pps: f64,
    /// Wall-clock seconds for the quick Figure 2 sweep.
    pub fig2_quick_secs: f64,
    /// Wall-clock seconds for the quick Figure 3 sweep.
    pub fig3_quick_secs: f64,
    /// The node-count scaling lane (pooled scheduler), one point per entry
    /// of [`SCALE_NODES`].
    pub scale: Vec<ScalePoint>,
    /// Thread-per-node wall-clock seconds at n = 4 (`SPSIM_SCHED=threads`),
    /// the pooled-vs-threads comparison point.
    pub scale_n4_threads_secs: f64,
}

impl PerfReport {
    /// rings / heap queue throughput — the tentpole speedup.
    pub fn queue_ratio(&self) -> f64 {
        self.queue_rings_pps / self.queue_heap_pps
    }
}

fn packet(src: usize, i: usize) -> WirePacket<u64> {
    WirePacket {
        src,
        dst: 0,
        wire_bytes: 1024,
        route: i % 4,
        seq: i as u64,
        injected_at: VTime::from_ns(i as u64),
        body: i as u64,
    }
}

/// Simulated-packets/sec drained through one delivery path: N producer
/// threads push timestamped packets while one consumer drains, the same
/// contention shape the per-port receive queue sees under many-to-one
/// traffic.
pub fn measure_queue_pps(path: DeliveryPath) -> f64 {
    let mut runs: Vec<f64> = (0..QUEUE_REPS)
        .map(|_| measure_queue_pps_with(path, QUEUE_PER_PRODUCER))
        .collect();
    runs.sort_by(|a, b| a.total_cmp(b));
    runs[runs.len() / 2]
}

fn measure_queue_pps_with(path: DeliveryPath, per_producer: usize) -> f64 {
    let q: DeliveryQueue<WirePacket<u64>> = match path {
        DeliveryPath::Rings => {
            DeliveryQueue::Rings(DeliveryRings::new(QUEUE_PRODUCERS, QUEUE_RING_CAPACITY))
        }
        DeliveryPath::Heap => DeliveryQueue::Heap(TimedQueue::new()),
    };
    let total = QUEUE_PRODUCERS * per_producer;
    let start = Instant::now();
    std::thread::scope(|s| {
        for lane in 0..QUEUE_PRODUCERS {
            let q = &q;
            s.spawn(move || {
                for i in 0..per_producer {
                    // Monotone per-lane timestamps, interleaved across lanes.
                    let at = VTime::from_ns((i * QUEUE_PRODUCERS + lane) as u64 * 100);
                    q.push_from(lane, at, packet(lane, i));
                }
            });
        }
        let q = &q;
        s.spawn(move || {
            let mut got = 0usize;
            while got < total {
                match q.try_recv() {
                    Ok(Some(_)) => got += 1,
                    Ok(None) => std::thread::yield_now(),
                    Err(_) => break,
                }
            }
        });
    });
    total as f64 / start.elapsed().as_secs_f64()
}

/// End-to-end adapter packet rate: a many-to-one storm through the full
/// `Network`/`Adapter` stack (link reservation, routing, trace, delivery)
/// with the reliability protocol disarmed, under the given delivery path.
pub fn measure_adapter_pps(path: DeliveryPath) -> f64 {
    let cfg = Arc::new(
        MachineConfig::default()
            .with_no_faults()
            .with_delivery_path(path),
    );
    let ads = Network::<u64>::new(STORM_SENDERS + 1, cfg, 0x6E6C).into_adapters();
    let total = STORM_SENDERS * STORM_PER_SENDER;
    let start = Instant::now();
    std::thread::scope(|s| {
        let (sink, senders) = ads.split_first().expect("nonempty network");
        for a in senders {
            s.spawn(move || {
                for i in 0..STORM_PER_SENDER {
                    // Spaced injections: the wall-clock cost under test is
                    // the delivery machinery, not ejection-link queueing.
                    a.send_at(VTime::from_us(i as u64 * 50), 0, 64, i as u64);
                }
            });
        }
        s.spawn(move || {
            let mut got = 0usize;
            while got < total {
                match sink.rx().try_recv() {
                    Ok(Some(_)) => got += 1,
                    Ok(None) => std::thread::yield_now(),
                    Err(_) => break,
                }
            }
        });
    });
    total as f64 / start.elapsed().as_secs_f64()
}

/// End-to-end SPMD wall clock for an `n`-node ring-neighbor job: every
/// node injects [`SCALE_PER_NODE`] packets toward `(rank + 1) % n` and
/// drains as many, through the full `Network`/`Adapter` stack and
/// `run_spmd_with`'s node scheduling. The drain loop yields through the
/// scheduler so the job completes on a single pooled worker.
fn run_ring_job(n: usize, per_node: usize) -> f64 {
    let cfg = Arc::new(MachineConfig::default().with_no_faults());
    let ads = Network::<u64>::new(n, cfg, 0x5CA1E).into_adapters();
    let start = Instant::now();
    spsim::run_spmd_with(ads, move |rank, a| {
        let dst = (rank + 1) % n;
        for i in 0..per_node {
            // Spaced injections, as in the adapter storm above.
            a.send_at(VTime::from_us(i as u64 * 50), dst, 64, i as u64);
        }
        let mut got = 0usize;
        while got < per_node {
            match a.rx().try_recv() {
                Ok(Some(_)) => got += 1,
                Ok(None) => spsim::yield_now(),
                Err(_) => break,
            }
        }
    });
    start.elapsed().as_secs_f64()
}

/// One scaling-lane point under the (default) pooled scheduler.
pub fn measure_scale_point(n: usize) -> ScalePoint {
    let secs = run_ring_job(n, SCALE_PER_NODE);
    ScalePoint {
        nodes: n,
        secs,
        pps: (n * SCALE_PER_NODE) as f64 / secs,
    }
}

/// The same ring job under the legacy thread-per-node scheduler.
pub fn measure_scale_threads_secs(n: usize) -> f64 {
    spsim::set_sched_mode(Some(spsim::SchedMode::Threads));
    let secs = run_ring_job(n, SCALE_PER_NODE);
    spsim::set_sched_mode(None);
    secs
}

/// Run the whole lane (several minutes of wall clock for the sweeps).
pub fn run_full() -> PerfReport {
    let queue_heap_pps = measure_queue_pps(DeliveryPath::Heap);
    let queue_rings_pps = measure_queue_pps(DeliveryPath::Rings);
    let adapter_heap_pps = measure_adapter_pps(DeliveryPath::Heap);
    let adapter_rings_pps = measure_adapter_pps(DeliveryPath::Rings);
    let t = Instant::now();
    let _ = crate::experiments::fig2::run(true);
    let fig2_quick_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let _ = crate::experiments::fig3::run(true);
    let fig3_quick_secs = t.elapsed().as_secs_f64();
    let scale = SCALE_NODES
        .iter()
        .map(|&n| measure_scale_point(n))
        .collect();
    let scale_n4_threads_secs = measure_scale_threads_secs(4);
    PerfReport {
        queue_rings_pps,
        queue_heap_pps,
        adapter_rings_pps,
        adapter_heap_pps,
        fig2_quick_secs,
        fig3_quick_secs,
        scale,
        scale_n4_threads_secs,
    }
}

/// Render the report as flat JSON (no serde in this workspace — the format
/// is one object of numeric fields, parseable by [`parse_flat_json`]).
pub fn to_json(r: &PerfReport) -> String {
    // Rates keep one decimal; the scaling-lane seconds keep four (a 4-node
    // job finishes in milliseconds and would round to 0.0).
    let mut fields: Vec<(String, String)> = vec![
        (
            "queue_rings_pps".into(),
            format!("{:.1}", r.queue_rings_pps),
        ),
        ("queue_heap_pps".into(), format!("{:.1}", r.queue_heap_pps)),
        ("queue_ratio".into(), format!("{:.1}", r.queue_ratio())),
        (
            "adapter_rings_pps".into(),
            format!("{:.1}", r.adapter_rings_pps),
        ),
        (
            "adapter_heap_pps".into(),
            format!("{:.1}", r.adapter_heap_pps),
        ),
        (
            "fig2_quick_secs".into(),
            format!("{:.1}", r.fig2_quick_secs),
        ),
        (
            "fig3_quick_secs".into(),
            format!("{:.1}", r.fig3_quick_secs),
        ),
    ];
    for p in &r.scale {
        fields.push((format!("scale_n{}_secs", p.nodes), format!("{:.4}", p.secs)));
        fields.push((format!("scale_n{}_pps", p.nodes), format!("{:.1}", p.pps)));
    }
    fields.push((
        "scale_n4_threads_secs".into(),
        format!("{:.4}", r.scale_n4_threads_secs),
    ));
    let mut s = String::from("{\n");
    for (i, (k, v)) in fields.iter().enumerate() {
        let comma = if i + 1 == fields.len() { "" } else { "," };
        s.push_str(&format!("  \"{k}\": {v}{comma}\n"));
    }
    s.push_str("}\n");
    s
}

/// Parse the flat JSON written by [`to_json`]: one object, numeric values.
/// Unknown or non-numeric entries are ignored.
pub fn parse_flat_json(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, val)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        if let Ok(v) = val.trim().parse::<f64>() {
            out.insert(key.to_string(), v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let r = PerfReport {
            queue_rings_pps: 3_000_000.0,
            queue_heap_pps: 1_000_000.0,
            adapter_rings_pps: 500_000.5,
            adapter_heap_pps: 400_000.0,
            fig2_quick_secs: 12.25,
            fig3_quick_secs: 8.5,
            scale: vec![ScalePoint {
                nodes: 4,
                secs: 0.0125,
                pps: 10_240.0,
            }],
            scale_n4_threads_secs: 0.025,
        };
        let parsed = parse_flat_json(&to_json(&r));
        assert_eq!(parsed["queue_rings_pps"], 3_000_000.0);
        assert_eq!(parsed["queue_ratio"], 3.0);
        assert_eq!(parsed["fig2_quick_secs"], 12.2, "one decimal place");
        assert_eq!(parsed["scale_n4_secs"], 0.0125, "four decimal places");
        assert_eq!(parsed["scale_n4_pps"], 10_240.0);
        assert_eq!(parsed["scale_n4_threads_secs"], 0.025);
        assert_eq!(parsed.len(), 10);
    }

    #[test]
    fn queue_lane_measures_both_paths() {
        // Smoke test at tiny volume: both paths drain to completion and
        // report a positive rate.
        assert!(measure_queue_pps_with(DeliveryPath::Heap, 2_000) > 0.0);
        assert!(measure_queue_pps_with(DeliveryPath::Rings, 2_000) > 0.0);
    }

    #[test]
    fn scaling_lane_runs_under_both_schedulers() {
        // Small job: the lane completes pooled and threaded and reports
        // positive wall-clock times.
        let p = measure_scale_point(4);
        assert_eq!(p.nodes, 4);
        assert!(p.secs > 0.0 && p.pps > 0.0);
        assert!(measure_scale_threads_secs(4) > 0.0);
    }
}
