//! Structured experiment reports: tables and data series with the paper's
//! reference values alongside measured ones.

use std::fmt;

/// One measured scalar with an optional paper-reported reference.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Row label ("polling round-trip", …).
    pub label: String,
    /// Measured value.
    pub measured: f64,
    /// Unit ("us", "MB/s", "%").
    pub unit: String,
    /// The value the paper reports, if it gives one.
    pub paper: Option<f64>,
}

impl Measurement {
    /// A measurement with a paper reference value.
    pub fn with_paper(label: &str, measured: f64, unit: &str, paper: f64) -> Self {
        Measurement {
            label: label.to_string(),
            measured,
            unit: unit.to_string(),
            paper: Some(paper),
        }
    }

    /// A measurement the paper reports no exact number for.
    pub fn plain(label: &str, measured: f64, unit: &str) -> Self {
        Measurement {
            label: label.to_string(),
            measured,
            unit: unit.to_string(),
            paper: None,
        }
    }

    /// measured / paper (how close the reproduction landed).
    pub fn ratio(&self) -> Option<f64> {
        self.paper.map(|p| self.measured / p)
    }
}

/// Wire-reliability counters gathered from the adapters of an experiment:
/// how hard the ACK/retransmit protocol had to work to deliver the result.
#[derive(Debug, Clone, Default)]
pub struct Reliability {
    /// Packets the fabric genuinely dropped (data or ACKs).
    pub fabric_drops: u64,
    /// Retransmission rounds spent recovering them.
    pub retransmits: u64,
    /// Cumulative ACK packets charged to the wire.
    pub acks_sent: u64,
    /// Fabric-duplicated or spuriously retransmitted packets the receivers
    /// suppressed.
    pub dups_suppressed: u64,
    /// Flows abandoned after the bounded retry budget (delivery timeouts).
    pub timeouts: u64,
}

impl Reliability {
    /// Accumulate one adapter's counters.
    pub fn absorb(&mut self, s: &spswitch::AdapterStats) {
        self.retransmits += s.retransmits.get();
        self.acks_sent += s.acks_sent.get();
        self.dups_suppressed += s.dups_suppressed.get();
        self.timeouts += s.timeouts.get();
    }

    /// True when the protocol never had to act (lossless run).
    pub fn is_quiet(&self) -> bool {
        self.fabric_drops == 0
            && self.retransmits == 0
            && self.acks_sent == 0
            && self.dups_suppressed == 0
            && self.timeouts == 0
    }
}

impl fmt::Display for Reliability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "drops={} retransmits={} acks={} dups-suppressed={} timeouts={}",
            self.fabric_drops,
            self.retransmits,
            self.acks_sent,
            self.dups_suppressed,
            self.timeouts
        )
    }
}

/// A named curve: (x, y) points (x usually bytes, y MB/s).
#[derive(Debug, Clone)]
pub struct Series {
    /// Curve label ("LAPI", "MPI default", …).
    pub label: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Largest y value.
    pub fn peak(&self) -> f64 {
        self.points.iter().map(|p| p.1).fold(0.0, f64::max)
    }

    /// Smallest x at which y reaches `frac` of the peak (linear
    /// interpolation between points) — e.g. the half-peak message size.
    pub fn x_at_fraction_of_peak(&self, frac: f64) -> Option<f64> {
        let target = self.peak() * frac;
        for w in self.points.windows(2) {
            let ((x0, y0), (x1, y1)) = (w[0], w[1]);
            if y0 < target && y1 >= target {
                let t = (target - y0) / (y1 - y0);
                return Some(x0 + t * (x1 - x0));
            }
        }
        self.points.first().filter(|p| p.1 >= target).map(|p| p.0)
    }

    /// y at the given x (exact match expected).
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points.iter().find(|p| p.0 == x).map(|p| p.1)
    }
}

/// A finished experiment: scalar rows and/or curves, plus notes.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id ("table2", "fig3", …).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Scalar measurements.
    pub rows: Vec<Measurement>,
    /// Curves (figures).
    pub series: Vec<Series>,
    /// Free-form observations (crossovers, half-peak points, caveats).
    pub notes: Vec<String>,
    /// Wire-reliability work behind the numbers, when an experiment
    /// collects it (always present for the fault-injection sweeps).
    pub reliability: Option<Reliability>,
}

impl Report {
    /// New empty report.
    pub fn new(id: &str, title: &str) -> Self {
        Report {
            id: id.to_string(),
            title: title.to_string(),
            rows: Vec::new(),
            series: Vec::new(),
            notes: Vec::new(),
            reliability: None,
        }
    }

    /// Append a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "================================================================"
        )?;
        writeln!(f, "{} — {}", self.id, self.title)?;
        writeln!(
            f,
            "================================================================"
        )?;
        if !self.rows.is_empty() {
            writeln!(
                f,
                "{:<38} {:>12} {:>12} {:>8}",
                "measurement", "measured", "paper", "ratio"
            )?;
            for m in &self.rows {
                let paper = m
                    .paper
                    .map(|p| format!("{p:.1}"))
                    .unwrap_or_else(|| "-".to_string());
                let ratio = m
                    .ratio()
                    .map(|r| format!("{r:.2}x"))
                    .unwrap_or_else(|| "-".to_string());
                writeln!(
                    f,
                    "{:<38} {:>9.1} {:<2} {:>12} {:>8}",
                    m.label, m.measured, m.unit, paper, ratio
                )?;
            }
        }
        for s in &self.series {
            writeln!(f, "--- series: {} (peak {:.1} MB/s)", s.label, s.peak())?;
            writeln!(f, "{:>12} {:>12}", "bytes", "MB/s")?;
            for (x, y) in &s.points {
                writeln!(f, "{:>12} {:>12.2}", *x as u64, y)?;
            }
        }
        if let Some(r) = &self.reliability {
            writeln!(f, "reliability: {r}")?;
        }
        for n in &self.notes {
            writeln!(f, "note: {n}")?;
        }
        Ok(())
    }
}

/// The message-size sweep of the paper's figures (16 B – 2 MB).
pub fn size_sweep() -> Vec<usize> {
    (4..=21).map(|p| 1usize << p).collect()
}

/// Series length shrinking as request size grows (the paper's §5.4
/// methodology: "a series of operations with the series length decreasing
/// as the request size increases").
pub fn reps_for(bytes: usize, quick: bool) -> usize {
    let base = (1 << 22) / bytes.max(1);
    let r = base.clamp(3, 40);
    if quick {
        (r / 4).max(2)
    } else {
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_peak_and_half_peak() {
        let s = Series {
            label: "t".into(),
            points: vec![(1.0, 10.0), (2.0, 50.0), (4.0, 90.0), (8.0, 100.0)],
        };
        assert_eq!(s.peak(), 100.0);
        let half = s.x_at_fraction_of_peak(0.5).expect("crosses half");
        assert!(half > 1.0 && half < 4.0, "{half}");
        assert_eq!(s.y_at(4.0), Some(90.0));
        assert_eq!(s.y_at(3.0), None);
    }

    #[test]
    fn measurement_ratio() {
        let m = Measurement::with_paper("x", 40.0, "us", 50.0);
        assert_eq!(m.ratio(), Some(0.8));
        assert_eq!(Measurement::plain("y", 1.0, "us").ratio(), None);
    }

    #[test]
    fn sweep_covers_paper_range() {
        let s = size_sweep();
        assert_eq!(*s.first().expect("nonempty"), 16);
        assert_eq!(*s.last().expect("nonempty"), 2 * 1024 * 1024);
    }

    #[test]
    fn reps_shrink_with_size() {
        assert!(reps_for(16, false) >= reps_for(1 << 20, false));
        assert!(reps_for(16, true) < reps_for(16, false));
        assert!(reps_for(1 << 21, false) >= 3);
    }

    #[test]
    fn report_renders() {
        let mut r = Report::new("t", "test");
        r.rows
            .push(Measurement::with_paper("lat", 34.5, "us", 34.0));
        r.series.push(Series {
            label: "c".into(),
            points: vec![(16.0, 1.0)],
        });
        r.note("hello");
        let text = r.to_string();
        assert!(text.contains("lat"));
        assert!(text.contains("hello"));
        assert!(text.contains("1.01x") || text.contains("1.02x"));
    }
}
