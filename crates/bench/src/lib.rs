//! # lapi-bench — the experiment harness reproducing the paper's evaluation
//!
//! One module per paper artifact; each returns a structured
//! [`report::Report`] that the binaries print (and `cargo bench` runs via
//! the `experiments` bench target). Absolute numbers come from the
//! calibrated cost model in `spsim::MachineConfig`; *shapes* — who wins,
//! by what factor, where the protocol crossovers fall — come from actually
//! executing the protocols over the simulated switch.
//!
//! | Paper artifact | Module | Binary |
//! |---|---|---|
//! | Table 2 (latency) | [`experiments::table2`] | `table2` |
//! | §4 pipeline latency | [`experiments::pipeline`] | `pipeline_latency` |
//! | Figure 2 (bandwidth) | [`experiments::fig2`] | `fig2` |
//! | §5.4 GA element latency | [`experiments::ga_latency`] | `ga_latency` |
//! | Figure 3 (GA put bw) | [`experiments::fig3`] | `fig3` |
//! | Figure 4 (GA get bw) | [`experiments::fig4`] | `fig4` |
//! | §5.4 app improvement | [`experiments::app_speedup`] | `app_speedup` |
//! | design ablations (§2.1/§4/§6) | [`experiments::ablation`] | `ablation` |

pub mod experiments;
pub mod perf;
pub mod report;
pub mod worlds;

/// Run every experiment in paper order, printing reports as they finish.
/// `quick` shrinks repetition counts (used by `cargo bench`).
/// An experiment entry point.
type ExperimentFn = fn(bool) -> report::Report;

pub fn run_all(quick: bool) -> Vec<report::Report> {
    let runs: Vec<(&str, ExperimentFn)> = vec![
        ("table2", experiments::table2::run),
        ("pipeline_latency", experiments::pipeline::run),
        ("fig2", experiments::fig2::run),
        ("ga_latency", experiments::ga_latency::run),
        ("fig3", experiments::fig3::run),
        ("fig4", experiments::fig4::run),
        ("app_speedup", experiments::app_speedup::run),
        ("ablation", experiments::ablation::run),
    ];
    runs.into_iter()
        .map(|(_, f)| {
            let r = f(quick);
            println!("{r}");
            r
        })
        .collect()
}
