//! Runs every experiment in paper order (Table 2 → Figure 4 → §5.4 apps).
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    lapi_bench::run_all(quick);
}
