//! Regenerates the paper artifact; see `lapi_bench::experiments::fig4`.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", lapi_bench::experiments::fig4::run(quick));
}
