//! The committed wall-clock performance lane.
//!
//! ```text
//! perf_lane                 run the full lane, print JSON to stdout
//! perf_lane --out PATH      …and also write the JSON to PATH
//! perf_lane --check PATH    re-measure the packets/sec metrics and exit
//!                           nonzero if either regressed >20% against the
//!                           committed baseline at PATH
//! ```

use lapi_bench::perf;
use spsim::DeliveryPath;

/// Fraction of the committed baseline a fresh measurement must reach
/// (1 − the 20% regression budget).
const FLOOR: f64 = 0.8;

fn check(path: &str) -> i32 {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let base = perf::parse_flat_json(&text);
    let mut failed = false;
    let checks = [
        (
            "queue_rings_pps",
            perf::measure_queue_pps(DeliveryPath::Rings),
        ),
        (
            "adapter_rings_pps",
            perf::measure_adapter_pps(DeliveryPath::Rings),
        ),
        ("scale_n1024_pps", perf::measure_scale_point(1024).pps),
    ];
    for (key, measured) in checks {
        let Some(&committed) = base.get(key) else {
            println!("{key}: no committed value in {path} — skipping");
            continue;
        };
        let floor = committed * FLOOR;
        let verdict = if measured >= floor { "ok" } else { "REGRESSED" };
        println!(
            "{key}: measured {measured:.0} vs committed {committed:.0} \
             (floor {floor:.0}) — {verdict}"
        );
        if measured < floor {
            failed = true;
        }
    }
    if failed {
        eprintln!("perf_lane: packets/sec regressed >20% against {path}");
        1
    } else {
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--check") => {
            let path = args.get(1).map(String::as_str).unwrap_or("BENCH_10.json");
            std::process::exit(check(path));
        }
        Some("--out") => {
            let path = args.get(1).expect("--out needs a path");
            let json = perf::to_json(&perf::run_full());
            std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            print!("{json}");
        }
        None => {
            print!("{}", perf::to_json(&perf::run_full()));
        }
        Some(other) => {
            eprintln!("perf_lane: unknown argument {other} (try --out PATH or --check PATH)");
            std::process::exit(2);
        }
    }
}
