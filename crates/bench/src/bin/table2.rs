//! Regenerates the paper artifact; see `lapi_bench::experiments::table2`.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", lapi_bench::experiments::table2::run(quick));
}
