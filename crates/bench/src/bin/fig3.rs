//! Regenerates the paper artifact; see `lapi_bench::experiments::fig3`.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", lapi_bench::experiments::fig3::run(quick));
}
