//! Regenerates the paper artifact; see `lapi_bench::experiments::app_speedup`.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", lapi_bench::experiments::app_speedup::run(quick));
}
