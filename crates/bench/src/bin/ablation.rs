//! Design-choice ablations; see `lapi_bench::experiments::ablation`.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", lapi_bench::experiments::ablation::run(quick));
}
