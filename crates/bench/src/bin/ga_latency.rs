//! Regenerates the paper artifact; see `lapi_bench::experiments::ga_latency`.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", lapi_bench::experiments::ga_latency::run(quick));
}
