//! World construction helpers shared by the experiments.

use std::sync::Arc;

use ga::{Ga, GaBackend, GaConfig, LapiGaBackend, MplGaBackend};
use lapi::{LapiContext, LapiWorld, Mode};
use mpl::{MplContext, MplMode, MplWorld};
use spsim::MachineConfig;

/// Deterministic default seed for experiments.
pub const SEED: u64 = 0x1998_0330;

/// The calibrated machine of the paper's evaluation.
pub fn machine() -> MachineConfig {
    MachineConfig::sp_p2sc_120()
}

/// A LAPI job.
pub fn lapi(n: usize, mode: Mode) -> Vec<LapiContext> {
    LapiWorld::init_seeded(n, machine(), mode, SEED)
}

/// An MPL job with a given `MP_EAGER_LIMIT`.
pub fn mpl(n: usize, mode: MplMode, eager_limit: usize) -> Vec<MplContext> {
    MplWorld::init_seeded(n, machine().with_eager_limit(eager_limit), mode, SEED)
}

/// A GA job on the LAPI backend (interrupt mode, as GA requires unilateral
/// progress).
pub fn ga_lapi(n: usize) -> Vec<Ga> {
    lapi(n, Mode::Interrupt)
        .into_iter()
        .map(|ctx| Ga::new(LapiGaBackend::new(ctx, GaConfig::default()) as Arc<dyn GaBackend>))
        .collect()
}

/// A GA job on the MPL backend. The paper's MPL-era GA benefited from
/// generous protocol buffering ("the much larger buffer space in MPL"); a
/// 16 KB eager limit reproduces its return-after-copy behaviour up to the
/// ≈20 KB crossover of Figure 3.
pub fn ga_mpl(n: usize) -> Vec<Ga> {
    mpl(n, MplMode::Interrupt, 16 * 1024)
        .into_iter()
        .map(|ctx| Ga::new(MplGaBackend::new(ctx) as Arc<dyn GaBackend>))
        .collect()
}
