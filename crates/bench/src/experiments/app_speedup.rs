//! §5.4 application-level improvement: "performance improvement over
//! MPL-versions vary from 10 to 50% depending on the problem size, ratio
//! of communication and calculations, and physical properties".
//!
//! The workload is a synthetic SCF-style iteration — the electronic-
//! structure pattern the paper's GA applications (SCF/DFT/MP2) share:
//! a `read_inc` task counter hands out blocks dynamically (the classic
//! `nxtval` idiom), each task `get`s a block of the density matrix,
//! "computes" a Fock-matrix contribution (charged as virtual FLOP time),
//! and `acc`umulates it into the distributed result. We sweep the
//! compute-per-task grain to vary the communication/computation ratio.

use ga::{Ga, GaKind, Patch};
use spsim::{run_spmd_with, VDur};

use crate::report::{Measurement, Report};
use crate::worlds;

/// One SCF-like iteration; returns node 0's elapsed virtual time in µs.
fn scf_iteration(gas: Vec<Ga>, nblocks: usize, block: usize, compute_us_per_block: u64) -> f64 {
    let out = run_spmd_with(gas, move |_rank, ga| {
        let n = nblocks * block;
        let density = ga.create("density", n, n, GaKind::Double);
        let fock = ga.create("fock", n, n, GaKind::Double);
        let counter = ga.create("nxtval", 1, 1, GaKind::Int);
        density.fill(0.5);
        fock.fill(0.0);
        counter.fill_int(0);
        ga.sync();
        let t0 = ga.now();
        // dynamic load balancing via the atomic ticket counter
        loop {
            let t = counter.read_inc(0, 0, 1) as usize;
            if t >= nblocks * nblocks {
                break;
            }
            let (bi, bj) = (t / nblocks, t % nblocks);
            let p = Patch::new(
                (bi * block, bj * block),
                (bi * block + block - 1, bj * block + block - 1),
            );
            let d = density.get(p);
            // model the Fock-contribution arithmetic
            ga.compute(VDur::from_us(compute_us_per_block));
            let contrib: Vec<f64> = d.iter().map(|v| v * 0.1).collect();
            fock.acc(p, 1.0, &contrib);
        }
        ga.sync();
        (ga.now() - t0).as_us()
    });
    out.into_iter().fold(0.0, f64::max)
}

/// Run the application-improvement reproduction.
pub fn run(quick: bool) -> Report {
    let mut r = Report::new(
        "app_speedup",
        "SCF-like application: GA/LAPI improvement over GA/MPL (§5.4)",
    );
    // (grain label, blocks per dim, block edge, compute µs per block)
    let grains: &[(&str, usize, usize, u64)] = if quick {
        &[("comm-heavy", 6, 8, 150), ("balanced", 6, 8, 700)]
    } else {
        &[
            ("comm-heavy (small blocks)", 8, 8, 150),
            ("balanced", 8, 8, 700),
            ("compute-heavy (fine tickets)", 12, 8, 600),
            ("large blocks", 4, 32, 1200),
        ]
    };
    for &(label, nblocks, block, comp) in grains {
        let lapi_us = scf_iteration(worlds::ga_lapi(4), nblocks, block, comp);
        let mpl_us = scf_iteration(worlds::ga_mpl(4), nblocks, block, comp);
        let improvement = (mpl_us - lapi_us) / mpl_us * 100.0;
        r.rows.push(Measurement::plain(
            &format!("improvement, {label}"),
            improvement,
            "%",
        ));
    }
    r.note("paper: 10-50% depending on communication/computation ratio");
    r.note("4 nodes; dynamic load balancing via GA read_inc (nxtval), get + compute + acc");
    r
}
