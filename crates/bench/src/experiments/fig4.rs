//! Figure 4: performance of GA *get* under LAPI and MPL.
//!
//! Same setup as Figure 3 but for the blocking get. Paper landmarks:
//! * LAPI outperforms MPL for **all** cases (each MPL request pays the
//!   rcvncall context plus reply copies);
//! * both implementations do better for 1-D than 2-D requests;
//! * the LAPI 1-D path uses `LAPI_Get` directly, avoiding two copies; the
//!   2-D path switches to per-column `LAPI_Get` around 0.5 MB.

use crate::experiments::ga_bw::{bandwidth_series, ga_size_sweep, GaOp, Shape};
use crate::report::{Measurement, Report};
use crate::worlds;

/// Run the Figure 4 reproduction.
pub fn run(quick: bool) -> Report {
    let sizes = ga_size_sweep();
    let lapi_1d = bandwidth_series(
        "GA get LAPI 1-D",
        || worlds::ga_lapi(4),
        GaOp::Get,
        Shape::OneD,
        &sizes,
        quick,
    );
    let lapi_2d = bandwidth_series(
        "GA get LAPI 2-D",
        || worlds::ga_lapi(4),
        GaOp::Get,
        Shape::TwoD,
        &sizes,
        quick,
    );
    let mpl_1d = bandwidth_series(
        "GA get MPL 1-D",
        || worlds::ga_mpl(4),
        GaOp::Get,
        Shape::OneD,
        &sizes,
        quick,
    );
    let mpl_2d = bandwidth_series(
        "GA get MPL 2-D",
        || worlds::ga_mpl(4),
        GaOp::Get,
        Shape::TwoD,
        &sizes,
        quick,
    );

    let mut r = Report::new("fig4", "GA get bandwidth under LAPI and MPL (Figure 4)");
    // LAPI should win at every point of both shapes.
    let mut lapi_wins = 0usize;
    let mut total = 0usize;
    for (l, m) in lapi_1d.points.iter().zip(&mpl_1d.points) {
        total += 1;
        if l.1 >= m.1 {
            lapi_wins += 1;
        }
    }
    for (l, m) in lapi_2d.points.iter().zip(&mpl_2d.points) {
        total += 1;
        if l.1 >= m.1 {
            lapi_wins += 1;
        }
    }
    r.rows.push(Measurement::plain(
        "fraction of sizes where LAPI get wins (paper: all)",
        lapi_wins as f64 / total as f64,
        "",
    ));
    r.rows.push(Measurement::plain(
        "LAPI 1-D get peak bandwidth",
        lapi_1d.peak(),
        "MB/s",
    ));
    r.rows.push(Measurement::plain(
        "LAPI 1-D / 2-D peak ratio (paper: 1-D better)",
        lapi_1d.peak() / lapi_2d.peak().max(1e-9),
        "x",
    ));
    r.rows.push(Measurement::plain(
        "MPL 1-D / 2-D peak ratio (paper: 1-D better)",
        mpl_1d.peak() / mpl_2d.peak().max(1e-9),
        "x",
    ));
    r.series = vec![lapi_1d, lapi_2d, mpl_1d, mpl_2d];
    r.note("4 nodes, round-robin remote targets, fresh patches; get is blocking");
    r
}
