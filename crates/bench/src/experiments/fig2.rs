//! Figure 2: one-way bandwidth, 16 B – 2 MB.
//!
//! Three curves, as in the paper:
//! * **LAPI** — `LAPI_Put` + wait on the completion counter per message;
//! * **MPI default** — send/recv with the default 4 KB `MP_EAGER_LIMIT`
//!   (the rendezvous kink above 4 KB);
//! * **MPI eager=64K** — `MP_EAGER_LIMIT=65536` (eager, with its extra
//!   copy, all the way to 64 KB).
//!
//! Every transfer is individually completed (LAPI: `cmpl_cntr`; MPI: a
//! 0-byte acknowledgement message), matching the paper's per-operation
//! series methodology. Paper landmarks: LAPI asymptote ≈97 MB/s, MPI ≈98;
//! half-peak ≈8 KB (LAPI) vs ≈23 KB (MPI default); LAPI considerably
//! faster through the 256 B–64 KB midrange.

use lapi::Mode;
use mpl::MplMode;
use spsim::run_spmd_with;

use crate::report::{reps_for, size_sweep, Measurement, Report, Series};
use crate::worlds;

/// LAPI put bandwidth at one message size.
fn lapi_bw(bytes: usize, reps: usize) -> f64 {
    let ctxs = worlds::lapi(2, Mode::Polling);
    let rates = run_spmd_with(ctxs, |rank, ctx| {
        let buf = ctx.alloc(bytes.max(8));
        let tgt = ctx.new_counter();
        let addrs = ctx.address_init(buf);
        let remotes = ctx.counter_init(&tgt);
        let t0 = ctx.barrier();
        let mut rate = 0.0;
        if rank == 0 {
            let cmpl = ctx.new_counter();
            let data = vec![7u8; bytes];
            for _ in 0..reps {
                ctx.put(1, addrs[1], &data, Some(remotes[1]), None, Some(&cmpl))
                    .expect("put");
                ctx.waitcntr(&cmpl, 1);
            }
            let dt = ctx.now() - t0;
            rate = dt.rate_mb_s((bytes * reps) as u64);
        } else {
            // polling target: one wait covers the whole series
            ctx.waitcntr(&tgt, reps as i64);
        }
        ctx.gfence().expect("gfence");
        rate
    });
    rates[0]
}

/// MPI send/recv bandwidth at one message size under a given eager limit.
fn mpi_bw(bytes: usize, reps: usize, eager_limit: usize) -> f64 {
    let ctxs = worlds::mpl(2, MplMode::Polling, eager_limit);
    let rates = run_spmd_with(ctxs, |rank, ctx| {
        let t0 = ctx.barrier();
        let mut rate = 0.0;
        if rank == 0 {
            let data = vec![7u8; bytes];
            for _ in 0..reps {
                ctx.send(1, 1, &data);
                let _ = ctx.recv(Some(1), Some(2)); // 0-byte ack
            }
            let dt = ctx.now() - t0;
            rate = dt.rate_mb_s((bytes * reps) as u64);
        } else {
            for _ in 0..reps {
                let _ = ctx.recv(Some(0), Some(1));
                ctx.send(0, 2, &[]);
            }
        }
        ctx.barrier();
        rate
    });
    rates[0]
}

/// Run the Figure 2 reproduction.
pub fn run(quick: bool) -> Report {
    let mut r = Report::new("fig2", "LAPI and MPI one-way bandwidth (Figure 2)");
    let sizes = size_sweep();
    let mut lapi = Series {
        label: "LAPI put".into(),
        points: Vec::new(),
    };
    let mut mpi_def = Series {
        label: "MPI default (eager 4K)".into(),
        points: Vec::new(),
    };
    let mut mpi_64k = Series {
        label: "MPI MP_EAGER_LIMIT=65536".into(),
        points: Vec::new(),
    };
    for &n in &sizes {
        let reps = reps_for(n, quick);
        lapi.points.push((n as f64, lapi_bw(n, reps)));
        mpi_def.points.push((n as f64, mpi_bw(n, reps, 4096)));
        mpi_64k.points.push((n as f64, mpi_bw(n, reps, 65536)));
    }

    r.rows.push(Measurement::with_paper(
        "LAPI asymptotic bandwidth",
        lapi.peak(),
        "MB/s",
        97.0,
    ));
    r.rows.push(Measurement::with_paper(
        "MPI asymptotic bandwidth",
        mpi_def.peak().max(mpi_64k.peak()),
        "MB/s",
        98.0,
    ));
    if let Some(h) = lapi.x_at_fraction_of_peak(0.5) {
        r.rows.push(Measurement::with_paper(
            "LAPI half-peak message size",
            h / 1024.0,
            "KB",
            8.0,
        ));
    }
    if let Some(h) = mpi_def.x_at_fraction_of_peak(0.5) {
        r.rows.push(Measurement::with_paper(
            "MPI half-peak message size",
            h / 1024.0,
            "KB",
            23.0,
        ));
    }
    // Midrange advantage: LAPI vs the best MPI curve at 8 KB.
    let mid = 8192.0;
    if let (Some(l), Some(d), Some(e)) = (lapi.y_at(mid), mpi_def.y_at(mid), mpi_64k.y_at(mid)) {
        r.rows.push(Measurement::plain(
            "LAPI / best-MPI bandwidth at 8KB",
            l / d.max(e),
            "x",
        ));
    }
    r.series = vec![lapi, mpi_def, mpi_64k];
    r.note("per-message completion (LAPI cmpl counter / MPI 0-byte ack), polling mode");
    r.note(
        "paper: MPI default flattens past the 4K eager limit (rendezvous round trip); \
            eager=64K removes it at the price of the extra copy",
    );
    r
}
