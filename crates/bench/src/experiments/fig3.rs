//! Figure 3: performance of GA *put* under LAPI and MPL.
//!
//! Four curves (LAPI/MPL × 1-D/2-D), 8 B – 2 MB. Paper landmarks:
//! * MPL's larger buffer space lets its put return sooner for requests
//!   between ≈1 KB and ≈20 KB (the send is non-blocking);
//! * for larger requests sender-side buffering is impossible and the LAPI
//!   implementation is faster;
//! * GA's 1-D put reaches within ~6 % of raw `LAPI_Put` bandwidth (direct
//!   RMC, no copies), while 2-D requests switch to per-column `LAPI_Put`
//!   around 0.5 MB;
//! * the MPL implementation performs identically for 1-D and 2-D (the
//!   sender copy cannot be avoided either way).

use crate::experiments::ga_bw::{bandwidth_series, ga_size_sweep, GaOp, Shape};
use crate::report::{Measurement, Report};
use crate::worlds;

/// Run the Figure 3 reproduction.
pub fn run(quick: bool) -> Report {
    let sizes = ga_size_sweep();
    let lapi_1d = bandwidth_series(
        "GA put LAPI 1-D",
        || worlds::ga_lapi(4),
        GaOp::Put,
        Shape::OneD,
        &sizes,
        quick,
    );
    let lapi_2d = bandwidth_series(
        "GA put LAPI 2-D",
        || worlds::ga_lapi(4),
        GaOp::Put,
        Shape::TwoD,
        &sizes,
        quick,
    );
    let mpl_1d = bandwidth_series(
        "GA put MPL 1-D",
        || worlds::ga_mpl(4),
        GaOp::Put,
        Shape::OneD,
        &sizes,
        quick,
    );
    let mpl_2d = bandwidth_series(
        "GA put MPL 2-D",
        || worlds::ga_mpl(4),
        GaOp::Put,
        Shape::TwoD,
        &sizes,
        quick,
    );

    let mut r = Report::new("fig3", "GA put bandwidth under LAPI and MPL (Figure 3)");
    // Paper landmark checks, reported as measurements:
    let at = |s: &crate::report::Series, x: usize| s.y_at(x as f64).unwrap_or(0.0);
    r.rows.push(Measurement::plain(
        "MPL/LAPI 1-D put ratio at 8KB (paper: MPL ahead 1-20KB)",
        at(&mpl_1d, 8192) / at(&lapi_1d, 8192).max(1e-9),
        "x",
    ));
    r.rows.push(Measurement::plain(
        "LAPI/MPL 1-D put ratio at 1MB (paper: LAPI ahead when large)",
        at(&lapi_1d, 1 << 20) / at(&mpl_1d, 1 << 20).max(1e-9),
        "x",
    ));
    r.rows.push(Measurement::plain(
        "LAPI 1-D put peak bandwidth",
        lapi_1d.peak(),
        "MB/s",
    ));
    r.rows.push(Measurement::plain(
        "MPL 1-D vs 2-D peak ratio (paper: identical)",
        mpl_1d.peak() / mpl_2d.peak().max(1e-9),
        "x",
    ));
    r.series = vec![lapi_1d, lapi_2d, mpl_1d, mpl_2d];
    r.note("4 nodes, round-robin remote targets, fresh patches; put timed to call return");
    r
}
