//! Ablations of the design choices the paper discusses:
//!
//! 1. **Vector RMC (§6 extension)** — rerun the Figure-3/4 2-D GA transfers
//!    with the `putv`/`getv` noncontiguous interface the paper lists as
//!    future work, quantifying the improvement it predicts ("removing the
//!    overhead associated with multiple requests or the copy overhead").
//! 2. **Packet-header tax (§4)** — the paper attributes LAPI's lower peak
//!    bandwidth to its 48-byte headers and calls reducing them future
//!    work: sweep the header size.
//! 3. **Interrupt vs polling (§2.1)** — the cost of unilateral progress.
//! 4. **`MP_EAGER_LIMIT` sweep (§4)** — the eager/rendezvous trade the
//!    default 4 KB limit embodies.

use std::sync::Arc;

use ga::{Ga, GaBackend, GaConfig, LapiGaBackend};
use lapi::Mode;
use spsim::run_spmd_with;

use crate::experiments::ga_bw::{bandwidth_series, ga_size_sweep, GaOp, Shape};
use crate::report::{Measurement, Reliability, Report, Series};
use crate::worlds;

/// GA world on LAPI with the §6 vector extension enabled.
fn ga_lapi_vector(n: usize) -> Vec<Ga> {
    worlds::lapi(n, Mode::Interrupt)
        .into_iter()
        .map(|ctx| {
            Ga::new(
                LapiGaBackend::new(ctx, GaConfig::default().with_vector_rmc())
                    as Arc<dyn GaBackend>,
            )
        })
        .collect()
}

fn vector_rmc_ablation(quick: bool, r: &mut Report) {
    let sizes: Vec<usize> = ga_size_sweep()
        .into_iter()
        .filter(|&s| (4096..=1 << 20).contains(&s))
        .collect();
    let hybrid_put = bandwidth_series(
        "2-D put, 1998 hybrid AM",
        || worlds::ga_lapi(4),
        GaOp::Put,
        Shape::TwoD,
        &sizes,
        quick,
    );
    let vector_put = bandwidth_series(
        "2-D put, §6 vector RMC",
        || ga_lapi_vector(4),
        GaOp::Put,
        Shape::TwoD,
        &sizes,
        quick,
    );
    let hybrid_get = bandwidth_series(
        "2-D get, 1998 hybrid AM",
        || worlds::ga_lapi(4),
        GaOp::Get,
        Shape::TwoD,
        &sizes,
        quick,
    );
    let vector_get = bandwidth_series(
        "2-D get, §6 vector RMC",
        || ga_lapi_vector(4),
        GaOp::Get,
        Shape::TwoD,
        &sizes,
        quick,
    );
    let gain = |a: &Series, b: &Series, x: usize| {
        b.y_at(x as f64).unwrap_or(0.0) / a.y_at(x as f64).unwrap_or(f64::INFINITY)
    };
    r.rows.push(Measurement::plain(
        "vector/hybrid 2-D put gain at 64KB",
        gain(&hybrid_put, &vector_put, 65536),
        "x",
    ));
    r.rows.push(Measurement::plain(
        "vector/hybrid 2-D get gain at 64KB",
        gain(&hybrid_get, &vector_get, 65536),
        "x",
    ));
    r.series
        .extend([hybrid_put, vector_put, hybrid_get, vector_get]);
}

fn header_tax_ablation(quick: bool, r: &mut Report) {
    // LAPI put+wait bandwidth at 2MB under several header sizes.
    let bw = |header: usize| {
        let mut cfg = worlds::machine();
        cfg.lapi_header_bytes = header;
        let ctxs = lapi::LapiWorld::init_seeded(2, cfg, Mode::Polling, worlds::SEED);
        let reps = if quick { 2 } else { 4 };
        let bytes = 2 * 1024 * 1024;
        let rates = run_spmd_with(ctxs, move |rank, ctx| {
            let buf = ctx.alloc(bytes);
            let tgt = ctx.new_counter();
            let addrs = ctx.address_init(buf);
            let remotes = ctx.counter_init(&tgt);
            let t0 = ctx.barrier();
            let mut rate = 0.0;
            if rank == 0 {
                let cmpl = ctx.new_counter();
                let data = vec![1u8; bytes];
                for _ in 0..reps {
                    ctx.put(1, addrs[1], &data, Some(remotes[1]), None, Some(&cmpl))
                        .expect("put");
                    ctx.waitcntr(&cmpl, 1);
                }
                rate = (ctx.now() - t0).rate_mb_s((bytes * reps) as u64);
            } else {
                ctx.waitcntr(&tgt, reps as i64);
            }
            ctx.gfence().expect("gfence");
            rate
        });
        rates[0]
    };
    let with_48 = bw(48);
    let with_16 = bw(16);
    r.rows.push(Measurement::plain(
        "LAPI 2MB bandwidth, 48B headers (the shipped design)",
        with_48,
        "MB/s",
    ));
    r.rows.push(Measurement::plain(
        "LAPI 2MB bandwidth, 16B headers (the §4 future work)",
        with_16,
        "MB/s",
    ));
    r.rows.push(Measurement::plain(
        "header-tax recovery",
        with_16 / with_48,
        "x",
    ));
}

/// How the adapter's ACK/retransmit protocol degrades LAPI put bandwidth as
/// the fabric gets lossier: the price of reliability the paper's adapters
/// paid in microcode.
fn drop_prob_sweep(quick: bool, r: &mut Report) {
    let mut series = Series {
        label: "LAPI 256KB put bandwidth vs fabric drop probability".into(),
        points: Vec::new(),
    };
    let mut rel = Reliability::default();
    let reps = if quick { 2 } else { 4 };
    let bytes = 256 * 1024;
    let mut lossless_bw = 0.0;
    for &p in &[0.0, 0.05, 0.1, 0.2, 0.4] {
        let cfg = worlds::machine().with_no_faults().with_drop_prob(p);
        let ctxs = lapi::LapiWorld::init_seeded(2, cfg, Mode::Polling, worlds::SEED);
        let out = run_spmd_with(ctxs, move |rank, ctx| {
            let buf = ctx.alloc(bytes);
            let tgt = ctx.new_counter();
            let addrs = ctx.address_init(buf);
            let remotes = ctx.counter_init(&tgt);
            let t0 = ctx.barrier();
            let mut rate = 0.0;
            if rank == 0 {
                let cmpl = ctx.new_counter();
                let data = vec![1u8; bytes];
                for _ in 0..reps {
                    ctx.put(1, addrs[1], &data, Some(remotes[1]), None, Some(&cmpl))
                        .expect("put");
                    ctx.waitcntr(&cmpl, 1);
                }
                rate = (ctx.now() - t0).rate_mb_s((bytes * reps) as u64);
            } else {
                ctx.waitcntr(&tgt, reps as i64);
            }
            ctx.gfence().expect("gfence");
            let s = ctx.wire_stats();
            (
                rate,
                s.retransmits.get(),
                s.acks_sent.get(),
                s.dups_suppressed.get(),
                s.timeouts.get(),
            )
        });
        for (_, retx, acks, dups, tmo) in &out {
            rel.retransmits += retx;
            rel.acks_sent += acks;
            rel.dups_suppressed += dups;
            rel.timeouts += tmo;
        }
        if p == 0.0 {
            lossless_bw = out[0].0;
        }
        series.points.push((p * 100.0, out[0].0));
    }
    let worst = series.points.last().expect("sweep nonempty").1;
    r.rows.push(Measurement::plain(
        "put bandwidth retained at 40% drop rate",
        100.0 * worst / lossless_bw,
        "%",
    ));
    // Drops equal retransmission rounds by construction; the adapters
    // don't see fabric losses directly.
    rel.fabric_drops = rel.retransmits;
    r.reliability = Some(rel);
    r.series.push(series);
}

fn interrupt_vs_polling(quick: bool, r: &mut Report) {
    let one_way = |mode: Mode| {
        let reps = if quick { 15 } else { 50 };
        let ctxs = worlds::lapi(2, mode);
        let times = run_spmd_with(ctxs, move |rank, ctx| {
            let buf = ctx.alloc(4);
            let tgt = ctx.new_counter();
            let addrs = ctx.address_init(buf);
            let remotes = ctx.counter_init(&tgt);
            let mut total = 0.0;
            for _ in 0..reps {
                let t0 = ctx.barrier();
                if rank == 0 {
                    ctx.put(1, addrs[1], &[1u8; 4], Some(remotes[1]), None, None)
                        .expect("put");
                    ctx.fence(1).expect("fence");
                } else {
                    ctx.waitcntr(&tgt, 1);
                    total += (ctx.now() - t0).as_us();
                }
            }
            ctx.gfence().expect("gfence");
            total / reps as f64
        });
        times[1]
    };
    let polling = one_way(Mode::Polling);
    let interrupt = one_way(Mode::Interrupt);
    r.rows.push(Measurement::plain(
        "one-way latency, polling",
        polling,
        "us",
    ));
    r.rows.push(Measurement::plain(
        "one-way latency, interrupt",
        interrupt,
        "us",
    ));
    r.rows.push(Measurement::plain(
        "interrupt-mode latency penalty",
        interrupt - polling,
        "us",
    ));
}

fn eager_limit_sweep(quick: bool, r: &mut Report) {
    let mut series = Series {
        label: "MPI 8KB-message bandwidth vs MP_EAGER_LIMIT".into(),
        points: Vec::new(),
    };
    let reps = if quick { 8 } else { 30 };
    for limit_kb in [1usize, 2, 4, 8, 16, 32, 64] {
        let limit = limit_kb * 1024;
        let ctxs = worlds::mpl(2, mpl::MplMode::Polling, limit);
        let rates = run_spmd_with(ctxs, move |rank, ctx| {
            let bytes = 8192;
            let t0 = ctx.barrier();
            let mut rate = 0.0;
            if rank == 0 {
                let data = vec![7u8; bytes];
                for _ in 0..reps {
                    ctx.send(1, 1, &data);
                    let _ = ctx.recv(Some(1), Some(2));
                }
                rate = (ctx.now() - t0).rate_mb_s((bytes * reps) as u64);
            } else {
                for _ in 0..reps {
                    let _ = ctx.recv(Some(0), Some(1));
                    ctx.send(0, 2, &[]);
                }
            }
            ctx.barrier();
            rate
        });
        series.points.push((limit as f64, rates[0]));
    }
    // the kink: 8KB messages go rendezvous below an 8KB limit
    let below = series.points[1].1; // limit 2KB → rendezvous
    let above = series.points[4].1; // limit 16KB → eager
    r.rows.push(Measurement::plain(
        "eager/rendezvous bandwidth ratio for 8KB messages",
        above / below,
        "x",
    ));
    r.series.push(series);
}

/// Run the ablation suite.
pub fn run(quick: bool) -> Report {
    let mut r = Report::new("ablation", "Design-choice ablations (§2.1, §4, §6)");
    vector_rmc_ablation(quick, &mut r);
    header_tax_ablation(quick, &mut r);
    drop_prob_sweep(quick, &mut r);
    interrupt_vs_polling(quick, &mut r);
    eager_limit_sweep(quick, &mut r);
    r.note("vector RMC = the paper's §6 noncontiguous-interface future work, implemented");
    r.note("header tax = the paper's §4 'reducing the packet header size' future work");
    r.note("drop sweep = ACK/retransmit protocol cost as the fabric loses packets");
    r
}
