//! §5.4 single-element GA latency (4 nodes, 8-byte double):
//!
//! | | LAPI | MPL |
//! |---|---|---|
//! | GA get | 94.2 µs | 221 µs |
//! | GA put | 49.6 µs | 54.6 µs |
//!
//! GA put is non-blocking with respect to remote completion (it returns
//! when the origin buffer is reusable — which is why the MPL version, with
//! its generous buffering, is almost as fast); GA get is blocking. Targets
//! rotate round-robin over the three remote nodes and each access touches
//! a different element, per the paper's methodology.

use ga::{Ga, GaKind, Patch};
use spsim::run_spmd_with;

use crate::report::{Measurement, Report};
use crate::worlds;

fn measure(gas: Vec<Ga>, reps: usize) -> (f64, f64) {
    let out = run_spmd_with(gas, |rank, ga| {
        let a = ga.create("lat", 64, 64, GaKind::Double);
        a.fill(1.0);
        ga.sync();
        let mut put_total = 0.0;
        let mut get_total = 0.0;
        if rank == 0 {
            for rep in 0..reps {
                let target = 1 + rep % 3;
                let b = a.distribution(target).expect("block");
                // a fresh element every time (avoid caching effects)
                let i = b.lo.0 + rep % b.rows();
                let j = b.lo.1 + (rep / b.rows()) % b.cols();
                let p = Patch::new((i, j), (i, j));
                let t0 = ga.now();
                a.put(p, &[rep as f64]);
                put_total += (ga.now() - t0).as_us();
                let t0 = ga.now();
                let v = a.get(p);
                get_total += (ga.now() - t0).as_us();
                assert_eq!(v.len(), 1);
            }
        }
        ga.sync();
        (put_total / reps as f64, get_total / reps as f64)
    });
    out[0]
}

/// Run the GA element-latency reproduction.
pub fn run(quick: bool) -> Report {
    let reps = if quick { 15 } else { 60 };
    let (lapi_put, lapi_get) = measure(worlds::ga_lapi(4), reps);
    let (mpl_put, mpl_get) = measure(worlds::ga_mpl(4), reps);
    let mut r = Report::new(
        "ga_latency",
        "GA single-element (8B) latency, LAPI vs MPL (§5.4)",
    );
    r.rows.push(Measurement::with_paper(
        "GA put (LAPI)",
        lapi_put,
        "us",
        49.6,
    ));
    r.rows
        .push(Measurement::with_paper("GA put (MPL)", mpl_put, "us", 54.6));
    r.rows.push(Measurement::with_paper(
        "GA get (LAPI)",
        lapi_get,
        "us",
        94.2,
    ));
    r.rows.push(Measurement::with_paper(
        "GA get (MPL)",
        mpl_get,
        "us",
        221.0,
    ));
    r.rows.push(Measurement::plain(
        "get speedup LAPI over MPL",
        mpl_get / lapi_get,
        "x",
    ));
    r.note("4 nodes, round-robin remote targets, fresh elements per access");
    r.note("paper get speedup: 221/94.2 = 2.35x; put near parity (MPL buffering)");
    r
}
