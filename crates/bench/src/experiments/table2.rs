//! Table 2: 4-byte latency, LAPI vs MPI/MPL, polling and interrupt modes.
//!
//! Paper values (120 MHz P2SC, SP switch, user space):
//!
//! | measurement | LAPI | MPI/MPL |
//! |---|---|---|
//! | polling one-way | 34 µs | 43 µs |
//! | polling round-trip | 60 µs | 86 µs |
//! | interrupt round-trip | 89 µs | 200 µs |
//!
//! Methodology mirrors the paper: the MPI polling numbers use plain
//! send/recv ping-pong; the interrupt round trip uses `rcvncall` with the
//! target replying *from the handler*; the LAPI round trip is an active
//! message whose header handler sends the reply put.

use lapi::{HdrOutcome, Mode};
use mpl::MplMode;
use parking_lot::Mutex;
use spsim::run_spmd_with;
use spsim::SimCondvar;
use std::sync::Arc;

use crate::report::{Measurement, Report};
use crate::worlds;

const MSG: usize = 4;

/// LAPI one-way polling latency: put 4 B, measured at the target between
/// the barrier-aligned start and the target counter firing.
fn lapi_one_way(reps: usize) -> f64 {
    let ctxs = worlds::lapi(2, Mode::Polling);
    let times = run_spmd_with(ctxs, |rank, ctx| {
        let buf = ctx.alloc(MSG);
        let tgt = ctx.new_counter();
        let addrs = ctx.address_init(buf);
        let remotes = ctx.counter_init(&tgt);
        let mut total = 0.0;
        for _ in 0..reps {
            let t0 = ctx.barrier();
            if rank == 0 {
                ctx.put(1, addrs[1], &[1u8; MSG], Some(remotes[1]), None, None)
                    .expect("put");
                // flush our own rx (the Done ack) before the next round
                ctx.fence(1).expect("fence");
            } else {
                ctx.waitcntr(&tgt, 1);
                total += (ctx.now() - t0).as_us();
            }
        }
        ctx.gfence().expect("gfence");
        total / reps as f64
    });
    times[1]
}

/// LAPI round trip: active message whose header handler replies with a put
/// from inside the handler; measured at the origin.
fn lapi_round_trip(mode: Mode, reps: usize) -> f64 {
    let ctxs = worlds::lapi(2, mode);
    let times = run_spmd_with(ctxs, move |rank, ctx| {
        let buf = ctx.alloc(MSG);
        let reply = ctx.new_counter();
        let served = ctx.new_counter();
        let addrs = ctx.address_init(buf);
        let reply_remotes = ctx.counter_init(&reply);
        let served_remotes = ctx.counter_init(&served);
        if rank == 1 {
            let back_addr = addrs[0];
            let back_cntr = reply_remotes[0];
            ctx.register_handler(1, move |hctx, info| {
                hctx.reply_put(
                    info.src,
                    back_addr,
                    &[2u8; MSG],
                    Some(back_cntr),
                    None,
                    None,
                )
                .expect("reply");
                HdrOutcome::none()
            });
        }
        let mut total = 0.0;
        for _ in 0..reps {
            let t0 = ctx.barrier();
            if rank == 0 {
                ctx.amsend(1, 1, &[9u8; MSG], &[], Some(served_remotes[1]), None, None)
                    .expect("am");
                ctx.waitcntr(&reply, 1);
                total += (ctx.now() - t0).as_us();
                ctx.fence(1).expect("fence");
            } else {
                // In polling mode this wait drives the target's progress
                // (processing the AM and issuing the echo); in interrupt
                // mode it just keeps the rounds in lockstep.
                ctx.waitcntr(&served, 1);
            }
        }
        ctx.gfence().expect("gfence");
        total / reps as f64
    });
    times[0]
}

/// MPI one-way polling latency: blocking send / blocking recv, measured at
/// the receiver.
fn mpi_one_way(reps: usize) -> f64 {
    let ctxs = worlds::mpl(2, MplMode::Polling, 4096);
    let times = run_spmd_with(ctxs, |rank, ctx| {
        let mut total = 0.0;
        for _ in 0..reps {
            let t0 = ctx.barrier();
            if rank == 0 {
                ctx.send(1, 1, &[1u8; MSG]);
            } else {
                let _ = ctx.recv(Some(0), Some(1));
                total += (ctx.now() - t0).as_us();
            }
        }
        ctx.barrier();
        total / reps as f64
    });
    times[1]
}

/// MPI polling round trip: send/recv ping-pong, measured at the origin.
fn mpi_round_trip(reps: usize) -> f64 {
    let ctxs = worlds::mpl(2, MplMode::Polling, 4096);
    let times = run_spmd_with(ctxs, |rank, ctx| {
        let mut total = 0.0;
        for _ in 0..reps {
            let t0 = ctx.barrier();
            if rank == 0 {
                ctx.send(1, 1, &[1u8; MSG]);
                let _ = ctx.recv(Some(1), Some(2));
                total += (ctx.now() - t0).as_us();
            } else {
                let (d, _) = ctx.recv(Some(0), Some(1));
                ctx.send(0, 2, &d);
            }
        }
        ctx.barrier();
        total / reps as f64
    });
    times[0]
}

/// MPL interrupt round trip: `rcvncall` on both sides — the target's
/// handler sends the reply, the origin's handler signals the waiting main
/// thread. Each handler invocation pays the AIX context-creation cost.
fn mpl_rcvncall_round_trip(reps: usize) -> f64 {
    let ctxs = worlds::mpl(2, MplMode::Interrupt, 4096);
    let times = run_spmd_with(ctxs, |rank, ctx| {
        if rank == 1 {
            ctx.rcvncall(1, |hctx, data, st| {
                hctx.isend(st.src, 2, &data);
            });
        }
        let got: Arc<(Mutex<usize>, SimCondvar)> = Arc::new((Mutex::new(0), SimCondvar::new()));
        if rank == 0 {
            let got = Arc::clone(&got);
            ctx.rcvncall(2, move |_hctx, _data, _st| {
                let mut n = got.0.lock();
                *n += 1;
                got.1.notify_all();
            });
        }
        let mut total = 0.0;
        for rep in 0..reps {
            let t0 = ctx.barrier();
            if rank == 0 {
                ctx.send(1, 1, &[1u8; MSG]);
                let mut n = got.0.lock();
                while *n < rep + 1 {
                    got.1.wait(&mut n);
                }
                drop(n);
                total += (ctx.now() - t0).as_us();
            }
        }
        ctx.barrier();
        total / reps as f64
    });
    times[0]
}

/// Run the Table 2 reproduction.
pub fn run(quick: bool) -> Report {
    let reps = if quick { 10 } else { 50 };
    let mut r = Report::new("table2", "Latency measurements (Table 2)");
    r.rows.push(Measurement::with_paper(
        "LAPI polling one-way",
        lapi_one_way(reps),
        "us",
        34.0,
    ));
    r.rows.push(Measurement::with_paper(
        "MPI polling one-way",
        mpi_one_way(reps),
        "us",
        43.0,
    ));
    r.rows.push(Measurement::with_paper(
        "LAPI polling round-trip",
        lapi_round_trip(Mode::Polling, reps),
        "us",
        60.0,
    ));
    r.rows.push(Measurement::with_paper(
        "MPI polling round-trip",
        mpi_round_trip(reps),
        "us",
        86.0,
    ));
    r.rows.push(Measurement::with_paper(
        "LAPI interrupt round-trip",
        lapi_round_trip(Mode::Interrupt, reps),
        "us",
        89.0,
    ));
    r.rows.push(Measurement::with_paper(
        "MPL rcvncall interrupt round-trip",
        mpl_rcvncall_round_trip(reps),
        "us",
        200.0,
    ));
    r.note("4-byte messages, 2 nodes; means over the repetition series.");
    r
}
