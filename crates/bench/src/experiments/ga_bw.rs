//! Shared machinery for Figures 3 and 4: GA put/get bandwidth over 1-D and
//! 2-D array sections, on both backends.
//!
//! Methodology from §5.4: 4 nodes; node 0 times a series of operations
//! (series length decreasing with request size) whose targets rotate
//! round-robin over the other nodes; each access references a different
//! array patch to avoid caching effects; 2-D requests are square patches
//! whose leading dimension does not match the array's (strided data).

use ga::{Ga, GaKind, GlobalArray, Patch};
use spsim::run_spmd_with;

use crate::report::{reps_for, Series};

/// Which operation a run measures.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum GaOp {
    /// `ga_put` — timed to call return (non-blocking w.r.t. the target).
    Put,
    /// `ga_get` — blocking.
    Get,
}

/// Patch shape.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// A single column segment (contiguous at the owner).
    OneD,
    /// A square section (strided at the owner).
    TwoD,
}

/// The 1-D bench array: tall and narrow so a 2 MB request is one
/// contiguous column run within a single owner block.
fn array_1d(ga: &Ga) -> GlobalArray {
    ga.create("bw1d", 1 << 19, 4, GaKind::Double)
}

/// The 2-D bench array: square, blocks 512×512, so a 512×512 (2 MB)
/// square patch fits inside one owner block.
fn array_2d(ga: &Ga) -> GlobalArray {
    ga.create("bw2d", 1024, 1024, GaKind::Double)
}

/// Pick the `rep`-th fresh patch of ~`bytes` inside `target`'s block.
/// Returns the patch and its actual byte size.
fn pick_patch(
    a: &GlobalArray,
    shape: Shape,
    target: usize,
    bytes: usize,
    rep: usize,
) -> (Patch, usize) {
    let b = a.distribution(target).expect("owner block");
    match shape {
        Shape::OneD => {
            let elems = (bytes / 8).clamp(1, b.rows());
            let max_start = b.rows() - elems;
            let i0 = b.lo.0
                + if max_start == 0 {
                    0
                } else {
                    (rep * 4099) % (max_start + 1)
                };
            let j = b.lo.1 + rep % b.cols();
            (Patch::new((i0, j), (i0 + elems - 1, j)), elems * 8)
        }
        Shape::TwoD => {
            let s = (((bytes / 8) as f64).sqrt().round() as usize).clamp(1, b.rows().min(b.cols()));
            let max_i = b.rows() - s;
            let max_j = b.cols() - s;
            let i0 = b.lo.0
                + if max_i == 0 {
                    0
                } else {
                    (rep * 257) % (max_i + 1)
                };
            let j0 = b.lo.1
                + if max_j == 0 {
                    0
                } else {
                    (rep * 131) % (max_j + 1)
                };
            (Patch::new((i0, j0), (i0 + s - 1, j0 + s - 1)), s * s * 8)
        }
    }
}

/// Bandwidth series over the size sweep for one backend/op/shape.
pub fn bandwidth_series(
    label: &str,
    mk_world: impl Fn() -> Vec<Ga>,
    op: GaOp,
    shape: Shape,
    sizes: &[usize],
    quick: bool,
) -> Series {
    let mut points = Vec::with_capacity(sizes.len());
    for &bytes in sizes {
        let reps = reps_for(bytes, quick);
        let out = run_spmd_with(mk_world(), move |rank, ga| {
            let a = match shape {
                Shape::OneD => array_1d(&ga),
                Shape::TwoD => array_2d(&ga),
            };
            ga.sync();
            let mut result = (0.0f64, 0usize);
            if rank == 0 {
                let mut total_us = 0.0;
                let mut total_bytes = 0usize;
                for rep in 0..reps {
                    let target = 1 + rep % (ga.tasks() - 1);
                    let (p, actual) = pick_patch(&a, shape, target, bytes, rep);
                    match op {
                        GaOp::Put => {
                            let data = vec![1.0f64; p.elems()];
                            let t0 = ga.now();
                            a.put(p, &data);
                            total_us += (ga.now() - t0).as_us();
                        }
                        GaOp::Get => {
                            let t0 = ga.now();
                            let v = a.get(p);
                            total_us += (ga.now() - t0).as_us();
                            debug_assert_eq!(v.len(), p.elems());
                        }
                    }
                    total_bytes += actual;
                    // Quiesce outside the timed window so completion-ack
                    // processing of this op doesn't bleed into the next
                    // op's measurement (keeps the series deterministic).
                    ga.fence(target);
                }
                result = (total_us, total_bytes);
            }
            ga.sync();
            result
        });
        let (us, total_bytes) = out[0];
        let mb_s = if us > 0.0 {
            (total_bytes as f64 / 1e6) / (us / 1e6)
        } else {
            0.0
        };
        points.push((bytes as f64, mb_s));
    }
    Series {
        label: label.to_string(),
        points,
    }
}

/// The size sweep for GA figures (8 B – 2 MB).
pub fn ga_size_sweep() -> Vec<usize> {
    (3..=21).map(|p| 1usize << p).collect()
}
