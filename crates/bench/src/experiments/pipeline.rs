//! §4 pipeline latency: the time for a nonblocking `LAPI_Put`/`LAPI_Get`
//! call to return control to the user program (paper: 16 µs / 19 µs).

use lapi::Mode;
use spsim::run_spmd_with;

use crate::report::{Measurement, Report};
use crate::worlds;

/// Run the pipeline-latency reproduction.
pub fn run(quick: bool) -> Report {
    let reps = if quick { 20 } else { 200 };
    let ctxs = worlds::lapi(2, Mode::Interrupt);
    let times = run_spmd_with(ctxs, |rank, ctx| {
        let buf = ctx.alloc(8 * reps);
        let addrs = ctx.address_init(buf);
        let mut put_total = 0.0;
        let mut get_total = 0.0;
        if rank == 0 {
            let org = ctx.new_counter();
            for i in 0..reps {
                let t0 = ctx.now();
                ctx.put(1, addrs[1].offset(8 * i), &[1u8; 8], None, None, None)
                    .expect("put");
                put_total += (ctx.now() - t0).as_us();
                let t0 = ctx.now();
                ctx.get(
                    1,
                    addrs[1].offset(8 * i),
                    8,
                    buf.offset(8 * i),
                    None,
                    Some(&org),
                )
                .expect("get");
                get_total += (ctx.now() - t0).as_us();
            }
            // drain everything before terminating
            ctx.waitcntr(&org, reps as i64);
            ctx.fence(1).expect("fence");
        }
        ctx.gfence().expect("gfence");
        (put_total / reps as f64, get_total / reps as f64)
    });
    let (put_us, get_us) = times[0];
    let mut r = Report::new(
        "pipeline_latency",
        "Pipeline latency: nonblocking call-return time (§4)",
    );
    r.rows.push(Measurement::with_paper(
        "LAPI_Put call return",
        put_us,
        "us",
        16.0,
    ));
    r.rows.push(Measurement::with_paper(
        "LAPI_Get call return",
        get_us,
        "us",
        19.0,
    ));
    r.note("includes the time to inject the message/request into the network");
    r
}
