//! One module per paper artifact.

pub mod ablation;
pub mod app_speedup;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod ga_bw;
pub mod ga_latency;
pub mod pipeline;
pub mod table2;
