//! `cargo bench` entry point that regenerates every paper table and figure
//! (quick repetition counts; run the binaries for the full series).
fn main() {
    lapi_bench::run_all(true);
}
