//! Criterion wall-clock microbenchmarks of the simulator substrate —
//! these measure the *host* cost of the reproduction (how fast the
//! simulated SP runs on your machine), not virtual-time results; the paper
//! artifacts come from the `experiments` bench / the experiment binaries.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use lapi::{LapiWorld, Mode};
use spsim::{run_spmd_with, MachineConfig, SimRng, TimedQueue, VClock, VDur, VTime};
use spswitch::Network;

fn bench_clock(c: &mut Criterion) {
    let clock = VClock::new();
    c.bench_function("vclock_advance", |b| {
        b.iter(|| clock.advance(VDur::from_ns(3)))
    });
    c.bench_function("vclock_merge", |b| {
        b.iter(|| clock.merge(VTime::from_us(1)))
    });
}

fn bench_rng(c: &mut Criterion) {
    let mut rng = SimRng::new(42);
    c.bench_function("simrng_next_u64", |b| b.iter(|| rng.next_u64()));
}

fn bench_queue(c: &mut Criterion) {
    c.bench_function("timed_queue_push_pop", |b| {
        let q = TimedQueue::new();
        let clock = VClock::new();
        b.iter(|| {
            q.push(VTime::from_us(1), 7u64);
            q.recv_merge(&clock).expect("open")
        })
    });
}

fn bench_switch(c: &mut Criterion) {
    let mut g = c.benchmark_group("switch");
    g.throughput(Throughput::Elements(1));
    g.bench_function("send_one_packet", |b| {
        let net: Network<u64> = Network::new(2, Arc::new(MachineConfig::default()), 1);
        let ads = net.into_adapters();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            ads[0].send_at(VTime::ZERO, 1, 1024, i);
            ads[1].rx().try_recv().expect("open")
        })
    });
    g.finish();
}

fn bench_lapi_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("lapi_world");
    g.sample_size(10);
    g.bench_function("put_wait_4b_x20", |b| {
        b.iter_batched(
            || LapiWorld::init(2, MachineConfig::default(), Mode::Interrupt),
            |ctxs| {
                run_spmd_with(ctxs, |rank, ctx| {
                    let buf = ctx.alloc(8);
                    let addrs = ctx.address_init(buf);
                    if rank == 0 {
                        for i in 0..20u8 {
                            ctx.put_wait(1, addrs[1], &[i; 4]).expect("put");
                        }
                    }
                    ctx.gfence().expect("gfence");
                });
            },
            BatchSize::PerIteration,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_clock,
    bench_rng,
    bench_queue,
    bench_switch,
    bench_lapi_ops
);
criterion_main!(benches);
