//! Virtual-time event tracing and deadlock diagnostics.
//!
//! Every protocol layer in the workspace (switch adapter, LAPI engine, MPL
//! engine, Global Arrays backends) emits [`TraceEvent`]s on its hot paths via
//! [`emit`]. Events land in per-node ring buffers inside one process-global
//! [`TraceSink`]; [`crate::run_spmd`] drains the rings when a job finishes,
//! and [`TraceSession::finish`] hands back the merged, deterministically
//! ordered [`Timeline`].
//!
//! Tracing is **disabled by default** and the entire record path is gated on
//! one relaxed atomic load ([`enabled`]), so instrumented code pays a single
//! predictable branch when no one is looking. Enable it by holding a
//! [`TraceSession`] (see [`session`]); the session also serializes traced
//! runs across test threads so concurrent tests cannot interleave their
//! timelines.
//!
//! Determinism: virtual time makes each node's event *multiset* at any
//! `(vtime, node)` reproducible for a fixed seed, but OS scheduling can vary
//! the order in which threads of one node append same-timestamp events. The
//! merged timeline therefore sorts by every rendered field —
//! `(vtime, node, kind, detail, msg_id, bytes)` — before the racy insertion
//! sequence, so [`Timeline::render`] is byte-identical across runs with the
//! same seed.
//!
//! The sink also keeps injected/delivered packet counts independent of ring
//! eviction; [`TraceSink::assert_quiescent`] uses them to flag messages that
//! entered the switch but were never consumed by a protocol engine.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard, RwLock};

use crate::runtime::NodeId;
use crate::time::VTime;

/// Default per-node ring capacity (events kept before the oldest are evicted).
pub const DEFAULT_RING_CAPACITY: usize = 16 * 1024;

/// How many merged events a deadlock report shows.
pub const REPORT_TAIL: usize = 32;

/// What a trace event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum EventKind {
    /// Packet accepted by a sending adapter's injection link.
    Inject,
    /// Packet handed to the destination adapter's receive queue.
    Eject,
    /// Packet lost in the fabric (will be retransmitted).
    Drop,
    /// Retransmission latency charged after a drop.
    Retransmit,
    /// Packet consumed by a protocol engine (LAPI dispatcher / MPL poll).
    Deliver,
    /// Interrupt cost charged to a target (LAPI interrupt mode).
    Interrupt,
    /// API-level operation issued (put/get/amsend/rmw/send/...).
    Issue,
    /// Header or completion handler invoked.
    HandlerEnter,
    /// Header or completion handler returned.
    HandlerExit,
    /// Completion counter incremented (org/tgt/cmpl or MPL state).
    Counter,
    /// Fence/quiesce wait started.
    FenceBegin,
    /// Fence/quiesce wait satisfied.
    FenceEnd,
    /// API-level operation fully completed.
    Complete,
    /// MPL envelope matched a posted receive.
    Match,
    /// MPL eager-protocol buffer copy.
    EagerCopy,
    /// MPL rendezvous request-to-send.
    Rts,
    /// MPL rendezvous clear-to-send.
    Cts,
    /// Hybrid-protocol branch decision (GA backends).
    Branch,
    /// Free-form annotation.
    Note,
    /// Cumulative acknowledgement charged to the wire by a receiving
    /// adapter (coalesced; `msg_id` = highest sequence acknowledged).
    /// Not counted against quiescence: ACKs are adapter-internal.
    Ack,
    /// Duplicate copy suppressed by the receiving adapter's sequence
    /// dedup (`msg_id` = the duplicated sequence number).
    Dup,
    /// A flow exhausted its bounded retransmissions; the sender surfaced
    /// a structured delivery-timeout error.
    FlowStall,
    /// A peer was declared dead (first terminal delivery failure against
    /// it); `msg_id` = the dead peer's rank. Emitted exactly once per
    /// (observer, dead peer) pair.
    PeerDead,
    /// An outstanding operation was cancelled because its target died
    /// (`msg_id` = the dead target's rank).
    OpCancelled,
    /// A fence/barrier degraded to its survivor set instead of waiting on
    /// dead members (`msg_id` = number of live participants).
    FenceDegraded,
    /// Packets written off the quiescence ledger: injected onto the wire
    /// but terminally undeliverable (retry exhaustion, or stranded in a
    /// crashed node's receive queue). `bytes` = number of packets.
    WriteOff,
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EventKind::Inject => "inject",
            EventKind::Eject => "eject",
            EventKind::Drop => "drop",
            EventKind::Retransmit => "retransmit",
            EventKind::Deliver => "deliver",
            EventKind::Interrupt => "interrupt",
            EventKind::Issue => "issue",
            EventKind::HandlerEnter => "hdr-enter",
            EventKind::HandlerExit => "hdr-exit",
            EventKind::Counter => "counter",
            EventKind::FenceBegin => "fence-begin",
            EventKind::FenceEnd => "fence-end",
            EventKind::Complete => "complete",
            EventKind::Match => "match",
            EventKind::EagerCopy => "eager-copy",
            EventKind::Rts => "rts",
            EventKind::Cts => "cts",
            EventKind::Branch => "branch",
            EventKind::Note => "note",
            EventKind::Ack => "ack",
            EventKind::Dup => "dup",
            EventKind::FlowStall => "flow-stall",
            EventKind::PeerDead => "peer-dead",
            EventKind::OpCancelled => "op-cancelled",
            EventKind::FenceDegraded => "fence-degraded",
            EventKind::WriteOff => "write-off",
        };
        f.pad(s)
    }
}

/// One virtual-time-stamped event from one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time the event occurred.
    pub vtime: VTime,
    /// Node (rank) the event belongs to.
    pub node: NodeId,
    /// What happened.
    pub kind: EventKind,
    /// Short static label (operation name, counter name, branch taken...).
    pub detail: &'static str,
    /// Message/packet identifier the event concerns (protocol-defined; 0 if
    /// not applicable).
    pub msg_id: u64,
    /// Payload or wire size the event concerns, in bytes.
    pub bytes: usize,
    /// Per-node insertion sequence (assigned by the sink; last-resort
    /// tie-break only, never rendered).
    pub seq: u64,
}

impl TraceEvent {
    /// Sort key covering every *rendered* field, so same-seed runs merge into
    /// byte-identical timelines even when threads race on `seq`.
    fn key(&self) -> (VTime, NodeId, EventKind, &'static str, u64, usize, u64) {
        (
            self.vtime,
            self.node,
            self.kind,
            self.detail,
            self.msg_id,
            self.bytes,
            self.seq,
        )
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>12}ns n{:02} {:<11} {:<14} id={:<6} bytes={}",
            self.vtime.as_ns(),
            self.node,
            self.kind,
            self.detail,
            self.msg_id,
            self.bytes
        )
    }
}

struct NodeRing {
    events: Mutex<std::collections::VecDeque<TraceEvent>>,
    next_seq: AtomicU64,
    evicted: AtomicU64,
}

impl NodeRing {
    fn new() -> Self {
        NodeRing {
            events: Mutex::new(std::collections::VecDeque::new()),
            next_seq: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }
}

/// The process-global event sink. Use [`TraceSink::global`] (or the
/// module-level helpers) — there is exactly one per process.
pub struct TraceSink {
    enabled: AtomicBool,
    rings: RwLock<Vec<Arc<NodeRing>>>,
    capacity: AtomicUsize,
    injected: AtomicU64,
    delivered: AtomicU64,
    dropped_pkts: AtomicU64,
    acks: AtomicU64,
    dups: AtomicU64,
    written_off: AtomicU64,
    sealed: Mutex<Vec<TraceEvent>>,
}

static SINK: TraceSink = TraceSink {
    enabled: AtomicBool::new(false),
    rings: RwLock::new(Vec::new()),
    capacity: AtomicUsize::new(DEFAULT_RING_CAPACITY),
    injected: AtomicU64::new(0),
    delivered: AtomicU64::new(0),
    dropped_pkts: AtomicU64::new(0),
    acks: AtomicU64::new(0),
    dups: AtomicU64::new(0),
    written_off: AtomicU64::new(0),
    sealed: Mutex::new(Vec::new()),
};

static SESSION_LOCK: Mutex<()> = Mutex::new(());

impl TraceSink {
    /// The process-global sink.
    pub fn global() -> &'static TraceSink {
        &SINK
    }

    /// Is event recording currently enabled?
    #[inline]
    pub fn enabled(&self) -> bool {
        // ordering: hot-path gate; stale reads only delay when recording
        // starts/stops by a few events, which the session lock tolerates.
        self.enabled.load(Ordering::Relaxed)
    }

    /// Record one event. No-op (one atomic load) while disabled.
    #[inline]
    pub fn record(
        &self,
        node: NodeId,
        vtime: VTime,
        kind: EventKind,
        detail: &'static str,
        msg_id: u64,
        bytes: usize,
    ) {
        if !self.enabled() {
            return;
        }
        self.record_slow(node, vtime, kind, detail, msg_id, bytes);
    }

    #[cold]
    fn record_slow(
        &self,
        node: NodeId,
        vtime: VTime,
        kind: EventKind,
        detail: &'static str,
        msg_id: u64,
        bytes: usize,
    ) {
        let stat = match kind {
            EventKind::Inject => Some((&self.injected, 1)),
            EventKind::Deliver => Some((&self.delivered, 1)),
            EventKind::Drop => Some((&self.dropped_pkts, 1)),
            EventKind::Ack => Some((&self.acks, 1)),
            EventKind::Dup => Some((&self.dups, 1)),
            // A write-off retires `bytes` packets in one event.
            EventKind::WriteOff => Some((&self.written_off, bytes as u64)),
            _ => None,
        };
        if let Some((stat, n)) = stat {
            // ordering: independent monotone stat counters; totals are read
            // after the traced threads join (or as a heuristic mid-run).
            stat.fetch_add(n, Ordering::Relaxed);
        }
        let ring = self.ring(node);
        // ordering: per-node sequence — only uniqueness/monotonicity within
        // one ring matters; merged order is rebuilt from the sort key.
        let seq = ring.next_seq.fetch_add(1, Ordering::Relaxed);
        let ev = TraceEvent {
            vtime,
            node,
            kind,
            detail,
            msg_id,
            bytes,
            seq,
        };
        // ordering: capacity is configured before a session starts; a stale
        // read can only mis-size the ring by a few events.
        let cap = self.capacity.load(Ordering::Relaxed).max(1);
        let mut q = ring.events.lock();
        if q.len() >= cap {
            q.pop_front();
            // ordering: eviction tally, read after the session seals.
            ring.evicted.fetch_add(1, Ordering::Relaxed);
        }
        q.push_back(ev);
    }

    fn ring(&self, node: NodeId) -> Arc<NodeRing> {
        {
            let rings = self.rings.read();
            if let Some(r) = rings.get(node) {
                return Arc::clone(r);
            }
        }
        let mut rings = self.rings.write();
        while rings.len() <= node {
            rings.push(Arc::new(NodeRing::new()));
        }
        Arc::clone(&rings[node])
    }

    /// Number of packets injected into the switch since the last reset.
    pub fn injected(&self) -> u64 {
        // ordering: stat read; exact only once the traced threads joined.
        self.injected.load(Ordering::Relaxed)
    }

    /// Number of packets consumed by a protocol engine since the last reset.
    pub fn delivered(&self) -> u64 {
        // ordering: stat read; exact only once the traced threads joined.
        self.delivered.load(Ordering::Relaxed)
    }

    /// Packets currently in flight: injected but neither consumed by an
    /// engine nor written off as terminally undeliverable.
    ///
    /// ACK packets and suppressed duplicates are adapter-internal and do
    /// **not** count here: the reliability protocol generates and absorbs
    /// them below the protocol engines, so quiescence still balances plain
    /// injects against delivers.
    pub fn in_flight(&self) -> u64 {
        self.injected()
            .saturating_sub(self.delivered() + self.written_off())
    }

    /// Packets written off the quiescence ledger: injected but terminally
    /// undeliverable (retry exhaustion against a dead link or peer, or
    /// stranded in a crashed node's receive queue at teardown). Zero on
    /// every healthy run.
    pub fn written_off(&self) -> u64 {
        // ordering: stat read; exact only once the traced threads joined.
        self.written_off.load(Ordering::Relaxed)
    }

    /// Packets the fabric genuinely dropped (data or ACKs) since the last
    /// reset. By construction every drop costs the sender exactly one
    /// retransmission round.
    pub fn fabric_drops(&self) -> u64 {
        // ordering: stat read; exact only once the traced threads joined.
        self.dropped_pkts.load(Ordering::Relaxed)
    }

    /// Wire acknowledgements charged by receiving adapters since the last
    /// reset.
    pub fn acks(&self) -> u64 {
        // ordering: stat read; exact only once the traced threads joined.
        self.acks.load(Ordering::Relaxed)
    }

    /// Duplicate copies suppressed by receiving adapters since the last
    /// reset.
    pub fn dups_suppressed(&self) -> u64 {
        // ordering: stat read; exact only once the traced threads joined.
        self.dups.load(Ordering::Relaxed)
    }

    /// Panic with a diagnostic timeline tail if any traced packet was
    /// injected into the switch but never consumed by a protocol engine.
    ///
    /// Call this after a traced job completes (all expected completions
    /// observed) to catch leaked in-flight messages — e.g. a reply a handler
    /// forgot to wait for, or a packet stuck in a closed adapter queue.
    pub fn assert_quiescent(&self) {
        let injected = self.injected();
        let delivered = self.delivered();
        let written_off = self.written_off();
        if injected != delivered + written_off {
            panic!(
                "TraceSink::assert_quiescent: {} packet(s) leaked in flight \
                 (injected {injected}, delivered {delivered}, written off \
                 {written_off})\n{}",
                self.in_flight(),
                self.tail_report(REPORT_TAIL)
            );
        }
    }

    /// Move everything currently buffered in the per-node rings into the
    /// sealed timeline, in deterministic merged order. Called by
    /// [`crate::run_spmd`] when a traced job finishes.
    pub fn seal(&self) {
        if !self.enabled() {
            return;
        }
        let mut batch = Vec::new();
        let rings = self.rings.read();
        for ring in rings.iter() {
            batch.extend(ring.events.lock().drain(..));
        }
        drop(rings);
        batch.sort_by_key(TraceEvent::key);
        self.sealed.lock().extend(batch);
    }

    /// Events evicted from full rings since the last reset (0 means the
    /// timeline is complete).
    pub fn evicted(&self) -> u64 {
        self.rings
            .read()
            .iter()
            // ordering: stat read; exact only after the session seals.
            .map(|r| r.evicted.load(Ordering::Relaxed))
            .sum()
    }

    /// A human-readable report of the last `n` merged events plus the
    /// in-flight counters. Used by deadlock diagnostics; works (with a hint
    /// instead of events) when tracing is disabled.
    pub fn tail_report(&self, n: usize) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "-- trace: injected={} delivered={} written-off={} in-flight={} \
             fabric-drops={} acks={} dups-suppressed={} --",
            self.injected(),
            self.delivered(),
            self.written_off(),
            self.in_flight(),
            // ordering: best-effort snapshot inside a diagnostic report.
            self.dropped_pkts.load(Ordering::Relaxed),
            self.acks(),
            self.dups_suppressed(),
        );
        if !self.enabled() {
            out.push_str(
                "(event tracing disabled — wrap the run in spsim::trace::session() \
                 to capture a virtual-time timeline)",
            );
            return out;
        }
        let mut events: Vec<TraceEvent> = self.sealed.lock().clone();
        for ring in self.rings.read().iter() {
            events.extend(ring.events.lock().iter().copied());
        }
        events.sort_by_key(TraceEvent::key);
        let start = events.len().saturating_sub(n);
        let _ = writeln!(
            out,
            "last {} of {} events:",
            events.len() - start,
            events.len()
        );
        for ev in &events[start..] {
            let _ = writeln!(out, "  {ev}");
        }
        out
    }

    /// Clear all buffered events and reset the counters.
    pub fn reset(&self) {
        let rings = self.rings.read();
        for ring in rings.iter() {
            ring.events.lock().clear();
            // ordering: reset runs with no traced threads alive (session
            // lock held, recording disabled) — no concurrent accesses race.
            ring.next_seq.store(0, Ordering::Relaxed);
            ring.evicted.store(0, Ordering::Relaxed);
        }
        drop(rings);
        self.sealed.lock().clear();
        // ordering: see above — reset is quiescent by construction.
        self.injected.store(0, Ordering::Relaxed);
        self.delivered.store(0, Ordering::Relaxed);
        self.dropped_pkts.store(0, Ordering::Relaxed);
        self.acks.store(0, Ordering::Relaxed);
        self.dups.store(0, Ordering::Relaxed);
        self.written_off.store(0, Ordering::Relaxed);
    }

    /// Set the per-node ring capacity (events kept before eviction).
    pub fn set_capacity(&self, cap: usize) {
        // ordering: configuration knob, set before a session starts.
        self.capacity.store(cap.max(1), Ordering::Relaxed);
    }
}

/// Is tracing enabled? Instrumented hot paths check this (or rely on
/// [`emit`]'s internal check) — one relaxed atomic load when disabled.
#[inline]
pub fn enabled() -> bool {
    SINK.enabled()
}

/// Record one event into the global sink (no-op while tracing is disabled).
#[inline]
pub fn emit(
    node: NodeId,
    vtime: VTime,
    kind: EventKind,
    detail: &'static str,
    msg_id: u64,
    bytes: usize,
) {
    SINK.record(node, vtime, kind, detail, msg_id, bytes);
}

/// Shorthand for [`TraceSink::tail_report`] on the global sink.
pub fn tail_report(n: usize) -> String {
    SINK.tail_report(n)
}

/// The merged, deterministically ordered event timeline of a traced run.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// All captured events, ordered by `(vtime, node, kind, detail, msg_id,
    /// bytes)`.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring eviction (0 means `events` is complete).
    pub evicted: u64,
}

impl Timeline {
    /// Number of events of `kind`.
    pub fn count(&self, kind: EventKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Render the timeline as text — byte-identical across same-seed runs.
    pub fn render(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        for ev in &self.events {
            let _ = writeln!(out, "{ev}");
        }
        out
    }
}

/// RAII handle for a traced run: holding it enables recording, dropping it
/// disables recording and clears the sink. Only one session exists at a time
/// (others block), so concurrent tests cannot interleave timelines.
pub struct TraceSession {
    _lock: MutexGuard<'static, ()>,
}

/// Start a traced run: acquires the global session lock, resets the sink and
/// enables recording.
pub fn session() -> TraceSession {
    let lock = SESSION_LOCK.lock();
    SINK.reset();
    // ordering: SeqCst fences the reset above against the first recorded
    // event on any thread spawned after session() returns.
    SINK.enabled.store(true, Ordering::SeqCst);
    TraceSession { _lock: lock }
}

impl TraceSession {
    /// Stop tracing and return the merged timeline of everything recorded
    /// during the session.
    pub fn finish(self) -> Timeline {
        SINK.seal();
        let events = std::mem::take(&mut *SINK.sealed.lock());
        let evicted = SINK.evicted();
        Timeline { events, evicted }
        // `self` drops here: disables recording and clears the sink.
    }

    /// The global sink, for counter checks mid-session.
    pub fn sink(&self) -> &'static TraceSink {
        &SINK
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        // ordering: SeqCst fences disabling against the reset that follows,
        // so a straggler record cannot land in a cleared sink.
        SINK.enabled.store(false, Ordering::SeqCst);
        SINK.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_record_is_noop() {
        // No session held: emitting must leave the sink untouched.
        emit(0, VTime::from_us(1), EventKind::Note, "ignored", 0, 0);
        assert!(!enabled());
        let s = session();
        assert_eq!(s.sink().injected(), 0);
        let t = s.finish();
        assert!(t.events.is_empty());
    }

    #[test]
    fn session_captures_merged_ordered_timeline() {
        let s = session();
        // Deliberately record out of order and across nodes.
        emit(1, VTime::from_us(20), EventKind::Eject, "pkt", 7, 64);
        emit(0, VTime::from_us(10), EventKind::Inject, "pkt", 7, 64);
        emit(0, VTime::from_us(20), EventKind::Note, "later", 0, 0);
        let t = s.finish();
        let kinds: Vec<EventKind> = t.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![EventKind::Inject, EventKind::Note, EventKind::Eject]
        );
        assert_eq!(t.count(EventKind::Inject), 1);
        assert_eq!(t.evicted, 0);
        let text = t.render();
        assert!(text.contains("inject"), "render lists kinds: {text}");
        assert!(!enabled(), "finish() disables tracing");
    }

    #[test]
    fn quiescent_when_balanced_and_panics_when_leaky() {
        let s = session();
        emit(0, VTime::from_us(1), EventKind::Inject, "pkt", 1, 64);
        emit(1, VTime::from_us(2), EventKind::Deliver, "pkt", 1, 64);
        s.sink().assert_quiescent();
        emit(0, VTime::from_us(3), EventKind::Inject, "pkt", 2, 64);
        let sink = s.sink();
        let err =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sink.assert_quiescent()))
                .expect_err("must flag the in-flight packet");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic carries a String");
        assert!(msg.contains("1 packet(s) leaked in flight"), "got: {msg}");
        assert!(msg.contains("last"), "report shows the event tail: {msg}");
        drop(s);
    }

    #[test]
    fn ring_evicts_oldest_beyond_capacity() {
        let s = session();
        s.sink().set_capacity(4);
        for i in 0..10u64 {
            emit(0, VTime::from_us(i), EventKind::Note, "n", i, 0);
        }
        let t = s.finish();
        SINK.set_capacity(DEFAULT_RING_CAPACITY);
        assert_eq!(t.events.len(), 4);
        assert_eq!(t.evicted, 6);
        assert_eq!(t.events[0].msg_id, 6, "oldest events were evicted");
    }

    #[test]
    fn tail_report_hints_when_disabled() {
        // Hold the session lock directly (no session => recording disabled)
        // so concurrently running session tests cannot flip `enabled` on us.
        let _g = SESSION_LOCK.lock();
        let r = tail_report(8);
        assert!(r.contains("tracing disabled"), "got: {r}");
        assert!(r.contains("in-flight"), "counters always shown: {r}");
    }
}
