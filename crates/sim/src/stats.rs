//! Lightweight instrumentation: counters and duration histograms.
//!
//! The adapter, LAPI dispatcher, and MPL matching engine all expose
//! statistics through these types; tests assert on them (e.g. "a lossy run
//! really did retransmit") and the bench harness prints them alongside the
//! reproduced figures.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::time::VDur;

/// A shareable monotonically increasing event counter.
#[derive(Clone, Debug, Default)]
pub struct StatCounter {
    n: Arc<AtomicU64>,
}

impl StatCounter {
    /// New counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        // ordering: monotone stat counter, read after threads join.
        self.n.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `k`.
    #[inline]
    pub fn add(&self, k: u64) {
        // ordering: monotone stat counter, read after threads join.
        self.n.fetch_add(k, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        // ordering: stat read; exact only once the counting threads joined.
        self.n.load(Ordering::Relaxed)
    }
}

/// A simple shareable histogram of virtual durations with fixed power-of-two
/// microsecond buckets (1, 2, 4, ... us), plus exact count/sum/min/max.
#[derive(Clone, Debug)]
pub struct Histogram {
    inner: Arc<Mutex<HistInner>>,
}

#[derive(Debug)]
struct HistInner {
    buckets: [u64; 24],
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            inner: Arc::new(Mutex::new(HistInner {
                buckets: [0; 24],
                count: 0,
                sum_ns: 0,
                min_ns: u64::MAX,
                max_ns: 0,
            })),
        }
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one duration.
    pub fn record(&self, d: VDur) {
        let ns = d.as_ns();
        let us = ns / 1_000;
        let idx = (64 - us.leading_zeros() as usize).min(23);
        let mut h = self.inner.lock();
        h.buckets[idx] += 1;
        h.count += 1;
        h.sum_ns += ns as u128;
        h.min_ns = h.min_ns.min(ns);
        h.max_ns = h.max_ns.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.inner.lock().count
    }

    /// Mean of recorded samples (zero if empty).
    pub fn mean(&self) -> VDur {
        let h = self.inner.lock();
        if h.count == 0 {
            VDur::ZERO
        } else {
            VDur::from_ns((h.sum_ns / h.count as u128) as u64)
        }
    }

    /// Minimum sample (zero if empty).
    pub fn min(&self) -> VDur {
        let h = self.inner.lock();
        if h.count == 0 {
            VDur::ZERO
        } else {
            VDur::from_ns(h.min_ns)
        }
    }

    /// Maximum sample.
    pub fn max(&self) -> VDur {
        VDur::from_ns(self.inner.lock().max_ns)
    }

    /// Approximate quantile from the bucket boundaries (upper bound of the
    /// bucket containing the q-quantile sample). Good enough for reporting.
    pub fn quantile_upper_us(&self, q: f64) -> u64 {
        let h = self.inner.lock();
        if h.count == 0 {
            return 0;
        }
        let target = ((h.count as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0;
        for (i, b) in h.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return if i == 0 { 0 } else { 1u64 << (i - 1) };
            }
        }
        1u64 << 23
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = StatCounter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        let c2 = c.clone();
        c2.incr();
        assert_eq!(c.get(), 6);
    }

    #[test]
    fn histogram_basic_stats() {
        let h = Histogram::new();
        h.record(VDur::from_us(10));
        h.record(VDur::from_us(20));
        h.record(VDur::from_us(30));
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean(), VDur::from_us(20));
        assert_eq!(h.min(), VDur::from_us(10));
        assert_eq!(h.max(), VDur::from_us(30));
    }

    #[test]
    fn histogram_empty_is_sane() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), VDur::ZERO);
        assert_eq!(h.min(), VDur::ZERO);
        assert_eq!(h.quantile_upper_us(0.5), 0);
    }

    #[test]
    fn quantile_is_monotone() {
        let h = Histogram::new();
        for us in [1u64, 2, 4, 8, 16, 32, 64, 128] {
            for _ in 0..10 {
                h.record(VDur::from_us(us));
            }
        }
        let q50 = h.quantile_upper_us(0.5);
        let q99 = h.quantile_upper_us(0.99);
        assert!(q50 <= q99, "{q50} {q99}");
        assert!(q99 >= 64);
    }
}
