//! SPMD node runtime.
//!
//! A parallel job on the SP is `n` copies of the same program, one per node.
//! [`run_spmd`] reproduces that: it runs the given closure with each node's
//! rank and collects the per-node results. Panics in any node are
//! propagated to the caller (after all nodes have finished or hit their
//! queue escape hatches), so a failing simulated program fails the test
//! that ran it.
//!
//! By default nodes are cooperative tasks multiplexed M:N onto the fixed
//! worker pool in [`crate::sched`] — a 1024-node job costs a handful of OS
//! threads. `SPSIM_SCHED=threads` (or [`crate::sched::set_sched_mode`])
//! selects the legacy thread-per-node runtime, kept as an escape hatch and
//! as the differential baseline for the scheduler-equivalence tests.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

use crate::diag::OrDiag;
use crate::sched::{self, SchedMode};

/// Rank of a simulated node within its job, `0..n`.
pub type NodeId = usize;

// Scheduler tie-break perturbation. When armed, events enqueued at the
// *same* virtual instant are popped from [`crate::TimedQueue`]s in a
// seed-dependent permutation instead of insertion order, so a conformance
// harness can explore alternative legal interleavings. Disarmed (the
// default) the tie-break is exactly the insertion sequence, bit-for-bit
// identical to the behaviour before the hook existed — one relaxed atomic
// load per push is the entire cost.
static TIEBREAK_ON: AtomicBool = AtomicBool::new(false);
static TIEBREAK_SEED: AtomicU64 = AtomicU64::new(0);

/// Arm (`Some(seed)`) or disarm (`None`) the global same-virtual-time
/// scheduler tie-break perturbation.
///
/// The hook is process-global: callers that arm it around a simulated run
/// must serialize those runs (the `check` harness holds a lock) and disarm
/// it afterwards. Two runs with the same seed perturb identically.
pub fn set_schedule_tiebreak(seed: Option<u64>) {
    match seed {
        Some(s) => {
            // ordering: callers serialize arming around whole runs (see
            // above), so no simulated thread races these two stores.
            TIEBREAK_SEED.store(s, Ordering::Relaxed);
            TIEBREAK_ON.store(true, Ordering::Relaxed);
        }
        None => {
            // ordering: same serialization argument as arming.
            TIEBREAK_ON.store(false, Ordering::Relaxed);
            TIEBREAK_SEED.store(0, Ordering::Relaxed);
        }
    }
}

/// The currently armed tie-break seed, if any.
pub fn schedule_tiebreak() -> Option<u64> {
    // ordering: read under the same caller-side serialization as set().
    if TIEBREAK_ON.load(Ordering::Relaxed) {
        Some(TIEBREAK_SEED.load(Ordering::Relaxed))
    } else {
        None
    }
}

/// Tie-break key for the `n`-th element pushed onto a queue: the insertion
/// sequence itself when the hook is disarmed, or a SplitMix64 hash of
/// (seed, seq) when armed — a deterministic pseudo-random permutation of
/// same-timestamp events.
#[inline]
pub(crate) fn tiebreak_key(seq: u64) -> u64 {
    // ordering: the hook is armed/disarmed only between runs (callers
    // serialize), so pushes within a run observe a stable flag and seed.
    if !TIEBREAK_ON.load(Ordering::Relaxed) {
        return seq;
    }
    let mut z = TIEBREAK_SEED
        // ordering: see the flag load above.
        .load(Ordering::Relaxed)
        .wrapping_add(seq.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Erase the lifetime of a boxed node job so it can ride on the
/// process-global worker pool.
///
/// # Safety
/// The caller must not let any borrow captured by `f` end before the job
/// has finished running. `run_spmd`/`run_spmd_with` uphold this by joining
/// every node task before they return — the same guarantee
/// `std::thread::scope` provides for the legacy path.
unsafe fn erase_job<'a>(f: Box<dyn FnOnce() + Send + 'a>) -> Box<dyn FnOnce() + Send + 'static> {
    std::mem::transmute(f)
}

/// Pooled SPMD execution: one scheduler task per rank, results collected
/// into rank-indexed slots, tasks joined in rank order.
fn run_pooled<R, J>(n: usize, mut job_for: J) -> Vec<thread::Result<R>>
where
    R: Send,
    J: FnMut(usize, Arc<Mutex<Vec<Option<thread::Result<R>>>>>) -> Box<dyn FnOnce() + Send>,
{
    let slots: Arc<Mutex<Vec<Option<thread::Result<R>>>>> =
        Arc::new(Mutex::new((0..n).map(|_| None).collect()));
    let tasks: Vec<_> = (0..n)
        .map(|rank| {
            let job = job_for(rank, Arc::clone(&slots));
            sched::spawn(format!("sp-node-{rank}"), job)
        })
        .collect();
    for t in &tasks {
        sched::join_task(t);
    }
    let mut got = slots.lock().unwrap_or_else(|e| e.into_inner());
    got.drain(..)
        .map(|s| s.or_diag("node task finished without reporting a result"))
        .collect()
}

/// Run `f(rank)` on `n` simulated nodes and collect results in rank order.
///
/// Under the default pooled scheduler each node is a cooperative task;
/// under `SPSIM_SCHED=threads` each node is an OS thread, as before the
/// M:N runtime. Same seed ⇒ same results and traces under either mode and
/// any worker count (asserted by the determinism suite).
///
/// When event tracing is active (see [`crate::trace::session`]), the
/// per-node ring buffers are drained into the global sink's merged timeline
/// once every node has finished.
///
/// # Panics
/// Propagates the first node panic once every node has terminated.
pub fn run_spmd<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(NodeId) -> R + Sync,
{
    assert!(n > 0, "SPMD job needs at least one node");
    let f = &f;
    let outcomes: Vec<thread::Result<R>> = match sched::sched_mode() {
        SchedMode::Pool => run_pooled(n, |rank, slots| {
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let out = catch_unwind(AssertUnwindSafe(|| f(rank)));
                slots.lock().unwrap_or_else(|e| e.into_inner())[rank] = Some(out);
            });
            // Safety: run_pooled joins every node task before returning.
            unsafe { erase_job(job) }
        }),
        SchedMode::Threads => {
            let mut outcomes = Vec::with_capacity(n);
            thread::scope(|s| {
                let handles: Vec<_> = (0..n)
                    .map(|rank| {
                        thread::Builder::new()
                            .name(format!("sp-node-{rank}"))
                            .spawn_scoped(s, move || catch_unwind(AssertUnwindSafe(|| f(rank))))
                            .or_diag("spawn node thread")
                    })
                    .collect();
                for h in handles {
                    outcomes.push(h.join().or_diag("node thread itself must not die"));
                }
            });
            outcomes
        }
    };
    crate::trace::TraceSink::global().seal();
    collect_or_panic(outcomes)
}

/// Like [`run_spmd`], but each node consumes a pre-built, possibly
/// non-`Clone` context (e.g. its endpoint of a network built up front).
pub fn run_spmd_with<C, R, F>(ctxs: Vec<C>, f: F) -> Vec<R>
where
    C: Send,
    R: Send,
    F: Fn(NodeId, C) -> R + Sync,
{
    assert!(!ctxs.is_empty(), "SPMD job needs at least one node");
    let n = ctxs.len();
    let f = &f;
    let outcomes: Vec<thread::Result<R>> = match sched::sched_mode() {
        SchedMode::Pool => {
            let mut ctxs: Vec<Option<C>> = ctxs.into_iter().map(Some).collect();
            run_pooled(n, |rank, slots| {
                let ctx = ctxs[rank].take().or_diag("node context consumed twice");
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    let out = catch_unwind(AssertUnwindSafe(move || f(rank, ctx)));
                    slots.lock().unwrap_or_else(|e| e.into_inner())[rank] = Some(out);
                });
                // Safety: run_pooled joins every node task before returning.
                unsafe { erase_job(job) }
            })
        }
        SchedMode::Threads => {
            let mut outcomes = Vec::with_capacity(n);
            thread::scope(|s| {
                let handles: Vec<_> = ctxs
                    .into_iter()
                    .enumerate()
                    .map(|(rank, ctx)| {
                        thread::Builder::new()
                            .name(format!("sp-node-{rank}"))
                            .spawn_scoped(s, move || {
                                catch_unwind(AssertUnwindSafe(move || f(rank, ctx)))
                            })
                            .or_diag("spawn node thread")
                    })
                    .collect();
                for h in handles {
                    outcomes.push(h.join().or_diag("node thread itself must not die"));
                }
            });
            outcomes
        }
    };
    crate::trace::TraceSink::global().seal();
    collect_or_panic(outcomes)
}

/// Handle to a named engine service (dispatcher, completion handler)
/// spawned by [`spawn_service`] — the *only* sanctioned way for simulated
/// code to hold onto a running execution context.
///
/// Under the pooled scheduler the service is a task on the worker pool;
/// under `SPSIM_SCHED=threads` it is a dedicated OS thread. Lint rule A4
/// bans `std::thread::spawn`/`JoinHandle` (and raw condvar waits) in every
/// virtual-time crate except the runtime and the scheduler, so services
/// cannot bypass this seam.
#[derive(Debug)]
pub struct ServiceHandle {
    inner: ServiceImpl,
}

#[derive(Debug)]
enum ServiceImpl {
    Thread(thread::JoinHandle<()>),
    Task(Arc<sched::Task>),
}

impl ServiceHandle {
    /// Wait for the service to finish; `Err` carries the service's panic
    /// payload (same contract as `std::thread::JoinHandle::join`). Safe to
    /// call from a node fiber (it parks) or a plain thread (it blocks).
    pub fn join(self) -> thread::Result<()> {
        match self.inner {
            ServiceImpl::Thread(h) => h.join(),
            ServiceImpl::Task(t) => {
                sched::join_task(&t);
                match sched::take_panic(&t) {
                    Some(p) => Err(p),
                    None => Ok(()),
                }
            }
        }
    }

    /// Has the service already finished?
    pub fn is_finished(&self) -> bool {
        match &self.inner {
            ServiceImpl::Thread(h) => h.is_finished(),
            ServiceImpl::Task(t) => t.is_finished(),
        }
    }
}

/// Spawn a named engine service (dispatcher, completion handler) on the
/// worker pool — or, in `SPSIM_SCHED=threads` mode, on its own OS thread.
///
/// # Panics
/// Panics if the OS refuses to spawn a thread — service creation happens
/// at world setup time where that is unrecoverable anyway.
pub fn spawn_service(name: String, f: impl FnOnce() + Send + 'static) -> ServiceHandle {
    match sched::sched_mode() {
        SchedMode::Pool => ServiceHandle {
            inner: ServiceImpl::Task(sched::spawn(name, Box::new(f))),
        },
        SchedMode::Threads => {
            let inner = thread::Builder::new()
                .name(name)
                .spawn(f)
                .or_diag("spawn service thread");
            ServiceHandle {
                inner: ServiceImpl::Thread(inner),
            }
        }
    }
}

fn collect_or_panic<R>(outcomes: Vec<thread::Result<R>>) -> Vec<R> {
    let mut results = Vec::with_capacity(outcomes.len());
    let mut first_panic = None;
    for o in outcomes {
        match o {
            Ok(r) => results.push(r),
            Err(p) => {
                if first_panic.is_none() {
                    first_panic = Some(p);
                }
            }
        }
    }
    if let Some(p) = first_panic {
        resume_unwind(p);
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_in_rank_order() {
        let out = run_spmd(8, |rank| rank * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn all_nodes_actually_run() {
        let counter = AtomicUsize::new(0);
        run_spmd(16, |_| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn with_contexts_moves_them_in() {
        let ctxs: Vec<String> = (0..4).map(|i| format!("ctx{i}")).collect();
        let out = run_spmd_with(ctxs, |rank, c| format!("{rank}:{c}"));
        assert_eq!(out[3], "3:ctx3");
    }

    #[test]
    #[should_panic(expected = "node 2 exploded")]
    fn panics_propagate() {
        run_spmd(4, |rank| {
            if rank == 2 {
                panic!("node 2 exploded");
            }
        });
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        run_spmd(0, |_| ());
    }

    #[test]
    fn pooled_service_joins_from_plain_thread() {
        let h = spawn_service("svc-join-test".into(), || {});
        h.join().expect("service must finish cleanly");
    }

    #[test]
    fn pooled_service_panic_payload_survives_join() {
        let h = spawn_service("svc-panic-test".into(), || panic!("svc died"));
        let err = h.join().expect_err("panic must surface");
        let msg = err.downcast_ref::<&str>().expect("str payload");
        assert_eq!(*msg, "svc died");
    }

    #[test]
    fn thousand_trivial_nodes_complete() {
        // The point of the M:N runtime: node count far above any sane OS
        // thread budget for a single test.
        let counter = AtomicUsize::new(0);
        run_spmd(1024, |_| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 1024);
    }
}
