//! SPMD node runtime.
//!
//! A parallel job on the SP is `n` copies of the same program, one per node.
//! [`run_spmd`] reproduces that: it spawns `n` OS threads, runs the given
//! closure with each node's rank, and collects the per-node results. Panics
//! in any node are propagated to the caller (after all nodes have finished
//! or hit their queue escape hatches), so a failing simulated program fails
//! the test that ran it.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::thread;

/// Rank of a simulated node within its job, `0..n`.
pub type NodeId = usize;

// Scheduler tie-break perturbation. When armed, events enqueued at the
// *same* virtual instant are popped from [`crate::TimedQueue`]s in a
// seed-dependent permutation instead of insertion order, so a conformance
// harness can explore alternative legal interleavings. Disarmed (the
// default) the tie-break is exactly the insertion sequence, bit-for-bit
// identical to the behaviour before the hook existed — one relaxed atomic
// load per push is the entire cost.
static TIEBREAK_ON: AtomicBool = AtomicBool::new(false);
static TIEBREAK_SEED: AtomicU64 = AtomicU64::new(0);

/// Arm (`Some(seed)`) or disarm (`None`) the global same-virtual-time
/// scheduler tie-break perturbation.
///
/// The hook is process-global: callers that arm it around a simulated run
/// must serialize those runs (the `check` harness holds a lock) and disarm
/// it afterwards. Two runs with the same seed perturb identically.
pub fn set_schedule_tiebreak(seed: Option<u64>) {
    match seed {
        Some(s) => {
            // ordering: callers serialize arming around whole runs (see
            // above), so no simulated thread races these two stores.
            TIEBREAK_SEED.store(s, Ordering::Relaxed);
            TIEBREAK_ON.store(true, Ordering::Relaxed);
        }
        None => {
            // ordering: same serialization argument as arming.
            TIEBREAK_ON.store(false, Ordering::Relaxed);
            TIEBREAK_SEED.store(0, Ordering::Relaxed);
        }
    }
}

/// The currently armed tie-break seed, if any.
pub fn schedule_tiebreak() -> Option<u64> {
    // ordering: read under the same caller-side serialization as set().
    if TIEBREAK_ON.load(Ordering::Relaxed) {
        Some(TIEBREAK_SEED.load(Ordering::Relaxed))
    } else {
        None
    }
}

/// Tie-break key for the `n`-th element pushed onto a queue: the insertion
/// sequence itself when the hook is disarmed, or a SplitMix64 hash of
/// (seed, seq) when armed — a deterministic pseudo-random permutation of
/// same-timestamp events.
#[inline]
pub(crate) fn tiebreak_key(seq: u64) -> u64 {
    // ordering: the hook is armed/disarmed only between runs (callers
    // serialize), so pushes within a run observe a stable flag and seed.
    if !TIEBREAK_ON.load(Ordering::Relaxed) {
        return seq;
    }
    let mut z = TIEBREAK_SEED
        // ordering: see the flag load above.
        .load(Ordering::Relaxed)
        .wrapping_add(seq.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Run `f(rank)` on `n` threads and collect results in rank order.
///
/// When event tracing is active (see [`crate::trace::session`]), the
/// per-node ring buffers are drained into the global sink's merged timeline
/// once every node has finished.
///
/// # Panics
/// Propagates the first node panic once every node has terminated.
pub fn run_spmd<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(NodeId) -> R + Sync,
{
    assert!(n > 0, "SPMD job needs at least one node");
    let f = &f;
    let mut outcomes: Vec<thread::Result<R>> = Vec::with_capacity(n);
    thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .map(|rank| {
                thread::Builder::new()
                    .name(format!("sp-node-{rank}"))
                    .spawn_scoped(s, move || catch_unwind(AssertUnwindSafe(|| f(rank))))
                    .expect("spawn node thread")
            })
            .collect();
        for h in handles {
            outcomes.push(h.join().expect("node thread itself must not die"));
        }
    });
    crate::trace::TraceSink::global().seal();
    collect_or_panic(outcomes)
}

/// Like [`run_spmd`], but each node consumes a pre-built, possibly
/// non-`Clone` context (e.g. its endpoint of a network built up front).
pub fn run_spmd_with<C, R, F>(ctxs: Vec<C>, f: F) -> Vec<R>
where
    C: Send,
    R: Send,
    F: Fn(NodeId, C) -> R + Sync,
{
    assert!(!ctxs.is_empty(), "SPMD job needs at least one node");
    let f = &f;
    let mut outcomes: Vec<thread::Result<R>> = Vec::with_capacity(ctxs.len());
    thread::scope(|s| {
        let handles: Vec<_> = ctxs
            .into_iter()
            .enumerate()
            .map(|(rank, ctx)| {
                thread::Builder::new()
                    .name(format!("sp-node-{rank}"))
                    .spawn_scoped(s, move || {
                        catch_unwind(AssertUnwindSafe(move || f(rank, ctx)))
                    })
                    .expect("spawn node thread")
            })
            .collect();
        for h in handles {
            outcomes.push(h.join().expect("node thread itself must not die"));
        }
    });
    crate::trace::TraceSink::global().seal();
    collect_or_panic(outcomes)
}

/// Handle to a named service thread spawned by [`spawn_service`] — the
/// *only* sanctioned way for simulated code to hold onto a running thread.
///
/// Lint rule A4 bans `std::thread::spawn`/`JoinHandle` in every
/// virtual-time crate except this module, so that when the runtime moves
/// to M:N node scheduling (ROADMAP item 1) every service thread is already
/// created and joined through one choke point that the scheduler can take
/// over.
#[derive(Debug)]
pub struct ServiceHandle {
    inner: thread::JoinHandle<()>,
}

impl ServiceHandle {
    /// Wait for the service to finish; `Err` carries the service's panic
    /// payload (same contract as `std::thread::JoinHandle::join`).
    pub fn join(self) -> thread::Result<()> {
        self.inner.join()
    }

    /// Has the service already finished?
    pub fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }
}

/// Spawn a named engine service thread (dispatcher, completion handler).
///
/// # Panics
/// Panics if the OS refuses to spawn a thread — service creation happens
/// at world setup time where that is unrecoverable anyway.
pub fn spawn_service(name: String, f: impl FnOnce() + Send + 'static) -> ServiceHandle {
    let inner = thread::Builder::new()
        .name(name)
        .spawn(f)
        .expect("spawn service thread");
    ServiceHandle { inner }
}

fn collect_or_panic<R>(outcomes: Vec<thread::Result<R>>) -> Vec<R> {
    let mut results = Vec::with_capacity(outcomes.len());
    let mut first_panic = None;
    for o in outcomes {
        match o {
            Ok(r) => results.push(r),
            Err(p) => {
                if first_panic.is_none() {
                    first_panic = Some(p);
                }
            }
        }
    }
    if let Some(p) = first_panic {
        resume_unwind(p);
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_in_rank_order() {
        let out = run_spmd(8, |rank| rank * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn all_nodes_actually_run() {
        let counter = AtomicUsize::new(0);
        run_spmd(16, |_| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn with_contexts_moves_them_in() {
        let ctxs: Vec<String> = (0..4).map(|i| format!("ctx{i}")).collect();
        let out = run_spmd_with(ctxs, |rank, c| format!("{rank}:{c}"));
        assert_eq!(out[3], "3:ctx3");
    }

    #[test]
    #[should_panic(expected = "node 2 exploded")]
    fn panics_propagate() {
        run_spmd(4, |rank| {
            if rank == 2 {
                panic!("node 2 exploded");
            }
        });
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        run_spmd(0, |_| ());
    }
}
