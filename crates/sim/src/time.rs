//! Virtual instants and durations.
//!
//! All simulated time in this workspace is kept in integer nanoseconds.
//! The paper reports microseconds; nanosecond resolution lets the cost model
//! express sub-microsecond quantities (e.g. per-byte wire time at ~102 MB/s
//! is ≈ 9.8 ns/byte) without floating-point drift in the hot paths.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A virtual instant, in nanoseconds since the start of the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VTime(pub u64);

/// A virtual duration, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VDur(pub u64);

impl VTime {
    /// The origin of virtual time.
    pub const ZERO: VTime = VTime(0);

    /// The end of virtual time — a sentinel for "never" (e.g. a fault
    /// window that never closes). Do not add durations to it.
    pub const MAX: VTime = VTime(u64::MAX);

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        VTime(us * 1_000)
    }

    /// Construct from nanoseconds since the simulation epoch.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        VTime(ns)
    }

    /// Nanoseconds since the simulation epoch.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Microseconds since the simulation epoch (fractional).
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: VTime) -> VTime {
        VTime(self.0.max(other.0))
    }

    /// Duration since `earlier`, saturating to zero if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: VTime) -> VDur {
        VDur(self.0.saturating_sub(earlier.0))
    }
}

impl VDur {
    /// Zero-length duration.
    pub const ZERO: VDur = VDur(0);

    /// Construct from whole nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        VDur(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        VDur(us * 1_000)
    }

    /// Construct from fractional microseconds (rounds to nearest ns).
    #[inline]
    pub fn from_us_f64(us: f64) -> Self {
        VDur((us * 1_000.0).round().max(0.0) as u64)
    }

    /// Nanoseconds.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Microseconds (fractional).
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds (fractional).
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The longer of two durations.
    #[inline]
    pub fn max(self, other: VDur) -> VDur {
        VDur(self.0.max(other.0))
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: VDur) -> VDur {
        VDur(self.0.saturating_sub(other.0))
    }

    /// Transfer rate implied by moving `bytes` in this duration, in MB/s
    /// (decimal megabytes, as used by the paper's figures).
    pub fn rate_mb_s(self, bytes: u64) -> f64 {
        if self.0 == 0 {
            return f64::INFINITY;
        }
        (bytes as f64 / 1e6) / self.as_secs()
    }
}

impl Add<VDur> for VTime {
    type Output = VTime;
    #[inline]
    fn add(self, rhs: VDur) -> VTime {
        VTime(self.0 + rhs.0)
    }
}

impl AddAssign<VDur> for VTime {
    #[inline]
    fn add_assign(&mut self, rhs: VDur) {
        self.0 += rhs.0;
    }
}

impl Sub<VTime> for VTime {
    type Output = VDur;
    #[inline]
    fn sub(self, rhs: VTime) -> VDur {
        VDur(self.0.saturating_sub(rhs.0))
    }
}

impl Add for VDur {
    type Output = VDur;
    #[inline]
    fn add(self, rhs: VDur) -> VDur {
        VDur(self.0 + rhs.0)
    }
}

impl AddAssign for VDur {
    #[inline]
    fn add_assign(&mut self, rhs: VDur) {
        self.0 += rhs.0;
    }
}

impl Sub for VDur {
    type Output = VDur;
    #[inline]
    fn sub(self, rhs: VDur) -> VDur {
        VDur(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for VDur {
    #[inline]
    fn sub_assign(&mut self, rhs: VDur) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for VDur {
    type Output = VDur;
    #[inline]
    fn mul(self, rhs: u64) -> VDur {
        VDur(self.0 * rhs)
    }
}

impl Div<u64> for VDur {
    type Output = VDur;
    #[inline]
    fn div(self, rhs: u64) -> VDur {
        VDur(self.0 / rhs)
    }
}

impl Sum for VDur {
    fn sum<I: Iterator<Item = VDur>>(iter: I) -> VDur {
        VDur(iter.map(|d| d.0).sum())
    }
}

impl fmt::Debug for VTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}us", self.as_us())
    }
}

impl fmt::Display for VTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us())
    }
}

impl fmt::Debug for VDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us())
    }
}

impl fmt::Display for VDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = VTime::from_us(10);
        let d = VDur::from_us(5);
        assert_eq!((t + d).as_ns(), 15_000);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.max(t + d), t + d);
    }

    #[test]
    fn sub_is_saturating() {
        let a = VTime::from_us(1);
        let b = VTime::from_us(2);
        assert_eq!(a - b, VDur::ZERO);
        assert_eq!(b.since(a), VDur::from_us(1));
        assert_eq!(a.since(b), VDur::ZERO);
    }

    #[test]
    fn fractional_us_rounds() {
        assert_eq!(VDur::from_us_f64(0.5).as_ns(), 500);
        assert_eq!(VDur::from_us_f64(0.0004).as_ns(), 0);
        assert_eq!(VDur::from_us_f64(-3.0).as_ns(), 0);
    }

    #[test]
    fn rate_mb_s() {
        // 1 MB in 10_000 us => 100 MB/s
        let d = VDur::from_us(10_000);
        let r = d.rate_mb_s(1_000_000);
        assert!((r - 100.0).abs() < 1e-9);
        assert!(VDur::ZERO.rate_mb_s(1).is_infinite());
    }

    #[test]
    fn dur_scalar_ops() {
        let d = VDur::from_us(4);
        assert_eq!((d * 3).as_us(), 12.0);
        assert_eq!((d / 2).as_us(), 2.0);
        let total: VDur = [d, d, d].into_iter().sum();
        assert_eq!(total.as_us(), 12.0);
    }
}
