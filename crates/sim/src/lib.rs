//! # spsim — virtual-time simulation kernel for the simulated RS/6000 SP
//!
//! This crate provides the substrate on which the LAPI reproduction runs:
//! every simulated SP *node* is a cooperative task multiplexed M:N onto a
//! fixed worker pool ([`sched`]; `SPSIM_SCHED=threads` restores the legacy
//! thread-per-node runtime), and time is **virtual**.
//! Each node owns a [`VClock`] — a monotonically advancing virtual-nanosecond
//! counter. CPU work performed by the communication libraries is charged to
//! the clock with [`VClock::advance`]; messages carry virtual timestamps, and
//! a receiver that observes an event *merges* the event time into its own
//! clock ([`VClock::merge`]). A node that is blocked waiting does **not**
//! advance its clock, which makes latency and bandwidth measurements
//! deterministic and independent of the host machine.
//!
//! The pieces:
//!
//! * [`VTime`] / [`VDur`] — virtual instants and durations (nanoseconds).
//! * [`VClock`] — a shareable per-node clock.
//! * [`MachineConfig`] — the calibrated cost model of the simulated SP
//!   (packet sizes, wire bandwidth, software overheads, interrupt costs).
//! * [`TimedQueue`] — a blocking queue whose elements carry virtual
//!   timestamps; receiving merges the element's timestamp into the caller's
//!   clock. This is how packet arrival times propagate between node threads.
//! * [`VBarrier`] — a barrier that aligns the virtual clocks of all
//!   participants (to the maximum, plus a configurable cost).
//! * [`run_spmd`] — run `n` node tasks executing the same closure
//!   (single-program-multiple-data, like a parallel job on the SP), with
//!   panic propagation.
//! * [`SimRng`] — a tiny deterministic RNG (SplitMix64) used for route
//!   selection and drop injection in the switch model.
//! * [`trace`] — virtual-time event tracing: per-node ring buffers behind a
//!   process-global [`trace::TraceSink`], drained by [`run_spmd`] into a
//!   merged deterministic timeline. Disabled by default (one atomic load on
//!   the hot path); powers the deadlock diagnostics and
//!   [`trace::TraceSink::assert_quiescent`].
//! * [`diag`] — the diagnostic-panic discipline for engine hot paths
//!   ([`sim_panic!`], [`OrDiag`]); enforced statically by `spsim-lint`.

#![warn(missing_docs)]

pub mod barrier;
pub mod clock;
pub mod config;
pub mod diag;
pub mod fault;
pub mod mutation;
pub mod queue;
pub mod rng;
pub mod runtime;
pub mod sched;
pub mod spsc;
pub mod stats;
pub mod time;
pub mod trace;

pub use barrier::VBarrier;
pub use clock::VClock;
pub use config::{DeliveryPath, MachineConfig};
pub use diag::OrDiag;
pub use fault::{FaultPlan, FaultProfile, FaultWindow, LinkFaults, NodeFault};
pub use mutation::Mutant;
pub use queue::{QueueClosed, Stamped, TimedQueue};
pub use rng::SimRng;
pub use runtime::{
    run_spmd, run_spmd_with, schedule_tiebreak, set_schedule_tiebreak, spawn_service, NodeId,
    ServiceHandle,
};
pub use sched::{
    on_fiber, sched_mode, set_sched_mode, set_worker_cap, yield_now, SchedMode, SimCondvar,
    SimWaitTimeoutResult,
};
pub use spsc::{DeliveryQueue, DeliveryRings};
pub use stats::{Histogram, StatCounter};
pub use time::{VDur, VTime};
pub use trace::{EventKind, Timeline, TraceEvent, TraceSession, TraceSink};
