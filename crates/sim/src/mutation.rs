//! Seeded protocol mutants for validating the conformance harness.
//!
//! A test harness that never fails proves nothing. This module hosts a
//! small registry of deliberately broken protocol variants that the
//! `check` crate's mutation smoke test arms one at a time: each mutant
//! must be *caught* by the harness's oracle within a bounded case budget,
//! which demonstrates the oracle actually observes the property the
//! mutant breaks.
//!
//! The mutants are compiled into the production code paths but gated on a
//! process-global atomic that is disarmed by default — the cost on the
//! hot path is one relaxed load at the handful of sites a mutant can
//! fire, mirroring the zero-cost discipline of [`crate::trace`]. Arming
//! is process-global, so callers must serialize simulated runs while a
//! mutant is armed (the harness holds a lock) and disarm afterwards.

use std::sync::atomic::{AtomicU8, Ordering};

/// A deliberately broken protocol variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutant {
    /// `lapi::Counter` waits observe the value but skip the decrement, so
    /// counters only ever grow. Breaks tri-counter accounting: the
    /// oracle's final residue check (`Getcntr == 0` after consuming the
    /// expected totals) sees stale credit.
    SkipCounterDecrement,
    /// The receive-side dedup cursor is off by one: the first duplicate
    /// copy of a packet (fabric duplication or a spurious retransmit) is
    /// delivered to the protocol instead of suppressed. Breaks
    /// exactly-once delivery: counters over-fire and Rmw requests can
    /// apply twice.
    DedupCursorOffByOne,
    /// A lost packet's retransmit timer is dropped: the sender reports
    /// success without ever re-offering the packet. Breaks at-least-once
    /// delivery: the target's counters never fire and waits hang (caught
    /// by the real-time escape as a simulated deadlock).
    DropRetransmitTimer,
}

impl Mutant {
    /// Stable name used in serialized replay cases.
    pub fn name(self) -> &'static str {
        match self {
            Mutant::SkipCounterDecrement => "skip-counter-decrement",
            Mutant::DedupCursorOffByOne => "dedup-cursor-off-by-one",
            Mutant::DropRetransmitTimer => "drop-retransmit-timer",
        }
    }

    /// Inverse of [`Mutant::name`].
    pub fn from_name(name: &str) -> Option<Mutant> {
        match name {
            "skip-counter-decrement" => Some(Mutant::SkipCounterDecrement),
            "dedup-cursor-off-by-one" => Some(Mutant::DedupCursorOffByOne),
            "drop-retransmit-timer" => Some(Mutant::DropRetransmitTimer),
            _ => None,
        }
    }

    /// Every known mutant, for iteration in smoke tests.
    pub const ALL: [Mutant; 3] = [
        Mutant::SkipCounterDecrement,
        Mutant::DedupCursorOffByOne,
        Mutant::DropRetransmitTimer,
    ];
}

const DISARMED: u8 = 0;

static ARMED: AtomicU8 = AtomicU8::new(DISARMED);

fn code(m: Mutant) -> u8 {
    match m {
        Mutant::SkipCounterDecrement => 1,
        Mutant::DedupCursorOffByOne => 2,
        Mutant::DropRetransmitTimer => 3,
    }
}

/// Arm `mutant` process-wide (or disarm with `None`). See the module notes
/// on serialization.
pub fn set(mutant: Option<Mutant>) {
    // ordering: armed/disarmed only between serialized runs (module notes).
    ARMED.store(mutant.map_or(DISARMED, code), Ordering::Relaxed);
}

/// Is `mutant` the currently armed mutant? One relaxed atomic load.
#[inline]
pub fn armed(mutant: Mutant) -> bool {
    // ordering: stable for the whole run (set only between runs).
    ARMED.load(Ordering::Relaxed) == code(mutant)
}

/// The currently armed mutant, if any.
pub fn current() -> Option<Mutant> {
    // ordering: stable for the whole run (set only between runs).
    match ARMED.load(Ordering::Relaxed) {
        1 => Some(Mutant::SkipCounterDecrement),
        2 => Some(Mutant::DedupCursorOffByOne),
        3 => Some(Mutant::DropRetransmitTimer),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for m in Mutant::ALL {
            assert_eq!(Mutant::from_name(m.name()), Some(m));
        }
        assert_eq!(Mutant::from_name("no-such-mutant"), None);
    }

    #[test]
    fn arm_disarm_cycle() {
        // Single test exercising the global state (no parallel conflicts:
        // this is the only sim-crate test touching it).
        assert_eq!(current(), None);
        for m in Mutant::ALL {
            set(Some(m));
            assert!(armed(m));
            assert_eq!(current(), Some(m));
            for other in Mutant::ALL {
                if other != m {
                    assert!(!armed(other));
                }
            }
        }
        set(None);
        assert_eq!(current(), None);
        for m in Mutant::ALL {
            assert!(!armed(m));
        }
    }
}
