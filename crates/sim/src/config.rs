//! The calibrated cost model of the simulated SP.
//!
//! Every tunable of the simulated machine lives here: wire bandwidth, packet
//! and header sizes, and the software overheads of the LAPI and MPI/MPL
//! protocol stacks. The defaults are calibrated against the numbers the
//! paper reports for 120 MHz P2SC "thin" nodes with the SP switch (Table 2,
//! Figure 2 and Section 4 of the paper); see `DESIGN.md` §6 for the
//! derivation. Experiments sweep or override individual fields — nothing in
//! the result tables is hard-coded, the protocols really execute against
//! these constants.

use crate::fault::{FaultPlan, FaultProfile, LinkFaults};
use crate::runtime::NodeId;
use crate::time::VDur;

/// Which receive-queue implementation the switch wires into each port.
///
/// Both paths deliver in the same `(timestamp, tie-break, push-order)`
/// order, byte-identically under the same seed (asserted by
/// `crates/lapi/tests/determinism.rs`); they differ only in wall-clock
/// cost. Selectable per config so A/B tests and the benchmark baseline can
/// pin either path, and via `SPSIM_DELIVERY=heap|rings` for whole-suite
/// sweeps (mirroring `SPSIM_FAULT_PROFILE`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeliveryPath {
    /// SPSC circular rings per source lane (the fast path, default).
    Rings,
    /// The legacy mutex-protected timestamp heap (`TimedQueue`).
    Heap,
}

impl DeliveryPath {
    /// Read `SPSIM_DELIVERY` from the environment; unset or unrecognized
    /// values select the default fast path.
    pub fn from_env() -> Self {
        match std::env::var("SPSIM_DELIVERY").as_deref() {
            Ok("heap") | Ok("legacy") => DeliveryPath::Heap,
            _ => DeliveryPath::Rings,
        }
    }
}

/// Cost model and hardware parameters of the simulated RS/6000 SP.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    // ---------------------------------------------------------------- wire
    /// Total wire size of one switch packet in bytes, header included.
    pub packet_size: usize,
    /// LAPI packet header size (bytes). The paper: 48 bytes, because the
    /// origin must carry all target-side parameters in every packet.
    pub lapi_header_bytes: usize,
    /// MPI/MPL packet header size (bytes). The paper: 16 bytes.
    pub mpl_header_bytes: usize,
    /// Link bandwidth per direction, decimal MB/s. Calibrated so the LAPI
    /// asymptotic put bandwidth lands near the paper's ≈97 MB/s once the
    /// 48-byte header tax is paid.
    pub wire_bw_mb_s: f64,
    /// Fixed one-way latency through the switch fabric.
    pub fabric_latency: VDur,
    /// Number of distinct routes between each node pair. Packets of one
    /// message may take different routes, which is what makes delivery
    /// out of order (a property LAPI embraces and MPL must mask).
    pub num_routes: usize,
    /// Extra fabric latency spread across routes: route `r` adds
    /// `r * route_skew` to the fabric latency. A nonzero skew makes
    /// out-of-order arrival *visible*, not just possible.
    pub route_skew: VDur,
    /// Probability that the switch drops a packet (failure injection;
    /// recovered by the adapter's retransmission protocol).
    pub drop_prob: f64,
    /// Probability that the switch delivers a duplicate copy of a packet
    /// (the copy crosses the ejection link and is suppressed by the
    /// receiving adapter's sequence-number dedup).
    pub dup_prob: f64,
    /// Loss probability for acknowledgement packets. `None` means an ACK on
    /// link `b → a` is as lossy as data on `b → a` (the reverse link's drop
    /// probability); tests pin `Some(0.0)` to isolate data-path loss.
    pub ack_drop_prob: Option<f64>,
    /// Scripted per-link fault overrides and black-hole windows.
    pub faults: FaultPlan,
    /// Wire size of a bare acknowledgement packet.
    pub ack_bytes: usize,
    /// Initial adapter retransmission timeout: the RTO used before the
    /// flow has any RTT sample. With [`MachineConfig::adaptive_rto`] unset
    /// this is *the* (fixed) timeout, as in the pre-RTO-estimator adapter.
    pub retransmit_timeout: VDur,
    /// Estimate the per-flow RTO from observed round-trip times
    /// (SRTT/RTTVAR, RFC-6298-style) with exponential backoff and seeded
    /// jitter on retransmissions. Disable (`with_fixed_rto`) to pin the
    /// constant-timeout behaviour exact-timing tests rely on.
    pub adaptive_rto: bool,
    /// Lower clamp of the adaptive RTO.
    pub rto_min: VDur,
    /// Upper clamp of the adaptive RTO, backoff included. Bounds how long
    /// a dying flow waits between retries, which in turn bounds the
    /// virtual-time cost of declaring a peer dead.
    pub rto_max: VDur,
    /// Bounded retries: after this many retransmissions of one packet the
    /// sender gives up and surfaces a structured delivery-timeout error
    /// (the flow is considered dead). Sized so that even at 40% loss in
    /// both directions the chance of a spurious timeout is negligible
    /// (0.64^64 ≈ 4e-13 per packet).
    pub max_retransmits: u32,
    /// ACK coalescing: the receiving adapter acknowledges cumulatively and
    /// charges one `ack_bytes` wire packet per this many data packets
    /// (piggybacking on the flow's reverse lane).
    pub ack_every: u32,
    /// ACK coalescing deadline: a pending cumulative ACK is flushed as a
    /// standalone packet this long after the oldest unacknowledged-on-the-
    /// wire delivery, even if the batch is not full.
    pub ack_delay: VDur,
    /// Which receive-queue implementation the switch uses (see
    /// [`DeliveryPath`]); purely a wall-clock/throughput knob, never a
    /// virtual-time one.
    pub delivery_path: DeliveryPath,
    /// Capacity of each SPSC delivery ring in packets (rounded up to a
    /// power of two). Must exceed the largest burst a sender can inject
    /// before the receiver drains; a full ring applies real-time
    /// backpressure to the producing thread.
    pub delivery_ring_capacity: usize,

    // ---------------------------------------------------------------- lapi
    /// Origin CPU cost for a `LAPI_Put` call to return control ("pipeline
    /// latency", paper §4: 16 µs). Includes injecting the first packet.
    pub lapi_put_issue: VDur,
    /// Origin CPU cost for a `LAPI_Get` call to return control (19 µs).
    pub lapi_get_issue: VDur,
    /// Origin CPU cost for a `LAPI_Amsend` call to return control.
    pub lapi_am_issue: VDur,
    /// Cost to issue a message from *inside* the dispatcher / a handler
    /// (no user-to-library transition), e.g. the data reply of a get or an
    /// echo sent from a completion handler.
    pub lapi_handler_issue: VDur,
    /// Per-additional-packet origin cost when a message spans packets.
    pub lapi_pkt_issue: VDur,
    /// Dispatcher cost to process one arriving packet (polling mode).
    pub lapi_dispatch: VDur,
    /// Cost to update a completion counter (and wake waiters).
    pub lapi_counter_update: VDur,
    /// Baseline cost of running a user header handler.
    pub lapi_hdr_handler: VDur,
    /// Baseline cost of running a user completion handler.
    pub lapi_cmpl_handler: VDur,
    /// Per-message completion bookkeeping at the target (last packet of a
    /// message: final counter update + generating the origin notification).
    pub lapi_completion_msg: VDur,
    /// Cost of taking a hardware interrupt to kick the dispatcher
    /// (interrupt mode only). Calibrated so the LAPI interrupt round trip
    /// lands at the paper's 89 µs (an echo takes ~2.3 interrupts here:
    /// request at the target, reply and completion ack at the origin,
    /// minus the ones coalesced by back-to-back arrival).
    pub interrupt_cost: VDur,
    /// Cost of one poll/probe call that finds nothing.
    pub lapi_poll: VDur,
    /// Bytes of user data that fit in the user header of a single-packet
    /// active message (`LAPI_Qenv(MAX_UHDR_SZ)`); paper §5.3.1: ≈900.
    pub lapi_max_uhdr: usize,
    /// Per-descriptor processing cost of the vector (`putv`/`getv`)
    /// extension of §6 (building/walking the scatter-gather table).
    pub lapi_vec_desc: VDur,

    // ----------------------------------------------------------------- mpl
    /// Origin CPU cost to issue an MPI/MPL send (call + protocol header).
    pub mpl_send_issue: VDur,
    /// Receiver CPU cost to match + complete one message (tag matching,
    /// queue bookkeeping).
    pub mpl_recv_match: VDur,
    /// Receiver per-packet dispatch cost.
    pub mpl_pkt_dispatch: VDur,
    /// memcpy bandwidth for protocol buffer copies, decimal MB/s. The
    /// eager protocol pays this on the critical path (the "extra copy"
    /// the paper blames for the MPI mid-range bandwidth gap).
    pub memcpy_bw_mb_s: f64,
    /// Target-side processing of a rendezvous request (RTS) beyond the
    /// normal per-message cost: buffer/posting negotiation before the CTS.
    pub mpl_rndv_setup: VDur,
    /// Cost of creating the `rcvncall` handler context (AIX overhead the
    /// paper blames for MPL's 200 µs interrupt round trip): ≈57 µs.
    pub rcvncall_ctx: VDur,
    /// Default `MP_EAGER_LIMIT`: messages at or below this size use the
    /// eager protocol; larger ones use rendezvous.
    pub mpl_eager_limit: usize,
    /// Maximum settable `MP_EAGER_LIMIT` (paper: 65536).
    pub mpl_eager_limit_max: usize,

    // ------------------------------------------------------------------ ga
    /// Per-operation Global Arrays software overhead at the calling side
    /// (patch arithmetic, protocol selection, locality lookup).
    pub ga_op_overhead: VDur,
    /// Per-operation GA overhead at the serving side (inside handlers).
    pub ga_serve_overhead: VDur,
    /// Extra origin-side cost of building an MPL request message (§5.2:
    /// the request header and data must be marshalled into one message
    /// because MPL progress rules forbid separating them).
    pub ga_mpl_request_overhead: VDur,
    /// Cost of one double-precision FMA-ish accumulate element, used by the
    /// `acc` kernel in handlers.
    pub ga_acc_per_elem: VDur,
}

impl Default for MachineConfig {
    fn default() -> Self {
        // The env-selected fault profile lets CI push the whole test suite
        // through a lossy fabric (`SPSIM_FAULT_PROFILE=lossy cargo test`).
        // Exact-timing calibration tests opt out via `with_no_faults()`.
        let (drop_prob, dup_prob) = FaultProfile::from_env().probabilities();
        MachineConfig {
            packet_size: 1024,
            lapi_header_bytes: 48,
            mpl_header_bytes: 16,
            wire_bw_mb_s: 102.0,
            fabric_latency: VDur::from_us_f64(7.0),
            num_routes: 4,
            route_skew: VDur::from_us_f64(0.4),
            drop_prob,
            dup_prob,
            ack_drop_prob: None,
            faults: FaultPlan::new(),
            ack_bytes: 48,
            retransmit_timeout: VDur::from_us(500),
            adaptive_rto: true,
            rto_min: VDur::from_us(200),
            rto_max: VDur::from_us(10_000),
            max_retransmits: 64,
            ack_every: 4,
            ack_delay: VDur::from_us(100),
            delivery_path: DeliveryPath::from_env(),
            delivery_ring_capacity: 4096,

            lapi_put_issue: VDur::from_us(16),
            lapi_get_issue: VDur::from_us(19),
            lapi_am_issue: VDur::from_us(16),
            lapi_handler_issue: VDur::from_us(8),
            lapi_pkt_issue: VDur::from_us_f64(1.0),
            lapi_dispatch: VDur::from_us(5),
            lapi_counter_update: VDur::from_us(1),
            lapi_hdr_handler: VDur::from_us(4),
            lapi_cmpl_handler: VDur::from_us(4),
            lapi_completion_msg: VDur::from_us(4),
            interrupt_cost: VDur::from_us_f64(12.3),
            lapi_poll: VDur::from_us_f64(0.5),
            lapi_max_uhdr: 900,
            lapi_vec_desc: VDur::from_ns(200),

            mpl_send_issue: VDur::from_us_f64(15.5),
            mpl_recv_match: VDur::from_us_f64(14.5),
            mpl_pkt_dispatch: VDur::from_us(5),
            memcpy_bw_mb_s: 500.0,
            mpl_rndv_setup: VDur::from_us(45),
            rcvncall_ctx: VDur::from_us(57),
            mpl_eager_limit: 4096,
            mpl_eager_limit_max: 65536,

            ga_op_overhead: VDur::from_us(6),
            ga_serve_overhead: VDur::from_us(5),
            ga_mpl_request_overhead: VDur::from_us(16),
            ga_acc_per_elem: VDur::from_ns(12),
        }
    }
}

impl MachineConfig {
    /// The default calibration: 120 MHz P2SC nodes with the SP switch, as
    /// used throughout the paper's evaluation.
    pub fn sp_p2sc_120() -> Self {
        Self::default()
    }

    /// Builder-style: set the switch drop probability (failure injection).
    pub fn with_drop_prob(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability must be in [0,1)");
        self.drop_prob = p;
        self
    }

    /// Builder-style: set the fabric duplication probability.
    pub fn with_dup_prob(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "duplicate probability must be in [0,1]"
        );
        self.dup_prob = p;
        self
    }

    /// Builder-style: pin the ACK loss probability instead of mirroring the
    /// reverse link's drop probability.
    pub fn with_ack_drop_prob(mut self, p: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "ack drop probability must be in [0,1)"
        );
        self.ack_drop_prob = Some(p);
        self
    }

    /// Builder-style: install a scripted [`FaultPlan`].
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Builder-style: cap the retransmissions before a delivery timeout.
    pub fn with_max_retransmits(mut self, n: u32) -> Self {
        assert!(n > 0, "at least one retransmission must be allowed");
        self.max_retransmits = n;
        self
    }

    /// Builder-style: disable RTT estimation and use `timeout` as a fixed
    /// retransmission timeout (exact-timing tests pin the old constant
    /// behaviour this way).
    pub fn with_fixed_rto(mut self, timeout: VDur) -> Self {
        self.retransmit_timeout = timeout;
        self.adaptive_rto = false;
        self
    }

    /// Builder-style: set the adaptive-RTO clamps.
    pub fn with_rto_bounds(mut self, min: VDur, max: VDur) -> Self {
        assert!(min <= max, "rto_min must not exceed rto_max");
        self.rto_min = min;
        self.rto_max = max;
        self
    }

    /// Builder-style: force a perfectly clean fabric, overriding any
    /// env-selected fault profile. Exact-timing calibration tests use this
    /// so `SPSIM_FAULT_PROFILE=lossy` cannot shift their latencies.
    pub fn with_no_faults(mut self) -> Self {
        self.drop_prob = 0.0;
        self.dup_prob = 0.0;
        self.ack_drop_prob = None;
        self.faults = FaultPlan::new();
        self
    }

    /// The effective fault probabilities of the directed link `src → dst`:
    /// the plan's per-link override if present, else the global knobs.
    #[inline]
    pub fn link_faults(&self, src: NodeId, dst: NodeId) -> LinkFaults {
        self.faults.link(src, dst).unwrap_or(LinkFaults {
            drop_prob: self.drop_prob,
            dup_prob: self.dup_prob,
        })
    }

    /// The effective loss probability of an ACK travelling `src → dst`
    /// (i.e. the *reverse* direction of the data flow it acknowledges).
    #[inline]
    pub fn ack_loss(&self, src: NodeId, dst: NodeId) -> f64 {
        self.ack_drop_prob
            .unwrap_or_else(|| self.link_faults(src, dst).drop_prob)
    }

    /// Can this machine lose or duplicate anything at all? When `false`,
    /// the adapter's reliability protocol stays disarmed (pay-for-what-you-
    /// use: no ACK traffic, no extra RNG draws, timings identical to a
    /// machine that predates the protocol).
    #[inline]
    pub fn reliability_armed(&self) -> bool {
        self.drop_prob > 0.0
            || self.dup_prob > 0.0
            || self.ack_drop_prob.is_some_and(|p| p > 0.0)
            || !self.faults.is_empty()
    }

    /// Builder-style: pin the delivery-queue implementation, overriding the
    /// env-selected default (A/B determinism tests and the benchmark
    /// baseline use this).
    pub fn with_delivery_path(mut self, path: DeliveryPath) -> Self {
        self.delivery_path = path;
        self
    }

    /// Builder-style: set the per-lane SPSC ring capacity.
    pub fn with_ring_capacity(mut self, packets: usize) -> Self {
        assert!(packets >= 2, "a ring needs at least two slots");
        self.delivery_ring_capacity = packets;
        self
    }

    /// Builder-style: set `MP_EAGER_LIMIT` (clamped to the maximum, like
    /// the real environment variable).
    pub fn with_eager_limit(mut self, limit: usize) -> Self {
        self.mpl_eager_limit = limit.min(self.mpl_eager_limit_max);
        self
    }

    /// Time to serialize `bytes` onto a link at the wire bandwidth.
    #[inline]
    pub fn wire_time(&self, bytes: usize) -> VDur {
        VDur::from_ns((bytes as f64 * 1e3 / self.wire_bw_mb_s).round() as u64)
    }

    /// Time to memcpy `bytes` through a protocol buffer.
    #[inline]
    pub fn memcpy_time(&self, bytes: usize) -> VDur {
        VDur::from_ns((bytes as f64 * 1e3 / self.memcpy_bw_mb_s).round() as u64)
    }

    /// Payload bytes per packet for a given header size.
    #[inline]
    pub fn payload_per_packet(&self, header_bytes: usize) -> usize {
        assert!(
            header_bytes < self.packet_size,
            "header exceeds packet size"
        );
        self.packet_size - header_bytes
    }

    /// Number of packets needed for a `len`-byte message under the given
    /// header size (minimum 1: zero-length messages still send a header).
    #[inline]
    pub fn packets_for(&self, len: usize, header_bytes: usize) -> usize {
        let payload = self.payload_per_packet(header_bytes);
        len.div_ceil(payload).max(1)
    }

    /// Asymptotic payload bandwidth achievable under a given header size,
    /// in MB/s: the wire rate scaled by the payload fraction of a packet.
    pub fn asymptotic_bw_mb_s(&self, header_bytes: usize) -> f64 {
        self.wire_bw_mb_s * self.payload_per_packet(header_bytes) as f64 / self.packet_size as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_calibrated_to_paper_constants() {
        let c = MachineConfig::default();
        assert_eq!(c.packet_size, 1024);
        assert_eq!(c.lapi_header_bytes, 48);
        assert_eq!(c.mpl_header_bytes, 16);
        // LAPI asymptote ≈ 97 MB/s, MPI asymptote slightly above it —
        // the paper's explanation of why the MPI peak edges out LAPI.
        let lapi_bw = c.asymptotic_bw_mb_s(c.lapi_header_bytes);
        let mpi_bw = c.asymptotic_bw_mb_s(c.mpl_header_bytes);
        assert!((lapi_bw - 97.2).abs() < 0.5, "lapi asym {lapi_bw}");
        assert!(mpi_bw > lapi_bw);
    }

    #[test]
    fn wire_time_matches_bandwidth() {
        let c = MachineConfig::default();
        let t = c.wire_time(1024);
        // 1024 B at 102 MB/s ≈ 10.04 us
        assert!((t.as_us() - 10.04).abs() < 0.01, "{t}");
    }

    #[test]
    fn packets_for_edges() {
        let c = MachineConfig::default();
        let payload = c.payload_per_packet(48); // 976
        assert_eq!(payload, 976);
        assert_eq!(c.packets_for(0, 48), 1);
        assert_eq!(c.packets_for(1, 48), 1);
        assert_eq!(c.packets_for(976, 48), 1);
        assert_eq!(c.packets_for(977, 48), 2);
        assert_eq!(c.packets_for(2 * 976, 48), 2);
    }

    #[test]
    fn eager_limit_clamps() {
        let c = MachineConfig::default().with_eager_limit(1 << 20);
        assert_eq!(c.mpl_eager_limit, 65536);
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn bad_drop_prob_rejected() {
        let _ = MachineConfig::default().with_drop_prob(1.5);
    }
}
