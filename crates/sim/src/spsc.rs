//! The delivery fast path: per-source SPSC rings behind a timed facade.
//!
//! [`TimedQueue`] serializes every producer and consumer on one mutex and,
//! before the waiter-count fix, paid a `notify_all` per push. That is fine
//! for genuinely multi-producer lanes (the LAPI completion queue) but it is
//! the wrong shape for packet delivery: the adapter already serializes all
//! packets of a directed `(src, dst)` flow under the sender-side flow lock,
//! so each *source* is a single producer into the destination's receive
//! queue. [`DeliveryRings`] exploits that: one fixed-capacity SPSC circular
//! ring per source lane (modeled on cpp-ipc's circular-array channels),
//! lock-free on the producer side, with a spin-then-park protocol for
//! blocked consumers.
//!
//! Ordering semantics are identical to [`TimedQueue`]: elements are handed
//! out in `(timestamp, tie-break, push-sequence)` order among those
//! currently visible. The consumer drains every ring into a private staging
//! heap before popping, and the push sequence comes from one shared atomic
//! counter, so the pop order is the same pure function of (timestamps, push
//! order, tie-break seed) that the heap path computes — same seed, same
//! bytes, whichever path is selected (`crates/lapi/tests/determinism.rs`
//! asserts exactly that).
//!
//! [`DeliveryQueue`] is the selectable facade the switch embeds: the `Rings`
//! arm is the fast path, the `Heap` arm keeps the legacy `TimedQueue`
//! reachable for A/B determinism tests and as the baseline lane of the
//! wall-clock benchmark (see `MachineConfig::delivery_path`).

use std::cell::UnsafeCell;
use std::collections::BinaryHeap;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::clock::VClock;
use crate::queue::{QueueClosed, Stamped, TimedQueue, DEFAULT_ESCAPE};
use crate::sched::SimCondvar;
use crate::time::VTime;

/// How long a producer spins on a full ring before yielding the CPU.
const FULL_SPINS: u32 = 64;

/// One entry, ordered exactly like `TimedQueue`'s heap entries: earliest
/// timestamp first, ties broken by the key computed at push time (insertion
/// sequence when the scheduler perturbation hook is disarmed, a seeded hash
/// when armed), then by raw sequence.
struct Entry<T> {
    at: VTime,
    tie: u64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert to pop the earliest first.
        (other.at, other.tie, other.seq).cmp(&(self.at, self.tie, self.seq))
    }
}

type Slot<T> = UnsafeCell<MaybeUninit<Entry<T>>>;

/// One single-producer/single-consumer circular ring (one source lane).
///
/// The buffer is allocated lazily by the producer on first push, so an
/// `n`-node switch does not pay `n²` ring allocations for lanes that never
/// carry traffic. `head`/`tail` are free-running cursors; indices are
/// `cursor & (capacity - 1)` (capacity is a power of two).
struct Ring<T> {
    buf: AtomicPtr<Slot<T>>,
    head: AtomicUsize,
    tail: AtomicUsize,
}

impl<T> Ring<T> {
    fn new() -> Self {
        Ring {
            buf: AtomicPtr::new(std::ptr::null_mut()),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    /// Producer-side: get the buffer, allocating it on first use. Only the
    /// (single) producer ever stores a non-null pointer, so no CAS is
    /// needed; consumers treat null as "nothing was ever pushed here".
    fn ensure_buf(&self, cap: usize) -> *mut Slot<T> {
        // ordering: Acquire pairs with the producer's own Release store;
        // on the single producer thread a Relaxed load would also do, but
        // Acquire keeps the pairing uniform with the consumer side.
        let p = self.buf.load(Ordering::Acquire);
        if !p.is_null() {
            return p;
        }
        let boxed: Box<[Slot<T>]> = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        let p = Box::into_raw(boxed) as *mut Slot<T>;
        // ordering: Release publishes the initialized buffer to consumers
        // that load it with Acquire in `drain_into`.
        self.buf.store(p, Ordering::Release);
        p
    }
}

/// Shared state behind [`DeliveryRings`] handles.
struct RingsInner<T> {
    rings: Box<[Ring<T>]>,
    cap: usize,
    /// Global push order across all lanes — the `seq` every entry carries,
    /// playing the role of `TimedQueue`'s per-push sequence counter.
    next_seq: AtomicU64,
    /// Entries pushed but not yet handed to a caller (staged included):
    /// the lock-free emptiness hint `len`/`is_empty` read.
    depth: AtomicUsize,
    closed: AtomicBool,
    /// Consumer staging heap: rings are FIFO per lane but route skew makes
    /// per-lane timestamps non-monotonic, so visible entries are re-ordered
    /// here before popping. Also serializes concurrent consumers
    /// (dispatcher thread + application probe).
    staged: Mutex<BinaryHeap<Entry<T>>>,
    /// Park/wake handshake for blocked consumers (see `recv_merge`).
    park: Mutex<()>,
    cond: SimCondvar,
    waiters: AtomicUsize,
}

// SAFETY: every slot is written by exactly one producer (guarded by the
// adapter's per-flow lock) and read by consumers only after observing the
// producer's Release store of `tail`; the staging heap and park state are
// mutex-protected. `T: Send` is required because entries cross threads.
unsafe impl<T: Send> Send for RingsInner<T> {}
unsafe impl<T: Send> Sync for RingsInner<T> {}

impl<T> Drop for RingsInner<T> {
    fn drop(&mut self) {
        for ring in self.rings.iter() {
            // ordering: Relaxed — `&mut self` proves exclusive access.
            let p = ring.buf.load(Ordering::Relaxed);
            if p.is_null() {
                continue;
            }
            // ordering: Relaxed — `&mut self` proves exclusive access.
            let head = ring.head.load(Ordering::Relaxed);
            // ordering: Relaxed — same exclusive access as above.
            let tail = ring.tail.load(Ordering::Relaxed);
            let mask = self.cap - 1;
            let mut cur = head;
            while cur != tail {
                // SAFETY: entries in [head, tail) were written and never
                // consumed; read them out so their payloads drop.
                unsafe {
                    drop((*(*p.add(cur & mask)).get()).assume_init_read());
                }
                cur = cur.wrapping_add(1);
            }
            // SAFETY: reconstruct the boxed slice allocated in `ensure_buf`.
            unsafe {
                drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
                    p, self.cap,
                )));
            }
        }
    }
}

/// A multi-lane SPSC delivery queue with [`TimedQueue`]-compatible
/// semantics. Cloning yields another handle to the same queue.
pub struct DeliveryRings<T> {
    inner: Arc<RingsInner<T>>,
    escape: Duration,
}

impl<T> Clone for DeliveryRings<T> {
    fn clone(&self) -> Self {
        DeliveryRings {
            inner: Arc::clone(&self.inner),
            escape: self.escape,
        }
    }
}

impl<T: Send> DeliveryRings<T> {
    /// New queue with `lanes` source lanes, each a ring of `capacity`
    /// entries (rounded up to a power of two), and the default real-time
    /// escape for blocking operations.
    pub fn new(lanes: usize, capacity: usize) -> Self {
        Self::with_escape(lanes, capacity, DEFAULT_ESCAPE)
    }

    /// New queue with a custom real-time escape (tests use short escapes to
    /// exercise the deadlock diagnostics).
    pub fn with_escape(lanes: usize, capacity: usize, escape: Duration) -> Self {
        assert!(lanes > 0, "a delivery queue needs at least one lane");
        let cap = capacity.max(2).next_power_of_two();
        DeliveryRings {
            inner: Arc::new(RingsInner {
                rings: (0..lanes).map(|_| Ring::new()).collect(),
                cap,
                next_seq: AtomicU64::new(0),
                depth: AtomicUsize::new(0),
                closed: AtomicBool::new(false),
                staged: Mutex::new(BinaryHeap::new()),
                park: Mutex::new(()),
                cond: SimCondvar::new(),
                waiters: AtomicUsize::new(0),
            }),
            escape,
        }
    }

    /// Ring capacity per lane (after power-of-two rounding).
    pub fn capacity(&self) -> usize {
        self.inner.cap
    }

    /// Enqueue `item` on `lane` as an event at virtual time `at`.
    ///
    /// The caller must guarantee that pushes on one lane are serialized
    /// (the adapter's per-flow lock provides this). Returns `true` if the
    /// item was accepted; pushing to a closed queue refuses the item and
    /// returns `false`, like [`TimedQueue::push`] — callers use the refusal
    /// to write the packet off in the trace ledger. A full ring
    /// spins-then-yields until the consumer frees a slot; if no consumer
    /// drains within the real-time escape, the simulated program is stuck
    /// and this panics with a diagnostic.
    pub fn push_from(&self, lane: usize, at: VTime, item: T) -> bool {
        let inner = &*self.inner;
        // ordering: SeqCst — the close flag participates in the same total
        // order as depth/waiters so a post-close push is reliably dropped.
        if inner.closed.load(Ordering::SeqCst) {
            return false;
        }
        // ordering: Relaxed — the counter only needs uniqueness and
        // monotonicity; within the deterministic envelope pushes are
        // causally serialized, which fixes the observed order.
        let seq = inner.next_seq.fetch_add(1, Ordering::Relaxed);
        let tie = crate::runtime::tiebreak_key(seq);
        let ring = &inner.rings[lane];
        let buf = ring.ensure_buf(inner.cap);
        // ordering: Relaxed — tail is only ever advanced by this (single)
        // producer; no other thread writes it.
        let tail = ring.tail.load(Ordering::Relaxed);
        let mut spins: u32 = 0;
        let mut deadline: Option<Instant> = None;
        // liveness: the consumer advances `head` as it drains the lane and
        // `close` breaks the wait; past the real-time escape the spin
        // panics with a diagnostic instead of livelocking.
        loop {
            // ordering: Acquire pairs with the consumer's Release store in
            // `drain_into`: observing the advanced head also means the
            // consumer is done reading the slot we are about to overwrite.
            let head = ring.head.load(Ordering::Acquire);
            if tail.wrapping_sub(head) < inner.cap {
                break;
            }
            // ordering: SeqCst — see the close check above.
            if inner.closed.load(Ordering::SeqCst) {
                return false;
            }
            spins += 1;
            if spins > FULL_SPINS {
                // Scheduler-aware: a fiber producer must give the (possibly
                // sole) worker back to the consumer that drains this ring.
                crate::sched::yield_now();
                let now = Instant::now();
                let dl = *deadline.get_or_insert(now + self.escape);
                if now >= dl {
                    panic!(
                        "DeliveryRings::push_from: lane {lane} ring full for {:?} of real \
                         time — no consumer is draining (simulated deadlock; is the \
                         destination polling?)\n\
                         ring: cap={} depth={} closed={}\n{}",
                        self.escape,
                        inner.cap,
                        // ordering: SeqCst — diagnostic read of the shared counter.
                        inner.depth.load(Ordering::SeqCst),
                        inner.closed.load(Ordering::SeqCst),
                        crate::trace::tail_report(crate::trace::REPORT_TAIL)
                    );
                }
            }
        }
        let mask = inner.cap - 1;
        // SAFETY: the slot at `tail` is unoccupied (checked against `head`
        // above) and this thread is the lane's only producer.
        unsafe {
            (*buf.add(tail & mask))
                .get()
                .write(MaybeUninit::new(Entry { at, tie, seq, item }));
        }
        // ordering: Release publishes the slot write to consumers that load
        // `tail` with Acquire in `drain_into`.
        ring.tail.store(tail.wrapping_add(1), Ordering::Release);
        // Dekker handshake with parking consumers: the depth increment must
        // be globally ordered against the consumer's waiter registration so
        // at least one side sees the other (either the consumer re-checks
        // depth > 0 and skips the park, or we see waiters > 0 and wake it).
        //
        // ordering: SeqCst — first half of the handshake described above.
        inner.depth.fetch_add(1, Ordering::SeqCst);
        // ordering: SeqCst — second half of the handshake above.
        if inner.waiters.load(Ordering::SeqCst) > 0 {
            // Taking the park mutex serializes with the consumer's
            // register-then-recheck-then-wait critical section, so the
            // notify cannot fall between its recheck and its wait.
            let _g = inner.park.lock();
            inner.cond.notify_one();
        }
        true
    }

    /// Move every visible ring entry into the staging heap. Caller holds
    /// the `staged` lock (the guard proves it).
    fn drain_into(&self, staged: &mut BinaryHeap<Entry<T>>) {
        let inner = &*self.inner;
        let mask = inner.cap - 1;
        for ring in inner.rings.iter() {
            // ordering: Acquire pairs with the producer's Release store in
            // `ensure_buf`: a non-null pointer is a fully initialized buffer.
            let buf = ring.buf.load(Ordering::Acquire);
            if buf.is_null() {
                continue;
            }
            // ordering: Relaxed — head is only advanced under the `staged`
            // lock, which the caller holds; the lock orders consumers.
            let mut head = ring.head.load(Ordering::Relaxed);
            // ordering: Acquire pairs with the producer's Release store of
            // `tail`: entries below it are fully written.
            let tail = ring.tail.load(Ordering::Acquire);
            while head != tail {
                // SAFETY: [head, tail) slots are initialized (published by
                // the producer's Release) and not yet consumed; reading
                // them out transfers ownership to the staging heap.
                let e = unsafe { (*(*buf.add(head & mask)).get()).assume_init_read() };
                staged.push(e);
                head = head.wrapping_add(1);
                // ordering: Release — hand the slot back to the producer;
                // pairs with its Acquire load in the full-ring wait loop.
                ring.head.store(head, Ordering::Release);
            }
        }
    }

    fn pop_staged(&self, staged: &mut BinaryHeap<Entry<T>>) -> Option<Stamped<T>> {
        staged.pop().map(|e| {
            // ordering: SeqCst — keeps the emptiness hint in the same total
            // order as the park handshake in `push_from`.
            self.inner.depth.fetch_sub(1, Ordering::SeqCst);
            Stamped {
                at: e.at,
                item: e.item,
            }
        })
    }

    /// Close the queue: blocked and future receivers get [`QueueClosed`]
    /// once the remaining elements are drained; late pushes are dropped.
    pub fn close(&self) {
        // ordering: SeqCst — ordered against the producers' close checks
        // and the consumers' park handshake.
        self.inner.closed.store(true, Ordering::SeqCst);
        let _g = self.inner.park.lock();
        self.inner.cond.notify_all();
    }

    /// Has `close` been called?
    pub fn is_closed(&self) -> bool {
        // ordering: SeqCst — see `close`.
        self.inner.closed.load(Ordering::SeqCst)
    }

    /// Number of undelivered elements — a lock-free hint read from an
    /// atomic counter (exact when producers and consumers are quiescent,
    /// momentarily stale during concurrent pushes).
    pub fn len(&self) -> usize {
        // ordering: SeqCst — the hint shares the counter the park
        // handshake uses; a plain Relaxed load would also be sound here.
        self.inner.depth.load(Ordering::SeqCst)
    }

    /// Is the queue (apparently) empty? Lock-free, see [`Self::len`].
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Nonblocking: take the earliest-stamped visible element.
    pub fn try_recv(&self) -> Result<Option<Stamped<T>>, QueueClosed> {
        let mut staged = self.inner.staged.lock();
        self.drain_into(&mut staged);
        match self.pop_staged(&mut staged) {
            Some(s) => Ok(Some(s)),
            // ordering: SeqCst — see `close`.
            None if self.inner.closed.load(Ordering::SeqCst) => Err(QueueClosed),
            None => Ok(None),
        }
    }

    /// Nonblocking poll at virtual time `now`: take the earliest visible
    /// element only if its timestamp is `<= now`.
    pub fn try_recv_ready(&self, now: VTime) -> Result<Option<Stamped<T>>, QueueClosed> {
        let mut staged = self.inner.staged.lock();
        self.drain_into(&mut staged);
        if let Some(top) = staged.peek() {
            if top.at <= now {
                return Ok(self.pop_staged(&mut staged));
            }
            return Ok(None);
        }
        // ordering: SeqCst — see `close`.
        if self.inner.closed.load(Ordering::SeqCst) {
            Err(QueueClosed)
        } else {
            Ok(None)
        }
    }

    /// Blocking: wait for the earliest element, merging its timestamp into
    /// `clock`. Panics if the real-time escape elapses (simulated deadlock).
    pub fn recv_merge(&self, clock: &VClock) -> Result<Stamped<T>, QueueClosed> {
        match self.recv_inner(None) {
            Ok(Some(s)) => {
                clock.merge(s.at);
                Ok(s)
            }
            Ok(None) => self.deadlock_panic(Some(clock)),
            Err(e) => Err(e),
        }
    }

    /// Blocking receive bounded by `dur` of *real* time: `Ok(None)` on
    /// timeout.
    pub fn recv_timeout(&self, dur: Duration) -> Result<Option<Stamped<T>>, QueueClosed> {
        self.recv_inner(Some(dur))
    }

    /// Blocking receive without a clock; panics on the real-time escape.
    pub fn recv(&self) -> Result<Stamped<T>, QueueClosed> {
        match self.recv_inner(None) {
            Ok(Some(s)) => Ok(s),
            Ok(None) => self.deadlock_panic(None),
            Err(e) => Err(e),
        }
    }

    /// Drain every visible element whose timestamp is `<= now`, in
    /// timestamp order.
    pub fn drain_ready(&self, now: VTime) -> Vec<Stamped<T>> {
        let mut out = Vec::new();
        let mut staged = self.inner.staged.lock();
        self.drain_into(&mut staged);
        while staged.peek().is_some_and(|top| top.at <= now) {
            if let Some(s) = self.pop_staged(&mut staged) {
                out.push(s);
            }
        }
        out
    }

    /// Shared blocking core: `Ok(None)` means the wait bound elapsed
    /// (`bound` = `None` uses the escape; the caller panics in that case).
    fn recv_inner(&self, bound: Option<Duration>) -> Result<Option<Stamped<T>>, QueueClosed> {
        let inner = &*self.inner;
        let deadline = Instant::now() + bound.unwrap_or(self.escape);
        // liveness: the producer bumps `depth` and notifies `cond` under
        // the park mutex after every push, and `close` does the same; the
        // deadline bounds the whole loop either way.
        loop {
            {
                let mut staged = inner.staged.lock();
                self.drain_into(&mut staged);
                if let Some(s) = self.pop_staged(&mut staged) {
                    return Ok(Some(s));
                }
                // ordering: SeqCst — see `close`.
                if inner.closed.load(Ordering::SeqCst) {
                    return Err(QueueClosed);
                }
            }
            // Park protocol (producer side in `push_from`): register as a
            // waiter, then re-check under the park mutex, then wait. The
            // SeqCst handshake on depth/waiters plus the mutex-bracketed
            // notify make a lost wakeup impossible; the timed wait below is
            // belt and braces on top, not a correctness requirement.
            //
            // ordering: SeqCst — Dekker handshake with `push_from`.
            inner.waiters.fetch_add(1, Ordering::SeqCst);
            let mut g = inner.park.lock();
            // ordering: SeqCst — re-check after registering; pairs with the
            // producer's depth increment.
            let timed_out = if inner.depth.load(Ordering::SeqCst) == 0
                && !inner.closed.load(Ordering::SeqCst)
            {
                let now = Instant::now();
                if now >= deadline {
                    true
                } else {
                    inner.cond.wait_for(&mut g, deadline - now).timed_out()
                }
            } else {
                false
            };
            drop(g);
            // ordering: SeqCst — see the fetch_add above.
            inner.waiters.fetch_sub(1, Ordering::SeqCst);
            if timed_out && Instant::now() >= deadline {
                return Ok(None);
            }
        }
    }

    /// Debug snapshot of every undelivered entry as `(at_ns, tie, seq)`,
    /// staged and in-ring alike (drains rings into the staging heap).
    #[doc(hidden)]
    pub fn debug_entries(&self) -> Vec<(u64, u64, u64)> {
        let mut staged = self.inner.staged.lock();
        self.drain_into(&mut staged);
        let mut out: Vec<(u64, u64, u64)> = staged
            .iter()
            .map(|e| (e.at.as_ns(), e.tie, e.seq))
            .collect();
        out.sort_unstable();
        out
    }

    /// The real-time escape fired while blocked: the simulated program is
    /// deadlocked. Never returns.
    fn deadlock_panic(&self, clock: Option<&VClock>) -> ! {
        let inner = &*self.inner;
        panic!(
            "DeliveryRings::recv: no event within {:?} of real time — the simulated \
             program is deadlocked (is anyone making progress? polling-mode LAPI \
             requires the target to poll)\n\
             queue: depth={} closed={} waiter-clock={}ns\n{}",
            self.escape,
            // ordering: SeqCst — diagnostic reads.
            inner.depth.load(Ordering::SeqCst),
            inner.closed.load(Ordering::SeqCst),
            clock.map_or(0, |c| c.now().as_ns()),
            crate::trace::tail_report(crate::trace::REPORT_TAIL)
        );
    }
}

/// The selectable delivery queue the switch embeds in each port: the SPSC
/// ring fast path, or the legacy multi-producer [`TimedQueue`] kept for A/B
/// determinism tests and as the benchmark baseline. Both arms expose the
/// same surface; `lane` is ignored by the heap arm.
pub enum DeliveryQueue<T> {
    /// Legacy path: one mutex-protected timestamp heap.
    Heap(TimedQueue<T>),
    /// Fast path: one SPSC ring per source lane plus a staging heap.
    Rings(DeliveryRings<T>),
}

impl<T: Send> DeliveryQueue<T> {
    /// Enqueue `item` from source `lane` at virtual time `at`. Lane pushes
    /// must be serialized by the caller on the `Rings` arm (the adapter's
    /// per-flow lock provides this). Returns `true` if the item was
    /// accepted, `false` if the queue was already closed and refused it.
    pub fn push_from(&self, lane: usize, at: VTime, item: T) -> bool {
        match self {
            DeliveryQueue::Heap(q) => q.push(at, item),
            DeliveryQueue::Rings(q) => q.push_from(lane, at, item),
        }
    }

    /// Close the queue; see [`TimedQueue::close`].
    pub fn close(&self) {
        match self {
            DeliveryQueue::Heap(q) => q.close(),
            DeliveryQueue::Rings(q) => q.close(),
        }
    }

    /// Has `close` been called?
    pub fn is_closed(&self) -> bool {
        match self {
            DeliveryQueue::Heap(q) => q.is_closed(),
            DeliveryQueue::Rings(q) => q.is_closed(),
        }
    }

    /// Number of undelivered elements (lock-free on both arms).
    pub fn len(&self) -> usize {
        match self {
            DeliveryQueue::Heap(q) => q.len(),
            DeliveryQueue::Rings(q) => q.len(),
        }
    }

    /// Is the queue empty? Lock-free on both arms.
    pub fn is_empty(&self) -> bool {
        match self {
            DeliveryQueue::Heap(q) => q.is_empty(),
            DeliveryQueue::Rings(q) => q.is_empty(),
        }
    }

    /// Nonblocking receive; see [`TimedQueue::try_recv`].
    pub fn try_recv(&self) -> Result<Option<Stamped<T>>, QueueClosed> {
        match self {
            DeliveryQueue::Heap(q) => q.try_recv(),
            DeliveryQueue::Rings(q) => q.try_recv(),
        }
    }

    /// Nonblocking poll at `now`; see [`TimedQueue::try_recv_ready`].
    pub fn try_recv_ready(&self, now: VTime) -> Result<Option<Stamped<T>>, QueueClosed> {
        match self {
            DeliveryQueue::Heap(q) => q.try_recv_ready(now),
            DeliveryQueue::Rings(q) => q.try_recv_ready(now),
        }
    }

    /// Blocking receive that merges the element's timestamp into `clock`;
    /// see [`TimedQueue::recv_merge`].
    pub fn recv_merge(&self, clock: &VClock) -> Result<Stamped<T>, QueueClosed> {
        match self {
            DeliveryQueue::Heap(q) => q.recv_merge(clock),
            DeliveryQueue::Rings(q) => q.recv_merge(clock),
        }
    }

    /// Blocking receive bounded by real time; see
    /// [`TimedQueue::recv_timeout`].
    // liveness: pure dispatch — both variants' recv_timeout carry their
    // own liveness contracts (sender notify / ring push wakes the waiter,
    // close poisons it), and the `dur` bound caps the block in real time.
    pub fn recv_timeout(&self, dur: Duration) -> Result<Option<Stamped<T>>, QueueClosed> {
        match self {
            DeliveryQueue::Heap(q) => q.recv_timeout(dur),
            DeliveryQueue::Rings(q) => q.recv_timeout(dur),
        }
    }

    /// Blocking receive without a clock; see [`TimedQueue::recv`].
    pub fn recv(&self) -> Result<Stamped<T>, QueueClosed> {
        match self {
            DeliveryQueue::Heap(q) => q.recv(),
            DeliveryQueue::Rings(q) => q.recv(),
        }
    }

    /// Drain every element stamped `<= now`; see
    /// [`TimedQueue::drain_ready`].
    pub fn drain_ready(&self, now: VTime) -> Vec<Stamped<T>> {
        match self {
            DeliveryQueue::Heap(q) => q.drain_ready(now),
            DeliveryQueue::Rings(q) => q.drain_ready(now),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::VDur;
    use std::thread;

    #[test]
    fn pops_in_timestamp_order_across_lanes() {
        let q = DeliveryRings::new(3, 8);
        q.push_from(0, VTime::from_us(30), "c");
        q.push_from(1, VTime::from_us(10), "a");
        q.push_from(2, VTime::from_us(20), "b");
        let clock = VClock::new();
        assert_eq!(q.recv_merge(&clock).unwrap().item, "a");
        assert_eq!(q.recv_merge(&clock).unwrap().item, "b");
        assert_eq!(q.recv_merge(&clock).unwrap().item, "c");
        assert_eq!(clock.now(), VTime::from_us(30));
    }

    #[test]
    fn same_lane_ties_break_by_push_order() {
        let q = DeliveryRings::new(1, 16);
        for i in 0..10 {
            q.push_from(0, VTime::from_us(5), i);
        }
        let clock = VClock::new();
        for i in 0..10 {
            assert_eq!(q.recv_merge(&clock).unwrap().item, i);
        }
    }

    #[test]
    fn wraparound_preserves_order_and_content() {
        // Capacity 8, 100 elements: the cursors wrap the ring many times
        // while a consumer keeps pace.
        let q = DeliveryRings::new(1, 8);
        let q2 = q.clone();
        let producer = thread::spawn(move || {
            for i in 0..100u64 {
                q2.push_from(0, VTime::from_us(i), i);
            }
        });
        let clock = VClock::new();
        for want in 0..100u64 {
            let got = q.recv_merge(&clock).unwrap();
            assert_eq!(got.item, want);
            assert_eq!(got.at, VTime::from_us(want));
        }
        producer.join().unwrap();
        assert!(q.is_empty());
    }

    #[test]
    fn full_ring_backpressure_blocks_until_drained() {
        let q = DeliveryRings::new(1, 4);
        for i in 0..4u64 {
            q.push_from(0, VTime::from_us(i), i);
        }
        assert_eq!(q.len(), 4);
        // The 5th push must block until the consumer frees a slot.
        let q2 = q.clone();
        let pusher = thread::spawn(move || {
            q2.push_from(0, VTime::from_us(4), 4u64);
        });
        thread::sleep(Duration::from_millis(30));
        assert!(!pusher.is_finished(), "push on a full ring must wait");
        let clock = VClock::new();
        assert_eq!(q.recv_merge(&clock).unwrap().item, 0);
        pusher.join().unwrap();
        for want in 1..5u64 {
            assert_eq!(q.recv_merge(&clock).unwrap().item, want);
        }
    }

    #[test]
    #[should_panic(expected = "ring full")]
    fn full_ring_with_no_consumer_panics_after_escape() {
        let q = DeliveryRings::with_escape(1, 2, Duration::from_millis(40));
        for i in 0..3u64 {
            q.push_from(0, VTime::ZERO, i);
        }
    }

    #[test]
    #[should_panic(expected = "deadlocked")]
    fn recv_escape_hatch_panics() {
        let q: DeliveryRings<()> = DeliveryRings::with_escape(1, 4, Duration::from_millis(30));
        let clock = VClock::new();
        let _ = q.recv_merge(&clock);
    }

    #[test]
    fn close_drains_remaining_then_reports() {
        let q = DeliveryRings::new(2, 4);
        q.push_from(1, VTime::from_us(1), 7);
        q.close();
        let clock = VClock::new();
        assert_eq!(q.recv_merge(&clock).unwrap().item, 7);
        assert!(q.recv_merge(&clock).is_err());
        // push after close is dropped
        q.push_from(0, VTime::ZERO, 9);
        assert_eq!(q.try_recv(), Err(QueueClosed));
    }

    #[test]
    fn close_unblocks_parked_consumer() {
        let q: DeliveryRings<()> = DeliveryRings::new(1, 4);
        let q2 = q.clone();
        let h = thread::spawn(move || q2.recv());
        thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), Err(QueueClosed));
    }

    #[test]
    fn push_races_parked_recv_without_missed_wakeup() {
        // Hammer the park/notify handshake: a consumer that parks just as
        // the producer publishes must always be woken.
        let q = DeliveryRings::new(1, 64);
        let q2 = q.clone();
        let n = 500u64;
        let h = thread::spawn(move || {
            let clock = VClock::new();
            for _ in 0..n {
                q2.recv_merge(&clock).unwrap();
            }
        });
        for i in 0..n {
            q.push_from(0, VTime::from_us(i), i);
            if i % 7 == 0 {
                // Give the consumer time to drain and park again.
                thread::sleep(Duration::from_micros(200));
            }
        }
        h.join().unwrap();
        assert!(q.is_empty());
    }

    #[test]
    fn try_recv_ready_respects_now() {
        let q = DeliveryRings::new(1, 4);
        q.push_from(0, VTime::from_us(50), ());
        assert!(q.try_recv_ready(VTime::from_us(10)).unwrap().is_none());
        assert!(q.try_recv_ready(VTime::from_us(50)).unwrap().is_some());
        assert!(q.try_recv_ready(VTime::from_us(99)).unwrap().is_none());
    }

    #[test]
    fn recv_timeout_times_out_and_delivers() {
        let q: DeliveryRings<u8> = DeliveryRings::new(1, 4);
        assert_eq!(q.recv_timeout(Duration::from_millis(10)), Ok(None));
        q.push_from(0, VTime::from_us(4), 9);
        let got = q.recv_timeout(Duration::from_millis(10)).unwrap().unwrap();
        assert_eq!(got.item, 9);
        q.close();
        assert_eq!(q.recv_timeout(Duration::from_millis(10)), Err(QueueClosed));
    }

    #[test]
    fn drain_ready_takes_prefix_across_lanes() {
        let q = DeliveryRings::new(2, 8);
        for i in 0..5u64 {
            q.push_from((i % 2) as usize, VTime::from_us(i * 10), i);
        }
        let got = q.drain_ready(VTime::from_us(25));
        assert_eq!(
            got.iter().map(|s| s.item).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn len_hint_is_lock_free_and_exact_when_quiescent() {
        let q = DeliveryRings::new(2, 8);
        assert!(q.is_empty());
        q.push_from(0, VTime::ZERO, 1);
        q.push_from(1, VTime::ZERO, 2);
        assert_eq!(q.len(), 2);
        let clock = VClock::new();
        q.recv_merge(&clock).unwrap();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn matches_timed_queue_order_exactly() {
        // The determinism contract: the same (timestamp, push-order) input
        // pops identically from both implementations.
        let script: Vec<(usize, u64)> = (0..64)
            .map(|i| ((i * 7) % 3, ((i * 13) % 11) as u64))
            .collect();
        let heap = TimedQueue::new();
        let rings = DeliveryRings::new(3, 128);
        for (lane, us) in &script {
            heap.push(VTime::from_us(*us), (*lane, *us));
            rings.push_from(*lane, VTime::from_us(*us), (*lane, *us));
        }
        let mut a = Vec::new();
        while let Ok(Some(s)) = heap.try_recv() {
            a.push((s.at, s.item));
        }
        let mut b = Vec::new();
        while let Ok(Some(s)) = rings.try_recv() {
            b.push((s.at, s.item));
        }
        assert_eq!(a, b);
    }

    #[test]
    fn cross_thread_delivery_merges_time() {
        let q = DeliveryRings::new(1, 4);
        let q2 = q.clone();
        let h = thread::spawn(move || {
            let clock = VClock::new();
            let s = q2.recv_merge(&clock).unwrap();
            (s.item, clock.now())
        });
        thread::sleep(Duration::from_millis(10));
        q.push_from(0, VTime::from_us(42), "pkt");
        let (item, t) = h.join().unwrap();
        assert_eq!(item, "pkt");
        assert_eq!(t, VTime::from_us(42));
    }

    #[test]
    fn delivery_queue_facade_dispatches_both_arms() {
        for dq in [
            DeliveryQueue::Heap(TimedQueue::new()),
            DeliveryQueue::Rings(DeliveryRings::new(2, 8)),
        ] {
            dq.push_from(1, VTime::from_us(2), "b");
            dq.push_from(0, VTime::from_us(1), "a");
            assert_eq!(dq.len(), 2);
            assert!(!dq.is_empty());
            let clock = VClock::new();
            assert_eq!(dq.recv_merge(&clock).unwrap().item, "a");
            assert_eq!(dq.try_recv().unwrap().unwrap().item, "b");
            dq.close();
            assert!(dq.is_closed());
            assert_eq!(dq.try_recv(), Err(QueueClosed));
        }
    }

    #[test]
    fn heavy_concurrent_wraparound_stress() {
        // Two producers on separate lanes, one consumer, tiny rings: the
        // cursors wrap hundreds of times and every element must surface
        // exactly once with its stamp intact.
        let q = DeliveryRings::new(2, 8);
        let n = 2_000u64;
        let mut handles = Vec::new();
        for lane in 0..2usize {
            let q2 = q.clone();
            handles.push(thread::spawn(move || {
                for i in 0..n {
                    q2.push_from(
                        lane,
                        VTime::from_us(i) + VDur::from_ns(lane as u64),
                        (lane, i),
                    );
                }
            }));
        }
        let mut seen = vec![Vec::new(); 2];
        let clock = VClock::new();
        for _ in 0..2 * n {
            let s = q.recv_merge(&clock).unwrap();
            seen[s.item.0].push(s.item.1);
        }
        for h in handles {
            h.join().unwrap();
        }
        for lane_seen in &mut seen {
            lane_seen.sort_unstable();
            assert_eq!(*lane_seen, (0..n).collect::<Vec<_>>());
        }
        assert!(q.is_empty());
    }
}
