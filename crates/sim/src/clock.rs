//! Per-node virtual clocks.
//!
//! A [`VClock`] is shared between the application thread of a simulated node
//! and the library machinery acting on its behalf (the LAPI dispatcher
//! thread, completion-handler threads, the adapter model). It only ever moves
//! forward; concurrent writers race monotonically via `fetch_max`, which is
//! exactly the "merge" semantics virtual time needs: observing an event that
//! happened at time `t` pulls the local clock up to `t`, never back.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::time::{VDur, VTime};

/// A shareable, monotonically advancing virtual clock.
///
/// Cloning a `VClock` yields a handle to the *same* clock.
#[derive(Clone, Debug, Default)]
pub struct VClock {
    ns: Arc<AtomicU64>,
}

impl VClock {
    /// A new clock starting at virtual time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// A new clock starting at `t`.
    pub fn starting_at(t: VTime) -> Self {
        VClock {
            ns: Arc::new(AtomicU64::new(t.as_ns())),
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> VTime {
        VTime(self.ns.load(Ordering::Acquire))
    }

    /// Charge `cost` of CPU work to this clock; returns the new time.
    ///
    /// Concurrent `advance`s serialize (both costs are charged); this models
    /// the single CPU of a (uniprocessor P2SC) node being shared by the
    /// application and the communication subsystem.
    #[inline]
    pub fn advance(&self, cost: VDur) -> VTime {
        VTime(self.ns.fetch_add(cost.as_ns(), Ordering::AcqRel) + cost.as_ns())
    }

    /// Pull the clock forward to at least `t` (no-op if already later).
    /// Returns the resulting time.
    #[inline]
    pub fn merge(&self, t: VTime) -> VTime {
        let prev = self.ns.fetch_max(t.as_ns(), Ordering::AcqRel);
        VTime(prev.max(t.as_ns()))
    }

    /// Merge to `t` and then charge `cost`: the common pattern for
    /// "observe an event, then spend CPU processing it".
    #[inline]
    pub fn merge_and_advance(&self, t: VTime, cost: VDur) -> VTime {
        self.merge(t);
        self.advance(cost)
    }

    /// Do two clocks share the same underlying counter?
    pub fn same_clock(&self, other: &VClock) -> bool {
        Arc::ptr_eq(&self.ns, &other.ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn advance_accumulates() {
        let c = VClock::new();
        assert_eq!(c.now(), VTime::ZERO);
        c.advance(VDur::from_us(3));
        c.advance(VDur::from_us(4));
        assert_eq!(c.now(), VTime::from_us(7));
    }

    #[test]
    fn merge_is_monotone() {
        let c = VClock::starting_at(VTime::from_us(10));
        c.merge(VTime::from_us(5));
        assert_eq!(c.now(), VTime::from_us(10));
        c.merge(VTime::from_us(15));
        assert_eq!(c.now(), VTime::from_us(15));
    }

    #[test]
    fn merge_and_advance_charges_after_merge() {
        let c = VClock::new();
        let t = c.merge_and_advance(VTime::from_us(100), VDur::from_us(2));
        assert_eq!(t, VTime::from_us(102));
    }

    #[test]
    fn clones_share_state() {
        let a = VClock::new();
        let b = a.clone();
        a.advance(VDur::from_us(1));
        assert_eq!(b.now(), VTime::from_us(1));
        assert!(a.same_clock(&b));
        assert!(!a.same_clock(&VClock::new()));
    }

    #[test]
    fn concurrent_advances_both_charge() {
        let c = VClock::new();
        let c2 = c.clone();
        let h = thread::spawn(move || {
            for _ in 0..1000 {
                c2.advance(VDur::from_ns(3));
            }
        });
        for _ in 0..1000 {
            c.advance(VDur::from_ns(5));
        }
        h.join().unwrap();
        assert_eq!(c.now().as_ns(), 1000 * 3 + 1000 * 5);
    }
}
