//! A virtual-time barrier.
//!
//! Experiments need all nodes to start from an agreed virtual instant;
//! [`VBarrier::wait`] blocks until every participant arrives and then sets
//! every participant's clock to the maximum arrival time plus a configurable
//! barrier cost. This mirrors what a real `LAPI_Gfence`/`MP_SYNC` does to
//! wall-clock alignment on the SP, and makes measurements deterministic.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::clock::VClock;
use crate::sched::SimCondvar;
use crate::time::{VDur, VTime};

struct State {
    arrived: usize,
    generation: u64,
    max_time: VTime,
    release_time: VTime,
}

struct Inner {
    n: usize,
    cost: VDur,
    state: Mutex<State>,
    cond: SimCondvar,
}

/// A reusable barrier over `n` participants that aligns virtual clocks.
#[derive(Clone)]
pub struct VBarrier {
    inner: Arc<Inner>,
}

impl VBarrier {
    /// A barrier for `n` participants charging `cost` per crossing.
    pub fn new(n: usize, cost: VDur) -> Self {
        assert!(n > 0, "barrier needs at least one participant");
        VBarrier {
            inner: Arc::new(Inner {
                n,
                cost,
                state: Mutex::new(State {
                    arrived: 0,
                    generation: 0,
                    max_time: VTime::ZERO,
                    release_time: VTime::ZERO,
                }),
                cond: SimCondvar::new(),
            }),
        }
    }

    /// Number of participants.
    pub fn participants(&self) -> usize {
        self.inner.n
    }

    /// Enter the barrier; returns the aligned virtual time (which `clock`
    /// has been set to).
    ///
    /// Panics if the other participants fail to arrive within a generous
    /// real-time bound — that means a peer died or deadlocked, and hanging
    /// the whole job would mask the failure.
    pub fn wait(&self, clock: &VClock) -> VTime {
        self.wait_with_progress(clock, || {})
    }

    /// Enter the barrier, invoking `progress` periodically (with the barrier
    /// lock released) while waiting for stragglers.
    ///
    /// This exists for protocols where a parked participant must still
    /// service incoming requests: polling-mode LAPI makes no progress unless
    /// the target polls, so a node that reaches `LAPI_Gfence` first has to
    /// keep draining its receive queue — a peer may be blocked on a request
    /// (e.g. an rmw) that it sent *before* heading to its own fence, and
    /// that request is only served here. `progress` must be non-blocking
    /// and must not advance the virtual clock when there is no work, or the
    /// wait would couple virtual time to real time.
    pub fn wait_with_progress(&self, clock: &VClock, progress: impl FnMut()) -> VTime {
        self.wait_among(clock, self.inner.n, progress)
    }

    /// Enter the barrier expecting only `expected` of the `n` configured
    /// participants to show up this generation, invoking `progress`
    /// periodically like [`VBarrier::wait_with_progress`].
    ///
    /// This is the survivor-set barrier behind `gfence_surviving`: after a
    /// node crash, the live members synchronize among themselves without
    /// waiting (and escaping) on the dead. Every participant of one
    /// generation must pass the same `expected`, and `expected` must stay
    /// consistent across a release (mixing counts in one generation would
    /// release early or strand arrivals — the fault plan is the shared
    /// membership ground truth that guarantees agreement).
    pub fn wait_among(&self, clock: &VClock, expected: usize, mut progress: impl FnMut()) -> VTime {
        assert!(
            expected >= 1 && expected <= self.inner.n,
            "survivor set of {expected} outside 1..={}",
            self.inner.n
        );
        let mut st = self.inner.state.lock();
        let my_gen = st.generation;
        st.max_time = st.max_time.max(clock.now());
        st.arrived += 1;
        if st.arrived == expected {
            st.release_time = st.max_time + self.inner.cost;
            st.arrived = 0;
            st.max_time = VTime::ZERO;
            st.generation += 1;
            let release = st.release_time;
            drop(st);
            self.inner.cond.notify_all();
            clock.merge(release);
            return release;
        }
        // Wait in short real-time slices so `progress` keeps running; a
        // peer that dies or deadlocks trips the escape after ~60s.
        const TICK: std::time::Duration = std::time::Duration::from_millis(5);
        const MAX_TICKS: u32 = 12_000;
        let mut ticks: u32 = 0;
        while st.generation == my_gen {
            if self.inner.cond.wait_for(&mut st, TICK).timed_out() {
                ticks += 1;
                if ticks > MAX_TICKS {
                    panic!(
                        "VBarrier: only {}/{} expected participants arrived within 60s \
                         of real time — a peer died or deadlocked",
                        st.arrived, expected
                    );
                }
                drop(st);
                progress();
                st = self.inner.state.lock();
            }
        }
        let release = st.release_time;
        drop(st);
        clock.merge(release);
        release
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn aligns_clocks_to_max_plus_cost() {
        let b = VBarrier::new(3, VDur::from_us(2));
        let clocks: Vec<VClock> = (0..3)
            .map(|i| VClock::starting_at(VTime::from_us(10 * i as u64)))
            .collect();
        thread::scope(|s| {
            for c in &clocks {
                let b = b.clone();
                s.spawn(move || b.wait(c));
            }
        });
        for c in &clocks {
            assert_eq!(c.now(), VTime::from_us(22));
        }
    }

    #[test]
    fn is_reusable_across_generations() {
        let b = VBarrier::new(2, VDur::ZERO);
        let c0 = VClock::new();
        let c1 = VClock::new();
        for round in 1..=5u64 {
            let (r0, r1) = thread::scope(|s| {
                let b0 = b.clone();
                let b1 = b.clone();
                let c0 = &c0;
                let c1 = &c1;
                let h0 = s.spawn(move || {
                    c0.advance(VDur::from_us(3));
                    b0.wait(c0)
                });
                let h1 = s.spawn(move || b1.wait(c1));
                (h0.join().unwrap(), h1.join().unwrap())
            });
            assert_eq!(r0, r1);
            assert_eq!(r0, VTime::from_us(3 * round));
        }
    }

    #[test]
    fn single_participant_is_trivial() {
        let b = VBarrier::new(1, VDur::from_us(1));
        let c = VClock::starting_at(VTime::from_us(9));
        assert_eq!(b.wait(&c), VTime::from_us(10));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_participants_rejected() {
        let _ = VBarrier::new(0, VDur::ZERO);
    }

    #[test]
    fn survivor_set_releases_without_the_dead() {
        // A 4-way barrier where only 3 participants remain alive: wait_among
        // releases at 3 arrivals and still aligns clocks to max + cost.
        let b = VBarrier::new(4, VDur::from_us(2));
        let clocks: Vec<VClock> = (0..3)
            .map(|i| VClock::starting_at(VTime::from_us(10 * i as u64)))
            .collect();
        thread::scope(|s| {
            for c in &clocks {
                let b = b.clone();
                s.spawn(move || b.wait_among(c, 3, || {}));
            }
        });
        for c in &clocks {
            assert_eq!(c.now(), VTime::from_us(22));
        }
        // The barrier is reusable afterwards at full strength semantics
        // (generation advanced exactly once).
        let c = VClock::starting_at(VTime::from_us(100));
        assert_eq!(b.wait_among(&c, 1, || {}), VTime::from_us(102));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn oversized_survivor_set_rejected() {
        let b = VBarrier::new(2, VDur::ZERO);
        let c = VClock::new();
        b.wait_among(&c, 3, || {});
    }
}
