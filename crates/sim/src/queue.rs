//! Blocking queues that carry virtual timestamps.
//!
//! A [`TimedQueue`] connects node threads: the producer stamps each element
//! with the virtual time at which the corresponding event becomes visible
//! (e.g. a packet's arrival at an adapter), and the consumer's clock is
//! pulled forward to that time when it takes the element out. Elements are
//! delivered in *timestamp order* among those currently enqueued — a
//! min-heap, not FIFO — so a packet that took a faster route is handed to
//! the dispatcher first even if it was pushed later in real time.
//!
//! Blocking receives carry a real-time escape hatch: a simulated deadlock
//! (e.g. polling-mode LAPI with nobody polling) would otherwise hang the
//! test suite forever. Hitting the escape is always a bug in the simulated
//! program and panics with a diagnostic.

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::clock::VClock;
use crate::diag::OrDiag;
use crate::sched::SimCondvar;
use crate::time::VTime;

/// Default real-time escape for blocking receives.
pub const DEFAULT_ESCAPE: Duration = Duration::from_secs(30);

/// Error returned when the queue has been closed and drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueClosed;

/// An element stamped with the virtual time at which it becomes visible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stamped<T> {
    /// Virtual time of the event this element represents.
    pub at: VTime,
    /// The payload.
    pub item: T,
}

struct Entry<T> {
    at: VTime,
    tie: u64,
    seq: u64,
    item: T,
}

// BinaryHeap is a max-heap; invert ordering to pop the earliest timestamp,
// breaking ties by the tie-break key computed at push time. With the
// scheduler perturbation hook disarmed (the default) the key *is* the
// insertion sequence, so same-timestamp events pop in insertion order;
// with it armed (see [`crate::runtime::set_schedule_tiebreak`]) the key is
// a seeded hash and same-timestamp events pop in a deterministic
// seed-dependent permutation. Either way the order is a pure function of
// (timestamps, push order, seed) — never of host scheduling.
impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        (other.at, other.tie, other.seq).cmp(&(self.at, self.tie, self.seq))
    }
}

struct Inner<T> {
    heap: Mutex<HeapState<T>>,
    cond: SimCondvar,
    /// Mirror of `heap.len()`, maintained on every push/pop so the hot
    /// emptiness polls (`len`/`is_empty`) never take the heap lock.
    depth: AtomicUsize,
}

struct HeapState<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
    closed: bool,
    /// Receivers currently parked on the condvar. Tracked under the heap
    /// lock, so a pusher sees an exact count: zero waiters means the
    /// notification can be skipped entirely (the common streaming case).
    waiters: usize,
}

/// A blocking min-heap queue ordered by virtual timestamp.
///
/// Cloning yields another handle to the same queue.
pub struct TimedQueue<T> {
    inner: Arc<Inner<T>>,
    escape: Duration,
}

impl<T> Clone for TimedQueue<T> {
    fn clone(&self) -> Self {
        TimedQueue {
            inner: Arc::clone(&self.inner),
            escape: self.escape,
        }
    }
}

impl<T> Default for TimedQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimedQueue<T> {
    /// New empty queue with the default real-time escape.
    pub fn new() -> Self {
        Self::with_escape(DEFAULT_ESCAPE)
    }

    /// New empty queue with a custom real-time escape for blocking receives.
    pub fn with_escape(escape: Duration) -> Self {
        TimedQueue {
            inner: Arc::new(Inner {
                heap: Mutex::new(HeapState {
                    heap: BinaryHeap::new(),
                    next_seq: 0,
                    closed: false,
                    waiters: 0,
                }),
                cond: SimCondvar::new(),
                depth: AtomicUsize::new(0),
            }),
            escape,
        }
    }

    /// Enqueue `item` as an event occurring at virtual time `at`.
    ///
    /// Returns `true` if the item was accepted. Pushing to a closed queue
    /// refuses the item and returns `false` (late packets after shutdown are
    /// dropped on the floor, like a powered-off adapter) — callers that
    /// account delivery in the trace ledger use the refusal to write the
    /// packet off instead of counting it delivered.
    pub fn push(&self, at: VTime, item: T) -> bool {
        let mut st = self.inner.heap.lock();
        if st.closed {
            return false;
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        let tie = crate::runtime::tiebreak_key(seq);
        st.heap.push(Entry { at, tie, seq, item });
        // ordering: Relaxed — the hint is published under the heap lock;
        // readers tolerate momentary staleness (see `len`).
        self.inner.depth.fetch_add(1, Ordering::Relaxed);
        // Waiters register under the heap lock before parking, so the count
        // read here is exact: a waiter is either already parked (the notify
        // wakes it) or still holds/awaits the lock and will see the pushed
        // element before it ever parks. No waiters — no syscall.
        let notify = st.waiters > 0;
        drop(st);
        if notify {
            self.inner.cond.notify_one();
        }
        true
    }

    /// Close the queue: blocked and future receivers get [`QueueClosed`]
    /// once the remaining elements are drained.
    pub fn close(&self) {
        self.inner.heap.lock().closed = true;
        self.inner.cond.notify_all();
    }

    /// Has `close` been called?
    pub fn is_closed(&self) -> bool {
        self.inner.heap.lock().closed
    }

    /// Number of elements currently enqueued — a lock-free hint read from
    /// an atomic mirror of the heap length (exact when quiescent,
    /// momentarily stale against concurrent pushes/pops). Hot poll loops
    /// use this instead of taking the heap lock per iteration.
    pub fn len(&self) -> usize {
        // ordering: Relaxed — a pure hint; the heap lock is the source of
        // truth and every consumer re-checks under it before acting.
        self.inner.depth.load(Ordering::Relaxed)
    }

    /// Is the queue currently empty? Lock-free, see [`Self::len`].
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Record that one element left the heap (caller holds the heap lock).
    fn note_pop(&self) {
        // ordering: Relaxed — hint mirror, see `len`.
        self.inner.depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Nonblocking: take the earliest-stamped element, regardless of its
    /// timestamp. Returns `Ok(None)` when empty and open.
    pub fn try_recv(&self) -> Result<Option<Stamped<T>>, QueueClosed> {
        let mut st = self.inner.heap.lock();
        match st.heap.pop() {
            Some(e) => {
                self.note_pop();
                Ok(Some(Stamped {
                    at: e.at,
                    item: e.item,
                }))
            }
            None if st.closed => Err(QueueClosed),
            None => Ok(None),
        }
    }

    /// Nonblocking poll at virtual time `now`: take the earliest element
    /// only if its timestamp is `<= now` — i.e. only events that have
    /// already happened from the poller's perspective.
    pub fn try_recv_ready(&self, now: VTime) -> Result<Option<Stamped<T>>, QueueClosed> {
        let mut st = self.inner.heap.lock();
        if let Some(top) = st.heap.peek() {
            if top.at <= now {
                let e = st.heap.pop().or_diag("heap emptied between peek and pop");
                self.note_pop();
                return Ok(Some(Stamped {
                    at: e.at,
                    item: e.item,
                }));
            }
            return Ok(None);
        }
        if st.closed {
            Err(QueueClosed)
        } else {
            Ok(None)
        }
    }

    /// Blocking: wait for the earliest element, merging its timestamp into
    /// `clock`. This models "spin/park until the event arrives" — the
    /// waiter's virtual clock jumps to the event time rather than burning
    /// virtual CPU.
    ///
    /// Panics if the real-time escape elapses (simulated deadlock).
    pub fn recv_merge(&self, clock: &VClock) -> Result<Stamped<T>, QueueClosed> {
        let mut st = self.inner.heap.lock();
        // liveness: every push and close notifies `cond`; wait_for is
        // bounded by the escape and panics with a diagnostic on timeout.
        loop {
            if let Some(e) = st.heap.pop() {
                self.note_pop();
                drop(st);
                clock.merge(e.at);
                return Ok(Stamped {
                    at: e.at,
                    item: e.item,
                });
            }
            if st.closed {
                return Err(QueueClosed);
            }
            st.waiters += 1;
            let timed_out = self.inner.cond.wait_for(&mut st, self.escape).timed_out();
            st.waiters -= 1;
            if timed_out {
                panic!(
                    "TimedQueue::recv_merge: no event within {:?} of real time — \
                     the simulated program is deadlocked (is anyone making progress? \
                     polling-mode LAPI requires the target to poll)\n\
                     queue: len={} closed={} waiter-clock={}ns\n{}",
                    self.escape,
                    st.heap.len(),
                    st.closed,
                    clock.now().as_ns(),
                    crate::trace::tail_report(crate::trace::REPORT_TAIL)
                );
            }
        }
    }

    /// Blocking receive bounded by `dur` of *real* time: `Ok(None)` on
    /// timeout. Used by service loops that must periodically re-check
    /// control state (e.g. the LAPI dispatcher watching for mode changes).
    pub fn recv_timeout(&self, dur: Duration) -> Result<Option<Stamped<T>>, QueueClosed> {
        let deadline = std::time::Instant::now() + dur;
        let mut st = self.inner.heap.lock();
        // liveness: every push and close notifies `cond`; wait_until is
        // bounded by the caller's deadline, returning Ok(None) on timeout.
        loop {
            if let Some(e) = st.heap.pop() {
                self.note_pop();
                return Ok(Some(Stamped {
                    at: e.at,
                    item: e.item,
                }));
            }
            if st.closed {
                return Err(QueueClosed);
            }
            st.waiters += 1;
            let timed_out = self.inner.cond.wait_until(&mut st, deadline).timed_out();
            st.waiters -= 1;
            if timed_out {
                return Ok(None);
            }
        }
    }

    /// Blocking receive without a clock (used by service threads that own
    /// no clock of their own; the timestamp is returned for manual merging).
    pub fn recv(&self) -> Result<Stamped<T>, QueueClosed> {
        let mut st = self.inner.heap.lock();
        // liveness: every push and close notifies `cond`; wait_for is
        // bounded by the escape and panics with a diagnostic on timeout.
        loop {
            if let Some(e) = st.heap.pop() {
                self.note_pop();
                return Ok(Stamped {
                    at: e.at,
                    item: e.item,
                });
            }
            if st.closed {
                return Err(QueueClosed);
            }
            st.waiters += 1;
            let timed_out = self.inner.cond.wait_for(&mut st, self.escape).timed_out();
            st.waiters -= 1;
            if timed_out {
                panic!(
                    "TimedQueue::recv: no event within {:?} of real time — \
                     the simulated program is deadlocked\n\
                     queue: len={} closed={}\n{}",
                    self.escape,
                    st.heap.len(),
                    st.closed,
                    crate::trace::tail_report(crate::trace::REPORT_TAIL)
                );
            }
        }
    }

    /// Drain every element whose timestamp is `<= now`, in timestamp order.
    pub fn drain_ready(&self, now: VTime) -> Vec<Stamped<T>> {
        let mut out = Vec::new();
        let mut st = self.inner.heap.lock();
        while let Some(top) = st.heap.peek() {
            if top.at > now {
                break;
            }
            let e = st.heap.pop().or_diag("heap emptied between peek and pop");
            self.note_pop();
            out.push(Stamped {
                at: e.at,
                item: e.item,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::VDur;
    use std::thread;

    #[test]
    fn pops_in_timestamp_order() {
        let q = TimedQueue::new();
        q.push(VTime::from_us(30), "c");
        q.push(VTime::from_us(10), "a");
        q.push(VTime::from_us(20), "b");
        let clock = VClock::new();
        assert_eq!(q.recv_merge(&clock).unwrap().item, "a");
        assert_eq!(q.recv_merge(&clock).unwrap().item, "b");
        assert_eq!(q.recv_merge(&clock).unwrap().item, "c");
        assert_eq!(clock.now(), VTime::from_us(30));
    }

    // The tie-break hook is process-global; tests that touch (or depend on)
    // it serialize here so parallel test threads cannot interfere.
    static TIEBREAK_GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn drain_order(q: &TimedQueue<usize>) -> Vec<usize> {
        let mut out = Vec::new();
        while let Ok(Some(s)) = q.try_recv() {
            out.push(s.item);
        }
        out
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let _g = TIEBREAK_GUARD.lock().unwrap();
        let q = TimedQueue::new();
        for i in 0..10 {
            q.push(VTime::from_us(5), i);
        }
        let clock = VClock::new();
        for i in 0..10 {
            assert_eq!(q.recv_merge(&clock).unwrap().item, i);
        }
    }

    #[test]
    fn armed_tiebreak_permutes_same_time_events_deterministically() {
        let _g = TIEBREAK_GUARD.lock().unwrap();
        let fill = |seed: Option<u64>| {
            crate::runtime::set_schedule_tiebreak(seed);
            let q = TimedQueue::new();
            for i in 0..16usize {
                q.push(VTime::from_us(5), i);
            }
            crate::runtime::set_schedule_tiebreak(None);
            drain_order(&q)
        };
        let baseline = fill(None);
        assert_eq!(baseline, (0..16).collect::<Vec<_>>());
        let a1 = fill(Some(0xA11CE));
        let a2 = fill(Some(0xA11CE));
        let b = fill(Some(0xB0B));
        assert_eq!(a1, a2, "same seed, same permutation");
        assert_ne!(a1, baseline, "seeded permutation differs from insertion");
        assert_ne!(a1, b, "different seeds explore different interleavings");
        let mut sorted = a1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, baseline, "a permutation, not a loss");
    }

    #[test]
    fn armed_tiebreak_preserves_timestamp_order() {
        let _g = TIEBREAK_GUARD.lock().unwrap();
        crate::runtime::set_schedule_tiebreak(Some(7));
        let q = TimedQueue::new();
        for i in 0..12usize {
            // Three distinct instants, four same-time events each.
            q.push(VTime::from_us(10 * (i as u64 % 3)), i);
        }
        crate::runtime::set_schedule_tiebreak(None);
        let clock = VClock::new();
        let mut prev = VTime::ZERO;
        for _ in 0..12 {
            let s = q.recv_merge(&clock).unwrap();
            assert!(s.at >= prev, "timestamp order is never violated");
            prev = s.at;
        }
    }

    #[test]
    fn merge_does_not_move_clock_backwards() {
        let q = TimedQueue::new();
        q.push(VTime::from_us(5), ());
        let clock = VClock::starting_at(VTime::from_us(100));
        let s = q.recv_merge(&clock).unwrap();
        assert_eq!(s.at, VTime::from_us(5));
        assert_eq!(clock.now(), VTime::from_us(100));
    }

    #[test]
    fn try_recv_ready_respects_now() {
        let q = TimedQueue::new();
        q.push(VTime::from_us(50), ());
        assert!(q.try_recv_ready(VTime::from_us(10)).unwrap().is_none());
        assert!(q.try_recv_ready(VTime::from_us(50)).unwrap().is_some());
        assert!(q.try_recv_ready(VTime::from_us(99)).unwrap().is_none());
    }

    #[test]
    fn close_unblocks_and_reports() {
        let q: TimedQueue<()> = TimedQueue::new();
        let q2 = q.clone();
        let h = thread::spawn(move || q2.recv());
        thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), Err(QueueClosed));
        // push after close is dropped
        q.push(VTime::ZERO, ());
        assert_eq!(q.try_recv(), Err(QueueClosed));
    }

    #[test]
    fn close_drains_remaining_first() {
        let q = TimedQueue::new();
        q.push(VTime::from_us(1), 7);
        q.close();
        let clock = VClock::new();
        assert_eq!(q.recv_merge(&clock).unwrap().item, 7);
        assert!(q.recv_merge(&clock).is_err());
    }

    #[test]
    fn cross_thread_delivery_merges_time() {
        let q = TimedQueue::new();
        let q2 = q.clone();
        let h = thread::spawn(move || {
            let clock = VClock::new();
            let s = q2.recv_merge(&clock).unwrap();
            (s.item, clock.now())
        });
        thread::sleep(std::time::Duration::from_millis(10));
        q.push(VTime::from_us(42), "pkt");
        let (item, t) = h.join().unwrap();
        assert_eq!(item, "pkt");
        assert_eq!(t, VTime::from_us(42));
    }

    #[test]
    fn push_races_parked_recv_without_missed_wakeup() {
        // Regression for the targeted-notify change: a push that races a
        // `recv_merge` park must always wake the waiter. The waiter count
        // is read under the same lock the waiter registers under, so a
        // sleeping consumer can never be missed — hammer the interleaving
        // to prove it.
        let q = TimedQueue::new();
        let q2 = q.clone();
        let n = 500u64;
        let h = thread::spawn(move || {
            let clock = VClock::new();
            for _ in 0..n {
                q2.recv_merge(&clock).unwrap();
            }
        });
        for i in 0..n {
            q.push(VTime::from_us(i), i);
            if i % 7 == 0 {
                // Let the consumer drain and park again mid-stream.
                thread::sleep(std::time::Duration::from_micros(200));
            }
        }
        h.join().unwrap();
        assert!(q.is_empty());
    }

    #[test]
    fn multiple_parked_waiters_all_wake() {
        // One targeted notify per push must still serve several parked
        // consumers: each push wakes exactly one, and every element is
        // delivered exactly once.
        let q: TimedQueue<u64> = TimedQueue::new();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q2 = q.clone();
                thread::spawn(move || {
                    let clock = VClock::new();
                    let mut got = Vec::new();
                    while let Ok(s) = q2.recv_merge(&clock) {
                        got.push(s.item);
                    }
                    got
                })
            })
            .collect();
        thread::sleep(std::time::Duration::from_millis(20));
        for i in 0..200u64 {
            q.push(VTime::from_us(i), i);
        }
        thread::sleep(std::time::Duration::from_millis(50));
        q.close();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn drain_ready_takes_prefix() {
        let q = TimedQueue::new();
        for i in 0..5u64 {
            q.push(VTime::from_us(i * 10), i);
        }
        let got = q.drain_ready(VTime::from_us(25));
        assert_eq!(
            got.iter().map(|s| s.item).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(q.len(), 2);
    }

    #[test]
    #[should_panic(expected = "deadlocked")]
    fn escape_hatch_panics() {
        let q: TimedQueue<()> = TimedQueue::with_escape(Duration::from_millis(30));
        let clock = VClock::new();
        let _ = q.recv_merge(&clock);
    }

    #[test]
    fn recv_timeout_times_out_and_delivers() {
        let q: TimedQueue<u8> = TimedQueue::new();
        assert_eq!(q.recv_timeout(Duration::from_millis(10)), Ok(None));
        q.push(VTime::from_us(4), 9);
        let got = q.recv_timeout(Duration::from_millis(10)).unwrap().unwrap();
        assert_eq!(got.item, 9);
        q.close();
        assert_eq!(q.recv_timeout(Duration::from_millis(10)), Err(QueueClosed));
    }

    #[test]
    fn len_and_empty() {
        let q = TimedQueue::new();
        assert!(q.is_empty());
        q.push(VTime::ZERO, 1);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clock_advance_vs_queue_interleaving() {
        // A consumer that alternates polling and working sees events only
        // once its virtual time passes their stamps.
        let q = TimedQueue::new();
        q.push(VTime::from_us(12), ());
        let clock = VClock::new();
        let mut polls = 0;
        loop {
            match q.try_recv_ready(clock.now()).unwrap() {
                Some(_) => break,
                None => {
                    clock.advance(VDur::from_us(5));
                    polls += 1;
                }
            }
        }
        assert_eq!(polls, 3); // at t=5,10 nothing; ready at t=15
    }
}
