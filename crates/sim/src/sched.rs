//! M:N cooperative node scheduler.
//!
//! The SP machine of the paper ran jobs at hundreds-to-1024 nodes; a
//! thread-per-node runtime caps the simulator at a few dozen. This module
//! multiplexes every simulated execution context — node bodies and the
//! engine service loops folded through [`crate::runtime::spawn_service`] —
//! onto a small fixed pool of OS workers, so a 1024-node job costs
//! `~workers` threads instead of ~3000.
//!
//! The pieces:
//!
//! * **Fibers** — each task owns a stack and is entered/left with a
//!   16-instruction x86-64 context switch ([`spsim_ctx_switch`]). A task's
//!   blocking points (queue waits, barrier parks, engine condvars) switch
//!   back to the worker instead of blocking the OS thread, which is what
//!   keeps a 1-core host (`SPSIM_WORKERS=1`) live: a single worker round-
//!   robins every runnable task.
//! * **[`SimCondvar`]** — a condition variable whose waiters park through
//!   the scheduler when called from a fiber and fall back to the raw
//!   condvar on plain threads, so the same call sites serve both the
//!   pooled and the legacy `SPSIM_SCHED=threads` runtime.
//! * **Timers with quiescent fast-forward** — every blocking wait in the
//!   simulator carries a wall-clock deadline (poll/dispatch ticks, escape
//!   hatches). When every task is parked and nothing is runnable, real
//!   sleeping would only slow the job down without changing its virtual
//!   outcome (timeout paths charge no virtual time on an empty tick), so
//!   the pool fires the earliest deadline immediately. A budget — at most
//!   one full cycle of pending timers per external progress signal —
//!   stops that from busy-spinning when a timeout genuinely needs wall
//!   time to pass (deadlock escapes keep their legacy pacing).
//!
//! Determinism: traces and results are functions of virtual timestamps and
//! queue insertion sequence only — the existing determinism suite already
//! passes under freely racing OS threads — so any correct scheduler,
//! pooled or not, at any worker count, reproduces them byte-for-byte.
//! `determinism.rs` asserts exactly that.

use std::any::Any;
use std::cell::{Cell, RefCell, UnsafeCell};
use std::collections::{BinaryHeap, VecDeque};
use std::mem::MaybeUninit;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::diag::OrDiag;

// ------------------------------------------------------------------ mode

/// How the runtime executes simulated contexts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedMode {
    /// M:N on the worker pool (the default).
    Pool,
    /// Legacy thread-per-node / thread-per-service (`SPSIM_SCHED=threads`)
    /// — the escape hatch and differential baseline.
    Threads,
}

// 0 = no override, 1 = Pool, 2 = Threads.
static MODE_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Programmatically force the scheduler mode (`None` restores the
/// `SPSIM_SCHED` environment default). Process-global, like
/// [`crate::runtime::set_schedule_tiebreak`]: callers that flip it around a
/// simulated run must serialize those runs and restore it afterwards.
pub fn set_sched_mode(mode: Option<SchedMode>) {
    // ordering: callers serialize whole runs around this hook (see above),
    // so no simulated thread races the store.
    MODE_OVERRIDE.store(
        match mode {
            None => 0,
            Some(SchedMode::Pool) => 1,
            Some(SchedMode::Threads) => 2,
        },
        Ordering::Relaxed, // ordering: see serialization note above
    );
}

fn env_mode() -> SchedMode {
    static ENV: OnceLock<SchedMode> = OnceLock::new();
    *ENV.get_or_init(|| {
        match std::env::var("SPSIM_SCHED").as_deref() {
            Ok("threads") => SchedMode::Threads,
            // Anything else (unset, "pool", typos) runs pooled: the default.
            _ => SchedMode::Pool,
        }
    })
}

/// The scheduler mode in effect for newly created contexts.
pub fn sched_mode() -> SchedMode {
    if !FIBERS_SUPPORTED {
        return SchedMode::Threads;
    }
    // ordering: see set_sched_mode — flips are serialized between runs.
    match MODE_OVERRIDE.load(Ordering::Relaxed) {
        1 => SchedMode::Pool,
        2 => SchedMode::Threads,
        _ => env_mode(),
    }
}

// --------------------------------------------------------------- workers

// 0 = no override; otherwise the forced worker-pool cap.
static WORKER_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Programmatically cap the worker pool (`None` restores the
/// `SPSIM_WORKERS`/core-count default). Workers already spawned above a
/// lowered cap go idle rather than exiting; raising the cap re-engages
/// them. Same process-global serialization contract as [`set_sched_mode`].
pub fn set_worker_cap(cap: Option<usize>) {
    // ordering: serialized between runs by the caller, like set_sched_mode.
    WORKER_OVERRIDE.store(cap.unwrap_or(0), Ordering::Relaxed);
    if let Some(s) = Sched::get() {
        let mut st = s.state.lock().unwrap_or_else(|e| e.into_inner());
        st.active_cap = worker_cap();
        let target = st.live.clamp(1, st.active_cap);
        s.ensure_workers(&mut st, target);
        drop(st);
        s.work_cv.notify_all();
    }
}

fn env_workers() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("SPSIM_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The effective pool-size cap: explicit override, else `SPSIM_WORKERS`,
/// else the host core count (`min(cores, n)` is applied against live
/// tasks when the pool grows).
fn worker_cap() -> usize {
    // ordering: serialized between runs by the caller, like set_sched_mode.
    match WORKER_OVERRIDE.load(Ordering::Relaxed) {
        0 => env_workers().unwrap_or_else(host_cores),
        n => n,
    }
}

/// Per-fiber stack size: `SPSIM_STACK_KB` override, else 512 KiB. Stacks
/// are allocated uninitialized so untouched pages stay uncommitted — a
/// 1024-node job reserves address space, not RAM.
fn stack_bytes() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("SPSIM_STACK_KB")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 32)
            .unwrap_or(512)
            * 1024
    })
}

// ---------------------------------------------------------- context switch

#[cfg(target_arch = "x86_64")]
const FIBERS_SUPPORTED: bool = true;
#[cfg(not(target_arch = "x86_64"))]
const FIBERS_SUPPORTED: bool = false;

// System-V x86-64 stack switch: save the callee-saved registers and the
// stack pointer of the current context, restore another's. The fiber's
// first entry is faked as a restore whose popped registers were pre-staged
// by `Task::init_frame` (r12 = the task pointer, return address =
// `spsim_fiber_entry`).
#[cfg(target_arch = "x86_64")]
std::arch::global_asm!(
    ".text",
    ".globl spsim_ctx_switch",
    ".p2align 4",
    "spsim_ctx_switch:",
    "push rbp",
    "push rbx",
    "push r12",
    "push r13",
    "push r14",
    "push r15",
    "mov [rdi], rsp",
    "mov rsp, rsi",
    "pop r15",
    "pop r14",
    "pop r13",
    "pop r12",
    "pop rbx",
    "pop rbp",
    "ret",
    ".globl spsim_fiber_entry",
    ".p2align 4",
    "spsim_fiber_entry:",
    "mov rdi, r12",
    "and rsp, -16",
    "call spsim_fiber_main",
    "ud2",
);

#[cfg(target_arch = "x86_64")]
extern "C" {
    /// Defined in the `global_asm!` block above.
    fn spsim_ctx_switch(save_rsp: *mut usize, restore_rsp: usize);
    /// Label, never called from Rust — its address seeds new fiber frames.
    fn spsim_fiber_entry();
}

#[cfg(not(target_arch = "x86_64"))]
unsafe fn spsim_ctx_switch(_save_rsp: *mut usize, _restore_rsp: usize) {
    unreachable!("fibers are x86-64 only; sched_mode() forces Threads here")
}

/// Rust side of the fiber trampoline: runs the task closure under
/// `catch_unwind`, records the outcome, and switches back to the worker
/// for the last time. Never returns.
#[cfg(target_arch = "x86_64")]
#[no_mangle]
extern "C" fn spsim_fiber_main(task: *const Task) {
    // Safety: the worker that switched us in holds an Arc to this task for
    // the whole time the fiber can run (see `Worker::run_task`).
    let task = unsafe { &*task };
    let body = unsafe { (*task.fiber.get()).entry.take() };
    let body = body.or_diag("fiber entered twice");
    if let Err(p) = catch_unwind(AssertUnwindSafe(body)) {
        task.done.lock().unwrap_or_else(|e| e.into_inner()).panic = Some(p);
    }
    EXIT.with(|e| e.set(ExitKind::Finish));
    switch_to_worker(task);
    unreachable!("finished fiber resumed");
}

// ------------------------------------------------------------------ tasks

const CANARY: u64 = 0x5EED_F1B3_DEAD_CA11;

/// A fiber stack. Uninitialized on purpose: pages commit lazily as the
/// task actually touches them. Stored as u64 words so the canary and the
/// staged register frame are naturally aligned.
struct Stack {
    mem: Box<[MaybeUninit<u64>]>,
}

impl Stack {
    fn new(bytes: usize) -> Stack {
        let words = bytes.div_ceil(8);
        let mut v = Vec::with_capacity(words);
        // Safety: MaybeUninit<u64> is valid uninitialized.
        unsafe { v.set_len(words) };
        Stack {
            mem: v.into_boxed_slice(),
        }
    }

    fn base(&self) -> usize {
        self.mem.as_ptr() as usize
    }

    fn len_bytes(&self) -> usize {
        self.mem.len() * 8
    }

    fn top(&self) -> usize {
        (self.base() + self.len_bytes()) & !15
    }
}

/// Fiber-side state, touched only by the spawner (before the first
/// schedule) and by the single worker currently switching the task —
/// hand-offs are serialized through the scheduler lock.
struct FiberState {
    stack: Stack,
    /// Saved stack pointer while the task is off-CPU.
    rsp: usize,
    entry: Option<Box<dyn FnOnce() + Send + 'static>>,
}

struct Done {
    finished: bool,
    panic: Option<Box<dyn Any + Send + 'static>>,
    /// Fibers parked in `join_task`, unparked when this task finishes.
    fiber_waiters: Vec<Arc<Task>>,
}

/// One scheduled execution context: a node body or an engine service loop.
pub(crate) struct Task {
    name: String,
    fiber: UnsafeCell<FiberState>,
    /// True while the task sits in the parked set (scheduler-lock guarded).
    parked: AtomicBool,
    /// Wake token for unpark-before-park races (scheduler-lock guarded).
    notified: AtomicBool,
    /// Why the last park ended; read by the fiber after it resumes.
    timed_out: AtomicBool,
    /// Bumped on every park; stale timer entries are detected by mismatch.
    park_epoch: AtomicU64,
    /// Worker index this task must resume on (`usize::MAX` = any): set
    /// when a task parks mid-unwind, because std's panic bookkeeping is
    /// thread-local and must unwind on the thread that started it.
    pin: AtomicUsize,
    done: Mutex<Done>,
    done_cv: Condvar,
}

// Safety: `fiber` is only touched by the spawner before the task is first
// enqueued and by the one worker currently running or switching the task;
// every hand-off between workers goes through the scheduler mutex, which
// orders those accesses.
unsafe impl Send for Task {}
unsafe impl Sync for Task {}

impl Task {
    fn new(name: String, entry: Box<dyn FnOnce() + Send + 'static>) -> Arc<Task> {
        let task = Arc::new(Task {
            name,
            fiber: UnsafeCell::new(FiberState {
                stack: Stack::new(stack_bytes()),
                rsp: 0,
                entry: Some(entry),
            }),
            parked: AtomicBool::new(false),
            notified: AtomicBool::new(false),
            timed_out: AtomicBool::new(false),
            park_epoch: AtomicU64::new(0),
            pin: AtomicUsize::new(usize::MAX),
            done: Mutex::new(Done {
                finished: false,
                panic: None,
                fiber_waiters: Vec::new(),
            }),
            done_cv: Condvar::new(),
        });
        // Safety: no other reference to `fiber` exists yet.
        unsafe { task.init_frame(Arc::as_ptr(&task)) };
        task
    }

    /// Stage the initial stack frame so the first context switch "returns"
    /// into `spsim_fiber_entry` with r12 = the task pointer.
    ///
    /// # Safety
    /// Must run before the task is first enqueued, with no concurrent
    /// access to `fiber`.
    unsafe fn init_frame(&self, me: *const Task) {
        let fb = &mut *self.fiber.get();
        let base = fb.stack.base() as *mut u64;
        // Canary at the stack's low end: clobbered means overflow.
        base.write(CANARY);
        let top = fb.stack.top();
        // 8 words below the top: r15 r14 r13 r12 rbx rbp ret pad.
        let frame = (top - 8 * 8) as *mut u64;
        for i in 0..6 {
            frame.add(i).write(0);
        }
        frame.add(3).write(me as u64); // restored into r12
        #[cfg(target_arch = "x86_64")]
        frame
            .add(6)
            .write(spsim_fiber_entry as *const () as usize as u64);
        frame.add(7).write(0);
        fb.rsp = frame as usize;
    }

    fn check_canary(&self) {
        // Safety: called by the worker that owns the task right now.
        let fb = unsafe { &*self.fiber.get() };
        // Safety: reads the word init_frame wrote at the stack base.
        let canary = unsafe { (fb.stack.base() as *const u64).read() };
        if canary != CANARY {
            // The guard word is gone: the fiber overran its stack and
            // memory beyond it is already suspect. Nothing can be unwound
            // safely; die loudly.
            eprintln!(
                "spsim: fiber `{}` overflowed its {}-byte stack (canary clobbered); \
                 raise SPSIM_STACK_KB",
                self.name,
                fb.stack.len_bytes()
            );
            std::process::abort();
        }
    }

    pub(crate) fn is_finished(&self) -> bool {
        self.done.lock().unwrap_or_else(|e| e.into_inner()).finished
    }
}

impl std::fmt::Debug for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Task").field("name", &self.name).finish()
    }
}

// --------------------------------------------------------- current fiber

#[derive(Clone, Copy, PartialEq, Eq)]
enum ExitKind {
    Yield,
    Park,
    Finish,
}

thread_local! {
    /// The task currently running on this worker, if any.
    static CURRENT: RefCell<Option<Arc<Task>>> = const { RefCell::new(None) };
    /// Saved worker stack pointer while a fiber runs.
    static WORKER_RSP: Cell<usize> = const { Cell::new(0) };
    /// This worker's index (`usize::MAX` on non-worker threads).
    static WORKER_ID: Cell<usize> = const { Cell::new(usize::MAX) };
    /// Why the fiber last switched back to the worker.
    static EXIT: Cell<ExitKind> = const { Cell::new(ExitKind::Finish) };
    /// Park deadline accompanying an `ExitKind::Park` switch-back.
    static EXIT_DEADLINE: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// The fiber the calling thread is currently executing, if it is one.
pub(crate) fn current_task() -> Option<Arc<Task>> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Is the caller running on a pooled fiber (vs a plain OS thread)?
pub fn on_fiber() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Switch from the running fiber back to its worker. Returns when (if)
/// the task is next resumed, possibly on a different worker.
fn switch_to_worker(task: &Task) {
    task.check_canary();
    // Pin mid-unwind fibers to this worker: std's panic count is
    // thread-local, so an unwind that started here must finish here.
    let pin = if std::thread::panicking() {
        WORKER_ID.with(|w| w.get())
    } else {
        usize::MAX
    };
    // ordering: consumed by the worker under the scheduler lock after the
    // switch completes.
    task.pin.store(pin, Ordering::Relaxed);
    let to = WORKER_RSP.with(|c| c.get());
    // Safety: `to` is the rsp this worker saved when it switched the fiber
    // in; the save slot is the task's own, untouched until the switch.
    unsafe { spsim_ctx_switch(std::ptr::addr_of_mut!((*task.fiber.get()).rsp), to) };
}

/// Park the running fiber until [`Sched::unpark`] or `deadline`. Returns
/// true if the park ended by timeout. Must be called from a fiber.
// liveness: wakeups come from Sched::unpark (queue pushes, condvar
// notifies, joins) or from the timer heap when `deadline` is set; the
// worker promotes due timers every scheduling round and fast-forwards the
// earliest one when the whole pool is quiescent.
pub(crate) fn park_current(deadline: Option<Instant>) -> bool {
    let task = current_task().or_diag("park_current outside a fiber");
    EXIT.with(|e| e.set(ExitKind::Park));
    EXIT_DEADLINE.with(|d| d.set(deadline));
    switch_to_worker(&task);
    // ordering: set by the waking worker before it handed the task back
    // through the scheduler lock.
    task.timed_out.load(Ordering::Relaxed)
}

/// Yield the running fiber to the back of the ready queue; plain
/// `std::thread::yield_now` when called from an OS thread. The scheduler-
/// aware replacement for spin-loop yields (e.g. a full delivery ring).
// liveness: pure yield — the task is immediately runnable again; the
// condition it spins on is advanced by whichever task the worker runs in
// the meantime (ring consumers drain on their own tick timers).
pub fn yield_now() {
    if current_task().is_some() {
        EXIT.with(|e| e.set(ExitKind::Yield));
        let task = current_task().or_diag("yield raced task teardown");
        switch_to_worker(&task);
    } else {
        std::thread::yield_now();
    }
}

// -------------------------------------------------------------- scheduler

struct TimerEnt {
    at: Instant,
    seq: u64,
    epoch: u64,
    task: Arc<Task>,
}

impl PartialEq for TimerEnt {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for TimerEnt {}
impl PartialOrd for TimerEnt {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEnt {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest deadline
        // on top (same inversion as TimedQueue's Entry).
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct SchedState {
    ready: VecDeque<Arc<Task>>,
    timers: BinaryHeap<TimerEnt>,
    timer_seq: u64,
    /// Tasks currently executing on a worker.
    running: usize,
    /// Unfinished tasks (running + ready + parked).
    live: usize,
    /// Spawned worker threads.
    workers: usize,
    /// Workers with index >= this cap idle (test hook / lowered override).
    active_cap: usize,
    /// Eagerly fired timers since the last external progress signal.
    fired_since_progress: usize,
    /// Progress epoch snapshot (see `PROGRESS`).
    seen_progress: u64,
}

struct Sched {
    state: Mutex<SchedState>,
    work_cv: Condvar,
}

/// Bumped (lock-free) on every event that could unblock a parked task:
/// condvar notifies, unparks, spawns, finishes. Workers reset the eager
/// timer budget when they observe a new epoch.
static PROGRESS: AtomicU64 = AtomicU64::new(0);

/// Record that something happened which might wake a parked task. Called
/// from notify paths even when no fiber waiter was found, because the
/// state change it signals is what a parked task's next tick will observe.
pub(crate) fn note_progress() {
    // ordering: a monotonic hint, read under the scheduler lock; relaxed
    // is enough because missing one bump only delays eager firing by a
    // tick, never changes a virtual-time outcome.
    PROGRESS.fetch_add(1, Ordering::Relaxed);
}

static SCHED: OnceLock<Sched> = OnceLock::new();

impl Sched {
    fn get() -> Option<&'static Sched> {
        SCHED.get()
    }

    fn global() -> &'static Sched {
        SCHED.get_or_init(|| Sched {
            state: Mutex::new(SchedState {
                ready: VecDeque::new(),
                timers: BinaryHeap::new(),
                timer_seq: 0,
                running: 0,
                live: 0,
                workers: 0,
                active_cap: worker_cap(),
                fired_since_progress: 0,
                seen_progress: 0,
            }),
            work_cv: Condvar::new(),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Spawn worker threads up to `target` (never shrinks; a lowered cap
    /// just idles the excess).
    fn ensure_workers(&'static self, st: &mut SchedState, target: usize) {
        while st.workers < target {
            let wi = st.workers;
            std::thread::Builder::new()
                .name(format!("spsim-worker-{wi}"))
                .spawn(move || self.worker_loop(wi))
                .or_diag("spawn scheduler worker");
            st.workers += 1;
        }
    }

    /// Enqueue a new task on the pool.
    fn spawn_task(&'static self, task: Arc<Task>) {
        let mut st = self.lock();
        st.live += 1;
        st.active_cap = worker_cap();
        let target = st.live.clamp(1, st.active_cap);
        self.ensure_workers(&mut st, target);
        st.ready.push_back(task);
        drop(st);
        note_progress();
        self.work_cv.notify_one();
    }

    /// Make a parked task runnable (or leave it a wake token if it has not
    /// finished parking yet). `timed_out=false` marks a genuine notify.
    fn unpark(&self, task: &Arc<Task>) {
        let mut st = self.lock();
        // ordering: both flags are only flipped under the scheduler lock.
        if task.parked.swap(false, Ordering::Relaxed) {
            task.timed_out.store(false, Ordering::Relaxed);
            st.ready.push_back(Arc::clone(task));
            // ordering: pin writes happen-before via the scheduler lock.
            let pinned = task.pin.load(Ordering::Relaxed) != usize::MAX;
            drop(st);
            note_progress();
            // A pinned task can only run on one worker — wake them all so
            // the right one sees it.
            if pinned {
                self.work_cv.notify_all();
            } else {
                self.work_cv.notify_one();
            }
        } else {
            // ordering: wake token is read back under the same lock.
            task.notified.store(true, Ordering::Relaxed);
            drop(st);
            note_progress();
        }
    }

    /// Pop the first ready task this worker may run (pin-aware).
    fn pop_ready(st: &mut SchedState, wi: usize) -> Option<Arc<Task>> {
        let idx = st.ready.iter().position(|t| {
            // ordering: pins are written before the task re-enters the
            // ready queue via the scheduler lock.
            let p = t.pin.load(Ordering::Relaxed);
            p == usize::MAX || p == wi
        })?;
        st.ready.remove(idx)
    }

    /// Move every wall-clock-due (or stale) timer out of the heap; due
    /// tasks become ready with `timed_out` set.
    fn promote_due(&self, st: &mut SchedState, now: Instant) {
        while let Some(top) = st.timers.peek() {
            if top.at > now {
                break;
            }
            let ent = st.timers.pop().or_diag("peeked timer vanished");
            if Self::timer_valid(&ent) {
                // ordering: flags flipped under the scheduler lock; the
                // resumed fiber observes timed_out via the lock hand-off.
                ent.task.parked.store(false, Ordering::Relaxed);
                ent.task.timed_out.store(true, Ordering::Relaxed);
                st.ready.push_back(ent.task);
            }
        }
    }

    fn timer_valid(ent: &TimerEnt) -> bool {
        // ordering: checked under the scheduler lock that also guards
        // parking, so the epoch cannot advance mid-check.
        ent.task.parked.load(Ordering::Relaxed)
            && ent.task.park_epoch.load(Ordering::Relaxed) == ent.epoch
    }

    /// Earliest still-valid deadline, if any (stale heads are discarded).
    fn earliest_deadline(st: &mut SchedState) -> Option<Instant> {
        while let Some(top) = st.timers.peek() {
            if Self::timer_valid(top) {
                return Some(top.at);
            }
            st.timers.pop();
        }
        None
    }

    fn worker_loop(&'static self, wi: usize) {
        WORKER_ID.with(|w| w.set(wi));
        loop {
            let task = {
                let mut st = self.lock();
                loop {
                    if wi >= st.active_cap {
                        st = self.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
                        continue;
                    }
                    // ordering: a progress epoch change resets the eager
                    // budget; relaxed is fine (see note_progress).
                    let ep = PROGRESS.load(Ordering::Relaxed);
                    if ep != st.seen_progress {
                        st.seen_progress = ep;
                        st.fired_since_progress = 0;
                    }
                    self.promote_due(&mut st, Instant::now());
                    if let Some(t) = Self::pop_ready(&mut st, wi) {
                        st.running += 1;
                        break t;
                    }
                    // Quiescent fast-forward: nothing runnable anywhere —
                    // wall sleeping cannot change the virtual outcome, so
                    // fire the earliest deadline now. The budget (one
                    // cycle of pending timers per progress signal) keeps a
                    // genuine no-progress state at legacy wall pacing.
                    if st.running == 0
                        && st.ready.is_empty()
                        && st.fired_since_progress < st.timers.len()
                    {
                        if let Some(ent) = Self::pop_valid_timer(&mut st) {
                            st.fired_since_progress += 1;
                            // ordering: under the scheduler lock, as above.
                            let p = ent.task.pin.load(Ordering::Relaxed);
                            ent.task.parked.store(false, Ordering::Relaxed);
                            ent.task.timed_out.store(true, Ordering::Relaxed);
                            if p == usize::MAX || p == wi {
                                st.running += 1;
                                break ent.task;
                            }
                            st.ready.push_back(ent.task);
                            drop(st);
                            self.work_cv.notify_all();
                            st = self.lock();
                            continue;
                        }
                    }
                    match Self::earliest_deadline(&mut st) {
                        Some(d) => {
                            let now = Instant::now();
                            if d > now {
                                let (g, _) = self
                                    .work_cv
                                    .wait_timeout(st, d - now)
                                    .unwrap_or_else(|e| e.into_inner());
                                st = g;
                            }
                        }
                        // liveness: woken by spawn_task/unpark/set_worker_cap
                        // notifies; with no pending timers there is nothing
                        // to time out toward.
                        None => st = self.work_cv.wait(st).unwrap_or_else(|e| e.into_inner()),
                    }
                }
            };
            self.run_task(task, wi);
        }
    }

    fn pop_valid_timer(st: &mut SchedState) -> Option<TimerEnt> {
        while let Some(ent) = st.timers.pop() {
            if Self::timer_valid(&ent) {
                return Some(ent);
            }
        }
        None
    }

    /// Switch a task in; on switch-back, apply its exit protocol. The park
    /// transition is completed *here*, on the worker side, after the
    /// fiber's context is fully saved — so a task can never be resumed by
    /// another worker while its registers are still in flight.
    fn run_task(&'static self, task: Arc<Task>, _wi: usize) {
        CURRENT.with(|c| *c.borrow_mut() = Some(Arc::clone(&task)));
        // Safety: this worker owns the task until the switch back; rsp was
        // staged by init_frame or the task's last switch-out.
        let restore = unsafe { (*task.fiber.get()).rsp };
        let save = WORKER_RSP.with(|c| c.as_ptr());
        unsafe { spsim_ctx_switch(save, restore) };
        CURRENT.with(|c| *c.borrow_mut() = None);
        let exit = EXIT.with(|e| e.get());
        match exit {
            ExitKind::Yield => {
                let mut st = self.lock();
                st.running -= 1;
                st.ready.push_back(task);
                drop(st);
                self.work_cv.notify_one();
            }
            ExitKind::Park => {
                let deadline = EXIT_DEADLINE.with(|d| d.take());
                let mut st = self.lock();
                st.running -= 1;
                // ordering: the wake-token handshake is serialized by the
                // scheduler lock (see Sched::unpark).
                if task.notified.swap(false, Ordering::Relaxed) {
                    // Unparked before the park completed: run again soon.
                    // ordering: still under the scheduler lock.
                    task.timed_out.store(false, Ordering::Relaxed);
                    st.ready.push_back(task);
                    drop(st);
                    self.work_cv.notify_one();
                } else {
                    // ordering: park flag and epoch flip under the lock;
                    // timer validation re-reads them under the same lock.
                    task.parked.store(true, Ordering::Relaxed);
                    let epoch = task.park_epoch.fetch_add(1, Ordering::Relaxed) + 1;
                    if let Some(at) = deadline {
                        st.timer_seq += 1;
                        let seq = st.timer_seq;
                        let is_new_min = st.timers.peek().is_none_or(|t| at < t.at);
                        st.timers.push(TimerEnt {
                            at,
                            seq,
                            epoch,
                            task,
                        });
                        drop(st);
                        if is_new_min {
                            // Sleeping workers hold a stale earliest
                            // deadline; refresh them.
                            self.work_cv.notify_all();
                        }
                    }
                }
            }
            ExitKind::Finish => {
                {
                    let mut st = self.lock();
                    st.running -= 1;
                    st.live -= 1;
                }
                let waiters = {
                    let mut done = task.done.lock().unwrap_or_else(|e| e.into_inner());
                    done.finished = true;
                    std::mem::take(&mut done.fiber_waiters)
                };
                task.done_cv.notify_all();
                note_progress();
                for w in &waiters {
                    self.unpark(w);
                }
                self.work_cv.notify_one();
            }
        }
    }
}

// ------------------------------------------------------------ public API

/// Spawn a closure as a pooled task. Used by `spsim::runtime` for node
/// bodies and service loops; not exposed outside the crate.
pub(crate) fn spawn(name: String, f: Box<dyn FnOnce() + Send + 'static>) -> Arc<Task> {
    let task = Task::new(name, f);
    Sched::global().spawn_task(Arc::clone(&task));
    task
}

/// Wait until `task` finishes. Parks when called from a fiber, blocks on
/// the task's condvar from a plain thread (e.g. a unit test's main thread
/// dropping a context).
// liveness: the joined task's Finish transition notifies `done_cv` and
// unparks every registered fiber waiter.
pub(crate) fn join_task(task: &Arc<Task>) {
    if let Some(me) = current_task() {
        loop {
            {
                let mut done = task.done.lock().unwrap_or_else(|e| e.into_inner());
                if done.finished {
                    return;
                }
                done.fiber_waiters.push(Arc::clone(&me));
            }
            park_current(None);
        }
    } else {
        let mut done = task.done.lock().unwrap_or_else(|e| e.into_inner());
        while !done.finished {
            done = task.done_cv.wait(done).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Take the panic payload a finished task died with, if any.
pub(crate) fn take_panic(task: &Arc<Task>) -> Option<Box<dyn Any + Send + 'static>> {
    task.done
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .panic
        .take()
}

// -------------------------------------------------------------- condvar

/// Result of a timed [`SimCondvar`] wait (API-compatible with
/// `parking_lot::WaitTimeoutResult`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimWaitTimeoutResult(bool);

impl SimWaitTimeoutResult {
    /// Did the wait end because the timeout elapsed?
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Scheduler-aware condition variable.
///
/// Drop-in for `parking_lot::Condvar` at every blocking point in simulated
/// code: a fiber caller registers as a waiter and parks through the pool
/// (releasing the caller's lock via `MutexGuard::unlocked`), a plain
/// thread falls through to an ordinary condvar wait. Notifies wake one or
/// all of *both* kinds of waiter, so mixed jobs — fiber services with a
/// thread-driven harness, or the `SPSIM_SCHED=threads` legacy mode — need
/// no special-casing at call sites.
#[derive(Default)]
pub struct SimCondvar {
    raw: parking_lot::Condvar,
    fibers: Mutex<VecDeque<Arc<Task>>>,
    /// Registered fiber waiters, mirrored outside the deque lock so the
    /// (hot) notify path of a condvar with no fiber waiters — every
    /// `TimedQueue` push from a plain thread, for instance — skips the
    /// lock entirely. Incremented before the caller's mutex is released in
    /// `fiber_wait`, so a registration that happens-before a notify (via
    /// that mutex) is always visible to the notifier's load.
    nfibers: AtomicUsize,
}

impl SimCondvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        SimCondvar {
            raw: parking_lot::Condvar::new(),
            fibers: Mutex::new(VecDeque::new()),
            nfibers: AtomicUsize::new(0),
        }
    }

    fn waiters(&self) -> std::sync::MutexGuard<'_, VecDeque<Arc<Task>>> {
        self.fibers.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Register, release the caller's lock, park; deregister on the way
    /// out whatever ended the park.
    fn fiber_wait(
        &self,
        me: Arc<Task>,
        guard_unlock: impl FnOnce(&dyn Fn() -> bool) -> bool,
        deadline: Option<Instant>,
    ) -> bool {
        {
            let mut w = self.waiters();
            // ordering: SeqCst pairs with the notify fast-path load; the
            // increment lands before the caller's mutex is released below.
            self.nfibers.fetch_add(1, Ordering::SeqCst);
            w.push_back(Arc::clone(&me));
        }
        let timed_out = guard_unlock(&|| park_current(deadline));
        // Always deregister: a park can also end spuriously (a stale wake
        // token from an earlier timed-out wait), and leaving the entry
        // behind would let a later notify_one be absorbed by a waiter that
        // already left — starving a genuine one.
        let still_registered = {
            let mut w = self.waiters();
            match w.iter().position(|t| Arc::ptr_eq(t, &me)) {
                Some(i) => {
                    w.remove(i);
                    // ordering: as at registration; the popper decrements
                    // otherwise.
                    self.nfibers.fetch_sub(1, Ordering::SeqCst);
                    true
                }
                None => false,
            }
        };
        if !still_registered && timed_out {
            // A notifier popped us concurrently with our timeout and spent
            // its notify on a waiter that is giving up — pass it on so the
            // wakeup is not lost.
            self.notify_one();
        }
        timed_out
    }

    /// Block until notified; the guard is released while waiting and
    /// re-acquired before returning.
    // liveness: woken by notify_one/notify_all from whichever task flips
    // the condition the caller re-checks in its wait loop.
    pub fn wait<T>(&self, guard: &mut parking_lot::MutexGuard<'_, T>) {
        match current_task() {
            Some(me) => {
                self.fiber_wait(
                    me,
                    |park| parking_lot::MutexGuard::unlocked(guard, park),
                    None,
                );
            }
            None => self.raw.wait(guard),
        }
    }

    /// Block until notified or `timeout` elapses.
    // liveness: notify wakeups as in `wait`; the deadline additionally
    // feeds the scheduler timer heap (promoted when due or quiescent).
    pub fn wait_for<T>(
        &self,
        guard: &mut parking_lot::MutexGuard<'_, T>,
        timeout: Duration,
    ) -> SimWaitTimeoutResult {
        self.wait_until(guard, Instant::now() + timeout)
    }

    /// Block until notified or the `deadline` instant passes.
    // liveness: notify wakeups as in `wait`; the deadline additionally
    // feeds the scheduler timer heap (promoted when due or quiescent).
    pub fn wait_until<T>(
        &self,
        guard: &mut parking_lot::MutexGuard<'_, T>,
        deadline: Instant,
    ) -> SimWaitTimeoutResult {
        match current_task() {
            Some(me) => {
                if deadline <= Instant::now() {
                    return SimWaitTimeoutResult(true);
                }
                let timed_out = self.fiber_wait(
                    me,
                    |park| parking_lot::MutexGuard::unlocked(guard, park),
                    Some(deadline),
                );
                SimWaitTimeoutResult(timed_out)
            }
            None => SimWaitTimeoutResult(self.raw.wait_until(guard, deadline).timed_out()),
        }
    }

    /// Wake one waiter (fiber or thread).
    pub fn notify_one(&self) {
        // ordering: SeqCst pairs with the registration increment; a zero
        // here means no fiber registered-before this notify, so the deque
        // lock can be skipped (the raw notify below still covers threads).
        if self.nfibers.load(Ordering::SeqCst) == 0 {
            if Sched::get().is_some() {
                // No fiber was registered yet, but a parked task's next
                // tick will observe whatever state change this signals.
                note_progress();
            }
            self.raw.notify_one();
            return;
        }
        let w = {
            let mut ws = self.waiters();
            let t = ws.pop_front();
            if t.is_some() {
                // ordering: as at registration.
                self.nfibers.fetch_sub(1, Ordering::SeqCst);
            }
            t
        };
        if let Some(t) = w {
            if let Some(s) = Sched::get() {
                s.unpark(&t);
            }
        } else if Sched::get().is_some() {
            note_progress();
        }
        self.raw.notify_one();
    }

    /// Wake all waiters (fibers and threads).
    pub fn notify_all(&self) {
        // ordering: see notify_one.
        if self.nfibers.load(Ordering::SeqCst) == 0 {
            if Sched::get().is_some() {
                note_progress();
            }
            self.raw.notify_all();
            return;
        }
        let drained: Vec<_> = {
            let mut ws = self.waiters();
            let d: Vec<_> = ws.drain(..).collect();
            // ordering: as at registration.
            self.nfibers.fetch_sub(d.len(), Ordering::SeqCst);
            d
        };
        if let Some(s) = Sched::get() {
            if drained.is_empty() {
                note_progress();
            }
            for t in &drained {
                s.unpark(t);
            }
        }
        self.raw.notify_all();
    }
}

impl std::fmt::Debug for SimCondvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SimCondvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex as PlMutex;

    fn spawn_fn(name: &str, f: impl FnOnce() + Send + 'static) -> Arc<Task> {
        spawn(name.to_string(), Box::new(f))
    }

    #[test]
    fn task_runs_and_joins() {
        let hit = Arc::new(AtomicBool::new(false));
        let h2 = Arc::clone(&hit);
        let t = spawn_fn("t-basic", move || h2.store(true, Ordering::SeqCst));
        join_task(&t);
        assert!(hit.load(Ordering::SeqCst));
        assert!(t.is_finished());
        assert!(take_panic(&t).is_none());
    }

    #[test]
    fn panic_payload_is_captured() {
        let t = spawn_fn("t-panic", || panic!("fiber exploded"));
        join_task(&t);
        let p = take_panic(&t).expect("panic recorded");
        let msg = p.downcast_ref::<&str>().expect("str payload");
        assert_eq!(*msg, "fiber exploded");
    }

    #[test]
    fn many_tasks_on_one_pool_interleave() {
        let n = 64;
        let count = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<_> = (0..n)
            .map(|i| {
                let c = Arc::clone(&count);
                spawn_fn(&format!("t-many-{i}"), move || {
                    for _ in 0..3 {
                        yield_now();
                    }
                    c.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for t in &tasks {
            join_task(t);
        }
        assert_eq!(count.load(Ordering::SeqCst), n);
    }

    #[test]
    fn simcondvar_handoff_between_fibers() {
        struct Board {
            m: PlMutex<u32>,
            cv: SimCondvar,
        }
        let b = Arc::new(Board {
            m: PlMutex::new(0),
            cv: SimCondvar::new(),
        });
        let (b1, b2) = (Arc::clone(&b), Arc::clone(&b));
        let consumer = spawn_fn("t-cv-consumer", move || {
            let mut v = b1.m.lock();
            while *v < 3 {
                b1.cv.wait(&mut v);
            }
        });
        let producer = spawn_fn("t-cv-producer", move || {
            for _ in 0..3 {
                *b2.m.lock() += 1;
                b2.cv.notify_one();
                yield_now();
            }
        });
        join_task(&producer);
        join_task(&consumer);
        assert_eq!(*b.m.lock(), 3);
    }

    #[test]
    fn quiescent_pool_fast_forwards_tick_timers() {
        // A fiber whose ticks do productive work (signalled by a notify,
        // like a barrier's progress drain) needs 40 ms of wall pacing under
        // the legacy runtime; the quiescent pool fast-forwards each tick.
        let m = Arc::new(PlMutex::new(()));
        let cv = Arc::new(SimCondvar::new());
        let drained = Arc::new(SimCondvar::new());
        let (m2, cv2, d2) = (Arc::clone(&m), Arc::clone(&cv), Arc::clone(&drained));
        let started = Instant::now();
        let t = spawn_fn("t-ticker", move || {
            let mut g = m2.lock();
            for _ in 0..8 {
                let r = cv2.wait_for(&mut g, Duration::from_millis(5));
                assert!(r.timed_out());
                // The progress signal a real tick's drain would emit; it
                // re-arms the pool's eager-fire budget.
                d2.notify_one();
            }
        });
        join_task(&t);
        assert!(
            started.elapsed() < Duration::from_millis(30),
            "eager firing should beat wall pacing, took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn simcondvar_wait_from_plain_thread_still_works() {
        let m = PlMutex::new(());
        let cv = SimCondvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(2)).timed_out());
    }
}
