//! Deterministic fault-injection plans for the switch fabric.
//!
//! A [`FaultPlan`] scripts *where* and *when* the fabric misbehaves:
//! per-link drop/duplicate probabilities that override the global
//! [`crate::MachineConfig::drop_prob`]/`dup_prob`, plus black-hole windows
//! ("link 0→2 loses everything in [5ms, 8ms)"). The plan itself holds no
//! randomness — probabilities are resolved against the adapter's seeded
//! [`crate::SimRng`], and windows are resolved against virtual time — so a
//! faulted run is exactly as reproducible as a clean one: same seed, same
//! plan, same timeline.
//!
//! An empty plan (the default) costs nothing: the adapter's reliability
//! protocol only arms its ACK/retransmit machinery when the effective
//! configuration can actually lose or duplicate a packet.

use crate::runtime::NodeId;
use crate::time::VTime;

/// Per-link fault probabilities (overriding the global config for one
/// directed link).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaults {
    /// Probability that a data packet on this link is lost in the fabric.
    pub drop_prob: f64,
    /// Probability that a delivered data packet is duplicated by the fabric
    /// (the copy reaches the destination and must be suppressed).
    pub dup_prob: f64,
}

impl LinkFaults {
    /// A perfectly clean link.
    pub const NONE: LinkFaults = LinkFaults {
        drop_prob: 0.0,
        dup_prob: 0.0,
    };

    /// Can this link misbehave at all?
    #[inline]
    pub fn is_clean(&self) -> bool {
        self.drop_prob == 0.0 && self.dup_prob == 0.0
    }
}

/// A scripted interval during which a directed link black-holes every
/// packet, deterministically (no dice): `from <= t < until`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWindow {
    /// Sending side of the affected link.
    pub src: NodeId,
    /// Receiving side of the affected link.
    pub dst: NodeId,
    /// First virtual instant of the outage (inclusive).
    pub from: VTime,
    /// End of the outage (exclusive). Use [`VTime::MAX`] for a link that
    /// never comes back ("link dead").
    pub until: VTime,
}

/// A scripted *node-level* fault: the whole node misbehaves, not one of
/// its links. Node faults compose with link faults through
/// [`FaultPlan::black_holed`]: a crashed or stalled endpoint black-holes
/// every link touching it, so the adapter's existing loss path handles
/// detection and the retransmit budget handles declaring the peer dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeFault {
    /// Crash-stop at `at`: the node's adapter stops ejecting *and*
    /// injecting from `at` onward and never recovers.
    Crash {
        /// The faulted node.
        node: NodeId,
        /// First virtual instant of the crash (inclusive, forever after).
        at: VTime,
    },
    /// The node makes no protocol progress in `[from, until)` but
    /// recovers: packets in the window are lost (and retransmitted by
    /// peers), packets after it flow normally.
    Stall {
        /// The faulted node.
        node: NodeId,
        /// First stalled instant (inclusive).
        from: VTime,
        /// End of the stall (exclusive).
        until: VTime,
    },
    /// Every byte the node serializes onto or off the wire costs
    /// `factor`× the configured wire time — a degraded-but-alive node.
    Slow {
        /// The faulted node.
        node: NodeId,
        /// Cost multiplier (≥ 1).
        factor: u32,
    },
}

/// A deterministic script of fabric misbehaviour.
///
/// Built with the `with_*` builders and handed to the machine via
/// [`crate::MachineConfig::with_faults`]. See the crate-level notes on
/// determinism.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    overrides: Vec<(NodeId, NodeId, LinkFaults)>,
    windows: Vec<FaultWindow>,
    node_faults: Vec<NodeFault>,
}

impl FaultPlan {
    /// An empty plan: the fabric behaves exactly as the global config says.
    pub fn new() -> Self {
        Self::default()
    }

    /// No overrides, no windows, and no node faults? A non-empty plan arms
    /// the adapter's reliability machinery (see
    /// [`crate::MachineConfig::reliability_armed`]).
    pub fn is_empty(&self) -> bool {
        self.overrides.is_empty() && self.windows.is_empty() && self.node_faults.is_empty()
    }

    /// Builder: override the fault probabilities of the directed link
    /// `src → dst`. A later override of the same link replaces the earlier.
    pub fn with_link(mut self, src: NodeId, dst: NodeId, faults: LinkFaults) -> Self {
        assert!(
            (0.0..1.0).contains(&faults.drop_prob),
            "drop probability must be in [0,1)"
        );
        assert!(
            (0.0..=1.0).contains(&faults.dup_prob),
            "duplicate probability must be in [0,1]"
        );
        self.overrides.retain(|&(s, d, _)| (s, d) != (src, dst));
        self.overrides.push((src, dst, faults));
        self
    }

    /// Builder: black-hole every packet on `src → dst` whose fabric transit
    /// falls in `[from, until)`.
    pub fn with_black_hole(mut self, src: NodeId, dst: NodeId, from: VTime, until: VTime) -> Self {
        assert!(from < until, "black-hole window must be non-empty");
        self.windows.push(FaultWindow {
            src,
            dst,
            from,
            until,
        });
        self
    }

    /// Builder: the directed link `src → dst` dies at `from` and never
    /// recovers — every later packet is lost until the sender's bounded
    /// retries give up with a delivery timeout.
    pub fn with_link_dead(self, src: NodeId, dst: NodeId, from: VTime) -> Self {
        self.with_black_hole(src, dst, from, VTime::MAX)
    }

    /// Builder: crash-stop `node` at `at` — its adapter stops ejecting and
    /// injecting from `at` onward, forever. A later crash of the same node
    /// replaces the earlier one.
    pub fn with_crash(mut self, node: NodeId, at: VTime) -> Self {
        self.node_faults
            .retain(|f| !matches!(f, NodeFault::Crash { node: n, .. } if *n == node));
        self.node_faults.push(NodeFault::Crash { node, at });
        self
    }

    /// Builder: `node` makes no protocol progress in `[from, until)` but
    /// recovers afterwards.
    pub fn with_stall(mut self, node: NodeId, from: VTime, until: VTime) -> Self {
        assert!(from < until, "stall window must be non-empty");
        self.node_faults
            .push(NodeFault::Stall { node, from, until });
        self
    }

    /// Builder: every byte `node` serializes on or off the wire costs
    /// `factor`× the configured wire time. A later factor for the same
    /// node replaces the earlier one.
    pub fn with_slow(mut self, node: NodeId, factor: u32) -> Self {
        assert!(factor >= 1, "slow factor must be ≥ 1");
        self.node_faults
            .retain(|f| !matches!(f, NodeFault::Slow { node: n, .. } if *n == node));
        self.node_faults.push(NodeFault::Slow { node, factor });
        self
    }

    /// The virtual instant `node` crash-stops, if the plan crashes it.
    pub fn crash_time(&self, node: NodeId) -> Option<VTime> {
        self.node_faults.iter().find_map(|f| match f {
            NodeFault::Crash { node: n, at } if *n == node => Some(*at),
            _ => None,
        })
    }

    /// Is `node` crash-stopped at virtual time `at`?
    pub fn crashed(&self, node: NodeId, at: VTime) -> bool {
        self.crash_time(node).is_some_and(|t| t <= at)
    }

    /// Is `node` inside a stall window at virtual time `at`?
    pub fn stalled(&self, node: NodeId, at: VTime) -> bool {
        self.node_faults.iter().any(|f| {
            matches!(f, NodeFault::Stall { node: n, from, until }
                if *n == node && *from <= at && at < *until)
        })
    }

    /// The wire-cost multiplier for `node` (1 when the plan does not slow
    /// it).
    pub fn slow_factor(&self, node: NodeId) -> u32 {
        self.node_faults
            .iter()
            .find_map(|f| match f {
                NodeFault::Slow { node: n, factor } if *n == node => Some(*factor),
                _ => None,
            })
            .unwrap_or(1)
    }

    /// Does the plan contain any node-level fault at all?
    pub fn has_node_faults(&self) -> bool {
        !self.node_faults.is_empty()
    }

    /// All node faults, in builder order.
    pub fn node_faults(&self) -> &[NodeFault] {
        &self.node_faults
    }

    /// The deterministic survivor set of an `n`-node world: every node the
    /// plan never crashes. The crash *schedule* — not any runtime
    /// observation — is the membership ground truth, so every rank computes
    /// the same set regardless of when it asks.
    pub fn survivors(&self, n: usize) -> Vec<NodeId> {
        (0..n).filter(|&id| self.crash_time(id).is_none()).collect()
    }

    /// The per-link override for `src → dst`, if any.
    pub fn link(&self, src: NodeId, dst: NodeId) -> Option<LinkFaults> {
        self.overrides
            .iter()
            .find(|&&(s, d, _)| (s, d) == (src, dst))
            .map(|&(_, _, f)| f)
    }

    /// Is the directed link `src → dst` unable to carry a packet at `at`?
    /// True inside a scripted black-hole window, and also whenever either
    /// endpoint is crashed or stalled at `at` — node faults black-hole
    /// every link touching the node, which is how they compose with the
    /// adapter's existing loss/retransmit path.
    pub fn black_holed(&self, src: NodeId, dst: NodeId, at: VTime) -> bool {
        self.windows
            .iter()
            .any(|w| w.src == src && w.dst == dst && w.from <= at && at < w.until)
            || self.crashed(src, at)
            || self.crashed(dst, at)
            || self.stalled(src, at)
            || self.stalled(dst, at)
    }

    /// Can the directed link `src → dst` ever black-hole — by a scripted
    /// window, or because an endpoint crashes or stalls at some point?
    /// Used to decide whether a link can ever misbehave.
    pub fn has_windows(&self, src: NodeId, dst: NodeId) -> bool {
        self.windows.iter().any(|w| w.src == src && w.dst == dst)
            || self.node_faults.iter().any(|f| match f {
                NodeFault::Crash { node, .. } | NodeFault::Stall { node, .. } => {
                    *node == src || *node == dst
                }
                NodeFault::Slow { .. } => false,
            })
    }

    /// All per-link overrides, in builder order.
    pub fn overrides(&self) -> &[(NodeId, NodeId, LinkFaults)] {
        &self.overrides
    }

    /// All black-hole windows, in builder order.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// Serialize the plan as a line-based text block for replay artifacts:
    ///
    /// ```text
    /// link 0 2 0.25 0.1
    /// window 0 2 5000000 8000000
    /// window 1 0 1000 inf
    /// crash 3 2000000
    /// stall 1 500000 900000
    /// slow 2 4
    /// ```
    ///
    /// (`link` fields are `src dst drop_prob dup_prob`; `window` fields are
    /// `src dst from_ns until_ns`, with `inf` for a link that never comes
    /// back; `crash` is `node at_ns`, `stall` is `node from_ns until_ns`,
    /// `slow` is `node factor`.) Rust's shortest-round-trip float
    /// formatting makes the serialization lossless: [`FaultPlan::parse`]
    /// reconstructs an equal plan.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        for &(src, dst, f) in &self.overrides {
            out.push_str(&format!(
                "link {src} {dst} {} {}\n",
                f.drop_prob, f.dup_prob
            ));
        }
        for w in &self.windows {
            let until = if w.until == VTime::MAX {
                "inf".to_string()
            } else {
                w.until.as_ns().to_string()
            };
            out.push_str(&format!(
                "window {} {} {} {until}\n",
                w.src,
                w.dst,
                w.from.as_ns()
            ));
        }
        for f in &self.node_faults {
            match *f {
                NodeFault::Crash { node, at } => {
                    out.push_str(&format!("crash {node} {}\n", at.as_ns()));
                }
                NodeFault::Stall { node, from, until } => {
                    out.push_str(&format!(
                        "stall {node} {} {}\n",
                        from.as_ns(),
                        until.as_ns()
                    ));
                }
                NodeFault::Slow { node, factor } => {
                    out.push_str(&format!("slow {node} {factor}\n"));
                }
            }
        }
        out
    }

    /// Parse the text produced by [`FaultPlan::serialize`]. Blank lines and
    /// `#` comments are ignored.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |what: &str| format!("fault plan line {}: {what}: {raw:?}", lineno + 1);
            let fields: Vec<&str> = line.split_whitespace().collect();
            match fields.as_slice() {
                ["link", src, dst, drop, dup] => {
                    let src: NodeId = src.parse().map_err(|_| err("bad src"))?;
                    let dst: NodeId = dst.parse().map_err(|_| err("bad dst"))?;
                    let drop_prob: f64 = drop.parse().map_err(|_| err("bad drop_prob"))?;
                    let dup_prob: f64 = dup.parse().map_err(|_| err("bad dup_prob"))?;
                    if !(0.0..1.0).contains(&drop_prob) || !(0.0..=1.0).contains(&dup_prob) {
                        return Err(err("probability out of range"));
                    }
                    plan = plan.with_link(
                        src,
                        dst,
                        LinkFaults {
                            drop_prob,
                            dup_prob,
                        },
                    );
                }
                ["window", src, dst, from, until] => {
                    let src: NodeId = src.parse().map_err(|_| err("bad src"))?;
                    let dst: NodeId = dst.parse().map_err(|_| err("bad dst"))?;
                    let from_ns: u64 = from.parse().map_err(|_| err("bad from"))?;
                    let from = VTime::from_ns(from_ns);
                    let until = if *until == "inf" {
                        VTime::MAX
                    } else {
                        VTime::from_ns(until.parse().map_err(|_| err("bad until"))?)
                    };
                    if from >= until {
                        return Err(err("empty window"));
                    }
                    plan = plan.with_black_hole(src, dst, from, until);
                }
                ["crash", node, at] => {
                    let node: NodeId = node.parse().map_err(|_| err("bad node"))?;
                    let at_ns: u64 = at.parse().map_err(|_| err("bad crash time"))?;
                    plan = plan.with_crash(node, VTime::from_ns(at_ns));
                }
                ["stall", node, from, until] => {
                    let node: NodeId = node.parse().map_err(|_| err("bad node"))?;
                    let from_ns: u64 = from.parse().map_err(|_| err("bad from"))?;
                    let until_ns: u64 = until.parse().map_err(|_| err("bad until"))?;
                    if from_ns >= until_ns {
                        return Err(err("empty stall window"));
                    }
                    plan = plan.with_stall(node, VTime::from_ns(from_ns), VTime::from_ns(until_ns));
                }
                ["slow", node, factor] => {
                    let node: NodeId = node.parse().map_err(|_| err("bad node"))?;
                    let factor: u32 = factor.parse().map_err(|_| err("bad factor"))?;
                    if factor == 0 {
                        return Err(err("slow factor must be ≥ 1"));
                    }
                    plan = plan.with_slow(node, factor);
                }
                _ => return Err(err("unrecognized directive")),
            }
        }
        Ok(plan)
    }
}

/// The env-selected fault profile applied to [`crate::MachineConfig`]
/// defaults, so a whole test run can be pushed through a lossy fabric:
/// `SPSIM_FAULT_PROFILE=lossy cargo test`. Tests that calibrate exact
/// timings opt out with [`crate::MachineConfig::with_no_faults`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultProfile {
    /// Clean fabric (the built-in default).
    Lossless,
    /// Moderate adversity: 10% drop, 2% duplication on every link.
    Lossy,
    /// Heavy adversity: 30% drop, 10% duplication on every link.
    Chaos,
}

impl FaultProfile {
    /// Read `SPSIM_FAULT_PROFILE` once per process. Unset or unrecognized
    /// values mean [`FaultProfile::Lossless`].
    pub fn from_env() -> FaultProfile {
        use std::sync::OnceLock;
        static PROFILE: OnceLock<FaultProfile> = OnceLock::new();
        *PROFILE.get_or_init(|| match std::env::var("SPSIM_FAULT_PROFILE").as_deref() {
            Ok("lossy") => FaultProfile::Lossy,
            Ok("chaos") => FaultProfile::Chaos,
            _ => FaultProfile::Lossless,
        })
    }

    /// The global (drop, dup) probabilities this profile injects.
    pub fn probabilities(self) -> (f64, f64) {
        match self {
            FaultProfile::Lossless => (0.0, 0.0),
            FaultProfile::Lossy => (0.10, 0.02),
            FaultProfile::Chaos => (0.30, 0.10),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty_and_clean() {
        let p = FaultPlan::new();
        assert!(p.is_empty());
        assert_eq!(p.link(0, 1), None);
        assert!(!p.black_holed(0, 1, VTime::from_us(1)));
        assert!(!p.has_windows(0, 1));
    }

    #[test]
    fn link_overrides_replace_and_resolve_per_direction() {
        let p = FaultPlan::new()
            .with_link(
                0,
                2,
                LinkFaults {
                    drop_prob: 0.5,
                    dup_prob: 0.0,
                },
            )
            .with_link(
                0,
                2,
                LinkFaults {
                    drop_prob: 0.25,
                    dup_prob: 0.1,
                },
            );
        assert_eq!(p.link(0, 2).unwrap().drop_prob, 0.25);
        assert_eq!(p.link(2, 0), None, "overrides are directed");
        assert!(!p.is_empty());
    }

    #[test]
    fn black_hole_window_is_half_open() {
        let p =
            FaultPlan::new().with_black_hole(0, 2, VTime::from_us(5_000), VTime::from_us(8_000));
        assert!(!p.black_holed(0, 2, VTime::from_us(4_999)));
        assert!(p.black_holed(0, 2, VTime::from_us(5_000)));
        assert!(p.black_holed(0, 2, VTime::from_us(7_999)));
        assert!(!p.black_holed(0, 2, VTime::from_us(8_000)));
        assert!(!p.black_holed(2, 0, VTime::from_us(6_000)), "directed");
        assert!(p.has_windows(0, 2));
    }

    #[test]
    fn dead_link_never_recovers() {
        let p = FaultPlan::new().with_link_dead(1, 0, VTime::from_us(1));
        assert!(p.black_holed(1, 0, VTime::from_us(1_000_000_000)));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_window_rejected() {
        let _ = FaultPlan::new().with_black_hole(0, 1, VTime::from_us(5), VTime::from_us(5));
    }

    #[test]
    fn serialization_round_trips() {
        let p = FaultPlan::new()
            .with_link(
                0,
                2,
                LinkFaults {
                    drop_prob: 0.257,
                    dup_prob: 0.1,
                },
            )
            .with_black_hole(0, 2, VTime::from_us(5_000), VTime::from_us(8_000))
            .with_link_dead(1, 0, VTime::from_ns(1_000));
        let text = p.serialize();
        let q = FaultPlan::parse(&text).unwrap();
        assert_eq!(p, q);
        assert_eq!(q.serialize(), text);
        assert!(text.contains("inf"), "dead link serializes as inf");
    }

    #[test]
    fn empty_plan_serializes_empty_and_parses_back() {
        assert_eq!(FaultPlan::new().serialize(), "");
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("# comment\n\n").unwrap().is_empty());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("link 0 1 2.0 0.0").is_err());
        assert!(FaultPlan::parse("window 0 1 5 5").is_err());
        assert!(FaultPlan::parse("frobnicate 1 2").is_err());
        assert!(FaultPlan::parse("link 0 1").is_err());
    }

    #[test]
    fn accessors_expose_builder_contents() {
        let p = FaultPlan::new()
            .with_link(3, 1, LinkFaults::NONE)
            .with_black_hole(0, 1, VTime::from_us(1), VTime::from_us(2));
        assert_eq!(p.overrides().len(), 1);
        assert_eq!(p.overrides()[0].0, 3);
        assert_eq!(p.windows().len(), 1);
        assert_eq!(p.windows()[0].dst, 1);
    }

    #[test]
    fn crash_black_holes_every_link_touching_the_node() {
        let p = FaultPlan::new().with_crash(1, VTime::from_us(100));
        assert!(!p.is_empty(), "node faults arm the reliability machinery");
        assert!(!p.crashed(1, VTime::from_us(99)));
        assert!(p.crashed(1, VTime::from_us(100)));
        assert!(p.crashed(1, VTime::MAX), "crash-stop never recovers");
        // Both directions on every link touching node 1 die at the crash.
        assert!(p.black_holed(0, 1, VTime::from_us(100)));
        assert!(p.black_holed(1, 0, VTime::from_us(100)));
        assert!(
            !p.black_holed(0, 2, VTime::from_us(100)),
            "bystander links live"
        );
        assert!(!p.black_holed(0, 1, VTime::from_us(99)));
        assert!(p.has_windows(0, 1) && p.has_windows(1, 2) && !p.has_windows(0, 2));
        assert_eq!(p.crash_time(1), Some(VTime::from_us(100)));
        assert_eq!(p.crash_time(0), None);
    }

    #[test]
    fn stall_window_recovers() {
        let p = FaultPlan::new().with_stall(2, VTime::from_us(10), VTime::from_us(20));
        assert!(!p.stalled(2, VTime::from_us(9)));
        assert!(p.stalled(2, VTime::from_us(10)));
        assert!(p.stalled(2, VTime::from_us(19)));
        assert!(!p.stalled(2, VTime::from_us(20)), "stalls recover");
        assert!(p.black_holed(0, 2, VTime::from_us(15)));
        assert!(p.black_holed(2, 0, VTime::from_us(15)));
        assert!(!p.black_holed(0, 2, VTime::from_us(25)));
        assert_eq!(p.crash_time(2), None, "a stall is not a crash");
    }

    #[test]
    fn slow_factor_defaults_to_one() {
        let p = FaultPlan::new().with_slow(3, 4).with_slow(3, 8);
        assert_eq!(p.slow_factor(3), 8, "later factor replaces earlier");
        assert_eq!(p.slow_factor(0), 1);
        assert!(!p.is_empty());
        assert!(
            !p.black_holed(0, 3, VTime::ZERO) && !p.has_windows(0, 3),
            "a slow node still delivers"
        );
    }

    #[test]
    fn survivors_come_from_the_crash_schedule() {
        let p = FaultPlan::new()
            .with_crash(1, VTime::from_us(500))
            .with_stall(2, VTime::from_us(1), VTime::from_us(2));
        assert_eq!(p.survivors(4), vec![0, 2, 3], "stalled nodes survive");
        assert_eq!(FaultPlan::new().survivors(3), vec![0, 1, 2]);
    }

    #[test]
    fn node_faults_round_trip_through_text() {
        let p = FaultPlan::new()
            .with_link(
                0,
                2,
                LinkFaults {
                    drop_prob: 0.1,
                    dup_prob: 0.0,
                },
            )
            .with_crash(3, VTime::from_us(2_000))
            .with_stall(1, VTime::from_us(500), VTime::from_us(900))
            .with_slow(2, 4);
        let text = p.serialize();
        let q = FaultPlan::parse(&text).unwrap();
        assert_eq!(p, q);
        assert_eq!(q.serialize(), text);
        assert!(FaultPlan::parse("crash 0").is_err());
        assert!(FaultPlan::parse("stall 0 9 9").is_err());
        assert!(FaultPlan::parse("slow 0 0").is_err());
    }

    #[test]
    fn profiles_map_to_probabilities() {
        assert_eq!(FaultProfile::Lossless.probabilities(), (0.0, 0.0));
        assert_eq!(FaultProfile::Lossy.probabilities(), (0.10, 0.02));
        assert_eq!(FaultProfile::Chaos.probabilities(), (0.30, 0.10));
    }
}
