//! Diagnostic failure helpers for engine hot paths.
//!
//! The simulator's panic discipline (enforced statically by `spsim-lint`
//! rule L5) is that a failure on an engine hot path must carry enough
//! context to debug a *simulated* program: at minimum the tail of the
//! merged virtual-time timeline, ideally engine state too. Three ways to
//! comply:
//!
//! * [`sim_panic!`] — like `panic!`, but appends the trace tail. For
//!   invariant violations where no engine handle is available (or where
//!   the engine's own report would re-take a lock the caller holds).
//! * `panic!("{}", engine.deadlock_report(...))` — engines with a
//!   diagnostic snapshot method use it directly; the lint recognizes
//!   `deadlock_report`/`tail_report` inside a `panic!` invocation.
//! * [`OrDiag::or_diag`] — drop-in replacement for `Option::expect` /
//!   `Result::expect` that panics with the message *plus* the trace tail,
//!   attributed to the caller's location.

use std::fmt::Debug;

/// Panic with a formatted message followed by the trace timeline tail.
///
/// Use on engine hot paths instead of bare `panic!`: when the simulated
/// program dies mid-protocol, the last [`crate::trace::REPORT_TAIL`]
/// merged events are usually enough to see which message got stuck.
#[macro_export]
macro_rules! sim_panic {
    ($($arg:tt)*) => {
        ::std::panic!(
            "{}\n{}",
            ::std::format_args!($($arg)*),
            $crate::trace::tail_report($crate::trace::REPORT_TAIL)
        )
    };
}

/// `expect` with diagnostics: unwrap or panic with the message plus the
/// trace timeline tail, attributed to the call site.
pub trait OrDiag<T> {
    /// Unwrap the value, or panic with `what` and the trace tail.
    fn or_diag(self, what: &str) -> T;
}

impl<T> OrDiag<T> for Option<T> {
    #[track_caller]
    fn or_diag(self, what: &str) -> T {
        match self {
            Some(v) => v,
            None => fail(what, "None"),
        }
    }
}

impl<T, E: Debug> OrDiag<T> for Result<T, E> {
    #[track_caller]
    fn or_diag(self, what: &str) -> T {
        match self {
            Ok(v) => v,
            Err(e) => fail(what, &format!("{e:?}")),
        }
    }
}

#[cold]
#[track_caller]
fn fail(what: &str, got: &str) -> ! {
    panic!(
        "{what} (got {got})\n{}",
        crate::trace::tail_report(crate::trace::REPORT_TAIL)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn or_diag_passes_values_through() {
        assert_eq!(Some(3).or_diag("must exist"), 3);
        let r: Result<u8, ()> = Ok(7);
        assert_eq!(r.or_diag("must be ok"), 7);
    }

    #[test]
    fn or_diag_panics_with_trace_block() {
        let err = std::panic::catch_unwind(|| {
            let n: Option<u8> = None;
            n.or_diag("the frobnicator vanished")
        })
        .expect_err("must panic");
        let msg = err.downcast_ref::<String>().expect("panic carries String");
        assert!(msg.contains("the frobnicator vanished"), "got: {msg}");
        assert!(msg.contains("-- trace:"), "tail report attached: {msg}");
    }

    #[test]
    fn sim_panic_formats_and_attaches_tail() {
        let err = std::panic::catch_unwind(|| {
            sim_panic!("bad state: {}", 42);
        })
        .expect_err("must panic");
        let msg = err.downcast_ref::<String>().expect("panic carries String");
        assert!(msg.contains("bad state: 42"), "got: {msg}");
        assert!(msg.contains("-- trace:"), "tail report attached: {msg}");
    }
}
