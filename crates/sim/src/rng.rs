//! A tiny deterministic RNG.
//!
//! The switch model needs a few random decisions (route selection, drop
//! injection) that must be reproducible from a seed and cheap enough to sit
//! on the packet path. SplitMix64 is both; pulling the full `rand` stack
//! into the hot path would be overkill (workload generators in the bench
//! crate do use `rand`).

/// SplitMix64: a small, fast, seedable PRNG with good statistical quality
/// for simulation purposes (not cryptographic).
#[derive(Clone, Debug)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Seeded construction; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded sampling (Lemire); slight modulo bias is
        // irrelevant for route selection.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.next_f64() < p
    }

    /// Derive an independent stream (for per-link RNGs from one seed).
    pub fn split(&mut self) -> SimRng {
        SimRng::new(self.next_u64() ^ 0xA076_1D64_78BD_642F)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn bounded_stays_in_range() {
        let mut r = SimRng::new(7);
        for _ in 0..10_000 {
            assert!(r.next_below(4) < 4);
        }
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = SimRng::new(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(3);
        assert!(!(0..1000).any(|_| r.chance(0.0)));
        assert!((0..1000).all(|_| r.chance(1.0)));
    }

    #[test]
    fn split_streams_are_independent() {
        let mut a = SimRng::new(5);
        let mut b = a.split();
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }
}
