//! Self-contained replay cases.
//!
//! A [`Case`] captures *everything* a run depends on — node count, world
//! RNG seed, scheduler tie-break seed, fabric probabilities, fault plan,
//! per-case escape budget, optional mutant, and the op program — as a
//! line-based text file. `src/bin/replay.rs` re-executes a parsed case
//! bit-for-bit; shrunk counterexamples from the explorer and the
//! committed corpus under `tests/corpus/` both use this format.

use std::time::Duration;

use spsim::{FaultPlan, MachineConfig, Mutant};

use crate::program::{decode_ops, Op, Program, RawOp};

/// One fully pinned conformance run.
#[derive(Debug, Clone, PartialEq)]
pub struct Case {
    pub nodes: usize,
    /// World RNG seed (fault sampling, route jitter).
    pub seed: u64,
    /// Scheduler tie-break perturbation seed (`None` = insertion order).
    pub tiebreak: Option<u64>,
    /// Interrupt mode if true, polling otherwise.
    pub interrupt_mode: bool,
    pub slot_bytes: usize,
    /// Fabric-wide drop/duplicate probabilities.
    pub drop_prob: f64,
    pub dup_prob: f64,
    /// Per-link overrides and black-hole windows.
    pub plan: FaultPlan,
    /// Real-time deadlock escape per blocking wait.
    pub escape_ms: u64,
    /// Harness mutant to arm (mutation smoke tests only).
    pub mutant: Option<Mutant>,
    /// Per-rank op lists.
    pub ops: Vec<Vec<Op>>,
}

impl Case {
    /// The program this case runs.
    pub fn program(&self) -> Program {
        Program {
            nodes: self.nodes,
            slot_bytes: self.slot_bytes,
            ops: self.ops.clone(),
        }
    }

    /// The machine configuration this case pins. Starts from a clean
    /// fabric (ignoring `SPSIM_FAULT_PROFILE`) so a serialized case
    /// replays identically in any environment.
    pub fn machine_config(&self) -> MachineConfig {
        MachineConfig::default()
            .with_no_faults()
            .with_drop_prob(self.drop_prob)
            .with_dup_prob(self.dup_prob)
            .with_faults(self.plan.clone())
    }

    /// Serialize to the replay text format.
    pub fn serialize(&self) -> String {
        let mut out = String::from("# spcheck case v1\n");
        out.push_str(&format!("nodes {}\n", self.nodes));
        out.push_str(&format!("seed {}\n", self.seed));
        match self.tiebreak {
            Some(t) => out.push_str(&format!("tiebreak {t}\n")),
            None => out.push_str("tiebreak none\n"),
        }
        out.push_str(&format!(
            "mode {}\n",
            if self.interrupt_mode {
                "interrupt"
            } else {
                "polling"
            }
        ));
        out.push_str(&format!("slot_bytes {}\n", self.slot_bytes));
        out.push_str(&format!("drop {}\n", self.drop_prob));
        out.push_str(&format!("dup {}\n", self.dup_prob));
        out.push_str(&format!("escape_ms {}\n", self.escape_ms));
        out.push_str(&format!(
            "mutant {}\n",
            self.mutant.map_or("none", |m| m.name())
        ));
        for line in self.plan.serialize().lines() {
            out.push_str(&format!("fault {line}\n"));
        }
        for (rank, ops) in self.ops.iter().enumerate() {
            for op in ops {
                out.push_str(&format!("op {rank} {}\n", op.to_line()));
            }
        }
        out.push_str("end\n");
        out
    }

    /// Parse the replay text format.
    pub fn parse(text: &str) -> Result<Case, String> {
        let mut nodes = None;
        let mut seed = None;
        let mut tiebreak = None;
        let mut interrupt_mode = None;
        let mut slot_bytes = None;
        let mut drop_prob = None;
        let mut dup_prob = None;
        let mut escape_ms = None;
        let mut mutant: Option<Mutant> = None;
        let mut fault_lines = Vec::new();
        let mut op_lines: Vec<(usize, Op)> = Vec::new();
        let mut ended = false;
        for raw_line in text.lines() {
            let line = raw_line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if ended {
                return Err("content after `end`".into());
            }
            let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
            match key {
                "nodes" => nodes = Some(parse_num(rest, "nodes")?),
                "seed" => seed = Some(parse_num(rest, "seed")?),
                "slot_bytes" => slot_bytes = Some(parse_num(rest, "slot_bytes")?),
                "escape_ms" => escape_ms = Some(parse_num(rest, "escape_ms")?),
                "tiebreak" => {
                    tiebreak = Some(if rest == "none" {
                        None
                    } else {
                        Some(parse_num(rest, "tiebreak")?)
                    })
                }
                "mode" => {
                    interrupt_mode = Some(match rest {
                        "interrupt" => true,
                        "polling" => false,
                        other => return Err(format!("unknown mode {other:?}")),
                    })
                }
                "drop" => drop_prob = Some(rest.parse::<f64>().map_err(|e| format!("drop: {e}"))?),
                "dup" => dup_prob = Some(rest.parse::<f64>().map_err(|e| format!("dup: {e}"))?),
                "mutant" => {
                    mutant = if rest == "none" {
                        None
                    } else {
                        Some(
                            Mutant::from_name(rest)
                                .ok_or_else(|| format!("unknown mutant {rest:?}"))?,
                        )
                    }
                }
                "fault" => fault_lines.push(rest.to_string()),
                "op" => {
                    let (rank, op_text) = rest
                        .split_once(' ')
                        .ok_or_else(|| format!("op line too short: {line:?}"))?;
                    let rank = parse_num(rank, "op rank")? as usize;
                    op_lines.push((rank, Op::parse_line(op_text)?));
                }
                "end" => ended = true,
                other => return Err(format!("unknown key {other:?}")),
            }
        }
        if !ended {
            return Err("missing `end` terminator (truncated case?)".into());
        }
        let nodes = nodes.ok_or("missing nodes")? as usize;
        if nodes == 0 {
            return Err("nodes must be > 0".into());
        }
        let plan = FaultPlan::parse(&fault_lines.join("\n"))?;
        let mut ops = vec![Vec::new(); nodes];
        for (rank, op) in op_lines {
            if rank >= nodes {
                return Err(format!("op rank {rank} out of range for {nodes} nodes"));
            }
            ops[rank].push(op);
        }
        Ok(Case {
            nodes,
            seed: seed.ok_or("missing seed")?,
            tiebreak: tiebreak.ok_or("missing tiebreak")?,
            interrupt_mode: interrupt_mode.ok_or("missing mode")?,
            slot_bytes: slot_bytes.ok_or("missing slot_bytes")? as usize,
            drop_prob: drop_prob.ok_or("missing drop")?,
            dup_prob: dup_prob.ok_or("missing dup")?,
            plan,
            escape_ms: escape_ms.ok_or("missing escape_ms")?,
            mutant,
            ops,
        })
    }

    /// The per-wait deadlock escape as a `Duration`.
    pub fn escape(&self) -> Duration {
        Duration::from_millis(self.escape_ms)
    }
}

fn parse_num(s: &str, what: &str) -> Result<u64, String> {
    s.parse::<u64>().map_err(|e| format!("{what}: {e}"))
}

/// Raw generator tuple for one fault-plan entry, decoded by
/// [`decode_case`]: `((src_sel, dst_sel, kind), (drop_pct, dup_pct,
/// from_us, dur_us))`.
pub type RawFault = ((u8, u8, u8), (u8, u8, u16, u16));

/// Raw generator knobs: `(nodes_sel, seed, slot_sel, tiebreak_sel,
/// drop_pct, dup_pct)`.
pub type RawKnobs = (u8, u64, u8, u64, u8, u8);

/// Decode generator output into a runnable case.
///
/// Bounds keep every decoded case *survivable*: probabilities stay below
/// the retransmit budget's breaking point and black-hole windows stay
/// well under `max_retransmits * retransmit_timeout`, so a healthy
/// simulator always reaches quiescence and an escape panic is a real
/// finding, not generator noise.
pub fn decode_case(knobs: RawKnobs, raw_ops: &[RawOp], raw_faults: &[RawFault]) -> Case {
    let (nodes_sel, seed, slot_sel, tiebreak_sel, drop_pct, dup_pct) = knobs;
    let nodes = 2 + nodes_sel as usize % 3;
    let slot_bytes = 16 + (slot_sel as usize % 5) * 16;
    let mut plan = FaultPlan::new();
    for &((src_sel, dst_sel, kind), (f_drop, f_dup, from_us, dur_us)) in raw_faults {
        let src = src_sel as usize % nodes;
        let dst = dst_sel as usize % nodes;
        if src == dst {
            continue; // loopback bypasses the fabric; no link to perturb
        }
        if kind % 2 == 0 {
            plan = plan.with_link(
                src,
                dst,
                spsim::LinkFaults {
                    drop_prob: (f_drop % 40) as f64 / 100.0,
                    dup_prob: (f_dup % 20) as f64 / 100.0,
                },
            );
        } else {
            let from = spsim::VTime::from_ns(1_000 * (from_us % 4_000) as u64);
            let until = spsim::VTime::from_ns(from.as_ns() + 1_000 * (1 + dur_us % 3_000) as u64);
            plan = plan.with_black_hole(src, dst, from, until);
        }
    }
    Case {
        nodes,
        seed,
        tiebreak: if tiebreak_sel == 0 {
            None
        } else {
            Some(tiebreak_sel)
        },
        // Polling and interrupt progress engines both explored, pinned
        // by a bit that shrinks toward polling.
        interrupt_mode: seed % 2 == 1,
        slot_bytes,
        drop_prob: (drop_pct % 40) as f64 / 100.0,
        dup_prob: (dup_pct % 20) as f64 / 100.0,
        plan,
        escape_ms: 10_000,
        mutant: None,
        ops: decode_ops(nodes, slot_bytes, raw_ops),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spsim::VTime;

    fn sample() -> Case {
        Case {
            nodes: 3,
            seed: 42,
            tiebreak: Some(7),
            interrupt_mode: false,
            slot_bytes: 32,
            drop_prob: 0.25,
            dup_prob: 0.05,
            plan: FaultPlan::new()
                .with_link(
                    0,
                    1,
                    spsim::LinkFaults {
                        drop_prob: 0.3,
                        dup_prob: 0.0,
                    },
                )
                .with_black_hole(1, 2, VTime::from_us(10), VTime::from_us(500)),
            escape_ms: 10_000,
            mutant: Some(Mutant::DedupCursorOffByOne),
            ops: vec![
                vec![
                    Op::Put {
                        target: 1,
                        slot: 0,
                        pat: 9,
                        len: 20,
                    },
                    Op::Rmw { owner: 2 },
                ],
                vec![Op::Get { target: 0, len: 5 }],
                vec![],
            ],
        }
    }

    #[test]
    fn cases_round_trip() {
        let case = sample();
        let text = case.serialize();
        assert_eq!(Case::parse(&text), Ok(case));
    }

    #[test]
    fn lossless_case_round_trips_too() {
        let case = Case {
            tiebreak: None,
            mutant: None,
            drop_prob: 0.0,
            dup_prob: 0.0,
            plan: FaultPlan::new(),
            interrupt_mode: true,
            ..sample()
        };
        assert_eq!(Case::parse(&case.serialize()), Ok(case));
    }

    #[test]
    fn parse_rejects_malformed_cases() {
        assert!(Case::parse("").is_err(), "empty");
        assert!(
            Case::parse(&sample().serialize().replace("end\n", "")).is_err(),
            "truncation must be detected"
        );
        assert!(Case::parse("nodes 2\nend\n").is_err(), "missing keys");
        assert!(
            Case::parse(&sample().serialize().replace("mutant dedup", "mutant warp")).is_err(),
            "unknown mutant"
        );
        assert!(
            Case::parse(&sample().serialize().replace("op 1 get", "op 9 get")).is_err(),
            "rank out of range"
        );
    }

    #[test]
    fn decode_case_stays_in_survivable_bounds() {
        let raw_ops: Vec<RawOp> = (0u8..10)
            .map(|i| (i, i, i.wrapping_add(1), i, 100))
            .collect();
        let raw_faults: Vec<RawFault> = vec![
            ((0, 1, 0), (255, 255, 9_999, 9_999)),
            ((1, 0, 1), (0, 0, 9_999, 9_999)),
            ((2, 2, 0), (50, 50, 0, 0)), // self link: dropped
        ];
        let case = decode_case((0, 3, 200, 5, 255, 255), &raw_ops, &raw_faults);
        assert_eq!(case.nodes, 2);
        assert!(case.drop_prob < 0.40 && case.dup_prob < 0.20);
        for &(_, _, f) in case.plan.overrides() {
            assert!(f.drop_prob < 0.40 && f.dup_prob < 0.20);
        }
        for w in case.plan.windows() {
            assert!(
                w.until.as_ns() - w.from.as_ns() <= 3_000_000,
                "window ≤ 3ms"
            );
            assert!(w.until < VTime::from_us(8_000), "windows end before 8ms");
        }
        // Self-link fault was skipped, two survived.
        assert_eq!(case.plan.overrides().len() + case.plan.windows().len(), 2);
    }
}
