//! The sequential reference oracle: predicts the exact post-quiescence
//! state of a [`Program`] run, independent of schedule and faults.
//!
//! The prediction is possible because the op vocabulary is designed to be
//! confluent: write slots are unique per (origin, target), gets read
//! either an immutable well-known buffer or a slot the same origin just
//! fenced, and rmw tickets are commutative fetch-and-adds. Anything the
//! simulator can do differently run-to-run (packet order, loss,
//! retransmission, scheduler tie-breaks) must therefore be invisible in
//! the final state — a disagreement is a semantics bug, not noise.

use crate::program::{Op, Program};

/// Byte `i` of node `n`'s well-known pattern buffer.
pub fn well_byte(node: usize, i: usize) -> u8 {
    (node.wrapping_mul(31).wrapping_add(i) as u8) ^ 0x5A
}

/// Byte `i` of the payload an op with pattern `pat` writes.
pub fn content_byte(pat: u8, i: usize) -> u8 {
    pat ^ (i as u8) ^ 0xA5
}

/// Full payload for pattern `pat`.
pub fn content(pat: u8, len: usize) -> Vec<u8> {
    (0..len).map(|i| content_byte(pat, i)).collect()
}

/// What the oracle expects the world to look like after quiescence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expected {
    /// Final put region per node.
    pub put_mem: Vec<Vec<u8>>,
    /// Final AM region per node.
    pub am_mem: Vec<Vec<u8>>,
    /// Final rmw ticket-cell value per node.
    pub rmw_total: Vec<u64>,
    /// Per rank, in issue order: the bytes each get must have fetched.
    pub gets: Vec<Vec<Vec<u8>>>,
}

/// Predict the post-quiescence state of `p`.
pub fn predict(p: &Program) -> Expected {
    let region = p.region_len();
    let mut put_mem = vec![vec![0u8; region]; p.nodes];
    let mut am_mem = vec![vec![0u8; region]; p.nodes];
    let mut gets = vec![Vec::new(); p.nodes];
    for (origin, ops) in p.ops.iter().enumerate() {
        for op in ops {
            match *op {
                Op::Put {
                    target,
                    slot,
                    pat,
                    len,
                } => {
                    let off = p.slot_off(origin, slot);
                    put_mem[target][off..off + len].copy_from_slice(&content(pat, len));
                }
                Op::Am {
                    target,
                    slot,
                    pat,
                    len,
                } => {
                    let off = p.slot_off(origin, slot);
                    am_mem[target][off..off + len].copy_from_slice(&content(pat, len));
                }
                Op::Get { target, len } => {
                    gets[origin].push((0..len).map(|i| well_byte(target, i)).collect());
                }
                Op::PutFenceGet {
                    target,
                    slot,
                    pat,
                    len,
                } => {
                    let off = p.slot_off(origin, slot);
                    put_mem[target][off..off + len].copy_from_slice(&content(pat, len));
                    // The fence between put and get-back is the
                    // happens-before witness: the get must see the put.
                    gets[origin].push(content(pat, len));
                }
                Op::Rmw { .. } | Op::Fence { .. } => {}
            }
        }
    }
    Expected {
        put_mem,
        am_mem,
        rmw_total: (0..p.nodes).map(|n| p.rmw_total(n)).collect(),
        gets,
    }
}

/// What one rank actually observed after quiescence (built by the
/// runner, consumed by [`check`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Obs {
    /// Final put region.
    pub put_mem: Vec<u8>,
    /// Final AM region.
    pub am_mem: Vec<u8>,
    /// Final value of this node's rmw ticket cell.
    pub rmw_cell: u64,
    /// Tickets this rank's own rmw futures returned, indexed by owner.
    pub rmw_prevs: Vec<Vec<u64>>,
    /// Bytes each of this rank's gets fetched, in issue order.
    pub gets: Vec<Vec<u8>>,
    /// (org, cmpl, tgt) counter values after all waits consumed them —
    /// must be zero: exactly as many signals as Figure 1 promises.
    pub residues: [i64; 3],
    /// Sampled between ops: the tgt counter never decreased and never
    /// exceeded its total (counter monotonicity).
    pub mono_ok: bool,
}

fn first_diff(a: &[u8], b: &[u8]) -> String {
    if a.len() != b.len() {
        return format!("length {} vs expected {}", a.len(), b.len());
    }
    match a.iter().zip(b).position(|(x, y)| x != y) {
        Some(i) => format!("byte {i}: {:#04x} vs expected {:#04x}", a[i], b[i]),
        None => "identical".into(),
    }
}

/// Compare a full run observation against the oracle's prediction.
pub fn check(p: &Program, obs: &[Obs]) -> Result<(), String> {
    if obs.len() != p.nodes {
        return Err(format!(
            "{} ranks observed, {} expected",
            obs.len(),
            p.nodes
        ));
    }
    let exp = predict(p);
    for (rank, o) in obs.iter().enumerate() {
        if !o.mono_ok {
            return Err(format!("rank {rank}: tgt counter was not monotone"));
        }
        if o.residues != [0, 0, 0] {
            return Err(format!(
                "rank {rank}: counter residues {:?} != [0, 0, 0] — \
                 signal count disagrees with the tri-counter model",
                o.residues
            ));
        }
        if o.put_mem != exp.put_mem[rank] {
            return Err(format!(
                "rank {rank}: put region diverged ({})",
                first_diff(&o.put_mem, &exp.put_mem[rank])
            ));
        }
        if o.am_mem != exp.am_mem[rank] {
            return Err(format!(
                "rank {rank}: AM region diverged ({})",
                first_diff(&o.am_mem, &exp.am_mem[rank])
            ));
        }
        if o.rmw_cell != exp.rmw_total[rank] {
            return Err(format!(
                "rank {rank}: rmw cell {} != {} tickets drawn",
                o.rmw_cell, exp.rmw_total[rank]
            ));
        }
        if o.gets.len() != exp.gets[rank].len() {
            return Err(format!(
                "rank {rank}: {} gets observed, {} issued",
                o.gets.len(),
                exp.gets[rank].len()
            ));
        }
        for (k, (got, want)) in o.gets.iter().zip(&exp.gets[rank]).enumerate() {
            if got != want {
                return Err(format!(
                    "rank {rank}: get #{k} fetched wrong bytes ({})",
                    first_diff(got, want)
                ));
            }
        }
    }
    // Rmw linearizability: the tickets all origins drew against one cell
    // must form the permutation 0..k — no duplicate, no gap.
    for owner in 0..p.nodes {
        let mut tickets: Vec<u64> = obs
            .iter()
            .flat_map(|o| o.rmw_prevs[owner].iter().copied())
            .collect();
        tickets.sort_unstable();
        let want: Vec<u64> = (0..p.rmw_total(owner)).collect();
        if tickets != want {
            return Err(format!(
                "owner {owner}: rmw tickets {tickets:?} are not the permutation 0..{}",
                p.rmw_total(owner)
            ));
        }
    }
    Ok(())
}

// ------------------------------------------------------- crash lane

/// What one rank observed after a crash-aware run (see
/// `runner::run_crash_case`). A scheduled-dead rank reports only
/// `crashed: true`; survivors carry the observation restricted to what a
/// crash leaves observable.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CrashObs {
    /// This rank was scheduled to crash (and did).
    pub crashed: bool,
    /// Final put region.
    pub put_mem: Vec<u8>,
    /// Final AM region.
    pub am_mem: Vec<u8>,
    /// Final value of this node's rmw ticket cell.
    pub rmw_cell: u64,
    /// Tickets this rank's rmw futures resolved with `Ok`, by owner
    /// (futures cancelled by peer death contribute nothing).
    pub rmw_prevs: Vec<Vec<u64>>,
    /// Per issued get, in issue order: `Some(bytes)` when the target
    /// survives and the op completed, `None` when the target was
    /// scheduled to die (its reply — and thus the scratch contents — is
    /// unobservable even if the request happened to be served pre-crash).
    pub gets: Vec<Option<Vec<u8>>>,
    /// (org, cmpl, tgt) counter values after all waits consumed them.
    pub residues: [i64; 3],
    /// Ops and death-forcing probes that returned a structured error.
    pub op_errors: usize,
    /// `(peer, err_hndlr fire count)` for every peer whose death fired
    /// the handler on this rank.
    pub death_fires: Vec<(usize, usize)>,
    /// What `gfence_surviving` returned.
    pub survivors_seen: Vec<usize>,
}

/// Restrict `p` to the ops a crash leaves predictable: scheduled-dead
/// origins contribute nothing, and ops aimed at a scheduled-dead target
/// (or rmw owner) are dropped — their effect lands in unobservable
/// memory or may be cut off mid-protocol.
pub fn restrict(p: &Program, survivors: &[usize]) -> Program {
    let live = |t: usize| survivors.contains(&t);
    Program {
        nodes: p.nodes,
        slot_bytes: p.slot_bytes,
        ops: p
            .ops
            .iter()
            .enumerate()
            .map(|(origin, ops)| {
                if !live(origin) {
                    return Vec::new();
                }
                ops.iter()
                    .filter(|op| match **op {
                        Op::Put { target, .. }
                        | Op::Get { target, .. }
                        | Op::Am { target, .. }
                        | Op::Fence { target }
                        | Op::PutFenceGet { target, .. } => live(target),
                        Op::Rmw { owner } => live(owner),
                    })
                    .copied()
                    .collect()
            })
            .collect(),
    }
}

/// Crash-aware oracle: given the crash schedule (as the survivor set),
/// check a crash run. Survivors must agree with the oracle on everything
/// the crash leaves observable — memory written by surviving flows,
/// gets from surviving wells, rmw tickets against surviving owners —
/// and every death must have been reported exactly once.
pub fn check_crash(p: &Program, survivors: &[usize], obs: &[CrashObs]) -> Result<(), String> {
    if obs.len() != p.nodes {
        return Err(format!(
            "{} ranks observed, {} expected",
            obs.len(),
            p.nodes
        ));
    }
    let mut dead: Vec<usize> = (0..p.nodes).filter(|r| !survivors.contains(r)).collect();
    dead.sort_unstable();
    for &d in &dead {
        if !p.ops[d].is_empty() {
            return Err(format!(
                "crash cases require scheduled-dead rank {d} to have an \
                 empty op program (it dies before issuing anything)"
            ));
        }
        if !obs[d].crashed {
            return Err(format!("rank {d} was scheduled to crash but did not"));
        }
    }
    let rp = restrict(p, survivors);
    let exp = predict(&rp);
    for &rank in survivors {
        let o = &obs[rank];
        if o.crashed {
            return Err(format!("survivor {rank} reported itself crashed"));
        }
        if o.residues != [0, 0, 0] {
            return Err(format!(
                "rank {rank}: counter residues {:?} != [0, 0, 0] — \
                 an op was neither completed nor credited by peer death",
                o.residues
            ));
        }
        if o.put_mem != exp.put_mem[rank] {
            return Err(format!(
                "rank {rank}: put region diverged ({})",
                first_diff(&o.put_mem, &exp.put_mem[rank])
            ));
        }
        if o.am_mem != exp.am_mem[rank] {
            return Err(format!(
                "rank {rank}: AM region diverged ({})",
                first_diff(&o.am_mem, &exp.am_mem[rank])
            ));
        }
        if o.rmw_cell != exp.rmw_total[rank] {
            return Err(format!(
                "rank {rank}: rmw cell {} != {} surviving tickets drawn",
                o.rmw_cell, exp.rmw_total[rank]
            ));
        }
        // Per issued get (crash-aware): toward a survivor the bytes must
        // be present and correct; toward a scheduled-dead target the
        // observation must be withheld.
        let mut want: Vec<Option<Vec<u8>>> = Vec::new();
        for op in &p.ops[rank] {
            match *op {
                Op::Get { target, len } => want.push(if survivors.contains(&target) {
                    Some((0..len).map(|i| well_byte(target, i)).collect())
                } else {
                    None
                }),
                Op::PutFenceGet {
                    target, pat, len, ..
                } => want.push(if survivors.contains(&target) {
                    Some(content(pat, len))
                } else {
                    None
                }),
                _ => {}
            }
        }
        if o.gets.len() != want.len() {
            return Err(format!(
                "rank {rank}: {} gets observed, {} issued",
                o.gets.len(),
                want.len()
            ));
        }
        for (k, (got, want)) in o.gets.iter().zip(&want).enumerate() {
            match (got, want) {
                (Some(g), Some(w)) if g != w => {
                    return Err(format!(
                        "rank {rank}: get #{k} fetched wrong bytes ({})",
                        first_diff(g, w)
                    ));
                }
                (Some(_), None) => {
                    return Err(format!(
                        "rank {rank}: get #{k} reported bytes from a dead target"
                    ));
                }
                (None, Some(_)) => {
                    return Err(format!("rank {rank}: get #{k} toward a survivor errored"));
                }
                _ => {}
            }
        }
        // Exactly-once death reporting: every scheduled death fired the
        // handler once, and nothing else fired it at all.
        let mut fired: Vec<usize> = o.death_fires.iter().map(|&(p, _)| p).collect();
        fired.sort_unstable();
        if fired != dead {
            return Err(format!(
                "rank {rank}: err_hndlr fired for peers {fired:?}, \
                 scheduled deaths were {dead:?}"
            ));
        }
        if let Some(&(peer, n)) = o.death_fires.iter().find(|&&(_, n)| n != 1) {
            return Err(format!(
                "rank {rank}: err_hndlr fired {n} times for peer {peer} — \
                 must be exactly once per death"
            ));
        }
        let mut seen = o.survivors_seen.clone();
        seen.sort_unstable();
        if seen != survivors {
            return Err(format!(
                "rank {rank}: gfence_surviving returned {seen:?}, \
                 schedule says {survivors:?}"
            ));
        }
    }
    // Rmw linearizability among survivors: tickets drawn against a
    // surviving owner still form the permutation 0..k.
    for &owner in survivors {
        let mut tickets: Vec<u64> = obs
            .iter()
            .filter(|o| !o.crashed)
            .flat_map(|o| o.rmw_prevs[owner].iter().copied())
            .collect();
        tickets.sort_unstable();
        let want: Vec<u64> = (0..rp.rmw_total(owner)).collect();
        if tickets != want {
            return Err(format!(
                "owner {owner}: rmw tickets {tickets:?} are not the \
                 permutation 0..{}",
                rp.rmw_total(owner)
            ));
        }
    }
    Ok(())
}

/// Schedule-independent projection of a run, for differential lanes
/// (lossy vs lossless must agree on this exactly). Per-rank state is kept
/// as-is; rmw tickets are pooled per owner and sorted, because *which*
/// origin wins which ticket legitimately depends on timing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Canon {
    pub per_rank: Vec<CanonRank>,
    pub tickets_by_owner: Vec<Vec<u64>>,
}

/// One rank's slice of the canonical projection: put-landing memory, AM
/// deposit memory, final rmw cell, fetched get buffers, counter residues.
pub type CanonRank = (Vec<u8>, Vec<u8>, u64, Vec<Vec<u8>>, [i64; 3]);

/// Build the canonical projection of a full observation.
pub fn canonicalize(obs: &[Obs]) -> Canon {
    let nodes = obs.len();
    let per_rank = obs
        .iter()
        .map(|o| {
            (
                o.put_mem.clone(),
                o.am_mem.clone(),
                o.rmw_cell,
                o.gets.clone(),
                o.residues,
            )
        })
        .collect();
    let tickets_by_owner = (0..nodes)
        .map(|owner| {
            let mut t: Vec<u64> = obs
                .iter()
                .flat_map(|o| o.rmw_prevs[owner].iter().copied())
                .collect();
            t.sort_unstable();
            t
        })
        .collect();
    Canon {
        per_rank,
        tickets_by_owner,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Program {
        Program {
            nodes: 2,
            slot_bytes: 8,
            ops: vec![
                vec![
                    Op::Put {
                        target: 1,
                        slot: 0,
                        pat: 7,
                        len: 4,
                    },
                    Op::Get { target: 1, len: 3 },
                    Op::Rmw { owner: 1 },
                ],
                vec![Op::Rmw { owner: 1 }],
            ],
        }
    }

    /// An Obs vector that matches `predict(p)` exactly.
    fn perfect(p: &Program) -> Vec<Obs> {
        let exp = predict(p);
        let mut obs: Vec<Obs> = (0..p.nodes)
            .map(|rank| Obs {
                put_mem: exp.put_mem[rank].clone(),
                am_mem: exp.am_mem[rank].clone(),
                rmw_cell: exp.rmw_total[rank],
                rmw_prevs: vec![Vec::new(); p.nodes],
                gets: exp.gets[rank].clone(),
                residues: [0, 0, 0],
                mono_ok: true,
            })
            .collect();
        // Hand out tickets 0..k round-robin.
        for owner in 0..p.nodes {
            for t in 0..p.rmw_total(owner) {
                obs[(t as usize) % p.nodes].rmw_prevs[owner].push(t);
            }
        }
        obs
    }

    #[test]
    fn perfect_run_passes() {
        let p = toy();
        assert_eq!(check(&p, &perfect(&p)), Ok(()));
    }

    #[test]
    fn predict_places_put_in_origin_slot() {
        let p = toy();
        let exp = predict(&p);
        let off = p.slot_off(0, 0);
        assert_eq!(exp.put_mem[1][off..off + 4], content(7, 4)[..]);
        assert!(exp.put_mem[1][off + 4..].iter().all(|&b| b == 0));
        assert_eq!(
            exp.gets[0][0],
            vec![well_byte(1, 0), well_byte(1, 1), well_byte(1, 2)]
        );
    }

    #[test]
    fn stale_counter_residue_is_caught() {
        let p = toy();
        let mut obs = perfect(&p);
        obs[0].residues = [1, 0, 0];
        assert!(check(&p, &obs).unwrap_err().contains("residues"));
    }

    #[test]
    fn duplicate_rmw_ticket_is_caught() {
        let p = toy();
        let mut obs = perfect(&p);
        obs[0].rmw_prevs[1] = vec![0];
        obs[1].rmw_prevs[1] = vec![0]; // duplicate grant of ticket 0
        assert!(check(&p, &obs).unwrap_err().contains("permutation"));
    }

    #[test]
    fn corrupt_memory_is_caught_with_location() {
        let p = toy();
        let mut obs = perfect(&p);
        let off = p.slot_off(0, 0);
        obs[1].put_mem[off] ^= 0xFF;
        let err = check(&p, &obs).unwrap_err();
        assert!(err.contains("put region") && err.contains("byte"), "{err}");
    }

    #[test]
    fn canonicalize_pools_tickets_across_ranks() {
        let p = toy();
        let mut a = perfect(&p);
        let mut b = perfect(&p);
        // Same tickets, different winners: canonically equal.
        a[0].rmw_prevs[1] = vec![1];
        a[1].rmw_prevs[1] = vec![0];
        b[0].rmw_prevs[1] = vec![0];
        b[1].rmw_prevs[1] = vec![1];
        assert_eq!(canonicalize(&a), canonicalize(&b));
        // Different final memory: canonically different.
        b[0].put_mem[0] ^= 1;
        assert_ne!(canonicalize(&a), canonicalize(&b));
    }
}
