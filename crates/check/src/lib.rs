//! Model-based conformance harness for the LAPI simulator.
//!
//! The simulator under `crates/{sim,switch,lapi}` is a concurrent system:
//! per-node threads, a virtual-time event queue, a lossy fabric with
//! ACK/retransmit reliability. This crate pits it against a *sequential
//! reference oracle* — a pure model of what the paper's semantics promise
//! regardless of schedule or faults:
//!
//! * **Counter accounting** (§2.3, Figure 1): after quiescence every
//!   org/cmpl/tgt counter has been signaled exactly once per associated
//!   event, counters only move up between consumes, and `LAPI_Waitcntr`
//!   residues are zero.
//! * **Happens-before** (§2.4): `LAPI_Fence` orders prior one-sided ops
//!   to a target before later ones; a fenced put is observable by a
//!   subsequent get (the `PutFenceGet` witness op).
//! * **Rmw linearizability**: fetch-and-add tickets drawn against one
//!   cell form a permutation `0..k` across all origins.
//! * **Delivery**: final memory equals the oracle's prediction whether the
//!   fabric was lossless, lossy, or running a fault plan — reliability may
//!   change timing, never outcomes.
//!
//! A generated [`case::Case`] is self-contained — node count, RNG seed,
//! scheduler tie-break seed, fault plan, op program — so a failure found
//! by exploration serializes to a text artifact that `src/bin/replay.rs`
//! re-executes byte-identically (see DESIGN §9).

pub mod case;
pub mod oracle;
pub mod program;
pub mod runner;

pub use case::Case;
pub use oracle::{canonicalize, check, check_crash, predict, restrict, Canon, CrashObs, Obs};
pub use program::{Op, Program};
pub use runner::{run_case, run_crash_case, CrashRunOutcome, RunOutcome};

/// Full verdict for one case: run panics (simulated deadlocks, internal
/// assertion failures) and oracle disagreements both count as failures.
pub fn verdict(case: &Case, out: &RunOutcome) -> Result<(), String> {
    match &out.obs {
        Ok(obs) => check(&case.program(), obs),
        Err(panic) => Err(format!("run panicked: {panic}")),
    }
}

/// Does this case schedule at least one node crash? Such cases must run
/// through the crash lane ([`run_crash_case`] + [`verdict_crash`]): the
/// healthy interpreter's full-job barrier would strand on the dead ranks.
pub fn is_crash_case(case: &Case) -> bool {
    case.plan.survivors(case.nodes).len() < case.nodes
}

/// Crash-lane verdict: the oracle knows the crash schedule from the
/// case's fault plan and checks exactly what a crash leaves observable
/// (see [`check_crash`]). A panic — including the real-time escape that
/// converts a would-be hang into a diagnostic — is a failure: crash
/// runs must terminate.
pub fn verdict_crash(case: &Case, out: &CrashRunOutcome) -> Result<(), String> {
    let survivors = case.plan.survivors(case.nodes);
    match &out.obs {
        Ok(obs) => check_crash(&case.program(), &survivors, obs),
        Err(panic) => Err(format!("crash run panicked: {panic}")),
    }
}
