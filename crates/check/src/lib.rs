//! Model-based conformance harness for the LAPI simulator.
//!
//! The simulator under `crates/{sim,switch,lapi}` is a concurrent system:
//! per-node threads, a virtual-time event queue, a lossy fabric with
//! ACK/retransmit reliability. This crate pits it against a *sequential
//! reference oracle* — a pure model of what the paper's semantics promise
//! regardless of schedule or faults:
//!
//! * **Counter accounting** (§2.3, Figure 1): after quiescence every
//!   org/cmpl/tgt counter has been signaled exactly once per associated
//!   event, counters only move up between consumes, and `LAPI_Waitcntr`
//!   residues are zero.
//! * **Happens-before** (§2.4): `LAPI_Fence` orders prior one-sided ops
//!   to a target before later ones; a fenced put is observable by a
//!   subsequent get (the `PutFenceGet` witness op).
//! * **Rmw linearizability**: fetch-and-add tickets drawn against one
//!   cell form a permutation `0..k` across all origins.
//! * **Delivery**: final memory equals the oracle's prediction whether the
//!   fabric was lossless, lossy, or running a fault plan — reliability may
//!   change timing, never outcomes.
//!
//! A generated [`case::Case`] is self-contained — node count, RNG seed,
//! scheduler tie-break seed, fault plan, op program — so a failure found
//! by exploration serializes to a text artifact that `src/bin/replay.rs`
//! re-executes byte-identically (see DESIGN §9).

pub mod case;
pub mod oracle;
pub mod program;
pub mod runner;

pub use case::Case;
pub use oracle::{canonicalize, check, predict, Canon, Obs};
pub use program::{Op, Program};
pub use runner::{run_case, RunOutcome};

/// Full verdict for one case: run panics (simulated deadlocks, internal
/// assertion failures) and oracle disagreements both count as failures.
pub fn verdict(case: &Case, out: &RunOutcome) -> Result<(), String> {
    match &out.obs {
        Ok(obs) => check(&case.program(), obs),
        Err(panic) => Err(format!("run panicked: {panic}")),
    }
}
