//! Execute a [`Case`] against the real simulator and observe the result.
//!
//! One fixed SPMD protocol interprets any [`Program`]:
//!
//! * Memory layout per node (in allocation order, so `LAPI_Address_init`
//!   tables line up): put region, AM region, well-known pattern buffer,
//!   u64 rmw ticket cell — then per-get scratch buffers, local only.
//! * Three counters per node (org/cmpl/tgt), ids exchanged collectively.
//! * Each rank issues its op list, then runs the quiescence protocol:
//!   resolve rmw futures, send one zero-byte *drain token* put to every
//!   node it rmw'd (rmw carries no counters, so without the token a
//!   polling-mode target could stop polling while an rmw aimed at it is
//!   still unserved — see [`Program::drain_targets`]), `LAPI_Waitcntr`
//!   each counter down to zero residue, `LAPI_Gfence`, barrier — and
//!   only then reads memory.
//!
//! Runs are serialized process-wide: the scheduler tie-break hook and the
//! mutation registry are process-global, so two concurrent cases would
//! bleed into each other.

use std::collections::BTreeMap;
use std::sync::Arc;

use lapi::{Addr, Counter, LapiContext, LapiError, LapiWorld, Mode, RmwOp};
use parking_lot::Mutex;

use crate::case::Case;
use crate::oracle::{content, restrict, well_byte, CrashObs, Obs};
use crate::program::{Op, Program, AM_HANDLER, MAX_SLOTS};

/// Serializes case execution (tie-break hook + mutant registry are
/// process-global).
static RUN_LOCK: Mutex<()> = Mutex::new(());

/// Everything one execution of a case produced.
#[derive(Debug)]
pub struct RunOutcome {
    /// Per-rank observations, or the panic message if the run died
    /// (simulated deadlock, internal assertion, mutant damage).
    pub obs: Result<Vec<Obs>, String>,
    /// FNV-1a hash of the fully rendered virtual-time trace. For a fixed
    /// 2-node polling-mode case whose program has no `Am` ops and no
    /// self-targeted ops this is byte-stable run-to-run. Outside that
    /// envelope a node's receive queue gains a second real-time producer
    /// and processing order stops being a pure function of virtual time:
    /// `recv` returns the earliest-stamped packet *currently present*, so
    /// a virtually-earlier packet that has not been pushed yet in real
    /// time loses its turn. An AM deposit acks its completion from the
    /// target's completion thread (second producer #1); a loopback
    /// self-send pushes into the issuing node's own queue while the link
    /// does too (second producer #2). Larger worlds additionally race on
    /// ejection-link reservation order, and interrupt mode charges
    /// idle-dispatcher time nondeterministically.
    pub digest: u64,
    /// Number of trace events recorded.
    pub events: usize,
    /// Last lines of the rendered trace, for failure reports.
    pub tail: String,
}

/// Run `case` once, under a trace session, returning observations plus
/// the trace digest/tail for replay comparison.
pub fn run_case(case: &Case) -> RunOutcome {
    let _guard = RUN_LOCK.lock();
    spsim::set_schedule_tiebreak(case.tiebreak);
    spsim::mutation::set(case.mutant);
    let session = spsim::trace::session();
    let mode = if case.interrupt_mode {
        Mode::Interrupt
    } else {
        Mode::Polling
    };
    let ctxs = LapiWorld::init_full(
        case.nodes,
        case.machine_config(),
        mode,
        case.seed,
        case.escape(),
    );
    let prog = Arc::new(case.program());
    let p = prog.clone();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        spsim::run_spmd_with(ctxs, move |rank, ctx| execute(rank, &ctx, &p))
    }));
    spsim::mutation::set(None);
    spsim::set_schedule_tiebreak(None);
    let timeline = session.finish();
    let rendered = timeline.render();
    assert_eq!(
        timeline.evicted, 0,
        "trace ring overflowed — shrink the op budget so digests stay total"
    );
    let obs = match result {
        Ok(v) => Ok(v),
        Err(payload) => Err(panic_text(payload)),
    };
    RunOutcome {
        obs,
        digest: fnv1a(rendered.as_bytes()),
        events: timeline.events.len(),
        tail: tail_lines(&rendered, 24),
    }
}

/// The fixed SPMD interpreter for one rank.
fn execute(rank: usize, ctx: &LapiContext, p: &Program) -> Obs {
    let n = p.nodes;
    let region = p.region_len();
    let put_base = ctx.alloc(region);
    let am_base = ctx.alloc(region);
    let well = ctx.alloc(p.slot_bytes.max(1));
    let cell = ctx.alloc(8);
    let well_data: Vec<u8> = (0..p.slot_bytes).map(|i| well_byte(rank, i)).collect();
    ctx.mem_write(well, &well_data);

    // AM deposits land in the *origin's* slot of our AM region; the slot
    // rides in the user header. Registered before the collective
    // exchanges below, which double as "everyone is ready" barriers.
    let sb = p.slot_bytes;
    ctx.register_handler(AM_HANDLER, move |_hctx, info| {
        if info.data_len == 0 {
            return lapi::HdrOutcome::none();
        }
        let slot = info.uhdr[0] as usize;
        lapi::HdrOutcome::into_buffer(am_base.offset((info.src * MAX_SLOTS + slot) * sb))
    });

    let put_bases = ctx.address_init(put_base);
    let wells = ctx.address_init(well);
    let cells = ctx.address_init(cell);
    let org = ctx.new_counter();
    let cmpl = ctx.new_counter();
    let tgt = ctx.new_counter();
    let tgt_remote = ctx.counter_init(&tgt);

    let mut futures = Vec::new();
    let mut scratches: Vec<(Addr, usize)> = Vec::new();
    let mut mono_ok = true;
    let mut last_tgt = 0i64;
    let tgt_total = p.tgt_expected(rank);
    for op in &p.ops[rank] {
        match *op {
            Op::Put {
                target,
                slot,
                pat,
                len,
            } => {
                let dst = put_bases[target].offset(p.slot_off(rank, slot));
                ctx.put(
                    target,
                    dst,
                    &content(pat, len),
                    Some(tgt_remote[target]),
                    Some(&org),
                    Some(&cmpl),
                )
                .expect("healthy cases must not exhaust retransmits on put");
            }
            Op::Get { target, len } => {
                let scratch = ctx.alloc(len.max(1));
                ctx.get(
                    target,
                    wells[target],
                    len,
                    scratch,
                    Some(tgt_remote[target]),
                    Some(&org),
                )
                .expect("healthy cases must not exhaust retransmits on get");
                scratches.push((scratch, len));
            }
            Op::Am {
                target,
                slot,
                pat,
                len,
            } => {
                ctx.amsend(
                    target,
                    AM_HANDLER,
                    &[slot as u8],
                    &content(pat, len),
                    Some(tgt_remote[target]),
                    Some(&org),
                    Some(&cmpl),
                )
                .expect("healthy cases must not exhaust retransmits on amsend");
            }
            Op::Rmw { owner } => {
                let fut = ctx
                    .rmw(owner, RmwOp::FetchAndAdd, cells[owner], 1, 0)
                    .expect("healthy cases must not exhaust retransmits on rmw");
                futures.push((owner, fut));
            }
            Op::Fence { target } => {
                ctx.fence(target).expect("fence must not fail");
            }
            Op::PutFenceGet {
                target,
                slot,
                pat,
                len,
            } => {
                let dst = put_bases[target].offset(p.slot_off(rank, slot));
                ctx.put(
                    target,
                    dst,
                    &content(pat, len),
                    Some(tgt_remote[target]),
                    Some(&org),
                    Some(&cmpl),
                )
                .expect("healthy cases must not exhaust retransmits on put");
                ctx.fence(target).expect("fence must not fail");
                let scratch = ctx.alloc(len.max(1));
                ctx.get(
                    target,
                    dst,
                    len,
                    scratch,
                    Some(tgt_remote[target]),
                    Some(&org),
                )
                .expect("healthy cases must not exhaust retransmits on get");
                scratches.push((scratch, len));
            }
        }
        // Counter monotonicity: between consumes, tgt only moves up and
        // never past its total.
        let v = ctx.getcntr(&tgt);
        mono_ok &= v >= last_tgt && v <= tgt_total;
        last_tgt = v;
    }

    // Quiescence protocol: futures, drain tokens, the three waits, a
    // global fence. The drain token (a zero-byte put carrying all three
    // counters) is issued only after every rmw reply is in hand, so its
    // arrival proves to the target that the rmws preceding it were
    // served — the target's tgt wait below keeps it polling until then.
    let mut rmw_prevs = vec![Vec::new(); n];
    for (owner, fut) in futures {
        rmw_prevs[owner].push(fut.wait());
    }
    for t in p.drain_targets(rank) {
        ctx.put(
            t,
            put_bases[t],
            &[],
            Some(tgt_remote[t]),
            Some(&org),
            Some(&cmpl),
        )
        .expect("healthy cases must not exhaust retransmits on drain token");
    }
    ctx.waitcntr(&org, p.org_expected(rank));
    ctx.waitcntr(&cmpl, p.cmpl_expected(rank));
    ctx.waitcntr(&tgt, tgt_total);
    ctx.gfence().expect("gfence must not fail");
    ctx.barrier();

    Obs {
        put_mem: ctx.mem_read(put_base, region),
        am_mem: ctx.mem_read(am_base, region),
        rmw_cell: ctx.mem_read_u64(cell),
        rmw_prevs,
        gets: scratches
            .iter()
            .map(|&(addr, len)| ctx.mem_read(addr, len))
            .collect(),
        residues: [ctx.getcntr(&org), ctx.getcntr(&cmpl), ctx.getcntr(&tgt)],
        mono_ok,
    }
}

// ------------------------------------------------------- crash lane

/// Everything one execution of a crash case produced (see
/// [`run_crash_case`]).
#[derive(Debug)]
pub struct CrashRunOutcome {
    /// Per-rank crash observations, or the panic message if the run died.
    /// A hang is impossible by construction: every blocking wait either
    /// completes, is credited by peer-death unwinding, or trips the
    /// real-time escape into a panic — so this is always `Ok` or `Err`,
    /// never silence.
    pub obs: Result<Vec<CrashObs>, String>,
    /// FNV-1a hash of the rendered trace. Byte-stable under the same
    /// envelope as [`RunOutcome::digest`] *plus* the crash being
    /// scheduled at `VTime::ZERO`: a later crash races the victim's
    /// real-time teardown against in-flight packets (stranded-vs-closed
    /// at its receive queue), while a crash at zero black-holes every
    /// packet at the fabric from the survivor's own thread.
    pub digest: u64,
    /// Number of trace events recorded.
    pub events: usize,
    /// Last lines of the rendered trace, for failure reports.
    pub tail: String,
}

/// Run a crash case once: ranks scheduled dead in `case.plan` run the
/// setup collectives (which are side-channel, not wire traffic), then
/// crash-stop without issuing an op; survivors run their programs and
/// must terminate — every op completes or returns a structured error.
pub fn run_crash_case(case: &Case) -> CrashRunOutcome {
    let _guard = RUN_LOCK.lock();
    spsim::set_schedule_tiebreak(case.tiebreak);
    spsim::mutation::set(case.mutant);
    let session = spsim::trace::session();
    let mode = if case.interrupt_mode {
        Mode::Interrupt
    } else {
        Mode::Polling
    };
    let ctxs = LapiWorld::init_full(
        case.nodes,
        case.machine_config(),
        mode,
        case.seed,
        case.escape(),
    );
    let prog = Arc::new(case.program());
    let survivors = Arc::new(case.plan.survivors(case.nodes));
    let p = prog.clone();
    let s = survivors.clone();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        spsim::run_spmd_with(ctxs, move |rank, mut ctx| {
            execute_crash(rank, &mut ctx, &p, &s)
        })
    }));
    spsim::mutation::set(None);
    spsim::set_schedule_tiebreak(None);
    let timeline = session.finish();
    let rendered = timeline.render();
    assert_eq!(
        timeline.evicted, 0,
        "trace ring overflowed — shrink the op budget so digests stay total"
    );
    let obs = match result {
        Ok(v) => Ok(v),
        Err(payload) => Err(panic_text(payload)),
    };
    CrashRunOutcome {
        obs,
        digest: fnv1a(rendered.as_bytes()),
        events: timeline.events.len(),
        tail: tail_lines(&rendered, 24),
    }
}

/// Probe `d` with zero-byte puts until this node has declared it dead.
///
/// Needed because an op toward a mid-run-crashed peer can return `Ok`
/// (the adapter acknowledged it pre-crash) while its completion never
/// arrives: outstanding stays positive and nothing ever declares the
/// death, so a subsequent `Waitcntr` would sleep forever. Each probe
/// either completes (pre-crash virtual time — its counters will be
/// signaled or death-credited, so they are added to the expectations) or
/// exhausts its retransmission budget, which performs the declaration and
/// ends the loop. Virtual time advances on every attempt, so the loop
/// crosses the scheduled crash instant and terminates.
#[allow(clippy::too_many_arguments)]
fn force_death(
    ctx: &LapiContext,
    d: usize,
    dst: Addr,
    org: &Counter,
    cmpl: &Counter,
    org_exp: &mut i64,
    cmpl_exp: &mut i64,
    op_errors: &mut usize,
) {
    // liveness: each iteration burns virtual time on the wire; once the
    // clock passes the scheduled crash instant a probe must exhaust its
    // retransmits, and that failure latches the peer dead.
    while !ctx.dead_peers().contains(&d) {
        match ctx.put(d, dst, &[], None, Some(org), Some(cmpl)) {
            Ok(_) => {
                *org_exp += 1;
                *cmpl_exp += 1;
            }
            Err(_) => *op_errors += 1,
        }
    }
}

/// The crash-aware SPMD interpreter for one rank.
///
/// Differs from [`execute`] in exactly the ways a crash forces:
///
/// * counter expectations are accounted dynamically from per-op outcomes
///   instead of precomputed — an op toward a dead peer contributes
///   nothing (its counters never tick: the issue path retracts the note
///   before declaring the death);
/// * before any op aimed at a scheduled-dead peer, [`force_death`] makes
///   the death observable so the op fast-fails deterministically;
/// * quiescence ends with `gfence_surviving` (degraded barrier over the
///   survivor set) — a full-job barrier would strand on the dead ranks.
fn execute_crash(rank: usize, ctx: &mut LapiContext, p: &Program, survivors: &[usize]) -> CrashObs {
    let n = p.nodes;
    let region = p.region_len();
    let put_base = ctx.alloc(region);
    let am_base = ctx.alloc(region);
    let well = ctx.alloc(p.slot_bytes.max(1));
    let cell = ctx.alloc(8);
    let well_data: Vec<u8> = (0..p.slot_bytes).map(|i| well_byte(rank, i)).collect();
    ctx.mem_write(well, &well_data);

    // Death-reporting audit: count err_hndlr fires per peer. The oracle
    // later demands exactly one per scheduled death, no more, no fewer.
    let fires: Arc<Mutex<BTreeMap<usize, usize>>> = Arc::new(Mutex::new(BTreeMap::new()));
    {
        let fires = fires.clone();
        ctx.register_err_hndlr(move |e| {
            if let LapiError::DeliveryTimeout { target, .. } = e {
                *fires.lock().entry(*target).or_insert(0) += 1;
            }
        });
    }

    let sb = p.slot_bytes;
    ctx.register_handler(AM_HANDLER, move |_hctx, info| {
        if info.data_len == 0 {
            return lapi::HdrOutcome::none();
        }
        let slot = info.uhdr[0] as usize;
        lapi::HdrOutcome::into_buffer(am_base.offset((info.src * MAX_SLOTS + slot) * sb))
    });

    let put_bases = ctx.address_init(put_base);
    let wells = ctx.address_init(well);
    let cells = ctx.address_init(cell);
    let org = ctx.new_counter();
    let cmpl = ctx.new_counter();
    let tgt = ctx.new_counter();
    let tgt_remote = ctx.counter_init(&tgt);

    // Scheduled-dead ranks take part in the setup collectives above —
    // those ride the side-channel exchange board, not the wire, so the
    // survivors get complete address/counter tables — then die without
    // issuing a single op.
    if !survivors.contains(&rank) {
        ctx.crash_stop();
        return CrashObs {
            crashed: true,
            rmw_prevs: vec![Vec::new(); n],
            ..CrashObs::default()
        };
    }

    let live = |t: usize| survivors.contains(&t);
    let rp = restrict(p, survivors);
    let mut org_exp = 0i64;
    let mut cmpl_exp = 0i64;
    let mut op_errors = 0usize;
    let mut futures = Vec::new();
    let mut scratches: Vec<Option<(Addr, usize)>> = Vec::new();
    for op in &p.ops[rank] {
        match *op {
            Op::Put {
                target,
                slot,
                pat,
                len,
            } => {
                let dst = put_bases[target].offset(p.slot_off(rank, slot));
                if live(target) {
                    ctx.put(
                        target,
                        dst,
                        &content(pat, len),
                        Some(tgt_remote[target]),
                        Some(&org),
                        Some(&cmpl),
                    )
                    .expect("put between survivors must not fail");
                    org_exp += 1;
                    cmpl_exp += 1;
                } else {
                    force_death(
                        ctx,
                        target,
                        put_bases[target],
                        &org,
                        &cmpl,
                        &mut org_exp,
                        &mut cmpl_exp,
                        &mut op_errors,
                    );
                    let r = ctx.put(
                        target,
                        dst,
                        &content(pat, len),
                        None,
                        Some(&org),
                        Some(&cmpl),
                    );
                    assert!(r.is_err(), "put toward a declared-dead peer must fast-fail");
                    op_errors += 1;
                }
            }
            Op::Get { target, len } => {
                let scratch = ctx.alloc(len.max(1));
                if live(target) {
                    ctx.get(
                        target,
                        wells[target],
                        len,
                        scratch,
                        Some(tgt_remote[target]),
                        Some(&org),
                    )
                    .expect("get between survivors must not fail");
                    org_exp += 1;
                    scratches.push(Some((scratch, len)));
                } else {
                    force_death(
                        ctx,
                        target,
                        put_bases[target],
                        &org,
                        &cmpl,
                        &mut org_exp,
                        &mut cmpl_exp,
                        &mut op_errors,
                    );
                    let r = ctx.get(target, wells[target], len, scratch, None, Some(&org));
                    assert!(r.is_err(), "get toward a declared-dead peer must fast-fail");
                    op_errors += 1;
                    scratches.push(None);
                }
            }
            Op::Am {
                target,
                slot,
                pat,
                len,
            } => {
                if live(target) {
                    ctx.amsend(
                        target,
                        AM_HANDLER,
                        &[slot as u8],
                        &content(pat, len),
                        Some(tgt_remote[target]),
                        Some(&org),
                        Some(&cmpl),
                    )
                    .expect("amsend between survivors must not fail");
                    org_exp += 1;
                    cmpl_exp += 1;
                } else {
                    force_death(
                        ctx,
                        target,
                        put_bases[target],
                        &org,
                        &cmpl,
                        &mut org_exp,
                        &mut cmpl_exp,
                        &mut op_errors,
                    );
                    let r = ctx.amsend(
                        target,
                        AM_HANDLER,
                        &[slot as u8],
                        &content(pat, len),
                        None,
                        Some(&org),
                        Some(&cmpl),
                    );
                    assert!(
                        r.is_err(),
                        "amsend toward a declared-dead peer must fast-fail"
                    );
                    op_errors += 1;
                }
            }
            Op::Rmw { owner } => {
                if live(owner) {
                    let fut = ctx
                        .rmw(owner, RmwOp::FetchAndAdd, cells[owner], 1, 0)
                        .expect("rmw toward a surviving owner must not fail");
                    futures.push((owner, fut));
                } else {
                    force_death(
                        ctx,
                        owner,
                        put_bases[owner],
                        &org,
                        &cmpl,
                        &mut org_exp,
                        &mut cmpl_exp,
                        &mut op_errors,
                    );
                    let r = ctx.rmw(owner, RmwOp::FetchAndAdd, cells[owner], 1, 0);
                    assert!(r.is_err(), "rmw toward a declared-dead peer must fast-fail");
                    op_errors += 1;
                }
            }
            Op::Fence { target } => {
                if live(target) {
                    ctx.fence(target).expect("fence must not fail");
                } else {
                    force_death(
                        ctx,
                        target,
                        put_bases[target],
                        &org,
                        &cmpl,
                        &mut org_exp,
                        &mut cmpl_exp,
                        &mut op_errors,
                    );
                    let r = ctx.fence(target);
                    assert!(
                        r.is_err(),
                        "fence toward a declared-dead peer must fast-fail"
                    );
                    op_errors += 1;
                }
            }
            Op::PutFenceGet {
                target,
                slot,
                pat,
                len,
            } => {
                let dst = put_bases[target].offset(p.slot_off(rank, slot));
                let scratch = ctx.alloc(len.max(1));
                if live(target) {
                    ctx.put(
                        target,
                        dst,
                        &content(pat, len),
                        Some(tgt_remote[target]),
                        Some(&org),
                        Some(&cmpl),
                    )
                    .expect("put between survivors must not fail");
                    ctx.fence(target).expect("fence must not fail");
                    ctx.get(
                        target,
                        dst,
                        len,
                        scratch,
                        Some(tgt_remote[target]),
                        Some(&org),
                    )
                    .expect("get between survivors must not fail");
                    org_exp += 2;
                    cmpl_exp += 1;
                    scratches.push(Some((scratch, len)));
                } else {
                    force_death(
                        ctx,
                        target,
                        put_bases[target],
                        &org,
                        &cmpl,
                        &mut org_exp,
                        &mut cmpl_exp,
                        &mut op_errors,
                    );
                    // All three halves of the witness must refuse.
                    assert!(ctx
                        .put(
                            target,
                            dst,
                            &content(pat, len),
                            None,
                            Some(&org),
                            Some(&cmpl)
                        )
                        .is_err());
                    assert!(ctx.fence(target).is_err());
                    assert!(ctx
                        .get(target, dst, len, scratch, None, Some(&org))
                        .is_err());
                    op_errors += 3;
                    scratches.push(None);
                }
            }
        }
    }

    // Quiescence: resolve futures (all aimed at surviving owners by
    // construction), send drain tokens to the surviving rmw owners, wait
    // the dynamically accounted expectations, then the degraded fence.
    let mut rmw_prevs = vec![Vec::new(); n];
    for (owner, fut) in futures {
        rmw_prevs[owner].push(
            fut.wait_result()
                .expect("rmw against a surviving owner must complete"),
        );
    }
    for t in rp.drain_targets(rank) {
        ctx.put(
            t,
            put_bases[t],
            &[],
            Some(tgt_remote[t]),
            Some(&org),
            Some(&cmpl),
        )
        .expect("drain token between survivors must not fail");
        org_exp += 1;
        cmpl_exp += 1;
    }
    ctx.waitcntr(&org, org_exp);
    ctx.waitcntr(&cmpl, cmpl_exp);
    ctx.waitcntr(&tgt, rp.tgt_expected(rank));
    let survivors_seen = ctx
        .gfence_surviving()
        .expect("a survivor's gfence_surviving must succeed");

    let death_fires = fires.lock().iter().map(|(&p, &c)| (p, c)).collect();
    CrashObs {
        crashed: false,
        put_mem: ctx.mem_read(put_base, region),
        am_mem: ctx.mem_read(am_base, region),
        rmw_cell: ctx.mem_read_u64(cell),
        rmw_prevs,
        gets: scratches
            .iter()
            .map(|s| s.map(|(addr, len)| ctx.mem_read(addr, len)))
            .collect(),
        residues: [ctx.getcntr(&org), ctx.getcntr(&cmpl), ctx.getcntr(&tgt)],
        op_errors,
        death_fires,
        survivors_seen,
    }
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn tail_lines(text: &str, n: usize) -> String {
    let lines: Vec<&str> = text.lines().collect();
    let start = lines.len().saturating_sub(n);
    lines[start..].join("\n")
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::check;
    use spsim::FaultPlan;

    fn tiny_case() -> Case {
        Case {
            nodes: 2,
            seed: 11,
            tiebreak: None,
            interrupt_mode: false,
            slot_bytes: 16,
            drop_prob: 0.0,
            dup_prob: 0.0,
            plan: FaultPlan::new(),
            escape_ms: 20_000,
            mutant: None,
            ops: vec![
                vec![
                    Op::Put {
                        target: 1,
                        slot: 0,
                        pat: 3,
                        len: 12,
                    },
                    Op::Get { target: 1, len: 7 },
                    Op::Rmw { owner: 1 },
                    Op::PutFenceGet {
                        target: 1,
                        slot: 1,
                        pat: 8,
                        len: 16,
                    },
                ],
                vec![
                    Op::Am {
                        target: 0,
                        slot: 0,
                        pat: 5,
                        len: 10,
                    },
                    Op::Rmw { owner: 1 },
                    Op::Rmw { owner: 0 },
                ],
            ],
        }
    }

    #[test]
    fn tiny_lossless_case_matches_oracle() {
        let case = tiny_case();
        let out = run_case(&case);
        let obs = out.obs.expect("lossless tiny case must complete");
        assert_eq!(check(&case.program(), &obs), Ok(()));
        assert!(out.events > 0, "trace session must have recorded the run");
    }

    /// A case inside the byte-stability envelope documented on
    /// [`RunOutcome::digest`]: 2 nodes, polling mode, no AM ops, no
    /// self-targeted ops (both would add a second real-time producer to a
    /// receive queue and jitter the virtual-time trace).
    fn deterministic_case() -> Case {
        let mut case = tiny_case();
        case.ops = vec![
            vec![
                Op::Put {
                    target: 1,
                    slot: 0,
                    pat: 3,
                    len: 12,
                },
                Op::Get { target: 1, len: 7 },
                Op::Rmw { owner: 1 },
                Op::PutFenceGet {
                    target: 1,
                    slot: 1,
                    pat: 8,
                    len: 16,
                },
            ],
            vec![
                Op::Put {
                    target: 0,
                    slot: 0,
                    pat: 5,
                    len: 10,
                },
                Op::Rmw { owner: 0 },
            ],
        ];
        case
    }

    #[test]
    fn deterministic_envelope_runs_are_digest_stable() {
        let case = deterministic_case();
        let a = run_case(&case);
        let b = run_case(&case);
        assert!(a.obs.is_ok(), "deterministic case must complete: {a:?}");
        assert_eq!(a.digest, b.digest, "same case must replay byte-identically");
        assert_eq!(a.events, b.events);
        assert_eq!(a.tail, b.tail);
    }
}
