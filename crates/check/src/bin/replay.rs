//! Re-execute a serialized conformance case byte-for-byte.
//!
//! ```text
//! cargo run -p check --bin replay -- path/to/failure.case
//! ```
//!
//! Prints the case summary, the virtual-time trace digest and tail, and
//! the oracle verdict. Exit status 0 on PASS, 1 on FAIL — and for a
//! fixed 2-node polling-mode case whose program has no active messages
//! and no self-targeted ops the whole stdout is byte-identical across
//! invocations (see `RunOutcome::digest` for why those qualifiers
//! exist), which is what makes a shrunk counterexample a durable
//! artifact rather than a flaky anecdote.

use std::process::ExitCode;

use check::{is_crash_case, run_case, run_crash_case, verdict, verdict_crash, Case};

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: replay <case-file>");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("replay: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let case = match Case::parse(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("replay: cannot parse {path}: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "case: nodes={} seed={} tiebreak={} mode={} drop={} dup={} mutant={} ops={}",
        case.nodes,
        case.seed,
        case.tiebreak.map_or("none".to_string(), |t| t.to_string()),
        if case.interrupt_mode {
            "interrupt"
        } else {
            "polling"
        },
        case.drop_prob,
        case.dup_prob,
        case.mutant.map_or("none", |m| m.name()),
        case.program().total_ops(),
    );
    // Crash-scheduling cases replay through the crash lane, so a
    // counterexample found there stays a durable artifact too.
    let (v, events, digest, tail) = if is_crash_case(&case) {
        let out = run_crash_case(&case);
        (verdict_crash(&case, &out), out.events, out.digest, out.tail)
    } else {
        let out = run_case(&case);
        (verdict(&case, &out), out.events, out.digest, out.tail)
    };
    println!("trace: {events} events, digest {digest:016x}");
    println!("trace tail:");
    println!("{tail}");
    match v {
        Ok(()) => {
            println!("verdict: PASS");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            println!("verdict: FAIL — {msg}");
            ExitCode::FAILURE
        }
    }
}
