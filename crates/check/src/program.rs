//! Op programs: the vocabulary the explorer drives the simulator with.
//!
//! Each rank runs a straight-line list of one-sided operations over a
//! fixed memory layout (see `runner`): a put region and an AM region of
//! `nodes * MAX_SLOTS` disjoint slots each, a well-known pattern buffer,
//! and a u64 rmw ticket cell. Slots are unique per (origin, target), so
//! the final memory image is schedule-independent and a sequential oracle
//! can predict it exactly.

// BTreeMap, not HashMap: slot assignment order feeds decoded op programs,
// which must be stable across runs for replayable counterexamples (lint L2).
use std::collections::BTreeMap;

/// Write slots per (origin, target) pair in each region.
pub const MAX_SLOTS: usize = 8;

/// AM handler id the runner registers for `Op::Am` deposits.
pub const AM_HANDLER: u32 = 7;

/// One operation issued by a rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `LAPI_Put` of `len` patterned bytes into the origin's `slot` on
    /// `target` (org+cmpl+tgt counters attached).
    Put {
        target: usize,
        slot: usize,
        pat: u8,
        len: usize,
    },
    /// `LAPI_Get` of `len` bytes from `target`'s well-known pattern
    /// buffer into a fresh local scratch buffer (org+tgt counters).
    Get { target: usize, len: usize },
    /// `LAPI_Amsend` depositing `len` patterned bytes into the origin's
    /// AM `slot` on `target` (org+cmpl+tgt counters).
    Am {
        target: usize,
        slot: usize,
        pat: u8,
        len: usize,
    },
    /// `LAPI_Rmw` fetch-and-add 1 against `owner`'s ticket cell.
    Rmw { owner: usize },
    /// `LAPI_Fence` toward `target`.
    Fence { target: usize },
    /// Put, fence(target), then get the same slot back: the fence
    /// happens-before witness — the get must observe the put.
    PutFenceGet {
        target: usize,
        slot: usize,
        pat: u8,
        len: usize,
    },
}

impl Op {
    /// One-line form used inside case files (`op <rank> <this>`).
    pub fn to_line(self) -> String {
        match self {
            Op::Put {
                target,
                slot,
                pat,
                len,
            } => format!("put {target} {slot} {pat} {len}"),
            Op::Get { target, len } => format!("get {target} {len}"),
            Op::Am {
                target,
                slot,
                pat,
                len,
            } => format!("am {target} {slot} {pat} {len}"),
            Op::Rmw { owner } => format!("rmw {owner}"),
            Op::Fence { target } => format!("fence {target}"),
            Op::PutFenceGet {
                target,
                slot,
                pat,
                len,
            } => format!("pfg {target} {slot} {pat} {len}"),
        }
    }

    /// Inverse of [`Op::to_line`].
    pub fn parse_line(line: &str) -> Result<Op, String> {
        let mut it = line.split_whitespace();
        let kind = it.next().ok_or("empty op line")?;
        let mut num = |what: &str| -> Result<usize, String> {
            it.next()
                .ok_or(format!("op {kind}: missing {what}"))?
                .parse::<usize>()
                .map_err(|e| format!("op {kind}: bad {what}: {e}"))
        };
        let op = match kind {
            "put" | "am" | "pfg" => {
                let target = num("target")?;
                let slot = num("slot")?;
                let pat = num("pat")? as u8;
                let len = num("len")?;
                match kind {
                    "put" => Op::Put {
                        target,
                        slot,
                        pat,
                        len,
                    },
                    "am" => Op::Am {
                        target,
                        slot,
                        pat,
                        len,
                    },
                    _ => Op::PutFenceGet {
                        target,
                        slot,
                        pat,
                        len,
                    },
                }
            }
            "get" => {
                let target = num("target")?;
                let len = num("len")?;
                Op::Get { target, len }
            }
            "rmw" => Op::Rmw {
                owner: num("owner")?,
            },
            "fence" => Op::Fence {
                target: num("target")?,
            },
            other => return Err(format!("unknown op kind {other:?}")),
        };
        if it.next().is_some() {
            return Err(format!("op {kind}: trailing tokens"));
        }
        Ok(op)
    }
}

/// A complete multi-rank program over the fixed memory layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    pub nodes: usize,
    pub slot_bytes: usize,
    /// `ops[rank]` is rank's straight-line op list.
    pub ops: Vec<Vec<Op>>,
}

impl Program {
    /// Bytes in each of the two write regions (put and AM).
    pub fn region_len(&self) -> usize {
        self.nodes * MAX_SLOTS * self.slot_bytes
    }

    /// Offset of (origin, slot) within a region.
    pub fn slot_off(&self, origin: usize, slot: usize) -> usize {
        (origin * MAX_SLOTS + slot) * self.slot_bytes
    }

    /// Targets `origin` must send a zero-byte *drain token* put to after
    /// resolving its rmw futures (sorted, deduplicated).
    ///
    /// `LAPI_Rmw` carries no counters, so in polling mode a target could
    /// satisfy its tgt wait and stop polling while an rmw aimed at it is
    /// still in flight — a protocol deadlock in the harness, not a
    /// simulator bug. The rmw service happens-before its reply, which
    /// happens-before the origin's drain token, so a target that also
    /// waits for every drain token keeps polling until all rmws against
    /// it are served.
    pub fn drain_targets(&self, origin: usize) -> Vec<usize> {
        let mut t: Vec<usize> = self.ops[origin]
            .iter()
            .filter_map(|op| match op {
                Op::Rmw { owner } => Some(*owner),
                _ => None,
            })
            .collect();
        t.sort_unstable();
        t.dedup();
        t
    }

    /// Expected final value of `rank`'s org counter: one signal per put,
    /// get, amsend, and drain token, two for the put+get of a
    /// `PutFenceGet`.
    pub fn org_expected(&self, rank: usize) -> i64 {
        let ops: i64 = self.ops[rank]
            .iter()
            .map(|op| match op {
                Op::Put { .. } | Op::Get { .. } | Op::Am { .. } => 1,
                Op::PutFenceGet { .. } => 2,
                Op::Rmw { .. } | Op::Fence { .. } => 0,
            })
            .sum();
        ops + self.drain_targets(rank).len() as i64
    }

    /// Expected final value of `rank`'s cmpl counter (target-side
    /// completion of its puts, amsends, and drain tokens).
    pub fn cmpl_expected(&self, rank: usize) -> i64 {
        let ops: i64 = self.ops[rank]
            .iter()
            .map(|op| match op {
                Op::Put { .. } | Op::Am { .. } | Op::PutFenceGet { .. } => 1,
                _ => 0,
            })
            .sum();
        ops + self.drain_targets(rank).len() as i64
    }

    /// Expected final value of `rank`'s tgt counter: one signal per
    /// one-sided op (and drain token) any origin aimed at `rank`.
    pub fn tgt_expected(&self, rank: usize) -> i64 {
        let mut total = 0;
        for (origin, ops) in self.ops.iter().enumerate() {
            for op in ops {
                total += match op {
                    Op::Put { target, .. } | Op::Get { target, .. } | Op::Am { target, .. }
                        if *target == rank =>
                    {
                        1
                    }
                    Op::PutFenceGet { target, .. } if *target == rank => 2,
                    _ => 0,
                };
            }
            if self.drain_targets(origin).contains(&rank) {
                total += 1;
            }
        }
        total
    }

    /// Total fetch-and-add tickets drawn against `owner`'s cell.
    pub fn rmw_total(&self, owner: usize) -> u64 {
        self.ops
            .iter()
            .flatten()
            .filter(|op| matches!(op, Op::Rmw { owner: o } if *o == owner))
            .count() as u64
    }

    /// Total op count across all ranks.
    pub fn total_ops(&self) -> usize {
        self.ops.iter().map(Vec::len).sum()
    }
}

/// Raw generator tuple, decoded by [`decode_ops`]:
/// `(rank_sel, kind_sel, target_sel, pat, len_sel)`.
pub type RawOp = (u8, u8, u8, u8, u16);

/// Decode a flat generated op list into per-rank programs.
///
/// Selectors wrap modulo the valid domain so every raw tuple decodes to
/// *some* legal program — the shrinker can lower fields freely without
/// leaving the input space. Slots are assigned in issue order per
/// (origin, target, region); overflow beyond [`MAX_SLOTS`] decodes to a
/// fence so memory stays schedule-independent.
pub fn decode_ops(nodes: usize, slot_bytes: usize, raw: &[RawOp]) -> Vec<Vec<Op>> {
    let mut ops: Vec<Vec<Op>> = vec![Vec::new(); nodes];
    // (origin, target, is_am) -> next free slot
    let mut slots: BTreeMap<(usize, usize, bool), usize> = BTreeMap::new();
    for &(rank_sel, kind_sel, target_sel, pat, len_sel) in raw {
        let rank = rank_sel as usize % nodes;
        let target = target_sel as usize % nodes;
        let len = len_sel as usize % (slot_bytes + 1);
        let mut slot_for = |is_am: bool| -> Option<usize> {
            let e = slots.entry((rank, target, is_am)).or_insert(0);
            if *e >= MAX_SLOTS {
                return None;
            }
            *e += 1;
            Some(*e - 1)
        };
        // Weighted kinds: puts dominate, as in the paper's workloads.
        let op = match kind_sel % 8 {
            0 | 1 => slot_for(false).map(|slot| Op::Put {
                target,
                slot,
                pat,
                len,
            }),
            2 | 3 => slot_for(true).map(|slot| Op::Am {
                target,
                slot,
                pat,
                len,
            }),
            4 => Some(Op::Get { target, len }),
            5 => Some(Op::Rmw { owner: target }),
            6 => slot_for(false).map(|slot| Op::PutFenceGet {
                target,
                slot,
                pat,
                len,
            }),
            _ => Some(Op::Fence { target }),
        };
        ops[rank].push(op.unwrap_or(Op::Fence { target }));
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_lines_round_trip() {
        let ops = [
            Op::Put {
                target: 2,
                slot: 3,
                pat: 250,
                len: 17,
            },
            Op::Get { target: 0, len: 0 },
            Op::Am {
                target: 1,
                slot: 7,
                pat: 0,
                len: 64,
            },
            Op::Rmw { owner: 3 },
            Op::Fence { target: 1 },
            Op::PutFenceGet {
                target: 0,
                slot: 0,
                pat: 9,
                len: 1,
            },
        ];
        for op in ops {
            assert_eq!(Op::parse_line(&op.to_line()), Ok(op));
        }
        assert!(Op::parse_line("warp 1 2").is_err());
        assert!(Op::parse_line("put 1 2").is_err());
        assert!(Op::parse_line("rmw 1 2").is_err());
    }

    #[test]
    fn decode_assigns_unique_slots_and_respects_cap() {
        // 20 puts from rank 0 to rank 1: first MAX_SLOTS get distinct
        // slots, the overflow decodes to fences.
        let raw: Vec<RawOp> = (0..20).map(|i| (0, 0, 1, i as u8, 8)).collect();
        let ops = decode_ops(2, 16, &raw);
        let puts: Vec<usize> = ops[0]
            .iter()
            .filter_map(|op| match op {
                Op::Put { slot, .. } => Some(*slot),
                _ => None,
            })
            .collect();
        assert_eq!(puts, (0..MAX_SLOTS).collect::<Vec<_>>());
        assert_eq!(
            ops[0].len() - puts.len(),
            20 - MAX_SLOTS,
            "overflow must decode to fences"
        );
        assert!(ops[0][MAX_SLOTS..]
            .iter()
            .all(|op| matches!(op, Op::Fence { target: 1 })));
    }

    #[test]
    fn expected_totals_count_both_sides() {
        let p = Program {
            nodes: 2,
            slot_bytes: 16,
            ops: vec![
                vec![
                    Op::Put {
                        target: 1,
                        slot: 0,
                        pat: 1,
                        len: 4,
                    },
                    Op::Get { target: 1, len: 8 },
                    Op::Rmw { owner: 1 },
                    Op::PutFenceGet {
                        target: 0,
                        slot: 0,
                        pat: 2,
                        len: 4,
                    },
                ],
                vec![Op::Am {
                    target: 0,
                    slot: 0,
                    pat: 3,
                    len: 2,
                }],
            ],
        };
        assert_eq!(p.drain_targets(0), vec![1]); // rank0 rmw'd node 1
        assert_eq!(p.drain_targets(1), Vec::<usize>::new());
        assert_eq!(p.org_expected(0), 5); // put + get + pfg*2 + drain
        assert_eq!(p.cmpl_expected(0), 3); // put + pfg + drain
        assert_eq!(p.tgt_expected(0), 3); // rank1's am + own pfg*2
        assert_eq!(p.tgt_expected(1), 3); // rank0's put + get + drain
        assert_eq!(p.rmw_total(1), 1);
        assert_eq!(p.total_ops(), 5);
    }
}
