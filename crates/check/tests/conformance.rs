//! Oracle-checked schedule/fault exploration (the tentpole lanes).
//!
//! Each property generates random op programs (put/get/amsend/rmw/fence
//! over 2–4 nodes) crossed with fault plans and scheduler tie-break
//! seeds, runs them on the real simulator, and compares the outcome with
//! the sequential oracle. The case budget is small and deterministic for
//! PR CI; the `check-soak` workflow raises it via `CHECK_CASES`.
//!
//! Every failing case is serialized to `target/check-failures/<lane>.case`
//! *before* the assertion fires, and the shrinker re-runs the property on
//! smaller inputs — so the file left behind after a failure is the
//! minimal shrunk counterexample, ready for `cargo run -p check --bin
//! replay`.

use std::path::PathBuf;

use check::case::{decode_case, Case, RawFault, RawKnobs};
use check::program::RawOp;
use check::{canonicalize, run_case, run_crash_case, verdict, verdict_crash};
use proptest::prelude::*;
use spsim::{FaultPlan, VTime};

/// Per-lane case budget: `CHECK_CASES` env override, small by default so
/// the PR gate stays fast and deterministic.
fn budget() -> u32 {
    std::env::var("CHECK_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(12)
}

fn config() -> ProptestConfig {
    ProptestConfig {
        cases: budget(),
        ..ProptestConfig::default()
    }
}

/// Write the candidate counterexample where CI can upload it. Called on
/// every failing iteration, so the last write wins — the shrunk minimum.
fn save_artifact(lane: &str, case: &Case) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .parent()
        .expect("CARGO_TARGET_TMPDIR has a parent")
        .join("check-failures");
    std::fs::create_dir_all(&dir).expect("create target/check-failures");
    let path = dir.join(format!("{lane}.case"));
    std::fs::write(&path, case.serialize()).expect("write failure artifact");
    path
}

fn knobs_strategy() -> impl Strategy<Value = RawKnobs> {
    (
        0u8..6,
        0u64..1_000_000,
        0u8..250,
        0u64..100,
        0u8..255,
        0u8..255,
    )
}

fn ops_strategy() -> impl Strategy<Value = Vec<RawOp>> {
    proptest::collection::vec((0u8..8, 0u8..255, 0u8..8, 0u8..255, 0u16..128), 1..10)
}

fn faults_strategy() -> impl Strategy<Value = Vec<RawFault>> {
    proptest::collection::vec(
        (
            (0u8..4, 0u8..4, 0u8..4),
            (0u8..255, 0u8..255, 0u16..4000, 0u16..3000),
        ),
        0..3,
    )
}

/// Turn a decoded case into a crash case: the highest rank is scheduled
/// dead at a bounded instant and issues nothing (it dies right after the
/// setup collectives); the surviving ranks keep their programs, link
/// faults and all — node crashes must compose with fabric faults.
fn crash_twin(case: &Case, at_us: u16) -> Case {
    let victim = case.nodes - 1;
    let mut c = case.clone();
    c.ops[victim].clear();
    c.plan = c
        .plan
        .clone()
        .with_crash(victim, VTime::from_us(u64::from(at_us)));
    c
}

/// Strip every fault source from a decoded case, keeping the program,
/// seeds, and mode.
fn lossless_twin(case: &Case) -> Case {
    Case {
        drop_prob: 0.0,
        dup_prob: 0.0,
        plan: FaultPlan::new(),
        ..case.clone()
    }
}

proptest! {
    #![proptest_config(config())]

    /// Lane 1: on a clean fabric, every generated program reaches
    /// quiescence and matches the oracle exactly.
    #[test]
    fn lossless_lane_matches_oracle(
        knobs in knobs_strategy(),
        raw_ops in ops_strategy(),
    ) {
        let case = lossless_twin(&decode_case(knobs, &raw_ops, &[]));
        let out = run_case(&case);
        let v = verdict(&case, &out);
        if v.is_err() {
            save_artifact("lossless", &case);
        }
        prop_assert!(v.is_ok(), "oracle disagreement: {v:?}\ntrace tail:\n{}", out.tail);
    }

    /// Lane 2: drops, duplicates, per-link overrides, and black-hole
    /// windows may change timing but never outcomes — the ACK/retransmit
    /// layer must deliver exactly-once semantics the oracle can predict.
    #[test]
    fn faulty_lane_matches_oracle(
        knobs in knobs_strategy(),
        raw_ops in ops_strategy(),
        raw_faults in faults_strategy(),
    ) {
        let case = decode_case(knobs, &raw_ops, &raw_faults);
        let out = run_case(&case);
        let v = verdict(&case, &out);
        if v.is_err() {
            save_artifact("faulty", &case);
        }
        prop_assert!(v.is_ok(), "oracle disagreement: {v:?}\ntrace tail:\n{}", out.tail);
    }

    /// Lane 3 (differential): a lossy run and a lossless run of the same
    /// program must land in canonically identical final states.
    #[test]
    fn lossy_and_lossless_runs_agree(
        knobs in knobs_strategy(),
        raw_ops in ops_strategy(),
        raw_faults in faults_strategy(),
    ) {
        let lossy = decode_case(knobs, &raw_ops, &raw_faults);
        let clean = lossless_twin(&lossy);
        let lossy_out = run_case(&lossy);
        let clean_out = run_case(&clean);
        let (Ok(lo), Ok(co)) = (&lossy_out.obs, &clean_out.obs) else {
            save_artifact("differential", &lossy);
            return Err(TestCaseError::fail(format!(
                "run died: lossy={:?} clean={:?}",
                lossy_out.obs.as_ref().err(),
                clean_out.obs.as_ref().err()
            )));
        };
        if canonicalize(lo) != canonicalize(co) {
            save_artifact("differential", &lossy);
        }
        prop_assert_eq!(
            canonicalize(lo),
            canonicalize(co),
            "lossy and lossless final states diverged"
        );
    }

    /// Lane 4: perturbing same-virtual-time scheduler tie-breaks is
    /// semantics-invariant — any seeded permutation of ready events must
    /// still satisfy the oracle and agree canonically with the
    /// insertion-order schedule.
    #[test]
    fn tiebreak_perturbation_is_semantics_invariant(
        knobs in knobs_strategy(),
        raw_ops in ops_strategy(),
        perturb in 1u64..1_000_000,
    ) {
        let base = Case {
            tiebreak: None,
            ..lossless_twin(&decode_case(knobs, &raw_ops, &[]))
        };
        let perturbed = Case {
            tiebreak: Some(perturb),
            ..base.clone()
        };
        let base_out = run_case(&base);
        let pert_out = run_case(&perturbed);
        let v = verdict(&perturbed, &pert_out);
        if v.is_err() {
            save_artifact("tiebreak", &perturbed);
        }
        prop_assert!(v.is_ok(), "perturbed schedule broke the oracle: {v:?}");
        let (Ok(bo), Ok(po)) = (&base_out.obs, &pert_out.obs) else {
            save_artifact("tiebreak", &perturbed);
            return Err(TestCaseError::fail("base schedule run died"));
        };
        if canonicalize(bo) != canonicalize(po) {
            save_artifact("tiebreak", &perturbed);
        }
        prop_assert_eq!(
            canonicalize(bo),
            canonicalize(po),
            "tie-break permutation changed the final state"
        );
    }

    /// Lane 5 (crash): one node scheduled dead mid-run, composed with the
    /// generated link faults. Survivors must terminate — every op either
    /// completes with full LAPI semantics or returns a structured error —
    /// and match the crash-aware oracle: surviving memory exact, gets
    /// from the corpse withheld, err_hndlr exactly once per death,
    /// `gfence_surviving` over the schedule's survivor set.
    #[test]
    fn crash_lane_matches_oracle(
        knobs in knobs_strategy(),
        raw_ops in ops_strategy(),
        raw_faults in faults_strategy(),
        at_us in 0u16..2_000,
    ) {
        let case = crash_twin(&decode_case(knobs, &raw_ops, &raw_faults), at_us);
        let out = run_crash_case(&case);
        let v = verdict_crash(&case, &out);
        if v.is_err() {
            save_artifact("crash", &case);
        }
        prop_assert!(v.is_ok(), "crash oracle disagreement: {v:?}\ntrace tail:\n{}", out.tail);
    }
}
