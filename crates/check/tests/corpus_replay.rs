//! Regression-corpus replay: every committed case under `tests/corpus/`
//! must parse, run, and satisfy the oracle on every CI run — once a
//! failure is fixed, its shrunk case lands here and can never regress
//! silently.

use std::path::PathBuf;
use std::process::Command;

use check::{is_crash_case, run_case, run_crash_case, verdict, verdict_crash, Case};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn corpus_cases() -> Vec<(String, Case)> {
    let mut cases = Vec::new();
    for entry in std::fs::read_dir(corpus_dir()).expect("tests/corpus must exist") {
        let path = entry.expect("read corpus entry").path();
        if path.extension().is_some_and(|e| e == "case") {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&path).expect("read corpus case");
            let case = Case::parse(&text)
                .unwrap_or_else(|e| panic!("corpus case {name} failed to parse: {e}"));
            cases.push((name, case));
        }
    }
    cases.sort_by(|a, b| a.0.cmp(&b.0));
    cases
}

#[test]
fn every_corpus_case_replays_and_passes() {
    let cases = corpus_cases();
    assert!(
        cases.len() >= 3,
        "corpus shrank to {} cases — did a file get lost?",
        cases.len()
    );
    for (name, case) in &cases {
        // Cases scheduling a node crash run through the crash lane; the
        // healthy interpreter would strand on its full-job barrier.
        let (verdict, tail) = if is_crash_case(case) {
            let out = run_crash_case(case);
            (verdict_crash(case, &out), out.tail)
        } else {
            let out = run_case(case);
            (verdict(case, &out), out.tail)
        };
        assert_eq!(
            verdict,
            Ok(()),
            "corpus case {name} no longer passes\ntrace tail:\n{tail}"
        );
    }
}

#[test]
fn deterministic_corpus_case_replays_byte_identically_via_binary() {
    let path = corpus_dir().join("c01_deterministic_bidi.case");
    let run = || {
        let out = Command::new(env!("CARGO_BIN_EXE_replay"))
            .arg(&path)
            .output()
            .expect("spawn replay binary");
        (
            out.status.code(),
            String::from_utf8_lossy(&out.stdout).into_owned(),
        )
    };
    let (code1, stdout1) = run();
    let (code2, stdout2) = run();
    assert_eq!(code1, Some(0), "corpus case must PASS, got:\n{stdout1}");
    assert_eq!(code2, Some(0));
    assert!(stdout1.contains("verdict: PASS"), "got:\n{stdout1}");
    assert!(
        stdout1.contains("trace tail:"),
        "replay must print the trace tail"
    );
    assert_eq!(
        stdout1, stdout2,
        "replay stdout must be byte-identical run to run"
    );
}
