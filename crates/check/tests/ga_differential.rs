//! GA differential lane: one scripted Global Arrays program executed
//! over the LAPI backend and over the MPL backend, cross-checked
//! element-wise against a dense patch-algebra oracle computed in plain
//! Rust. The backends differ in everything below the GA API (active
//! messages vs request/reply message passing), so agreement here is
//! agreement on semantics, not on implementation accident.
//!
//! Runs under whatever `SPSIM_FAULT_PROFILE` the CI matrix selects, so
//! the lossy profile exercises the differential under faults too.

use std::sync::Arc;

use ga::{Distribution, Ga, GaBackend, GaConfig, GaKind, LapiGaBackend, MplGaBackend, Patch};
use lapi::{LapiWorld, Mode};
use mpl::{MplMode, MplWorld};
use spsim::{run_spmd_with, MachineConfig};

const N: usize = 4;
const ROWS: usize = 8;
const COLS: usize = 8;
/// read_inc tickets drawn per rank.
const K: usize = 6;

/// What one rank reports back: its full-array snapshot, its read_inc
/// tickets, and the final counter value it saw.
type Report = (Vec<f64>, Vec<i64>, i64);

fn col_major(patch: &Patch, f: impl Fn(usize, usize) -> f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(patch.elems());
    for j in patch.lo.1..=patch.hi.1 {
        for i in patch.lo.0..=patch.hi.0 {
            out.push(f(i, j));
        }
    }
    out
}

/// Value origin `r` puts at (i, j) of its peer's block.
fn put_val(r: usize, i: usize, j: usize) -> f64 {
    ((r + 1) * 1000 + i * 10 + j) as f64
}

/// The scripted program: fill, disjoint cross-rank puts, a commutative
/// all-ranks acc, and a burst of read_inc tickets.
fn script(rank: usize, ga: &Ga) -> Report {
    let a = ga.create("diff", ROWS, COLS, GaKind::Double);
    let c = ga.create("tick", 1, 1, GaKind::Int);
    a.fill(1.0);
    c.fill_int(0);
    ga.sync();

    // Each rank overwrites the block owned by the next rank — a
    // bijection, so the puts are disjoint and the outcome confluent.
    let peer = (rank + 1) % N;
    let block = a.distribution(peer).expect("every task owns a block");
    a.put(block, &col_major(&block, |i, j| put_val(rank, i, j)));
    ga.fence_all();
    ga.sync();

    // Commutative accumulate over the full array from every rank.
    let full = a.full_patch();
    a.acc(full, 1.0, &vec![(rank + 1) as f64; full.elems()]);
    ga.sync();

    let tickets: Vec<i64> = (0..K).map(|_| c.read_inc(0, 0, 1)).collect();
    ga.sync();

    let snapshot = a.get(full);
    let total = c.get_int(Patch::new((0, 0), (0, 0)))[0];
    // Collective exit, as GA_Terminate demands: a rank that returns drops
    // its context, which stops its dispatcher — without this barrier a
    // fast rank stops serving get requests that slower peers still have
    // in flight toward it, and those peers deadlock on their reply
    // counter.
    ga.sync();
    (snapshot, tickets, total)
}

/// The dense oracle: what `script` must leave behind, computed from the
/// same block distribution the runtime uses — no simulator involved.
fn oracle_snapshot() -> Vec<f64> {
    let dist = Distribution::new(ROWS, COLS, N);
    let acc_sum: f64 = (0..N).map(|r| (r + 1) as f64).sum();
    col_major(&Patch::new((0, 0), (ROWS - 1, COLS - 1)), |i, j| {
        // The origin that put into (i, j) is the one whose peer owns it.
        let origin = (dist.locate(i, j) + N - 1) % N;
        put_val(origin, i, j) + acc_sum
    })
}

fn check_reports(backend: &str, reports: &[Report], oracle: &[f64]) {
    for (rank, (snapshot, _, total)) in reports.iter().enumerate() {
        assert_eq!(
            snapshot, oracle,
            "{backend}: rank {rank} snapshot diverged from the dense oracle"
        );
        assert_eq!(
            *total,
            (N * K) as i64,
            "{backend}: rank {rank} saw wrong final ticket count"
        );
    }
    let mut tickets: Vec<i64> = reports.iter().flat_map(|r| r.1.iter().copied()).collect();
    tickets.sort_unstable();
    assert_eq!(
        tickets,
        (0..(N * K) as i64).collect::<Vec<_>>(),
        "{backend}: read_inc tickets are not the permutation 0..{}",
        N * K
    );
}

#[test]
fn ga_over_lapi_and_ga_over_mpl_agree_with_dense_oracle() {
    let lapi_gas: Vec<Ga> = LapiWorld::init(N, MachineConfig::default(), Mode::Interrupt)
        .into_iter()
        .map(|ctx| Ga::new(LapiGaBackend::new(ctx, GaConfig::default()) as Arc<dyn GaBackend>))
        .collect();
    let lapi_reports = run_spmd_with(lapi_gas, |rank, ga| script(rank, &ga));

    let mpl_gas: Vec<Ga> = MplWorld::init(N, MachineConfig::default(), MplMode::Interrupt)
        .into_iter()
        .map(|ctx| Ga::new(MplGaBackend::new(ctx) as Arc<dyn GaBackend>))
        .collect();
    let mpl_reports = run_spmd_with(mpl_gas, |rank, ga| script(rank, &ga));

    // Element-wise agreement with the dense oracle on both backends...
    let oracle = oracle_snapshot();
    check_reports("lapi", &lapi_reports, &oracle);
    check_reports("mpl", &mpl_reports, &oracle);
    // ...and with each other (snapshots and totals; ticket *winners* may
    // legitimately differ, the permutation check above covers them).
    for (rank, (l, m)) in lapi_reports.iter().zip(&mpl_reports).enumerate() {
        assert_eq!(l.0, m.0, "rank {rank}: backends disagree on final array");
        assert_eq!(l.2, m.2, "rank {rank}: backends disagree on ticket total");
    }
}
