//! Crash-aware conformance lane: the oracle knows the crash schedule
//! from the case's fault plan and checks exactly what a node crash
//! leaves observable (see `check::oracle::check_crash`).
//!
//! The lane's contract, end to end:
//!
//! * **Termination** — a crash run never hangs: every op either
//!   completes or returns a structured error, every blocked waiter is
//!   credited by peer-death unwinding, and the run ends in
//!   `gfence_surviving` over the survivor set. A hang would trip the
//!   real-time escape and fail the verdict as a panic.
//! * **Observability restriction** — survivors must agree with the
//!   sequential oracle on everything a crash leaves observable (memory
//!   written by surviving flows, gets from surviving wells, rmw tickets
//!   against surviving owners) and must *withhold* what it does not
//!   (bytes "fetched" from a dead target).
//! * **Exactly-once reporting** — each survivor's `err_hndlr` fires
//!   once per scheduled death, with no spurious fires.
//! * **Replayability** — a crash case scheduled at `VTime::ZERO` inside
//!   the 2-node polling envelope replays byte-identically, so a shrunk
//!   crash counterexample is a durable artifact.

use check::{is_crash_case, run_crash_case, verdict_crash, Case, Op};
use spsim::{FaultPlan, VTime};

/// Three nodes, node 2 scheduled to crash mid-run: survivors 0 and 1
/// exercise every op kind against each other *and* against the dead
/// node, including the rmw and fence paths.
fn mid_run_crash_case() -> Case {
    Case {
        nodes: 3,
        seed: 23,
        tiebreak: None,
        interrupt_mode: false,
        slot_bytes: 16,
        drop_prob: 0.0,
        dup_prob: 0.0,
        plan: FaultPlan::new().with_crash(2, VTime::from_us(100)),
        escape_ms: 20_000,
        mutant: None,
        ops: vec![
            vec![
                Op::Put {
                    target: 1,
                    slot: 0,
                    pat: 3,
                    len: 12,
                },
                Op::Put {
                    target: 2,
                    slot: 0,
                    pat: 4,
                    len: 8,
                },
                Op::Get { target: 1, len: 7 },
                Op::Get { target: 2, len: 5 },
                Op::Rmw { owner: 1 },
                Op::Rmw { owner: 2 },
                Op::PutFenceGet {
                    target: 1,
                    slot: 1,
                    pat: 8,
                    len: 16,
                },
                Op::Fence { target: 2 },
            ],
            vec![
                Op::Put {
                    target: 0,
                    slot: 0,
                    pat: 5,
                    len: 10,
                },
                Op::Am {
                    target: 0,
                    slot: 0,
                    pat: 6,
                    len: 9,
                },
                Op::Get { target: 2, len: 3 },
                Op::Rmw { owner: 0 },
                Op::Put {
                    target: 2,
                    slot: 0,
                    pat: 7,
                    len: 4,
                },
            ],
            vec![],
        ],
    }
}

#[test]
fn mid_run_crash_terminates_and_matches_the_crash_oracle() {
    let case = mid_run_crash_case();
    assert!(is_crash_case(&case));
    let out = run_crash_case(&case);
    assert_eq!(
        verdict_crash(&case, &out),
        Ok(()),
        "trace tail:\n{}",
        out.tail
    );
    let obs = out.obs.unwrap();
    assert!(obs[2].crashed, "rank 2 must report its crash");
    for rank in [0usize, 1] {
        assert!(
            obs[rank].op_errors > 0,
            "rank {rank} aimed ops at the dead node — some must have errored"
        );
        assert_eq!(
            obs[rank].death_fires,
            vec![(2, 1)],
            "rank {rank}: exactly one err_hndlr fire, for peer 2"
        );
        assert_eq!(obs[rank].survivors_seen, vec![0, 1]);
    }
    // The gets aimed at the dead node (one per survivor) are withheld;
    // the rest carry bytes. check_crash verified their contents already.
    assert_eq!(obs[0].gets.iter().filter(|g| g.is_none()).count(), 1);
    assert_eq!(obs[1].gets.iter().filter(|g| g.is_none()).count(), 1);
}

#[test]
fn crash_lane_survives_interrupt_mode_too() {
    let case = Case {
        interrupt_mode: true,
        seed: 24,
        ..mid_run_crash_case()
    };
    let out = run_crash_case(&case);
    assert_eq!(
        verdict_crash(&case, &out),
        Ok(()),
        "trace tail:\n{}",
        out.tail
    );
}

/// Inside the byte-stability envelope of `CrashRunOutcome::digest`:
/// 2 nodes, polling mode, no AM ops, no self-targeted ops, and the
/// crash scheduled at `VTime::ZERO` so every packet toward the dead
/// node is black-holed at the fabric from the survivor's own thread —
/// no real-time race against the victim's teardown.
fn crash_at_zero_case() -> Case {
    Case {
        nodes: 2,
        seed: 31,
        tiebreak: None,
        interrupt_mode: false,
        slot_bytes: 16,
        drop_prob: 0.0,
        dup_prob: 0.0,
        plan: FaultPlan::new().with_crash(1, VTime::ZERO),
        escape_ms: 20_000,
        mutant: None,
        ops: vec![
            vec![
                Op::Put {
                    target: 1,
                    slot: 0,
                    pat: 3,
                    len: 12,
                },
                Op::Get { target: 1, len: 7 },
                Op::Rmw { owner: 1 },
                Op::Fence { target: 1 },
            ],
            vec![],
        ],
    }
}

#[test]
fn same_seed_crash_runs_replay_byte_identically() {
    let case = crash_at_zero_case();
    let a = run_crash_case(&case);
    let b = run_crash_case(&case);
    assert_eq!(verdict_crash(&case, &a), Ok(()), "trace tail:\n{}", a.tail);
    assert_eq!(
        a.digest, b.digest,
        "same crash case must replay byte-identically"
    );
    assert_eq!(a.events, b.events);
    assert_eq!(a.tail, b.tail);
}

#[test]
fn every_op_toward_the_dead_node_errors_none_hang() {
    let case = crash_at_zero_case();
    let out = run_crash_case(&case);
    let obs = out.obs.expect("crash-at-zero run must terminate");
    // Rank 0's whole program is aimed at the dead node: put + get + rmw
    // + fence all error, plus at least one death-forcing probe.
    assert!(obs[0].op_errors >= 5, "op_errors = {}", obs[0].op_errors);
    assert_eq!(obs[0].gets, vec![None]);
    assert_eq!(obs[0].residues, [0, 0, 0]);
    assert_eq!(obs[0].rmw_cell, 0, "no surviving rmw ticket was drawn");
}

#[test]
fn crash_cases_round_trip_through_the_case_format() {
    let case = mid_run_crash_case();
    let text = case.serialize();
    assert!(text.contains("fault crash 2 100000"), "got:\n{text}");
    let parsed = Case::parse(&text).expect("crash case must parse");
    assert_eq!(parsed, case);
    assert!(is_crash_case(&parsed));
}
