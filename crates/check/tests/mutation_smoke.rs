//! Mutation smoke: the harness must *catch its own seeded bugs*.
//!
//! Three mutants (a skipped counter decrement, a dedup cursor off by
//! one, a dropped retransmit timer) are armed one at a time under a
//! fault profile that exposes them, and the oracle must flag a failure
//! within a bounded seed budget. The failing case is serialized and
//! re-executed through the `replay` binary; for the mutant whose case
//! sits inside the deterministic envelope the two replay runs must
//! produce byte-identical stdout.

use std::path::PathBuf;
use std::process::Command;

use check::{run_case, verdict, Case, Op};
use spsim::{FaultPlan, Mutant};

/// Seeds tried per mutant before declaring it missed.
const SEED_BUDGET: u64 = 8;

/// The deterministic-envelope exercise program: 2 nodes, polling mode,
/// no AMs, no self-targets — puts, gets, remote rmws, and a fenced
/// put/get witness in both directions.
fn base_case(seed: u64) -> Case {
    Case {
        nodes: 2,
        seed,
        tiebreak: None,
        interrupt_mode: false,
        slot_bytes: 16,
        drop_prob: 0.0,
        dup_prob: 0.0,
        plan: FaultPlan::new(),
        escape_ms: 20_000,
        mutant: None,
        ops: vec![
            vec![
                Op::Put {
                    target: 1,
                    slot: 0,
                    pat: 3,
                    len: 12,
                },
                Op::Get { target: 1, len: 7 },
                Op::Rmw { owner: 1 },
                Op::PutFenceGet {
                    target: 1,
                    slot: 1,
                    pat: 8,
                    len: 16,
                },
            ],
            vec![
                Op::Put {
                    target: 0,
                    slot: 0,
                    pat: 5,
                    len: 10,
                },
                Op::Rmw { owner: 0 },
            ],
        ],
    }
}

/// The fault profile that gives each mutant something to corrupt: the
/// dedup mutant needs duplicates, the retransmit mutant needs losses
/// (with a short escape, since its symptom is a simulated deadlock),
/// and the counter mutant shows up on a clean fabric.
fn armed_case(mutant: Mutant, seed: u64) -> Case {
    let mut case = base_case(seed);
    case.mutant = Some(mutant);
    match mutant {
        Mutant::SkipCounterDecrement => {}
        Mutant::DedupCursorOffByOne => {
            case.drop_prob = 0.05;
            case.dup_prob = 0.35;
        }
        Mutant::DropRetransmitTimer => {
            case.drop_prob = 0.25;
            case.escape_ms = 1_500;
        }
    }
    case
}

/// Hunt for a seed on which the armed mutant is caught; panics past the
/// budget. Returns the caught case and the verdict text.
fn hunt(mutant: Mutant) -> (Case, String) {
    for seed in 0..SEED_BUDGET {
        let case = armed_case(mutant, seed);
        let out = run_case(&case);
        if let Err(msg) = verdict(&case, &out) {
            return (case, msg);
        }
    }
    panic!(
        "mutant {} survived {SEED_BUDGET} seeds — the oracle has a blind spot",
        mutant.name()
    );
}

fn artifact_path(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .parent()
        .expect("CARGO_TARGET_TMPDIR has a parent")
        .join("check-failures");
    std::fs::create_dir_all(&dir).expect("create target/check-failures");
    dir.join(format!("{name}.case"))
}

/// Run the replay binary on a case file, returning (exit_code, stdout).
fn replay(path: &PathBuf) -> (Option<i32>, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_replay"))
        .arg(path)
        .output()
        .expect("spawn replay binary");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn all_three_mutants_are_caught_and_disarmed_twins_pass() {
    for mutant in Mutant::ALL {
        let (case, msg) = hunt(mutant);
        // The disarmed twin of the very same case must pass: the oracle
        // is reacting to the seeded bug, not to the fault profile.
        let mut twin = case.clone();
        twin.mutant = None;
        twin.escape_ms = 20_000;
        let twin_out = run_case(&twin);
        assert_eq!(
            verdict(&twin, &twin_out),
            Ok(()),
            "disarmed twin of {} failed — catch was profile noise",
            mutant.name()
        );
        // Serialize the caught case and reproduce the catch via the
        // replay binary: nonzero exit, FAIL verdict on stdout.
        let path = artifact_path(&format!("mutation-{}", mutant.name()));
        std::fs::write(&path, case.serialize()).expect("write mutant artifact");
        let (code, stdout) = replay(&path);
        assert_eq!(code, Some(1), "replay of {} must exit 1", mutant.name());
        assert!(
            stdout.contains("verdict: FAIL"),
            "replay of {} must print a FAIL verdict, got:\n{stdout}",
            mutant.name()
        );
        eprintln!(
            "caught {} ({msg}); artifact at {}",
            mutant.name(),
            path.display()
        );
    }
}

#[test]
fn skip_counter_replay_is_byte_identical() {
    // The counter mutant is caught on a clean fabric inside the
    // deterministic envelope, so its replay must be byte-stable — the
    // property that makes a shrunk counterexample a durable artifact.
    let case = armed_case(Mutant::SkipCounterDecrement, 1);
    let out = run_case(&case);
    assert!(
        verdict(&case, &out).is_err(),
        "skip-counter-decrement must be caught on any seed"
    );
    let path = artifact_path("mutation-skip-replay");
    std::fs::write(&path, case.serialize()).expect("write artifact");
    let (code1, stdout1) = replay(&path);
    let (code2, stdout2) = replay(&path);
    assert_eq!(code1, Some(1));
    assert_eq!(code2, Some(1));
    assert!(stdout1.contains("verdict: FAIL"), "got:\n{stdout1}");
    assert_eq!(
        stdout1, stdout2,
        "replay stdout must be byte-identical run to run"
    );
}
