//! MPL wire formats (16-byte packet headers on the wire).

/// Per-source message sequence number: MPL restores in-order, non-overtaking
/// delivery on top of the reordering switch by sequencing every message.
pub type Seq = u64;

/// Message tag.
pub type Tag = i32;

/// Body of one MPL packet.
#[derive(Debug, Clone)]
pub enum MplBody {
    /// An eager-protocol fragment. Every fragment repeats the envelope
    /// (tag, total length) so matching can begin with whichever fragment
    /// arrives first.
    Eager {
        /// Per-source message sequence number.
        seq: Seq,
        /// Message tag.
        tag: Tag,
        /// Total message length.
        total_len: usize,
        /// Fragment offset.
        offset: usize,
        /// Fragment payload.
        data: Vec<u8>,
    },
    /// Rendezvous request-to-send: the envelope only.
    Rts {
        /// Per-source message sequence number.
        seq: Seq,
        /// Message tag.
        tag: Tag,
        /// Total message length.
        total_len: usize,
    },
    /// Clear-to-send: the receiver has a matching receive and buffer space.
    Cts {
        /// Sequence of the send being cleared.
        seq: Seq,
    },
    /// Rendezvous data fragment (flows only after a `Cts`).
    RndvData {
        /// Sequence of the cleared send.
        seq: Seq,
        /// Fragment offset.
        offset: usize,
        /// Total message length.
        total_len: usize,
        /// Fragment payload.
        data: Vec<u8>,
    },
}

impl MplBody {
    /// Payload bytes carried (for wire sizing).
    pub fn payload_len(&self) -> usize {
        match self {
            MplBody::Eager { data, .. } | MplBody::RndvData { data, .. } => data.len(),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_sizing() {
        assert_eq!(
            MplBody::Eager {
                seq: 0,
                tag: 1,
                total_len: 10,
                offset: 0,
                data: vec![0; 10]
            }
            .payload_len(),
            10
        );
        assert_eq!(
            MplBody::Rts {
                seq: 0,
                tag: 0,
                total_len: 99
            }
            .payload_len(),
            0
        );
        assert_eq!(MplBody::Cts { seq: 0 }.payload_len(), 0);
    }
}
