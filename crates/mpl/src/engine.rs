//! The MPL matching engine: eager/rendezvous protocols, tag matching,
//! non-overtaking delivery, and `rcvncall` dispatch.
//!
//! Like the LAPI engine, one `MplEngine` exists per node and is shared by
//! the application thread (which drives progress from inside blocking calls
//! in polling mode) and a dispatcher thread (interrupt mode / `rcvncall`).
//! All CPU costs are charged to the node's single virtual clock.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use spsim::SimCondvar;
use spsim::{trace, MachineConfig, NodeId, OrDiag, Stamped, StatCounter, VClock, VTime};
use spswitch::{Adapter, SendReceipt, WirePacket};

use crate::context::{MplHandlerCtx, MplMode, Status};
use crate::wire::{MplBody, Seq, Tag};

/// How long polling waits spin on real time per step.
const POLL_TICK: Duration = Duration::from_millis(2);
/// How often the parked dispatcher re-checks mode/termination.
const DISPATCH_TICK: Duration = Duration::from_millis(10);

/// Protocol statistics.
#[derive(Clone, Debug, Default)]
pub struct MplStats {
    /// Messages sent.
    pub sends: StatCounter,
    /// Receives completed.
    pub recvs: StatCounter,
    /// Messages that used the eager protocol.
    pub eager_msgs: StatCounter,
    /// Messages that used the rendezvous protocol.
    pub rndv_msgs: StatCounter,
    /// Messages that arrived before a matching receive was posted
    /// (buffered, paying the receive-side copy).
    pub unexpected: StatCounter,
    /// `rcvncall` handler invocations (each pays the AIX context cost).
    pub rcvncall_invocations: StatCounter,
    /// Packets processed.
    pub packets: StatCounter,
}

/// A `rcvncall` handler: invoked with the completed message.
pub type RcvncallFn = Arc<dyn Fn(&MplHandlerCtx<'_>, Vec<u8>, Status) + Send + Sync>;

/// Completion state of one receive.
pub(crate) struct RecvState {
    st: Mutex<RecvInner>,
    cv: SimCondvar,
}

struct RecvInner {
    buf: Vec<u8>,
    done: bool,
    done_at: VTime,
    status: Status,
}

impl RecvState {
    fn new() -> Arc<Self> {
        Arc::new(RecvState {
            st: Mutex::new(RecvInner {
                buf: Vec::new(),
                done: false,
                done_at: VTime::ZERO,
                status: Status {
                    src: 0,
                    tag: 0,
                    len: 0,
                },
            }),
            cv: SimCondvar::new(),
        })
    }

    pub(crate) fn is_done(&self) -> bool {
        self.st.lock().done
    }

    pub(crate) fn take_if_done(&self, clock: &VClock) -> Option<(Vec<u8>, Status)> {
        let mut st = self.st.lock();
        if st.done {
            clock.merge(st.done_at);
            Some((std::mem::take(&mut st.buf), st.status))
        } else {
            None
        }
    }

    pub(crate) fn wait_done(&self, clock: &VClock, escape: Duration) -> (Vec<u8>, Status) {
        let mut st = self.st.lock();
        let deadline = Instant::now() + escape;
        // liveness: the dispatcher thread sets st.done and notifies the
        // cv when the last fragment lands; wait_until escapes past the
        // real-time deadline into the diagnostic panic below.
        while !st.done {
            if self.cv.wait_until(&mut st, deadline).timed_out() {
                panic!(
                    "MPL receive never completed — simulated deadlock \
                     (no matching send, or the sender stopped making progress?)\n{}",
                    trace::tail_report(trace::REPORT_TAIL)
                );
            }
        }
        clock.merge(st.done_at);
        (std::mem::take(&mut st.buf), st.status)
    }
}

/// Completion state of one send (buffer-reusable semantics).
pub(crate) struct SendState {
    st: Mutex<(bool, VTime)>,
    cv: SimCondvar,
}

impl SendState {
    fn new() -> Arc<Self> {
        Arc::new(SendState {
            st: Mutex::new((false, VTime::ZERO)),
            cv: SimCondvar::new(),
        })
    }

    fn complete(&self, at: VTime) {
        let mut st = self.st.lock();
        st.0 = true;
        st.1 = st.1.max(at);
        drop(st);
        self.cv.notify_all();
    }

    pub(crate) fn merge_if_done(&self, clock: &VClock) -> bool {
        let st = self.st.lock();
        if st.0 {
            clock.merge(st.1);
            true
        } else {
            false
        }
    }

    pub(crate) fn wait_done(&self, clock: &VClock, escape: Duration) {
        let mut st = self.st.lock();
        let deadline = Instant::now() + escape;
        // liveness: the dispatcher thread marks the send complete (CTS
        // arrival / final ack) and notifies the cv; wait_until escapes
        // past the real-time deadline into the diagnostic panic below.
        while !st.0 {
            if self.cv.wait_until(&mut st, deadline).timed_out() {
                panic!(
                    "MPL send never completed (no CTS?) — simulated deadlock \
                     (rendezvous needs the receiver to post and make progress)\n{}",
                    trace::tail_report(trace::REPORT_TAIL)
                );
            }
        }
        clock.merge(st.1);
    }
}

/// A deferred `rcvncall` invocation, executed outside the state lock.
struct HandlerFire {
    h: RcvncallFn,
    buf: Vec<u8>,
    status: Status,
}

/// A posted receive (or a persistent `rcvncall` registration).
struct Posted {
    src: Option<NodeId>,
    tag: Option<Tag>,
    state: Arc<RecvState>,
    handler: Option<RcvncallFn>,
}

/// One inbound message being matched/assembled.
struct InMsg {
    tag: Tag,
    total: usize,
    rndv: bool,
    received: usize,
    /// Fragments seen so far (a zero-length message still has one empty
    /// fragment; completion requires at least one).
    frags_seen: usize,
    /// Fragments buffered before the message was matched.
    frags: Vec<(usize, Vec<u8>)>,
    /// Set at match time.
    dest: Option<MatchedDest>,
}

struct MatchedDest {
    state: Arc<RecvState>,
    handler: Option<RcvncallFn>,
}

/// Inbound stream from one source (seq-ordered).
///
/// Non-overtaking delivery requires that a message's envelope only become
/// *visible for matching* once every lower-sequence message from the same
/// source has been seen — otherwise a late first message could be
/// overtaken by a second one that happened to arrive first. `contig`
/// tracks the first sequence number not yet seen; only `seq < contig`
/// envelopes may match.
#[derive(Default)]
struct StreamIn {
    msgs: BTreeMap<Seq, InMsg>,
    /// First sequence number whose envelope has NOT yet been seen.
    contig: Seq,
    /// Envelopes seen out of order (≥ `contig`).
    seen: BTreeSet<Seq>,
}

impl StreamIn {
    /// Record that `seq`'s envelope has arrived; advance the contiguous
    /// prefix.
    fn note_seen(&mut self, seq: Seq) {
        if seq >= self.contig {
            self.seen.insert(seq);
            while self.seen.remove(&self.contig) {
                self.contig += 1;
            }
        }
    }

    /// May `seq` participate in matching yet?
    fn visible(&self, seq: Seq) -> bool {
        seq < self.contig
    }
}

/// A rendezvous send parked until its CTS.
struct RndvSend {
    data: Vec<u8>,
    state: Arc<SendState>,
}

struct MatchState {
    posted: VecDeque<Posted>,
    streams: Vec<StreamIn>,
    send_seq: Vec<Seq>,
    // BTreeMap, not HashMap: parked sends are iterated by diagnostics and
    // the map lives on the trace-sensitive matching path (lint rule L2).
    rndv_sends: BTreeMap<(NodeId, Seq), RndvSend>,
}

/// Per-node MPL machinery.
pub(crate) struct MplEngine {
    adapter: Adapter<MplBody>,
    state: Mutex<MatchState>,
    mode: Mutex<MplMode>,
    mode_cv: SimCondvar,
    pub(crate) stats: MplStats,
    pub(crate) escape: Duration,
    terminated: AtomicBool,
}

impl MplEngine {
    pub(crate) fn new(adapter: Adapter<MplBody>, mode: MplMode, escape: Duration) -> Arc<Self> {
        let n = adapter.nodes();
        Arc::new(MplEngine {
            adapter,
            state: Mutex::new(MatchState {
                posted: VecDeque::new(),
                streams: (0..n).map(|_| StreamIn::default()).collect(),
                send_seq: vec![0; n],
                rndv_sends: BTreeMap::new(),
            }),
            mode: Mutex::new(mode),
            mode_cv: SimCondvar::new(),
            stats: MplStats::default(),
            escape,
            terminated: AtomicBool::new(false),
        })
    }

    pub(crate) fn id(&self) -> NodeId {
        self.adapter.id()
    }

    pub(crate) fn tasks(&self) -> usize {
        self.adapter.nodes()
    }

    pub(crate) fn clock(&self) -> &VClock {
        self.adapter.clock()
    }

    pub(crate) fn config(&self) -> &MachineConfig {
        self.adapter.config()
    }

    pub(crate) fn adapter(&self) -> &Adapter<MplBody> {
        &self.adapter
    }

    pub(crate) fn mode(&self) -> MplMode {
        *self.mode.lock()
    }

    pub(crate) fn set_mode(&self, m: MplMode) {
        *self.mode.lock() = m;
        self.mode_cv.notify_all();
    }

    pub(crate) fn is_terminated(&self) -> bool {
        self.terminated.load(Ordering::Acquire)
    }

    /// Emit a trace event on this node's timeline at the current virtual
    /// time. One relaxed atomic load when tracing is disabled.
    #[inline]
    fn tr(&self, kind: trace::EventKind, detail: &'static str, msg_id: u64, bytes: usize) {
        trace::emit(self.id(), self.clock().now(), kind, detail, msg_id, bytes);
    }

    /// Diagnostic snapshot for the real-time escape hatches: matching-state
    /// depths plus the merged trace tail when tracing is enabled.
    pub(crate) fn deadlock_report(&self, what: &str) -> String {
        let st = self.state.lock();
        let pending: Vec<(NodeId, usize, Seq)> = st
            .streams
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.msgs.is_empty())
            .map(|(src, s)| (src, s.msgs.len(), s.contig))
            .collect();
        let report = format!(
            "node {} ({:?} mode): {what}\n\
             posted receives: {} unmatched inbound (src, msgs, contig): {pending:?}\n\
             parked rendezvous sends: {} rx-queue depth: {} clock: {}ns\n{}",
            self.id(),
            self.mode(),
            st.posted.len(),
            st.rndv_sends.len(),
            self.adapter.rx().len(),
            self.clock().now().as_ns(),
            trace::tail_report(trace::REPORT_TAIL)
        );
        drop(st);
        report
    }

    // ----------------------------------------------------------- sending

    /// Inject one packet through the adapter's reliability protocol. MPL
    /// has no error-return surface (the library guarantees reliable
    /// in-order delivery), so an exhausted retransmission budget — a dead
    /// link outliving the retry bound — is fatal, with the adapter's flow
    /// and trace diagnostics attached.
    fn wire_send(&self, dst: NodeId, wire_bytes: usize, body: MplBody) -> SendReceipt {
        self.adapter
            .try_send_at(self.clock().now(), dst, wire_bytes, body)
            .unwrap_or_else(|e| {
                spsim::sim_panic!(
                    "node {}: MPL cannot honour its delivery guarantee: {e}",
                    self.id()
                )
            })
    }

    /// Send `data` to `dst` with `tag`; returns the completion state
    /// (already complete for eager sends — buffer was copied out).
    pub(crate) fn isend(&self, dst: NodeId, tag: Tag, data: &[u8]) -> Arc<SendState> {
        assert!(
            dst < self.tasks(),
            "MPL send: destination {dst} out of range"
        );
        self.stats.sends.incr();
        let cfg = self.config();
        let clock = self.clock();
        let seq = {
            let mut st = self.state.lock();
            let s = st.send_seq[dst];
            st.send_seq[dst] += 1;
            s
        };
        let state = SendState::new();
        clock.advance(cfg.mpl_send_issue);
        self.tr(trace::EventKind::Issue, "send", seq, data.len());
        if data.len() <= cfg.mpl_eager_limit {
            // Eager: copy into protocol buffers (the extra copy), inject,
            // and the user buffer is immediately reusable.
            self.stats.eager_msgs.incr();
            clock.advance(cfg.memcpy_time(data.len()));
            self.tr(trace::EventKind::EagerCopy, "eager", seq, data.len());
            self.inject_fragments(dst, data, |offset, chunk| MplBody::Eager {
                seq,
                tag,
                total_len: data.len(),
                offset,
                data: chunk.to_vec(),
            });
            state.complete(clock.now());
        } else {
            // Rendezvous: ship the envelope, park the data until the CTS.
            self.stats.rndv_msgs.incr();
            self.tr(trace::EventKind::Rts, "rndv", seq, data.len());
            self.state.lock().rndv_sends.insert(
                (dst, seq),
                RndvSend {
                    data: data.to_vec(),
                    state: Arc::clone(&state),
                },
            );
            self.wire_send(
                dst,
                cfg.mpl_header_bytes,
                MplBody::Rts {
                    seq,
                    tag,
                    total_len: data.len(),
                },
            );
        }
        state
    }

    /// Fragment a buffer onto the wire (16-byte headers) with one batched
    /// link reservation for the whole message. Returns the time the last
    /// fragment finished injecting (when the source buffer has been fully
    /// read by the adapter).
    fn inject_fragments(
        &self,
        dst: NodeId,
        data: &[u8],
        mk: impl Fn(usize, &[u8]) -> MplBody,
    ) -> VTime {
        let cfg = self.config();
        let clock = self.clock();
        let cap = cfg.payload_per_packet(cfg.mpl_header_bytes);
        let mut frags = Vec::with_capacity(data.len() / cap + 1);
        let mut offset = 0usize;
        loop {
            let end = (offset + cap).min(data.len());
            frags.push((
                cfg.mpl_header_bytes + (end - offset),
                mk(offset, &data[offset..end]),
            ));
            offset = end;
            if offset >= data.len() {
                break;
            }
        }
        let k = frags.len();
        let receipts = self
            .adapter
            .try_send_batch_at(clock.now(), cfg.lapi_pkt_issue, dst, frags)
            .unwrap_or_else(|e| {
                spsim::sim_panic!(
                    "node {}: MPL cannot honour its delivery guarantee: {e}",
                    self.id()
                )
            });
        // Charge the same per-fragment issue gap the one-at-a-time loop did.
        if k > 1 {
            clock.advance(cfg.lapi_pkt_issue * (k as u64 - 1));
        }
        receipts
            .last()
            .map(|r| r.injected_at)
            .unwrap_or_else(|| clock.now())
    }

    // ---------------------------------------------------------- receiving

    /// Post a receive (optionally with a `rcvncall` handler); returns its
    /// completion state. Matching against already-buffered messages happens
    /// immediately.
    pub(crate) fn post_recv(
        &self,
        src: Option<NodeId>,
        tag: Option<Tag>,
        handler: Option<RcvncallFn>,
    ) -> Arc<RecvState> {
        let state = RecvState::new();
        let posted = Posted {
            src,
            tag,
            state: Arc::clone(&state),
            handler,
        };
        let mut fires = Vec::new();
        let mut st = self.state.lock();
        self.post_locked(&mut st, posted, &mut fires);
        drop(st);
        self.run_handlers(fires);
        state
    }

    /// Post under the state lock: match against an already-arrived
    /// (unexpected) message — lowest sequence number first per source,
    /// sources in id order — or queue the receive.
    fn post_locked(&self, st: &mut MatchState, posted: Posted, fires: &mut Vec<HandlerFire>) {
        let mut found: Option<(NodeId, Seq)> = None;
        'outer: for (s, stream) in st.streams.iter().enumerate() {
            if let Some(want) = posted.src {
                if want != s {
                    continue;
                }
            }
            for (&seq, msg) in &stream.msgs {
                if stream.visible(seq)
                    && msg.dest.is_none()
                    && posted.tag.map(|t| t == msg.tag).unwrap_or(true)
                {
                    found = Some((s, seq));
                    break 'outer;
                }
            }
        }
        match found {
            Some((s, seq)) => {
                self.stats.unexpected.incr();
                self.match_msg(st, s, seq, posted, fires);
            }
            None => st.posted.push_back(posted),
        }
    }

    /// Bind message `(src, seq)` to `posted`. Charges the receive-side copy
    /// for buffered fragments, sends the CTS for rendezvous messages, and
    /// finishes the receive if all data is already here.
    fn match_msg(
        &self,
        st: &mut MatchState,
        src: NodeId,
        seq: Seq,
        posted: Posted,
        fires: &mut Vec<HandlerFire>,
    ) {
        let cfg = self.config();
        let clock = self.clock();
        let msg = st.streams[src]
            .msgs
            .get_mut(&seq)
            .or_diag("matched message missing from its stream");
        debug_assert!(msg.dest.is_none());
        self.tr(trace::EventKind::Match, "recv", seq, msg.total);
        {
            let mut ri = posted.state.st.lock();
            ri.buf = vec![0; msg.total];
            ri.status = Status {
                src,
                tag: msg.tag,
                len: msg.total,
            };
        }
        // Deposit (and pay for) fragments that arrived before the match.
        let frags = std::mem::take(&mut msg.frags);
        if !frags.is_empty() {
            let bytes: usize = frags.iter().map(|(_, d)| d.len()).sum();
            clock.advance(cfg.memcpy_time(bytes));
            let mut ri = posted.state.st.lock();
            for (off, d) in frags {
                ri.buf[off..off + d.len()].copy_from_slice(&d);
            }
        }
        msg.dest = Some(MatchedDest {
            state: posted.state,
            handler: posted.handler,
        });
        if msg.rndv {
            // Negotiate: tell the sender to go ahead.
            clock.advance(cfg.mpl_rndv_setup);
            self.tr(trace::EventKind::Cts, "rndv", seq, 0);
            self.wire_send(src, cfg.mpl_header_bytes, MplBody::Cts { seq });
        }
        if msg.frags_seen > 0 && msg.received >= msg.total {
            self.finish_recv(st, src, seq, fires);
        }
    }

    /// All bytes of `(src, seq)` are in its destination buffer: complete
    /// the receive. Queues the `rcvncall` firing (run after the state lock
    /// is released — handlers may call back into the engine) and re-arms
    /// persistent handlers through the normal posting path, so requests
    /// that arrived while the handler slot was consumed get matched.
    fn finish_recv(
        &self,
        st: &mut MatchState,
        src: NodeId,
        seq: Seq,
        fires: &mut Vec<HandlerFire>,
    ) {
        let cfg = self.config();
        let clock = self.clock();
        let msg = st.streams[src]
            .msgs
            .remove(&seq)
            .or_diag("finished message missing from its stream");
        let dest = msg.dest.or_diag("finished message was never matched");
        clock.advance(cfg.mpl_recv_match);
        self.stats.recvs.incr();
        self.tr(trace::EventKind::Complete, "recv", seq, msg.total);
        {
            let mut ri = dest.state.st.lock();
            ri.done = true;
            ri.done_at = clock.now();
        }
        dest.state.cv.notify_all();
        let Some(h) = dest.handler else { return };
        let (buf, status) = {
            let mut ri = dest.state.st.lock();
            (std::mem::take(&mut ri.buf), ri.status)
        };
        fires.push(HandlerFire {
            h: Arc::clone(&h),
            buf,
            status,
        });
        // Persistent rcvncall (as GA uses it): re-arm for the same tag via
        // the normal posting path so an unmatched request that arrived
        // while this slot was consumed gets matched immediately (it may
        // already be complete, queueing a further firing).
        self.post_locked(
            st,
            Posted {
                src: None,
                tag: Some(status.tag),
                state: RecvState::new(),
                handler: Some(h),
            },
            fires,
        );
    }

    /// Run deferred `rcvncall` firings (no engine locks held): charge the
    /// AIX handler-context creation cost, then the user handler.
    fn run_handlers(&self, fires: Vec<HandlerFire>) {
        for HandlerFire { h, buf, status } in fires {
            self.clock().advance(self.config().rcvncall_ctx);
            self.stats.rcvncall_invocations.incr();
            let hctx = MplHandlerCtx { engine: self };
            h(&hctx, buf, status);
        }
    }

    // ---------------------------------------------------------- progress

    /// Process one arrived packet.
    pub(crate) fn process_packet(&self, s: Stamped<WirePacket<MplBody>>) {
        let cfg = self.config();
        let clock = self.clock();
        clock.merge(s.at);
        clock.advance(cfg.mpl_pkt_dispatch);
        self.stats.packets.incr();
        let src = s.item.src;
        trace::emit(
            self.id(),
            s.at,
            trace::EventKind::Deliver,
            "pkt",
            src as u64,
            s.item.wire_bytes,
        );
        let mut fires = Vec::new();
        let mut st = self.state.lock();
        match s.item.body {
            MplBody::Eager {
                seq,
                tag,
                total_len,
                offset,
                data,
            } => {
                self.note_envelope(&mut st, src, seq, tag, total_len, false, &mut fires);
                self.deposit(&mut st, src, seq, offset, data, &mut fires);
            }
            MplBody::Rts {
                seq,
                tag,
                total_len,
            } => self.note_envelope(&mut st, src, seq, tag, total_len, true, &mut fires),
            MplBody::Cts { seq } => {
                let rndv = st
                    .rndv_sends
                    .remove(&(src, seq))
                    .or_diag("CTS for unknown rendezvous send");
                drop(st);
                // Inject the parked data straight from the user buffer
                // (no extra copy — the rendezvous advantage). The send only
                // completes when the adapter has read the user buffer out,
                // i.e. when the last fragment is on the wire.
                let injected =
                    self.inject_fragments(src, &rndv.data, |offset, chunk| MplBody::RndvData {
                        seq,
                        offset,
                        total_len: rndv.data.len(),
                        data: chunk.to_vec(),
                    });
                rndv.state.complete(injected);
                return;
            }
            MplBody::RndvData {
                seq,
                offset,
                total_len,
                data,
            } => {
                debug_assert!(total_len > 0);
                self.deposit(&mut st, src, seq, offset, data, &mut fires);
            }
        }
        drop(st);
        self.run_handlers(fires);
    }

    /// Record the envelope of `(src, seq)` and attempt matching on arrival.
    #[allow(clippy::too_many_arguments)]
    fn note_envelope(
        &self,
        st: &mut MatchState,
        src: NodeId,
        seq: Seq,
        tag: Tag,
        total: usize,
        rndv: bool,
        fires: &mut Vec<HandlerFire>,
    ) {
        let stream = &mut st.streams[src];
        let was_contig = stream.contig;
        stream.msgs.entry(seq).or_insert(InMsg {
            tag,
            total,
            rndv,
            received: 0,
            frags_seen: 0,
            frags: Vec::new(),
            dest: None,
        });
        stream.note_seen(seq);
        let now_contig = stream.contig;
        if now_contig > was_contig {
            // This arrival extended the visible prefix: every unmatched
            // message that just became visible may now match.
            let newly: Vec<Seq> = st.streams[src]
                .msgs
                .range(..now_contig)
                .filter(|(_, m)| m.dest.is_none())
                .map(|(&s, _)| s)
                .collect();
            for s_seq in newly {
                self.try_match_arrival(st, src, s_seq, fires);
            }
        }
    }

    /// Match a newly-arrived message against the posted queue, respecting
    /// non-overtaking: it may only match if no earlier unmatched message
    /// from the same source also matches the same posted receive.
    fn try_match_arrival(
        &self,
        st: &mut MatchState,
        src: NodeId,
        seq: Seq,
        fires: &mut Vec<HandlerFire>,
    ) {
        if !st.streams[src].visible(seq) {
            // An earlier message from this source hasn't even been seen
            // yet; matching now could overtake it.
            return;
        }
        // A match earlier in this cascade may have fired a persistent
        // rcvncall whose re-arm already matched *and finished* this seq
        // (finish_recv removes it from the stream) — nothing left to do.
        let Some(msg) = st.streams[src].msgs.get(&seq) else {
            return;
        };
        if msg.dest.is_some() {
            return;
        }
        let tag = msg.tag;
        // Non-overtaking guard: an earlier unmatched message with the same
        // tag from this source must match first.
        let overtaken = st.streams[src]
            .msgs
            .range(..seq)
            .any(|(_, m)| m.dest.is_none() && m.tag == tag);
        if overtaken {
            return;
        }
        let idx = st.posted.iter().position(|p| {
            p.src.map(|s| s == src).unwrap_or(true) && p.tag.map(|t| t == tag).unwrap_or(true)
        });
        if let Some(idx) = idx {
            let posted = st.posted.remove(idx).or_diag("posted index out of range");
            self.match_msg(st, src, seq, posted, fires);
        }
    }

    /// Deposit a fragment (into the matched buffer, or the stash).
    fn deposit(
        &self,
        st: &mut MatchState,
        src: NodeId,
        seq: Seq,
        offset: usize,
        data: Vec<u8>,
        fires: &mut Vec<HandlerFire>,
    ) {
        let msg = st.streams[src]
            .msgs
            .get_mut(&seq)
            .or_diag("fragment arrived before its envelope was recorded");
        msg.received += data.len();
        msg.frags_seen += 1;
        let complete = msg.received >= msg.total;
        match &msg.dest {
            Some(d) => {
                let mut ri = d.state.st.lock();
                ri.buf[offset..offset + data.len()].copy_from_slice(&data);
            }
            None => msg.frags.push((offset, data)),
        }
        if complete && msg.dest.is_some() {
            self.finish_recv(st, src, seq, fires);
        }
    }

    /// One polling step (bounded real-time block).
    // liveness: recv_timeout wakes on every packet the switch delivers to
    // this node's adapter ring; on silence the POLL_TICK real-time bound
    // re-arms the wait until `deadline`, then deadlock_report fires — a
    // dead or non-polling peer cannot park this thread forever.
    pub(crate) fn poll_step(&self, deadline: Instant) {
        self.adapter.pump(self.clock().now());
        match self.adapter.rx().recv_timeout(POLL_TICK) {
            Ok(Some(s)) => self.process_packet(s),
            Ok(None) => {
                if Instant::now() > deadline {
                    panic!(
                        "{}",
                        self.deadlock_report(&format!(
                            "MPL made no progress for {:?} of real time — simulated deadlock",
                            self.escape
                        ))
                    );
                }
            }
            Err(_) => spsim::sim_panic!("MPL adapter queue closed while waiting for progress"),
        }
    }

    /// Interrupt-mode dispatcher loop.
    pub(crate) fn dispatcher_loop(&self) {
        // liveness: recv_timeout wakes on every arriving packet and every
        // DISPATCH_TICK; mode_cv is notified on mode flips; terminate()
        // closes the rx queue, observed by the re-checks below.
        loop {
            if self.is_terminated() {
                return;
            }
            {
                let mut mode = self.mode.lock();
                if *mode == MplMode::Polling {
                    self.mode_cv.wait_for(&mut mode, DISPATCH_TICK);
                    continue;
                }
            }
            match self.adapter.rx().recv_timeout(DISPATCH_TICK) {
                Err(_) => return,
                Ok(None) => continue,
                Ok(Some(s)) => {
                    self.clock().merge(s.at);
                    self.process_packet(s);
                    while let Ok(Some(next)) = self.adapter.rx().try_recv() {
                        self.process_packet(next);
                    }
                    self.adapter.pump(self.clock().now());
                }
            }
        }
    }

    pub(crate) fn terminate(&self) {
        self.terminated.store(true, Ordering::Release);
        self.adapter.shutdown();
        self.mode_cv.notify_all();
    }
}
