//! # mpl — the MPI/MPL two-sided message-passing baseline
//!
//! The paper evaluates LAPI against the SP's MPI/MPL message-passing stack;
//! this crate reproduces the protocol features those comparisons hinge on:
//!
//! * **tag/source matching** with non-overtaking delivery per source
//!   (the in-order guarantee MPL must enforce on a switch that reorders
//!   packets — state LAPI explicitly refuses to keep, §4);
//! * the **eager protocol** for messages up to `MP_EAGER_LIMIT`: the sender
//!   copies into protocol buffers (the "extra copy" the paper blames for
//!   MPI's mid-range bandwidth gap) so the send returns immediately;
//!   receivers deposit directly when a matching receive is already posted
//!   and buffer + re-copy otherwise;
//! * the **rendezvous protocol** beyond the eager limit: an RTS/CTS round
//!   trip negotiates buffer space, after which data moves without the extra
//!   copy — the source of the bandwidth-curve flattening above the 4 KB
//!   default eager limit in Figure 2;
//! * **`rcvncall`** — the interrupt-driven receive-and-call used by the old
//!   Global Arrays implementation (§5.2), whose AIX handler-context cost
//!   (≈57 µs here) explains MPL's 200 µs interrupt round trip in Table 2;
//! * 16-byte packet headers (vs LAPI's 48), giving MPI its slightly higher
//!   peak bandwidth.
//!
//! The public API is deliberately small: `send`/`recv` (+ nonblocking
//! variants), `rcvncall`, a barrier and an allreduce — what the paper's
//! benchmarks and the GA-over-MPL port actually use.

#![warn(missing_docs)]

pub mod context;
pub mod engine;
pub mod wire;
pub mod world;

pub use context::{MplContext, MplHandlerCtx, MplMode, RecvReq, SendReq, Status};
pub use engine::MplStats;
pub use world::MplWorld;
