//! Job setup for the MPL baseline.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use spsim::{MachineConfig, NodeId, VBarrier, VClock, VDur};
use spswitch::Network;

use crate::context::{MplContext, MplMode};
use crate::engine::MplEngine;
use crate::wire::MplBody;

/// Collective u64 exchange board (utility for tests and GA).
pub(crate) struct MplExchange {
    slots: Mutex<Vec<u64>>,
    barrier: VBarrier,
}

impl MplExchange {
    fn new(n: usize, cost: VDur) -> Self {
        MplExchange {
            slots: Mutex::new(vec![0; n]),
            barrier: VBarrier::new(n, cost),
        }
    }

    pub(crate) fn exchange(&self, clock: &VClock, me: NodeId, value: u64) -> Vec<u64> {
        self.slots.lock()[me] = value;
        self.barrier.wait(clock);
        let out = self.slots.lock().clone();
        self.barrier.wait(clock);
        out
    }
}

fn barrier_cost(cfg: &MachineConfig, n: usize) -> VDur {
    let rounds = (usize::BITS - (n.max(2) - 1).leading_zeros()) as u64;
    (cfg.fabric_latency + VDur::from_us(15)) * rounds
}

/// Builder/entry point for an MPL job.
pub struct MplWorld;

impl MplWorld {
    /// Create an `n`-task MPL job over a fresh simulated switch.
    pub fn init(n: usize, cfg: MachineConfig, mode: MplMode) -> Vec<MplContext> {
        Self::init_seeded(n, cfg, mode, 0x3B3A_CA5E)
    }

    /// As [`MplWorld::init`] with an explicit route/drop seed.
    pub fn init_seeded(n: usize, cfg: MachineConfig, mode: MplMode, seed: u64) -> Vec<MplContext> {
        Self::init_full(n, cfg, mode, seed, Duration::from_secs(30))
    }

    /// Full-control init (short `escape` for deadlock tests).
    pub fn init_full(
        n: usize,
        cfg: MachineConfig,
        mode: MplMode,
        seed: u64,
        escape: Duration,
    ) -> Vec<MplContext> {
        let cfg = Arc::new(cfg);
        let net: Network<MplBody> = Network::new(n, Arc::clone(&cfg), seed);
        let bcost = barrier_cost(&cfg, n);
        let barrier = VBarrier::new(n, bcost);
        let exchange = Arc::new(MplExchange::new(n, bcost));
        net.into_adapters()
            .into_iter()
            .map(|ad| {
                let engine = MplEngine::new(ad, mode, escape);
                let d = Arc::clone(&engine);
                let dispatcher = spsim::spawn_service(format!("mpl-disp-{}", d.id()), move || {
                    d.dispatcher_loop()
                });
                MplContext {
                    engine,
                    dispatcher: Some(dispatcher),
                    barrier: barrier.clone(),
                    exchange: Arc::clone(&exchange),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_builds_contexts() {
        let ctxs = MplWorld::init(4, MachineConfig::default(), MplMode::Polling);
        for (i, c) in ctxs.iter().enumerate() {
            assert_eq!(c.id(), i);
            assert_eq!(c.tasks(), 4);
        }
    }
}
