//! The per-task MPL context: `send`/`recv`, `rcvncall`, collectives.

use spsim::ServiceHandle;
use std::sync::Arc;
use std::time::Instant;

use spsim::{NodeId, VClock, VDur, VTime};

use crate::engine::{MplEngine, MplStats, RcvncallFn, RecvState, SendState};
use crate::wire::Tag;
use crate::world::MplExchange;

/// Progress mode: `Polling` (default; progress inside blocking calls, like
/// the non-threaded MPL library) or `Interrupt` (a dispatcher thread makes
/// progress unbidden, required for `rcvncall`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MplMode {
    /// Progress only inside MPL calls.
    Polling,
    /// Dispatcher thread delivers and matches autonomously.
    Interrupt,
}

/// Completion status of a receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// Source task.
    pub src: NodeId,
    /// Message tag.
    pub tag: Tag,
    /// Message length in bytes.
    pub len: usize,
}

/// Handle to a pending (nonblocking) send.
pub struct SendReq {
    pub(crate) engine: Arc<MplEngine>,
    pub(crate) state: Arc<SendState>,
}

impl SendReq {
    /// Has the send completed (origin buffer reusable)?
    pub fn test(&self) -> bool {
        self.state.merge_if_done(self.engine.clock())
    }

    /// Block until the send completes (drives progress in polling mode).
    pub fn wait(&self) {
        match self.engine.mode() {
            MplMode::Interrupt => self
                .state
                .wait_done(self.engine.clock(), self.engine.escape),
            MplMode::Polling => {
                let deadline = Instant::now() + self.engine.escape;
                loop {
                    if self.state.merge_if_done(self.engine.clock()) {
                        return;
                    }
                    self.engine.poll_step(deadline);
                }
            }
        }
    }
}

/// Handle to a pending (nonblocking) receive.
pub struct RecvReq {
    pub(crate) engine: Arc<MplEngine>,
    pub(crate) state: Arc<RecvState>,
}

impl RecvReq {
    /// Has the receive completed?
    pub fn test(&self) -> bool {
        self.state.is_done()
    }

    /// Block until the message is here; returns its data and status.
    pub fn wait(&self) -> (Vec<u8>, Status) {
        match self.engine.mode() {
            MplMode::Interrupt => self
                .state
                .wait_done(self.engine.clock(), self.engine.escape),
            MplMode::Polling => {
                let deadline = Instant::now() + self.engine.escape;
                loop {
                    if let Some(r) = self.state.take_if_done(self.engine.clock()) {
                        return r;
                    }
                    self.engine.poll_step(deadline);
                }
            }
        }
    }
}

/// Restricted context handed to `rcvncall` handlers: they run on the
/// dispatcher and may reply with nonblocking sends but must not block.
pub struct MplHandlerCtx<'a> {
    pub(crate) engine: &'a MplEngine,
}

impl MplHandlerCtx<'_> {
    /// This task's id.
    pub fn id(&self) -> NodeId {
        self.engine.id()
    }

    /// Number of tasks.
    pub fn tasks(&self) -> usize {
        self.engine.tasks()
    }

    /// Charge CPU work the handler models.
    pub fn charge(&self, cost: VDur) {
        self.engine.clock().advance(cost);
    }

    /// Current virtual time.
    pub fn now(&self) -> VTime {
        self.engine.clock().now()
    }

    /// The simulated machine's cost model.
    pub fn machine(&self) -> &spsim::MachineConfig {
        self.engine.config()
    }

    /// Nonblocking send from inside the handler (replies). The engine owns
    /// the data until injection completes, so the handler never blocks.
    pub fn isend(&self, dst: NodeId, tag: Tag, data: &[u8]) {
        let _ = self.engine.isend(dst, tag, data);
    }
}

/// One task's MPL context.
pub struct MplContext {
    pub(crate) engine: Arc<MplEngine>,
    pub(crate) dispatcher: Option<ServiceHandle>,
    pub(crate) barrier: spsim::VBarrier,
    pub(crate) exchange: Arc<MplExchange>,
}

impl MplContext {
    /// This task's id.
    pub fn id(&self) -> NodeId {
        self.engine.id()
    }

    /// Number of tasks in the job.
    pub fn tasks(&self) -> usize {
        self.engine.tasks()
    }

    /// The node's virtual clock.
    pub fn clock(&self) -> &VClock {
        self.engine.clock()
    }

    /// Current virtual time.
    pub fn now(&self) -> VTime {
        self.engine.clock().now()
    }

    /// The simulated machine's cost model.
    pub fn machine(&self) -> &spsim::MachineConfig {
        self.engine.config()
    }

    /// Charge local computation.
    pub fn compute(&self, cost: VDur) {
        self.engine.clock().advance(cost);
    }

    /// Protocol statistics.
    pub fn stats(&self) -> &MplStats {
        &self.engine.stats
    }

    /// Wire statistics of this node's adapter.
    pub fn wire_stats(&self) -> &spswitch::AdapterStats {
        self.engine.adapter().stats()
    }

    /// Current progress mode.
    pub fn mode(&self) -> MplMode {
        self.engine.mode()
    }

    /// Switch progress mode.
    pub fn set_mode(&self, m: MplMode) {
        self.engine.set_mode(m)
    }

    /// Blocking send: returns when the origin buffer is reusable (eager:
    /// after the protocol copy; rendezvous: after the CTS'd injection).
    pub fn send(&self, dst: NodeId, tag: Tag, data: &[u8]) {
        let req = self.isend(dst, tag, data);
        req.wait();
    }

    /// Nonblocking send.
    pub fn isend(&self, dst: NodeId, tag: Tag, data: &[u8]) -> SendReq {
        SendReq {
            engine: Arc::clone(&self.engine),
            state: self.engine.isend(dst, tag, data),
        }
    }

    /// Blocking receive (wildcards: `None` matches any source / any tag).
    pub fn recv(&self, src: Option<NodeId>, tag: Option<Tag>) -> (Vec<u8>, Status) {
        self.irecv(src, tag).wait()
    }

    /// Nonblocking receive.
    pub fn irecv(&self, src: Option<NodeId>, tag: Option<Tag>) -> RecvReq {
        RecvReq {
            engine: Arc::clone(&self.engine),
            state: self.engine.post_recv(src, tag, None),
        }
    }

    /// `rcvncall`: register a persistent interrupt-driven receive handler
    /// for `tag`. Each invocation pays the handler-context cost the paper
    /// blames for MPL's 200 µs interrupt round trip. Requires (and
    /// switches to) interrupt mode.
    pub fn rcvncall<F>(&self, tag: Tag, f: F)
    where
        F: Fn(&MplHandlerCtx<'_>, Vec<u8>, Status) + Send + Sync + 'static,
    {
        self.engine.set_mode(MplMode::Interrupt);
        let h: RcvncallFn = Arc::new(f);
        let _ = self.engine.post_recv(None, Some(tag), Some(h));
    }

    /// Job-wide barrier (`MP_SYNC`): aligns virtual clocks; returns the
    /// aligned virtual time.
    pub fn barrier(&self) -> VTime {
        self.barrier.wait(self.engine.clock())
    }

    /// Collective exchange of one u64 per task (utility for tests and GA).
    pub fn exchange(&self, value: u64) -> Vec<u64> {
        self.exchange
            .exchange(self.engine.clock(), self.id(), value)
    }

    /// Job-wide sum of one f64 per task (`MP_REDUCE`-style helper).
    pub fn allreduce_sum(&self, value: f64) -> f64 {
        self.exchange(value.to_bits())
            .into_iter()
            .map(f64::from_bits)
            .sum()
    }

    /// Shut down this task's context (after a final [`MplContext::barrier`]
    /// so no peer still has traffic toward this node in flight).
    pub fn term(&mut self) {
        if !self.engine.is_terminated() {
            self.engine.terminate();
        }
        if let Some(h) = self.dispatcher.take() {
            let r = h.join();
            if !std::thread::panicking() {
                r.expect("MPL dispatcher thread panicked");
            }
        }
    }
}

impl Drop for MplContext {
    fn drop(&mut self) {
        if !self.engine.is_terminated() {
            self.engine.terminate();
        }
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for MplContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MplContext")
            .field("task", &self.id())
            .field("tasks", &self.tasks())
            .finish()
    }
}
