//! Property-based tests of the MPL matching engine: arbitrary message
//! soups must deliver exactly, in order per (source, tag), across eager
//! and rendezvous protocols and under reordering/loss.

use mpl::{MplMode, MplWorld};
use proptest::prelude::*;
use spsim::{run_spmd_with, MachineConfig, VDur};

/// A message in the soup: (tag in 0..3, size).
fn arb_msgs() -> impl Strategy<Value = Vec<(i32, usize)>> {
    proptest::collection::vec(
        (
            0..3i32,
            prop_oneof![0usize..64, 900usize..1200, 4000usize..9000],
        ),
        1..15,
    )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10,
        // Replay the committed corpus before the random budget; the runner
        // errors if the file goes missing, so CI notices.
        regressions: Some(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/ordering_props.proptest-regressions"
        )),
        ..ProptestConfig::default()
    })]

    #[test]
    fn soup_delivers_exactly_and_in_order(msgs in arb_msgs(), seed in 0u64..500, skew in 0u64..20) {
        let cfg = MachineConfig {
            route_skew: VDur::from_us(skew),
            ..MachineConfig::default()
        };
        let ctxs = MplWorld::init_seeded(2, cfg, MplMode::Polling, seed);
        let msgs2 = msgs.clone();
        let ok = run_spmd_with(ctxs, move |rank, ctx| {
            if rank == 0 {
                // Nonblocking sends: the receiver drains tags in its own
                // order, so a blocking rendezvous send could deadlock (a
                // genuine MPI hazard, not a bug in the engine).
                let reqs: Vec<_> = msgs2
                    .iter()
                    .enumerate()
                    .map(|(k, (tag, size))| {
                        let mut payload = vec![(k % 256) as u8; *size];
                        if !payload.is_empty() {
                            payload[0] = k as u8; // sequence marker
                        }
                        ctx.isend(1, *tag, &payload)
                    })
                    .collect();
                for r in &reqs {
                    r.wait();
                }
                ctx.barrier();
                true
            } else {
                // receive per tag, in tag-send order
                let mut per_tag_expected: Vec<Vec<(usize, usize)>> = vec![vec![]; 3];
                for (k, (tag, size)) in msgs2.iter().enumerate() {
                    per_tag_expected[*tag as usize].push((k, *size));
                }
                let mut all_ok = true;
                for tag in 0..3i32 {
                    for &(k, size) in &per_tag_expected[tag as usize] {
                        let (data, st) = ctx.recv(Some(0), Some(tag));
                        all_ok &= st.len == size && data.len() == size;
                        if !data.is_empty() {
                            all_ok &= data[0] == k as u8;
                            all_ok &= data[1..].iter().all(|&b| b == (k % 256) as u8);
                        }
                    }
                }
                ctx.barrier();
                all_ok
            }
        });
        prop_assert!(ok[1], "soup delivery violated exactly-once/in-order");
    }

    #[test]
    fn soup_under_loss_still_delivers(msgs in arb_msgs(), seed in 0u64..200) {
        let cfg = MachineConfig::default().with_drop_prob(0.15);
        let ctxs = MplWorld::init_seeded(2, cfg, MplMode::Polling, seed);
        let msgs2 = msgs.clone();
        let totals = run_spmd_with(ctxs, move |rank, ctx| {
            if rank == 0 {
                let mut sent = 0usize;
                for (tag, size) in &msgs2 {
                    ctx.send(1, *tag, &vec![7u8; *size]);
                    sent += size;
                }
                ctx.barrier();
                sent
            } else {
                let mut got = 0usize;
                for _ in 0..msgs2.len() {
                    let (data, _) = ctx.recv(Some(0), None);
                    got += data.len();
                    assert!(data.iter().all(|&b| b == 7));
                }
                ctx.barrier();
                got
            }
        });
        prop_assert_eq!(totals[0], totals[1], "bytes lost or duplicated under loss");
    }
}
