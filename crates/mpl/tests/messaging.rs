//! End-to-end tests of the MPL baseline: matching, protocols, rcvncall.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use mpl::{MplContext, MplMode, MplWorld};
use spsim::{run_spmd_with, MachineConfig};

fn world(n: usize, mode: MplMode) -> Vec<MplContext> {
    MplWorld::init(n, MachineConfig::default(), mode)
}

#[test]
fn send_recv_roundtrip_polling() {
    let ctxs = world(2, MplMode::Polling);
    run_spmd_with(ctxs, |rank, ctx| {
        if rank == 0 {
            ctx.send(1, 42, b"hello mpl");
        } else {
            let (data, st) = ctx.recv(Some(0), Some(42));
            assert_eq!(data, b"hello mpl");
            assert_eq!(st.src, 0);
            assert_eq!(st.tag, 42);
            assert_eq!(st.len, 9);
        }
        ctx.barrier();
    });
}

#[test]
fn send_recv_interrupt_mode() {
    let ctxs = world(2, MplMode::Interrupt);
    run_spmd_with(ctxs, |rank, ctx| {
        if rank == 0 {
            ctx.send(1, 1, &[9u8; 100]);
        } else {
            let (data, _) = ctx.recv(None, None);
            assert_eq!(data, vec![9u8; 100]);
        }
        ctx.barrier();
    });
}

#[test]
fn zero_length_message() {
    let ctxs = world(2, MplMode::Polling);
    run_spmd_with(ctxs, |rank, ctx| {
        if rank == 0 {
            ctx.send(1, 7, &[]);
        } else {
            let (data, st) = ctx.recv(Some(0), Some(7));
            assert!(data.is_empty());
            assert_eq!(st.len, 0);
        }
        ctx.barrier();
    });
}

#[test]
fn eager_send_completes_locally_before_recv_posted() {
    // Eager sends return after the protocol copy — even with no receive
    // posted yet. (This is the buffering MPI/MPL does and LAPI avoids.)
    // Interrupt mode so the receiver's dispatcher buffers the message
    // while no receive is posted (the "unexpected" path).
    let ctxs = world(2, MplMode::Interrupt);
    run_spmd_with(ctxs, |rank, ctx| {
        if rank == 0 {
            let req = ctx.isend(1, 3, &[5u8; 1000]); // below eager limit
            req.wait(); // must complete without the receiver acting
            assert!(req.test());
            ctx.barrier();
        } else {
            ctx.barrier(); // only now post the receive
                           // spin (yielding to the scheduler, so the dispatcher can run
                           // even on a single pooled worker) until the dispatcher has
                           // buffered the unexpected message, so the accounting below
                           // is deterministic
            while ctx.stats().packets.get() < 1 {
                spsim::yield_now();
            }
            let (data, _) = ctx.recv(Some(0), Some(3));
            assert_eq!(data, vec![5u8; 1000]);
            assert_eq!(ctx.stats().unexpected.get(), 1);
        }
        ctx.barrier();
    });
}

#[test]
fn rendezvous_used_above_eager_limit() {
    let ctxs = world(2, MplMode::Polling);
    run_spmd_with(ctxs, |rank, ctx| {
        let big = vec![7u8; 100_000]; // 100 KB > 4 KB default limit
        if rank == 0 {
            ctx.send(1, 9, &big);
            assert_eq!(ctx.stats().rndv_msgs.get(), 1);
            assert_eq!(ctx.stats().eager_msgs.get(), 0);
        } else {
            let (data, _) = ctx.recv(Some(0), Some(9));
            assert_eq!(data.len(), 100_000);
            assert!(data.iter().all(|&b| b == 7));
        }
        ctx.barrier();
    });
}

#[test]
fn eager_limit_is_configurable_like_mp_eager_limit() {
    let cfg = MachineConfig::default().with_eager_limit(65536);
    let ctxs = MplWorld::init(2, cfg, MplMode::Polling);
    run_spmd_with(ctxs, |rank, ctx| {
        if rank == 0 {
            ctx.send(1, 1, &vec![1u8; 60_000]); // eager at 64K limit
            assert_eq!(ctx.stats().eager_msgs.get(), 1);
            assert_eq!(ctx.stats().rndv_msgs.get(), 0);
        } else {
            let _ = ctx.recv(None, None);
        }
        ctx.barrier();
    });
}

#[test]
fn messages_do_not_overtake_within_a_tag() {
    // The switch reorders packets; MPL must still deliver same-tag messages
    // from one source in send order.
    let cfg = MachineConfig {
        route_skew: spsim::VDur::from_us(30), // violent reordering
        ..MachineConfig::default()
    };
    let ctxs = MplWorld::init_seeded(2, cfg, MplMode::Polling, 1234);
    run_spmd_with(ctxs, |rank, ctx| {
        let n = 50u64;
        if rank == 0 {
            for i in 0..n {
                ctx.send(1, 5, &i.to_le_bytes());
            }
        } else {
            for i in 0..n {
                let (data, _) = ctx.recv(Some(0), Some(5));
                let got = u64::from_le_bytes(data.try_into().expect("8 bytes"));
                assert_eq!(got, i, "message overtaking detected");
            }
        }
        ctx.barrier();
    });
}

#[test]
fn tags_demultiplex() {
    let ctxs = world(2, MplMode::Polling);
    run_spmd_with(ctxs, |rank, ctx| {
        if rank == 0 {
            ctx.send(1, 10, b"ten");
            ctx.send(1, 20, b"twenty");
        } else {
            // receive in the opposite tag order
            let (d20, _) = ctx.recv(Some(0), Some(20));
            let (d10, _) = ctx.recv(Some(0), Some(10));
            assert_eq!(d20, b"twenty");
            assert_eq!(d10, b"ten");
        }
        ctx.barrier();
    });
}

#[test]
fn wildcard_source_and_tag() {
    let n = 4;
    let ctxs = world(n, MplMode::Polling);
    run_spmd_with(ctxs, |rank, ctx| {
        if rank == 0 {
            let mut seen = vec![false; n];
            for _ in 1..n {
                let (data, st) = ctx.recv(None, None);
                assert_eq!(data, (st.src as u32).to_le_bytes());
                seen[st.src] = true;
            }
            assert!(seen[1..].iter().all(|&s| s));
        } else {
            ctx.send(0, rank as i32, &(rank as u32).to_le_bytes());
        }
        ctx.barrier();
    });
}

#[test]
fn rcvncall_fires_handler_and_replies() {
    let calls = Arc::new(AtomicUsize::new(0));
    let calls2 = Arc::clone(&calls);
    let ctxs = world(2, MplMode::Interrupt);
    run_spmd_with(ctxs, move |rank, ctx| {
        const REQ: i32 = 100;
        const REPLY: i32 = 101;
        if rank == 1 {
            let calls = Arc::clone(&calls2);
            ctx.rcvncall(REQ, move |hctx, data, st| {
                calls.fetch_add(1, Ordering::SeqCst);
                // echo back, doubled
                let doubled: Vec<u8> = data.iter().map(|&b| b * 2).collect();
                hctx.isend(st.src, REPLY, &doubled);
            });
        }
        ctx.barrier();
        if rank == 0 {
            for i in 0..5u8 {
                ctx.send(1, REQ, &[i, i + 1]);
                let (reply, _) = ctx.recv(Some(1), Some(REPLY));
                assert_eq!(reply, vec![i * 2, (i + 1) * 2]);
            }
        }
        ctx.barrier();
    });
    assert_eq!(calls.load(Ordering::SeqCst), 5);
}

#[test]
fn rcvncall_charges_context_creation_cost() {
    // Table 2: the MPL interrupt path is expensive because of the AIX
    // handler-context creation. Compare virtual time of an echo with
    // rcvncall vs plain polling recv.
    let echo_time = |use_rcvncall: bool| {
        let mode = if use_rcvncall {
            MplMode::Interrupt
        } else {
            MplMode::Polling
        };
        let ctxs = world(2, mode);
        let times = run_spmd_with(ctxs, move |rank, ctx| {
            if rank == 1 && use_rcvncall {
                ctx.rcvncall(1, |hctx, data, st| {
                    hctx.isend(st.src, 2, &data);
                });
            }
            ctx.barrier();
            let t0 = ctx.now();
            if rank == 0 {
                ctx.send(1, 1, &[1, 2, 3, 4]);
                let _ = ctx.recv(Some(1), Some(2));
            } else if !use_rcvncall {
                let (data, _) = ctx.recv(Some(0), Some(1));
                ctx.send(0, 2, &data);
            }
            ctx.barrier();
            (ctx.now() - t0).as_us()
        });
        times[0]
    };
    let polling = echo_time(false);
    let interrupt = echo_time(true);
    assert!(
        interrupt > polling + 40.0,
        "rcvncall RT {interrupt}us should far exceed polling RT {polling}us"
    );
}

#[test]
fn many_to_one_contention() {
    let n = 5;
    let ctxs = world(n, MplMode::Polling);
    run_spmd_with(ctxs, |rank, ctx| {
        let per = 20;
        if rank == 0 {
            let mut total = 0u64;
            for _ in 0..(n - 1) * per {
                let (data, _) = ctx.recv(None, Some(1));
                total += u64::from_le_bytes(data.try_into().expect("8"));
            }
            // sum over all senders and rounds
            let expect: u64 = (1..n as u64).map(|r| r * per as u64).sum();
            assert_eq!(total, expect);
        } else {
            for _ in 0..per {
                ctx.send(0, 1, &(rank as u64).to_le_bytes());
            }
        }
        ctx.barrier();
    });
}

#[test]
fn collectives_barrier_and_allreduce() {
    let n = 6;
    let ctxs = world(n, MplMode::Polling);
    run_spmd_with(ctxs, |rank, ctx| {
        let sum = ctx.allreduce_sum(rank as f64 + 1.0);
        assert_eq!(sum, (1..=n).map(|x| x as f64).sum::<f64>());
        let t = ctx.now();
        ctx.barrier();
        assert!(ctx.now() >= t);
    });
}

#[test]
fn mixed_sizes_interleaved() {
    let ctxs = world(2, MplMode::Polling);
    run_spmd_with(ctxs, |rank, ctx| {
        let sizes = [0usize, 1, 100, 4096, 4097, 20_000, 977, 65_537];
        if rank == 0 {
            // Nonblocking sends: receiving in reverse tag order against
            // *blocking* rendezvous sends would be an unsafe MPI program
            // (sender stuck awaiting a CTS for a tag the receiver only
            // posts later). isend keeps every envelope in flight.
            let reqs: Vec<_> = sizes
                .iter()
                .enumerate()
                .map(|(i, &s)| ctx.isend(1, i as i32, &vec![(i as u8) + 1; s]))
                .collect();
            for r in &reqs {
                r.wait();
            }
        } else {
            // receive out of tag order to stress matching
            for (i, &s) in sizes.iter().enumerate().rev() {
                let (data, st) = ctx.recv(Some(0), Some(i as i32));
                assert_eq!(st.len, s);
                assert_eq!(data, vec![(i as u8) + 1; s]);
            }
        }
        ctx.barrier();
    });
}

#[test]
fn lossy_switch_still_delivers_in_order() {
    let cfg = MachineConfig::default().with_drop_prob(0.2);
    let ctxs = MplWorld::init_seeded(2, cfg, MplMode::Polling, 99);
    run_spmd_with(ctxs, |rank, ctx| {
        if rank == 0 {
            for i in 0..30u64 {
                ctx.send(1, 1, &i.to_le_bytes());
            }
        } else {
            for i in 0..30u64 {
                let (data, _) = ctx.recv(Some(0), Some(1));
                assert_eq!(u64::from_le_bytes(data.try_into().expect("8")), i);
            }
            assert!(ctx.wire_stats().packets_received.get() >= 30);
        }
        ctx.barrier();
    });
}
