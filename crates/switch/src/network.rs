//! Building a switch: one [`Adapter`] per node over shared ports.

use std::sync::Arc;

use spsim::{DeliveryPath, DeliveryQueue, DeliveryRings, MachineConfig, SimRng, TimedQueue};

use crate::adapter::{Adapter, AdapterStats, Port};

/// A freshly wired switch: `n` adapters sharing one fabric model.
pub struct Network<M> {
    adapters: Vec<Adapter<M>>,
}

impl<M: Send + Clone + 'static> Network<M> {
    /// Wire up `n` nodes with the given cost model. `seed` drives route
    /// selection and drop injection deterministically.
    pub fn new(n: usize, cfg: Arc<MachineConfig>, seed: u64) -> Self {
        assert!(n > 0, "a switch needs at least one node");
        assert!(cfg.num_routes > 0, "need at least one route");
        let ports: Arc<Vec<Port<M>>> = Arc::new(
            (0..n)
                .map(|_| Port {
                    ejection: crate::link::Link::new(),
                    // One delivery lane per source node: the per-(src,dst)
                    // flow lock makes each source a single producer into its
                    // lane, which is what lets the ring path skip the heap
                    // lock on push (DESIGN §4.2).
                    rx: match cfg.delivery_path {
                        DeliveryPath::Rings => {
                            DeliveryQueue::Rings(DeliveryRings::new(n, cfg.delivery_ring_capacity))
                        }
                        DeliveryPath::Heap => DeliveryQueue::Heap(TimedQueue::new()),
                    },
                    stats: AdapterStats::default(),
                })
                .collect(),
        );
        let mut root = SimRng::new(seed);
        let adapters = (0..n)
            .map(|id| Adapter::new(id, Arc::clone(&cfg), Arc::clone(&ports), root.split()))
            .collect();
        Network { adapters }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.adapters.len()
    }

    /// Take ownership of the per-node adapters (rank order), e.g. to hand
    /// one to each node thread via `spsim::run_spmd_with`.
    pub fn into_adapters(self) -> Vec<Adapter<M>> {
        self.adapters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spsim::{run_spmd_with, VTime};

    #[test]
    fn builds_n_adapters_with_ids() {
        let net: Network<()> = Network::new(5, Arc::new(MachineConfig::default()), 0);
        assert_eq!(net.nodes(), 5);
        let ads = net.into_adapters();
        for (i, a) in ads.iter().enumerate() {
            assert_eq!(a.id(), i);
            assert_eq!(a.nodes(), 5);
        }
    }

    #[test]
    fn all_pairs_communicate() {
        let n = 4;
        let net: Network<(usize, usize)> = Network::new(n, Arc::new(MachineConfig::default()), 7);
        let results = run_spmd_with(net.into_adapters(), |rank, ad| {
            // everyone sends one packet to everyone else, then receives n-1
            for dst in 0..n {
                if dst != rank {
                    ad.send_at(VTime::ZERO, dst, 64, (rank, dst));
                }
            }
            let mut sources = Vec::new();
            for _ in 0..n - 1 {
                let p = ad.rx().recv_merge(ad.clock()).unwrap();
                assert_eq!(p.item.body.1, rank, "misrouted packet");
                sources.push(p.item.body.0);
            }
            sources.sort_unstable();
            sources
        });
        for (rank, sources) in results.iter().enumerate() {
            let expected: Vec<usize> = (0..n).filter(|&s| s != rank).collect();
            assert_eq!(sources, &expected);
        }
    }

    #[test]
    fn same_seed_same_timings() {
        let run = || {
            let net: Network<u32> = Network::new(2, Arc::new(MachineConfig::default()), 42);
            let ads = net.into_adapters();
            (0..50)
                .map(|i| ads[0].send_at(VTime::ZERO, 1, 256, i).delivered_at)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seed_different_routes() {
        let routes = |seed: u64| {
            let net: Network<u32> = Network::new(2, Arc::new(MachineConfig::default()), seed);
            let ads = net.into_adapters();
            (0..32)
                .map(|i| {
                    ads[0].send_at(VTime::ZERO, 1, 64, i);
                    let p = ads[1].rx().recv_merge(ads[1].clock()).unwrap();
                    p.item.route
                })
                .collect::<Vec<_>>()
        };
        assert_ne!(routes(1), routes(2));
    }
}
