//! Serializing links.
//!
//! A [`Link`] models one direction of a node's connection to the switch: a
//! resource that can carry one packet at a time at the wire bandwidth.
//! Reserving the link returns when the packet's last byte has crossed it;
//! back-to-back packets queue behind each other, which is what limits
//! sustained bandwidth to the wire rate regardless of how fast the CPU can
//! issue sends.

use std::sync::Arc;

use parking_lot::Mutex;
use spsim::{VDur, VTime};

/// One direction of a node↔switch connection.
#[derive(Clone, Debug, Default)]
pub struct Link {
    free_at: Arc<Mutex<VTime>>,
}

impl Link {
    /// A new idle link.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserve the link for a transmission of serialized length `ser`
    /// requested at time `at`. Returns the time the last byte is on the
    /// wire (= the time the packet is fully past this link).
    pub fn reserve(&self, at: VTime, ser: VDur) -> VTime {
        let mut free = self.free_at.lock();
        let start = free.max(at);
        let done = start + ser;
        *free = done;
        done
    }

    /// Reserve the link for a whole burst under one lock round-trip: frame
    /// `i` is requested at `first_at + i * step` with serialized length
    /// `sers[i]`. Returns the per-frame completion times.
    ///
    /// The fold is exactly the one `reserve` computes —
    /// `done_i = max(free, at_i) + ser_i`, `free = done_i` — so a batch
    /// produces bit-identical timestamps to the equivalent sequence of
    /// `reserve` calls; only the locking cost changes (1 round-trip instead
    /// of N). DESIGN §4.2 spells out the algebra.
    pub fn reserve_batch(&self, first_at: VTime, step: VDur, sers: &[VDur]) -> Vec<VTime> {
        let mut free = self.free_at.lock();
        let mut out = Vec::with_capacity(sers.len());
        let mut at = first_at;
        for (i, &ser) in sers.iter().enumerate() {
            if i > 0 {
                at += step;
            }
            let start = free.max(at);
            let done = start + ser;
            *free = done;
            out.push(done);
        }
        out
    }

    /// The earliest time a new transmission could start.
    pub fn free_at(&self) -> VTime {
        *self.free_at.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_link_starts_immediately() {
        let l = Link::new();
        let done = l.reserve(VTime::from_us(5), VDur::from_us(10));
        assert_eq!(done, VTime::from_us(15));
        assert_eq!(l.free_at(), VTime::from_us(15));
    }

    #[test]
    fn back_to_back_serializes() {
        let l = Link::new();
        let a = l.reserve(VTime::ZERO, VDur::from_us(10));
        let b = l.reserve(VTime::ZERO, VDur::from_us(10));
        let c = l.reserve(VTime::ZERO, VDur::from_us(10));
        assert_eq!(a, VTime::from_us(10));
        assert_eq!(b, VTime::from_us(20));
        assert_eq!(c, VTime::from_us(30));
    }

    #[test]
    fn gap_leaves_link_idle() {
        let l = Link::new();
        l.reserve(VTime::ZERO, VDur::from_us(10));
        let late = l.reserve(VTime::from_us(100), VDur::from_us(5));
        assert_eq!(late, VTime::from_us(105));
    }

    #[test]
    fn reserve_is_max_of_free_and_at_plus_ser() {
        // DESIGN §4: reserve(at, ser) = max(free, at) + ser, and free_at
        // advances to the returned value. Exercise both arms of the max.
        let l = Link::new();
        assert_eq!(
            l.reserve(VTime::from_us(7), VDur::from_us(3)),
            VTime::from_us(10)
        );
        // link busy until 10: an earlier request queues behind it
        assert_eq!(
            l.reserve(VTime::from_us(2), VDur::from_us(3)),
            VTime::from_us(13)
        );
        assert_eq!(l.free_at(), VTime::from_us(13));
        // a request after free_at starts immediately
        assert_eq!(
            l.reserve(VTime::from_us(20), VDur::from_us(1)),
            VTime::from_us(21)
        );
    }

    #[test]
    fn reserve_batch_matches_sequential_reserves_exactly() {
        // The batching algebra audit: for any (first_at, step, sers) the
        // batch must produce the same fold as N individual reserves against
        // a link in the same starting state — including a pre-busy link and
        // mixed frame sizes.
        let sers: Vec<VDur> = [3u64, 10, 1, 7, 4]
            .iter()
            .map(|&u| VDur::from_us(u))
            .collect();
        for &(busy_until, first, step) in &[(0u64, 5u64, 2u64), (40, 5, 2), (0, 0, 0), (13, 0, 50)]
        {
            let a = Link::new();
            let b = Link::new();
            if busy_until > 0 {
                a.reserve(VTime::ZERO, VDur::from_us(busy_until));
                b.reserve(VTime::ZERO, VDur::from_us(busy_until));
            }
            let batched = a.reserve_batch(VTime::from_us(first), VDur::from_us(step), &sers);
            let sequential: Vec<VTime> = sers
                .iter()
                .enumerate()
                .map(|(i, &ser)| b.reserve(VTime::from_us(first + i as u64 * step), ser))
                .collect();
            assert_eq!(batched, sequential);
            assert_eq!(a.free_at(), b.free_at());
        }
    }

    #[test]
    fn reserve_batch_of_empty_slice_is_a_noop() {
        let l = Link::new();
        assert!(l
            .reserve_batch(VTime::from_us(9), VDur::from_us(1), &[])
            .is_empty());
        assert_eq!(l.free_at(), VTime::ZERO);
    }

    #[test]
    fn sustained_rate_equals_wire_rate() {
        // 1000 packets of 1024B at 102 MB/s should take ~10.04ms total.
        let cfg = spsim::MachineConfig::default();
        let l = Link::new();
        let mut last = VTime::ZERO;
        for _ in 0..1000 {
            last = l.reserve(VTime::ZERO, cfg.wire_time(1024));
        }
        let rate = (last - VTime::ZERO).rate_mb_s(1000 * 1024);
        assert!((rate - 102.0).abs() < 0.5, "rate {rate}");
    }
}
