//! # spswitch — packet-level model of the SP switch and adapter
//!
//! The IBM RS/6000 SP interconnect is a multistage, packet-switched network
//! reached through a per-node communication adapter; each node pair sustains
//! on the order of 110 MB/s per direction, and packets of one message may
//! take different routes and therefore arrive **out of order** — a property
//! LAPI embraces (its handlers reassemble) and MPL must mask (in-order
//! delivery guarantees). This crate models the interconnect at exactly the
//! granularity the paper's arguments live at:
//!
//! * per-node **injection** and **ejection** links that serialize packets at
//!   the wire bandwidth (this produces bandwidth saturation and the
//!   header-tax difference between LAPI's 48-byte and MPL's 16-byte packet
//!   headers);
//! * a **fabric** with a fixed base latency and several routes per node
//!   pair, each with a small latency skew (this produces visible reordering);
//! * a real **reliability protocol** in the adapter: per-flow sequence
//!   numbers, receiver-side duplicate suppression, coalesced cumulative
//!   ACKs charged to the wire, and bounded go-back-N retransmission driven
//!   by virtual-time timers. The fabric genuinely drops and duplicates
//!   packets per a seeded [`spsim::FaultPlan`]; an unrecoverable flow
//!   surfaces as a structured [`DeliveryTimeout`];
//! * a per-adapter [`spsim::TimedQueue`] of arrived packets, from which the
//!   protocol layer (LAPI dispatcher / MPL progress engine) receives in
//!   arrival-time order.
//!
//! The switch is generic over the packet body type `M`, so the LAPI and MPL
//! crates each instantiate it with their own wire formats. The switch itself
//! never inspects bodies: reliability and ordering properties are uniform.

#![warn(missing_docs)]

pub mod adapter;
pub mod link;
pub mod network;
pub mod packet;

pub use adapter::{Adapter, AdapterStats, DeliveryTimeout, PeerHealth, SendReceipt};
pub use link::Link;
pub use network::Network;
pub use packet::WirePacket;
