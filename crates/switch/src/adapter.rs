//! The per-node communication adapter and its reliability protocol.
//!
//! An [`Adapter`] is a node's endpoint on the switch: it owns the node's
//! virtual clock, its injection link, and its receive queue, and it knows how
//! to push packets through the fabric to any other adapter. The protocol
//! layers above (LAPI, MPL) charge their own CPU costs to the clock and then
//! hand packets to [`Adapter::send_at`]; the adapter models only wire-level
//! behaviour: serialization, routing, loss, duplication and recovery.
//!
//! ## Reliability protocol
//!
//! Like the SP's TB3 adapter, this layer turns a lossy fabric into reliable,
//! possibly out-of-order delivery. Each directed `(src, dst)` pair is a
//! *flow* with consecutive sequence numbers. Per transmission attempt the
//! fabric may lose the packet (per-link probability or a scripted
//! [`spsim::FaultPlan`] black-hole window) or deliver a duplicate copy; the
//! receiving side acknowledges cumulatively (coalesced, one `ack_bytes` wire
//! charge per `ack_every` packets or after `ack_delay`, on the flow's
//! reverse lane) and suppresses duplicates by sequence number. The sender
//! retransmits on a virtual-time timeout — each retransmission re-serializes
//! on the injection link *at the timeout instant*, so later packets of the
//! flow queue behind it exactly like a stalled go-back-N window — and after
//! `max_retransmits` attempts gives up and surfaces a structured
//! [`DeliveryTimeout`] instead of panicking.
//!
//! ## Retransmission timing and peer health
//!
//! With [`MachineConfig::adaptive_rto`] (the default) the retransmission
//! timeout is estimated per flow, RFC-6298-style: acknowledged first
//! transmissions contribute RTT samples (Karn's rule — retransmitted
//! sequences are ambiguous and never sampled) into SRTT/RTTVAR, and each
//! retransmission waits `clamp(SRTT + 4·RTTVAR, rto_min, rto_max)` doubled
//! per retry (exponential backoff, capped at `rto_max`) plus seeded jitter
//! of up to RTO/8 drawn from the adapter's deterministic RNG stream. Jitter
//! draws happen only on retransmission paths, so lossless runs remain
//! byte-identical to a fixed-timeout adapter.
//!
//! When a flow exhausts its retransmission budget the adapter memoizes the
//! destination in a per-adapter [`PeerHealth`] table: every later send to
//! that peer fails immediately with `DeliveryTimeout { fast_failed: true }`
//! — zero wire activity, zero virtual-time cost — instead of re-paying
//! `max_retransmits × RTO` per flow. Terminally failed sends whose data
//! never reached the destination emit a `write-off` trace event so the
//! quiescence ledger still balances.
//!
//! Node-level faults from [`spsim::FaultPlan`] compose here: a crashed or
//! stalled endpoint black-holes every transmission touching it (detected by
//! the sender through retransmission exhaustion exactly like a dead link),
//! and a `slow(node, factor)` entry multiplies that node's injection and
//! ejection serialization times.
//!
//! Everything resolves synchronously inside [`Adapter::try_send_at`] in
//! virtual time (no timer threads); pending coalesced ACKs are pumped lazily
//! from send/recv paths ([`Adapter::pump`]) and flushed at shutdown. With a
//! fully clean configuration ([`MachineConfig::reliability_armed`] false)
//! the protocol is pay-for-what-you-use: no ACK traffic, no extra RNG draws,
//! and timings identical to a fabric that cannot fail.
//!
//! When [`spsim::trace`] is enabled, sends emit wire-level events: `inject`
//! (on the sender, `msg_id` = destination), `drop`/`retransmit` per failed
//! round (a drop may be the data packet or its ACK — see the event detail),
//! `eject` (on the destination at delivery, `msg_id` = source), plus `ack`,
//! `dup` and `flow-stall` for the protocol itself. Protocol engines emit the
//! matching `deliver` when they consume the packet, which is what
//! [`spsim::trace::TraceSink::assert_quiescent`] balances against `inject`
//! (ACKs and suppressed duplicates are adapter-internal and excluded).

use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;
use spsim::{
    trace, DeliveryQueue, MachineConfig, NodeId, OrDiag, SimRng, StatCounter, VClock, VDur, VTime,
};

use crate::link::Link;
use crate::packet::WirePacket;

/// Wire-level statistics kept by each adapter.
#[derive(Clone, Debug, Default)]
pub struct AdapterStats {
    /// Packets handed to the fabric (including retried ones once).
    pub packets_sent: StatCounter,
    /// Total wire bytes injected.
    pub bytes_sent: StatCounter,
    /// Retransmissions (lost data packets *and* lost acknowledgements both
    /// cost the sender one retransmission round).
    pub retransmits: StatCounter,
    /// Packets delivered into this adapter's receive queue.
    pub packets_received: StatCounter,
    /// Coalesced acknowledgement packets this node charged to the wire.
    pub acks_sent: StatCounter,
    /// Duplicate copies this node's dedup suppressed (fabric duplication or
    /// spurious retransmissions after a lost ACK).
    pub dups_suppressed: StatCounter,
    /// Flows this node gave up on after `max_retransmits` (each one
    /// surfaced a [`DeliveryTimeout`]).
    pub timeouts: StatCounter,
    /// Sends refused immediately because [`PeerHealth`] had already
    /// memoized the destination as dead (`fast_failed` timeouts).
    pub fast_fails: StatCounter,
}

/// What a send cost at the wire level.
#[derive(Debug, Clone, Copy)]
pub struct SendReceipt {
    /// When the packet's last byte left the sender's injection link — the
    /// point at which LAPI may consider origin buffers reusable.
    pub injected_at: VTime,
    /// When the packet lands in the destination receive queue. **Protocol
    /// code must not use this for completion semantics** (the origin cannot
    /// observe remote delivery without a protocol-level acknowledgement);
    /// it exists for tests and statistics.
    pub delivered_at: VTime,
}

/// The structured error for a flow whose bounded retransmissions ran out:
/// the adapter-level equivalent of declaring the link dead.
#[derive(Debug, Clone)]
pub struct DeliveryTimeout {
    /// Sending node of the dead flow.
    pub src: NodeId,
    /// Destination node of the dead flow.
    pub dst: NodeId,
    /// Sequence number of the packet that could not be acknowledged.
    pub seq: u64,
    /// How many sequences of this flow the destination had cumulatively
    /// acknowledged when the sender gave up.
    pub cum_acked: u64,
    /// Retransmissions spent before giving up (= `max_retransmits`).
    pub retries: u32,
    /// When the first attempt left the injection link.
    pub first_attempt: VTime,
    /// When the last retransmitted copy left the injection link.
    pub last_attempt: VTime,
    /// Whether the data actually reached the destination (every ACK died;
    /// the sender cannot know this — recorded for tests and diagnostics).
    pub delivered: bool,
    /// True when the send was refused *without any wire activity* because
    /// an earlier flow to this peer had already exhausted its budget and
    /// [`PeerHealth`] memoized the peer as dead. `retries` is 0 and
    /// `first_attempt == last_attempt` in that case.
    pub fast_failed: bool,
    /// Flow state plus the trace timeline tail at the moment of failure.
    pub report: String,
}

impl fmt::Display for DeliveryTimeout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.fast_failed {
            return write!(
                f,
                "delivery timeout on flow {}→{}: fast-failed, peer {} already \
                 declared dead (seq {} refused without wire activity at {}ns)\n{}",
                self.src,
                self.dst,
                self.dst,
                self.seq,
                self.first_attempt.as_ns(),
                self.report
            );
        }
        write!(
            f,
            "delivery timeout on flow {}→{}: seq {} unacknowledged after {} \
             retransmissions (flow cum-acked {}, first attempt {}ns, gave up {}ns)\n{}",
            self.src,
            self.dst,
            self.seq,
            self.retries,
            self.cum_acked,
            self.first_attempt.as_ns(),
            self.last_attempt.as_ns(),
            self.report
        )
    }
}

impl std::error::Error for DeliveryTimeout {}

/// Per-`(src, dst)` reliability state, held by the sending adapter. The
/// receiver's half (dedup cursor, pending coalesced ACKs, the reverse ACK
/// lane) also lives here because the sending thread resolves the whole
/// exchange synchronously in virtual time; keeping it flow-private makes
/// ACK wire charges deterministic (no cross-thread lane races).
struct FlowState {
    /// Next sequence number this sender will assign.
    tx_next_seq: u64,
    /// Sequences cumulatively acknowledged back to the sender.
    tx_acked: u64,
    /// Receiver dedup cursor: sequences accepted so far (a copy with
    /// `seq < rx_next` is a duplicate).
    rx_next: u64,
    /// Accepted packets awaiting an ACK wire charge (coalescing).
    pending_acks: u32,
    /// Delivery time of the oldest packet in the pending batch.
    pending_since: VTime,
    /// The flow's reverse-direction wire lane for ACK packets.
    ack_lane: Link,
    /// Smoothed round-trip estimate (RFC-6298-style); `None` until the
    /// flow's first unambiguous sample.
    srtt: Option<VDur>,
    /// Round-trip variance estimate, paired with `srtt`.
    rttvar: VDur,
}

impl FlowState {
    fn new() -> Self {
        FlowState {
            tx_next_seq: 0,
            tx_acked: 0,
            rx_next: 0,
            pending_acks: 0,
            pending_since: VTime::ZERO,
            ack_lane: Link::new(),
            srtt: None,
            rttvar: VDur::ZERO,
        }
    }

    /// Fold one unambiguous RTT sample into SRTT/RTTVAR (RFC 6298: first
    /// sample seeds `srtt = s, rttvar = s/2`; thereafter
    /// `rttvar = 3/4·rttvar + 1/4·|srtt − s|`, `srtt = 7/8·srtt + 1/8·s`).
    fn observe_rtt(&mut self, sample: VDur) {
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = VDur::from_ns(sample.as_ns() / 2);
            }
            Some(srtt) => {
                let err = srtt.as_ns().abs_diff(sample.as_ns());
                self.rttvar = VDur::from_ns((3 * self.rttvar.as_ns() + err) / 4);
                self.srtt = Some(VDur::from_ns((7 * srtt.as_ns() + sample.as_ns()) / 8));
            }
        }
    }
}

/// Per-adapter liveness memo: one flag per destination, set the moment any
/// flow to that peer exhausts its retransmission budget. Once set, every
/// later send to the peer fails fast (`DeliveryTimeout::fast_failed`)
/// without touching the wire — the whole point is that a dead node costs
/// each *adapter* one detection, not each *flow* one full
/// `max_retransmits × RTO` budget.
pub struct PeerHealth {
    dead: Vec<std::sync::atomic::AtomicBool>,
}

impl PeerHealth {
    fn new(nodes: usize) -> Self {
        PeerHealth {
            dead: (0..nodes)
                .map(|_| std::sync::atomic::AtomicBool::new(false))
                .collect(),
        }
    }

    /// Has `peer` been declared dead by this adapter?
    pub fn is_dead(&self, peer: NodeId) -> bool {
        // ordering: Relaxed — the flag is a monotonic latch; observing it
        // late merely costs one more full-budget detection, never safety.
        self.dead[peer].load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Latch `peer` as dead. Returns true when this call made the
    /// transition (the caller that should report it exactly once).
    pub fn mark_dead(&self, peer: NodeId) -> bool {
        // ordering: Relaxed — see `is_dead`; swap makes the latch
        // exactly-once for the returning caller.
        !self.dead[peer].swap(true, std::sync::atomic::Ordering::Relaxed)
    }

    /// All peers currently latched dead, in node-id order.
    pub fn dead_peers(&self) -> Vec<NodeId> {
        (0..self.dead.len()).filter(|&p| self.is_dead(p)).collect()
    }
}

/// Shared per-node receive-side resources, indexed by node id.
pub(crate) struct Port<M> {
    pub(crate) ejection: Link,
    pub(crate) rx: DeliveryQueue<WirePacket<M>>,
    pub(crate) stats: AdapterStats,
}

/// A node's endpoint on the simulated SP switch.
pub struct Adapter<M> {
    id: NodeId,
    clock: VClock,
    cfg: Arc<MachineConfig>,
    injection: Link,
    ports: Arc<Vec<Port<M>>>,
    rng: Mutex<SimRng>,
    /// One flow per destination (including loopback, which bypasses the
    /// protocol but still numbers its packets).
    flows: Vec<Mutex<FlowState>>,
    /// Cached [`MachineConfig::reliability_armed`]: when false, sends take
    /// the zero-overhead path.
    armed: bool,
    /// Peers this adapter has given up on (fast-fail memo).
    health: PeerHealth,
    /// Cached per-node `slow(node, factor)` serialization multipliers from
    /// the fault plan (all 1 without node faults).
    slow: Vec<u32>,
}

impl<M: Send + Clone + 'static> Adapter<M> {
    pub(crate) fn new(
        id: NodeId,
        cfg: Arc<MachineConfig>,
        ports: Arc<Vec<Port<M>>>,
        rng: SimRng,
    ) -> Self {
        let flows = (0..ports.len())
            .map(|_| Mutex::new(FlowState::new()))
            .collect();
        let armed = cfg.reliability_armed();
        let health = PeerHealth::new(ports.len());
        let slow = (0..ports.len())
            .map(|n| cfg.faults.slow_factor(n))
            .collect();
        Adapter {
            id,
            clock: VClock::new(),
            cfg,
            injection: Link::new(),
            ports,
            rng: Mutex::new(rng),
            flows,
            armed,
            health,
            slow,
        }
    }

    /// This adapter's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Number of nodes on the switch.
    pub fn nodes(&self) -> usize {
        self.ports.len()
    }

    /// The node's virtual clock (shared with the protocol layer and app).
    pub fn clock(&self) -> &VClock {
        &self.clock
    }

    /// The machine cost model.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// This node's receive queue of arrived packets (in arrival-time order).
    pub fn rx(&self) -> &DeliveryQueue<WirePacket<M>> {
        &self.ports[self.id].rx
    }

    /// This node's wire statistics.
    pub fn stats(&self) -> &AdapterStats {
        &self.ports[self.id].stats
    }

    /// This adapter's per-peer liveness memo.
    pub fn peer_health(&self) -> &PeerHealth {
        &self.health
    }

    /// The retransmission delay before retry number `retry` (1-based) of a
    /// flow, per the adaptive-RTO estimator: base RTO from SRTT/RTTVAR
    /// (initial `retransmit_timeout` before the first sample), clamped to
    /// `[rto_min, rto_max]`, doubled per previous retry and re-capped at
    /// `rto_max`, plus seeded jitter of up to RTO/8.
    fn backoff_delay(&self, flow: &FlowState, retry: u32, rng: &mut SimRng) -> VDur {
        let base = match flow.srtt {
            Some(srtt) => (srtt + self.rttvar_term(flow))
                .as_ns()
                .clamp(self.cfg.rto_min.as_ns(), self.cfg.rto_max.as_ns()),
            None => self
                .cfg
                .retransmit_timeout
                .as_ns()
                .clamp(self.cfg.rto_min.as_ns(), self.cfg.rto_max.as_ns()),
        };
        let shift = (retry.saturating_sub(1)).min(16);
        let rto = base
            .saturating_mul(1u64 << shift)
            .min(self.cfg.rto_max.as_ns());
        let jitter = rng.next_below(rto / 8 + 1);
        VDur::from_ns(rto + jitter)
    }

    fn rttvar_term(&self, flow: &FlowState) -> VDur {
        flow.rttvar * 4
    }

    /// Build the fast-fail [`DeliveryTimeout`] for a send refused because
    /// `dst` is already latched dead. No wire activity, no trace events,
    /// no virtual-time cost.
    fn fast_fail(&self, at: VTime, dst: NodeId) -> DeliveryTimeout {
        self.ports[self.id].stats.fast_fails.incr();
        let flow = self.flows[dst].lock();
        DeliveryTimeout {
            src: self.id,
            dst,
            seq: flow.tx_next_seq,
            cum_acked: flow.tx_acked,
            retries: 0,
            first_attempt: at,
            last_attempt: at,
            delivered: false,
            fast_failed: true,
            report: format!(
                "flow {}→{}: fast-failed (peer {} latched dead) next-seq={} cum-acked={}",
                self.id, dst, dst, flow.tx_next_seq, flow.tx_acked
            ),
        }
    }

    /// Charge one coalesced cumulative ACK for `dst`'s flow to the wire at
    /// `at` (flow lock held by the caller).
    fn charge_ack(&self, dst: NodeId, flow: &mut FlowState, at: VTime) {
        let ser = self.cfg.wire_time(self.cfg.ack_bytes) * self.slow[dst] as u64;
        let done = flow.ack_lane.reserve(at, ser);
        self.ports[dst].stats.acks_sent.incr();
        trace::emit(
            dst,
            done,
            trace::EventKind::Ack,
            "cum",
            flow.rx_next,
            self.cfg.ack_bytes,
        );
        flow.pending_acks = 0;
    }

    /// Send a packet whose serialized size is `wire_bytes` to `dst`,
    /// handing it to the NIC at virtual time `at` (usually `clock().now()`
    /// after the caller charged its CPU overhead).
    ///
    /// Models: injection-link serialization → route selection → fabric
    /// latency (+ per-route skew) → loss/duplication per the fault
    /// configuration → ejection-link serialization → receive-queue
    /// insertion → cumulative acknowledgement, with bounded virtual-time
    /// retransmission on loss (of the data *or* of its ACK).
    ///
    /// Returns [`DeliveryTimeout`] when `max_retransmits` rounds all fail —
    /// the structured "link dead" condition protocol layers surface to the
    /// application (LAPI: `LapiError::DeliveryTimeout`).
    pub fn try_send_at(
        &self,
        at: VTime,
        dst: NodeId,
        wire_bytes: usize,
        body: M,
    ) -> Result<SendReceipt, DeliveryTimeout> {
        assert!(dst < self.ports.len(), "destination {dst} out of range");
        assert!(
            wire_bytes <= self.cfg.packet_size,
            "packet of {wire_bytes}B exceeds the {}B switch MTU",
            self.cfg.packet_size
        );
        if dst != self.id && self.health.is_dead(dst) {
            // Fast fail *before* any link reservation or `inject` trace:
            // the refused send leaves no wire footprint, so the quiescence
            // ledger needs no write-off and virtual time does not move.
            return Err(self.fast_fail(at, dst));
        }
        let ser = self.cfg.wire_time(wire_bytes);
        let ser_tx = ser * self.slow[self.id] as u64;
        let ser_rx = ser * self.slow[dst] as u64;
        let injected_at = self.injection.reserve(at, ser_tx);
        trace::emit(
            self.id,
            injected_at,
            trace::EventKind::Inject,
            "pkt",
            dst as u64,
            wire_bytes,
        );

        let my = &self.ports[self.id].stats;
        my.packets_sent.incr();
        my.bytes_sent.add(wire_bytes as u64);
        let port = &self.ports[dst];

        let mut flow = self.flows[dst].lock();
        let seq = flow.tx_next_seq;
        flow.tx_next_seq += 1;

        if dst == self.id {
            // Loopback: the adapter hairpins the packet without touching
            // the fabric, so no fault injection and no ACK protocol. The
            // route is still drawn so the RNG stream stays aligned with
            // fabric sends (same-seed runs stay byte-identical whether or
            // not a workload mixes in self-sends).
            let route = self.rng.lock().next_below(self.cfg.num_routes as u64) as usize;
            flow.tx_acked = flow.tx_acked.max(seq + 1);
            flow.rx_next = flow.rx_next.max(seq + 1);
            port.stats.packets_received.incr();
            trace::emit(
                dst,
                injected_at,
                trace::EventKind::Eject,
                "pkt",
                self.id as u64,
                wire_bytes,
            );
            let accepted = port.rx.push_from(
                self.id,
                injected_at,
                WirePacket {
                    src: self.id,
                    dst,
                    wire_bytes,
                    route,
                    seq,
                    injected_at,
                    body,
                },
            );
            if !accepted {
                // The destination closed its queue (crashed / terminated)
                // between our health check and the push: the packet is gone
                // and no Deliver will balance the Inject — write it off.
                trace::emit(
                    dst,
                    injected_at,
                    trace::EventKind::WriteOff,
                    "closed",
                    seq,
                    1,
                );
            }
            return Ok(SendReceipt {
                injected_at,
                delivered_at: injected_at,
            });
        }

        // A stale coalesced-ACK batch on this flow flushes (standalone ACK
        // packet) before the new exchange begins.
        if self.armed && flow.pending_acks > 0 {
            let deadline = flow.pending_since + self.cfg.ack_delay;
            if deadline <= injected_at {
                self.charge_ack(dst, &mut flow, deadline);
            }
        }

        let faults = self.cfg.link_faults(self.id, dst);
        let ack_loss = self.cfg.ack_loss(dst, self.id);
        let mut rng = self.rng.lock();
        let route = rng.next_below(self.cfg.num_routes as u64) as usize;
        let skew = self.cfg.route_skew * route as u64;

        // Harness mutant (disarmed in production — one relaxed load): the
        // dedup-cursor-off-by-one variant keeps a clone so the first
        // duplicate copy can be (incorrectly) delivered instead of
        // suppressed. See `spsim::mutation`.
        let mut mutant_dup_copy: Option<M> =
            spsim::mutation::armed(spsim::Mutant::DedupCursorOffByOne).then(|| body.clone());
        let mut body = Some(body);
        let mut attempt = injected_at; // last byte off our injection link
        let mut retries: u32 = 0;
        let mut accepted: Option<VTime> = None; // eject time of the first copy

        loop {
            let arrival = attempt + self.cfg.fabric_latency;
            // -- data transit --
            let lost =
                self.cfg.faults.black_holed(self.id, dst, arrival) || rng.chance(faults.drop_prob);
            let mut round_ok = false;
            if lost {
                trace::emit(
                    self.id,
                    arrival,
                    trace::EventKind::Drop,
                    "pkt",
                    dst as u64,
                    wire_bytes,
                );
            } else {
                // The ejection link enforces receive-side bandwidth; the
                // per-route skew lands *after* it so that packets of one
                // message taking different routes really can arrive out of
                // order (the property LAPI's reassembly must handle).
                let eject = port.ejection.reserve(arrival, ser_rx) + skew;
                let ack_from = if accepted.is_none() {
                    // First copy of this sequence: deliver it.
                    accepted = Some(eject);
                    flow.rx_next = flow.rx_next.max(seq + 1);
                    port.stats.packets_received.incr();
                    trace::emit(
                        dst,
                        eject,
                        trace::EventKind::Eject,
                        "pkt",
                        self.id as u64,
                        wire_bytes,
                    );
                    let pushed = port.rx.push_from(
                        self.id,
                        eject,
                        WirePacket {
                            src: self.id,
                            dst,
                            wire_bytes,
                            route,
                            seq,
                            injected_at,
                            body: body.take().or_diag("packet body delivered twice"),
                        },
                    );
                    if !pushed {
                        // Receiver queue already closed (peer crashed or
                        // terminated mid-exchange): the packet lands on a
                        // powered-off adapter, so no Deliver event will ever
                        // balance the Inject — write it off here.
                        trace::emit(dst, eject, trace::EventKind::WriteOff, "closed", seq, 1);
                    }
                    // Fabric duplication: the copy crosses the ejection
                    // link too, then the dedup discards it.
                    if rng.chance(faults.dup_prob) {
                        let dup_at = port.ejection.reserve(eject, ser_rx) + skew;
                        if let Some(extra) = mutant_dup_copy.take() {
                            // Mutant: cursor off by one — the duplicate is
                            // handed to the protocol as if it were new.
                            port.stats.packets_received.incr();
                            trace::emit(
                                dst,
                                dup_at,
                                trace::EventKind::Eject,
                                "pkt",
                                self.id as u64,
                                wire_bytes,
                            );
                            port.rx.push_from(
                                self.id,
                                dup_at,
                                WirePacket {
                                    src: self.id,
                                    dst,
                                    wire_bytes,
                                    route,
                                    seq,
                                    injected_at,
                                    body: extra,
                                },
                            );
                        } else {
                            port.stats.dups_suppressed.incr();
                            trace::emit(dst, dup_at, trace::EventKind::Dup, "pkt", seq, wire_bytes);
                        }
                    }
                    // ACK coalescing: this acceptance joins the batch.
                    if self.armed {
                        if flow.pending_acks == 0 {
                            flow.pending_since = eject;
                        }
                        flow.pending_acks += 1;
                        if flow.pending_acks >= self.cfg.ack_every {
                            self.charge_ack(dst, &mut flow, eject);
                        }
                    }
                    eject
                } else {
                    // A spurious retransmission of an already-accepted
                    // sequence (its ACK was lost): suppressed by dedup.
                    let dup_at = port.ejection.reserve(arrival, ser_rx) + skew;
                    if let Some(extra) = mutant_dup_copy.take() {
                        // Mutant: cursor off by one — see above.
                        port.stats.packets_received.incr();
                        trace::emit(
                            dst,
                            dup_at,
                            trace::EventKind::Eject,
                            "pkt",
                            self.id as u64,
                            wire_bytes,
                        );
                        port.rx.push_from(
                            self.id,
                            dup_at,
                            WirePacket {
                                src: self.id,
                                dst,
                                wire_bytes,
                                route,
                                seq,
                                injected_at,
                                body: extra,
                            },
                        );
                    } else {
                        port.stats.dups_suppressed.incr();
                        trace::emit(dst, dup_at, trace::EventKind::Dup, "pkt", seq, wire_bytes);
                    }
                    dup_at
                };
                // -- acknowledgement transit (reverse direction) --
                let ack_dead =
                    self.cfg.faults.black_holed(dst, self.id, ack_from) || rng.chance(ack_loss);
                if ack_dead {
                    trace::emit(
                        dst,
                        ack_from,
                        trace::EventKind::Drop,
                        "ack",
                        self.id as u64,
                        self.cfg.ack_bytes,
                    );
                } else {
                    flow.tx_acked = flow.tx_acked.max(seq + 1);
                    round_ok = true;
                    // Karn's rule: only a first transmission's ACK is an
                    // unambiguous RTT sample (round-trip from last byte off
                    // the injection link to ACK arrival back at the sender).
                    if self.armed && self.cfg.adaptive_rto && retries == 0 {
                        flow.observe_rtt((ack_from + self.cfg.fabric_latency).since(attempt));
                    }
                }
            }
            if round_ok {
                break;
            }
            // Harness mutant: the retransmit timer for a lost packet is
            // dropped — the sender reports success without ever
            // re-offering the data. Only fires for genuine silent loss
            // (nothing delivered yet), the failure the timer exists for.
            if accepted.is_none() && spsim::mutation::armed(spsim::Mutant::DropRetransmitTimer) {
                return Ok(SendReceipt {
                    injected_at,
                    delivered_at: arrival,
                });
            }
            // -- bounded retransmission --
            if retries >= self.cfg.max_retransmits {
                my.timeouts.incr();
                self.health.mark_dead(dst);
                trace::emit(
                    self.id,
                    attempt,
                    trace::EventKind::FlowStall,
                    "timeout",
                    seq,
                    wire_bytes,
                );
                if accepted.is_none() {
                    // The data never reached the destination: its `inject`
                    // will never be balanced by a `deliver`, so retire the
                    // packet from the quiescence ledger explicitly.
                    trace::emit(self.id, attempt, trace::EventKind::WriteOff, "send", seq, 1);
                }
                return Err(DeliveryTimeout {
                    src: self.id,
                    dst,
                    seq,
                    cum_acked: flow.tx_acked,
                    retries,
                    first_attempt: injected_at,
                    last_attempt: attempt,
                    delivered: accepted.is_some(),
                    fast_failed: false,
                    report: format!(
                        "flow {}→{}: next-seq={} cum-acked={} rx-next={} pending-acks={}\n{}",
                        self.id,
                        dst,
                        flow.tx_next_seq,
                        flow.tx_acked,
                        flow.rx_next,
                        flow.pending_acks,
                        trace::tail_report(trace::REPORT_TAIL)
                    ),
                });
            }
            retries += 1;
            my.retransmits.incr();
            // The retransmitted copy re-serializes on the injection link at
            // the timeout instant; later packets of this node queue behind
            // it (go-back-N head-of-line blocking).
            let timeout = if self.cfg.adaptive_rto {
                self.backoff_delay(&flow, retries, &mut rng)
            } else {
                self.cfg.retransmit_timeout
            };
            attempt = self.injection.reserve(attempt + timeout, ser_tx);
            trace::emit(
                self.id,
                attempt,
                trace::EventKind::Retransmit,
                "pkt",
                dst as u64,
                wire_bytes,
            );
        }

        Ok(SendReceipt {
            injected_at,
            delivered_at: accepted.or_diag("send loop exited without a delivered round"),
        })
    }

    /// Send a multi-packet burst to `dst` with one batched injection-link
    /// reservation: frame `i` is handed to the NIC at `first_at + i * step`
    /// (`step` models the per-packet issue cost the caller charges its
    /// clock). Returns one receipt per frame, in order.
    ///
    /// With the reliability protocol disarmed — and always for loopback,
    /// which bypasses the protocol — the burst reserves the injection link
    /// once via [`Link::reserve_batch`] and takes the flow and RNG locks
    /// once; timestamps, RNG draws, trace events and statistics are
    /// bit-identical to the equivalent sequence of [`Adapter::try_send_at`]
    /// calls (DESIGN §4.2). When the protocol is armed, retransmission
    /// re-reservations interleave with later initial reservations, so
    /// per-packet reservation is semantically load-bearing: the burst falls
    /// back to exactly that per-packet sequence.
    pub fn try_send_batch_at(
        &self,
        first_at: VTime,
        step: VDur,
        dst: NodeId,
        frags: Vec<(usize, M)>,
    ) -> Result<Vec<SendReceipt>, DeliveryTimeout> {
        assert!(dst < self.ports.len(), "destination {dst} out of range");
        if frags.is_empty() {
            return Ok(Vec::new());
        }
        if self.armed && dst != self.id {
            let mut out = Vec::with_capacity(frags.len());
            let mut at = first_at;
            for (i, (wire_bytes, body)) in frags.into_iter().enumerate() {
                if i > 0 {
                    at += step;
                }
                out.push(self.try_send_at(at, dst, wire_bytes, body)?);
            }
            return Ok(out);
        }

        // This path is reachable only disarmed (every slow factor is 1) or
        // for loopback, where the sender's own factor governs; folding
        // `slow[self.id]` in covers both.
        let sers: Vec<VDur> = frags
            .iter()
            .map(|&(wire_bytes, _)| {
                assert!(
                    wire_bytes <= self.cfg.packet_size,
                    "packet of {wire_bytes}B exceeds the {}B switch MTU",
                    self.cfg.packet_size
                );
                self.cfg.wire_time(wire_bytes) * self.slow[self.id] as u64
            })
            .collect();
        let injected = self.injection.reserve_batch(first_at, step, &sers);
        let my = &self.ports[self.id].stats;
        for (i, &(wire_bytes, _)) in frags.iter().enumerate() {
            trace::emit(
                self.id,
                injected[i],
                trace::EventKind::Inject,
                "pkt",
                dst as u64,
                wire_bytes,
            );
            my.packets_sent.incr();
            my.bytes_sent.add(wire_bytes as u64);
        }

        let port = &self.ports[dst];
        let loopback = dst == self.id;
        let mut flow = self.flows[dst].lock();
        let mut rng = self.rng.lock();
        let mut out = Vec::with_capacity(frags.len());
        for (i, (wire_bytes, body)) in frags.into_iter().enumerate() {
            let seq = flow.tx_next_seq;
            flow.tx_next_seq += 1;
            let route = rng.next_below(self.cfg.num_routes as u64) as usize;
            let eject = if loopback {
                // Hairpinned, exactly like the per-packet path: no fabric,
                // no skew; the route draw keeps the RNG stream aligned.
                injected[i]
            } else {
                let arrival = injected[i] + self.cfg.fabric_latency;
                port.ejection.reserve(arrival, sers[i]) + self.cfg.route_skew * route as u64
            };
            // Disarmed fabric (or loopback): delivery and acknowledgement
            // are both certain, mirroring the single-round outcome of the
            // per-packet path.
            flow.tx_acked = flow.tx_acked.max(seq + 1);
            flow.rx_next = flow.rx_next.max(seq + 1);
            port.stats.packets_received.incr();
            trace::emit(
                dst,
                eject,
                trace::EventKind::Eject,
                "pkt",
                self.id as u64,
                wire_bytes,
            );
            let accepted = port.rx.push_from(
                self.id,
                eject,
                WirePacket {
                    src: self.id,
                    dst,
                    wire_bytes,
                    route,
                    seq,
                    injected_at: injected[i],
                    body,
                },
            );
            if !accepted {
                // Receiver queue already closed: no Deliver will balance
                // the Inject — write the packet off.
                trace::emit(dst, eject, trace::EventKind::WriteOff, "closed", seq, 1);
            }
            out.push(SendReceipt {
                injected_at: injected[i],
                delivered_at: eject,
            });
        }
        Ok(out)
    }

    /// Send, panicking (with the structured diagnostic) on a delivery
    /// timeout. Protocol layers that can surface errors use
    /// [`Adapter::try_send_at`] instead.
    pub fn send_at(&self, at: VTime, dst: NodeId, wire_bytes: usize, body: M) -> SendReceipt {
        match self.try_send_at(at, dst, wire_bytes, body) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Convenience: send at the node's current virtual time.
    pub fn send_now(&self, dst: NodeId, wire_bytes: usize, body: M) -> SendReceipt {
        self.send_at(self.clock.now(), dst, wire_bytes, body)
    }

    /// Lazily pump the reliability protocol: flush any coalesced-ACK batch
    /// whose `ack_delay` deadline has passed by `now`. Protocol engines
    /// call this from their progress paths (poll/probe/dispatch) so no
    /// timer threads are needed. Free when the protocol is disarmed.
    pub fn pump(&self, now: VTime) {
        if !self.armed {
            return;
        }
        for (dst, slot) in self.flows.iter().enumerate() {
            let mut flow = slot.lock();
            if flow.pending_acks > 0 {
                let deadline = flow.pending_since + self.cfg.ack_delay;
                if deadline <= now {
                    self.charge_ack(dst, &mut flow, deadline);
                }
            }
        }
    }

    /// Flush every pending coalesced ACK regardless of deadline (end of
    /// job: nothing further will piggyback them).
    pub fn flush_acks(&self) {
        if !self.armed {
            return;
        }
        for (dst, slot) in self.flows.iter().enumerate() {
            let mut flow = slot.lock();
            if flow.pending_acks > 0 {
                let deadline = flow.pending_since + self.cfg.ack_delay;
                self.charge_ack(dst, &mut flow, deadline);
            }
        }
    }

    /// One line per active outgoing flow — sequence/ACK state for deadlock
    /// and delivery-timeout diagnostics.
    pub fn flows_report(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        for (dst, slot) in self.flows.iter().enumerate() {
            let flow = slot.lock();
            if flow.tx_next_seq == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "  flow {}→{}: next-seq={} cum-acked={} rx-next={} pending-acks={}",
                self.id, dst, flow.tx_next_seq, flow.tx_acked, flow.rx_next, flow.pending_acks
            );
        }
        if out.is_empty() {
            out.push_str("  (no outgoing flows)\n");
        }
        out
    }

    /// Close this node's receive queue (end of job), flushing any pending
    /// coalesced ACKs first.
    pub fn shutdown(&self) {
        self.flush_acks();
        self.ports[self.id].rx.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use spsim::{FaultPlan, VDur};

    fn clean() -> MachineConfig {
        // Calibration tests must not be perturbed by SPSIM_FAULT_PROFILE.
        MachineConfig::default().with_no_faults()
    }

    fn pair() -> Vec<Adapter<u64>> {
        Network::new(2, Arc::new(clean()), 1).into_adapters()
    }

    #[test]
    fn single_packet_latency_decomposes() {
        let mut ads = pair();
        let b = ads.pop().unwrap();
        let a = ads.pop().unwrap();
        let cfg = clean();
        let r = a.send_at(VTime::ZERO, 1, 100, 7);
        assert_eq!(r.injected_at, VTime::ZERO + cfg.wire_time(100));
        // delivered = injected + fabric + ejection serialization (+skew*route)
        let min = r.injected_at + cfg.fabric_latency + cfg.wire_time(100);
        let max = min + cfg.route_skew * (cfg.num_routes as u64 - 1);
        assert!(r.delivered_at >= min && r.delivered_at <= max, "{r:?}");
        let got = b.rx().recv_merge(b.clock()).unwrap();
        assert_eq!(got.item.body, 7);
        assert_eq!(got.item.seq, 0, "first packet of the flow");
        assert_eq!(got.at, r.delivered_at);
        assert_eq!(b.clock().now(), r.delivered_at);
    }

    #[test]
    fn oversized_packet_panics() {
        let ads = pair();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ads[0].send_at(VTime::ZERO, 1, 4096, 0)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn streams_are_wire_limited() {
        let ads = pair();
        let cfg = clean();
        let n = 500usize;
        let mut last = VTime::ZERO;
        for i in 0..n {
            last = ads[0]
                .send_at(VTime::ZERO, 1, cfg.packet_size, i as u64)
                .delivered_at;
        }
        let rate = (last - VTime::ZERO).rate_mb_s((n * cfg.packet_size) as u64);
        assert!((rate - cfg.wire_bw_mb_s).abs() < 2.0, "rate {rate}");
    }

    #[test]
    fn sequence_numbers_are_consecutive_per_flow() {
        let ads = Network::new(3, Arc::new(clean()), 9).into_adapters();
        for i in 0..5u64 {
            // spaced beyond the route skew so arrival order = send order
            ads[0].send_at(VTime::from_us(i * 50), 1, 64, i);
        }
        ads[0].send_at(VTime::ZERO, 2, 64, 99);
        for want in 0..5u64 {
            let got = ads[1].rx().recv_merge(ads[1].clock()).unwrap();
            assert_eq!(got.item.seq, want);
        }
        let other = ads[2].rx().recv_merge(ads[2].clock()).unwrap();
        assert_eq!(other.item.seq, 0, "flows number independently");
    }

    #[test]
    fn routes_cause_reordering() {
        // With route skew, a later-injected packet on a fast route can
        // arrive before an earlier one on a slow route. Verify at least one
        // inversion across many sends.
        let ads = pair();
        let mut inversions = 0;
        let mut prev_arrival = VTime::ZERO;
        for i in 0..200u64 {
            // spread injections so the ejection link never queues
            let t = VTime::from_us(i * 50);
            let r = ads[0].send_at(t, 1, 64, i);
            if r.delivered_at < prev_arrival {
                inversions += 1;
            }
            prev_arrival = r.delivered_at;
        }
        // with 0.4us skew over 4 routes and 50us spacing there are no
        // inversions; tighten spacing to force them
        let mut tight_inversions = 0;
        let mut prev = VTime::ZERO;
        for i in 0..200u64 {
            let r = ads[1].send_at(VTime::from_us(i / 10), 0, 64, i);
            if r.delivered_at < prev {
                tight_inversions += 1;
            }
            prev = r.delivered_at;
        }
        assert_eq!(inversions, 0);
        assert!(tight_inversions > 0, "expected some out-of-order arrivals");
    }

    #[test]
    fn loopback_skips_fabric() {
        let ads = pair();
        let r = ads[0].send_at(VTime::ZERO, 0, 128, 9);
        assert_eq!(r.delivered_at, r.injected_at);
        let got = ads[0].rx().recv_merge(ads[0].clock()).unwrap();
        assert_eq!(got.item.body, 9);
    }

    #[test]
    fn loopback_skips_fault_injection() {
        // Hairpinned packets never cross the fabric: even an absurdly lossy
        // configuration must not drop, duplicate, retransmit or ack them.
        let session = spsim::trace::session();
        let cfg = Arc::new(
            clean()
                .with_drop_prob(0.9)
                .with_dup_prob(0.9)
                .with_max_retransmits(4),
        );
        let ads = Network::new(2, cfg, 3).into_adapters();
        for i in 0..50u64 {
            let r = ads[0].send_at(VTime::from_us(i), 0, 64, i);
            assert_eq!(r.delivered_at, r.injected_at);
        }
        for _ in 0..50 {
            ads[0].rx().recv_merge(ads[0].clock()).unwrap();
        }
        assert!(ads[0].rx().is_empty(), "exactly once");
        assert_eq!(ads[0].stats().retransmits.get(), 0);
        assert_eq!(ads[0].stats().dups_suppressed.get(), 0);
        assert_eq!(ads[0].stats().acks_sent.get(), 0);
        let t = session.finish();
        assert_eq!(t.count(spsim::EventKind::Drop), 0);
        assert_eq!(t.count(spsim::EventKind::Dup), 0);
        assert_eq!(t.count(spsim::EventKind::Ack), 0);
    }

    #[test]
    fn drops_delay_but_deliver() {
        let cfg = Arc::new(clean().with_drop_prob(0.3));
        let ads = Network::new(2, cfg.clone(), 99).into_adapters();
        let n = 300;
        for i in 0..n {
            ads[0].send_at(VTime::ZERO, 1, 512, i);
        }
        // all packets arrive despite drops
        let mut got = 0;
        while got < n {
            ads[1].rx().recv_merge(ads[1].clock()).unwrap();
            got += 1;
        }
        assert!(ads[1].rx().is_empty(), "exactly-once delivery");
        let retr = ads[0].stats().retransmits.get();
        assert!(retr > 0, "expected retransmissions at 30% drop");
        // A round fails when the data drops (p) or its ack drops (also p by
        // default): r = 1 - (1-p)^2, expected retries ~ n * r / (1 - r).
        let r = 1.0 - (1.0 - 0.3f64) * (1.0 - 0.3);
        let expect = n as f64 * r / (1.0 - r);
        assert!(
            (retr as f64) > expect * 0.5 && (retr as f64) < expect * 2.0,
            "retr {retr} vs expected {expect:.0}"
        );
    }

    #[test]
    fn timestamp_algebra_exact_under_drops() {
        // DESIGN §4 audit: with widely spaced sends the ejection link is
        // always idle, so each packet must decompose exactly as
        //   delivered = injected + fabric + k*(retransmit_timeout + ser)
        //             + ser + route_skew * route
        // with k >= 0 an integer and sum(k) equal to the retransmit stat.
        // ACK loss is pinned to zero so every retry is a pre-delivery data
        // drop (an ack-loss retry happens *after* delivery and would not
        // delay it). The adaptive estimator is pinned off: exact timestamp
        // algebra needs the fixed, jitter-free timeout.
        let c = clean().with_drop_prob(0.25).with_ack_drop_prob(0.0);
        let fixed = c.retransmit_timeout;
        let cfg = Arc::new(c.with_fixed_rto(fixed));
        let ads = Network::new(2, cfg.clone(), 1234).into_adapters();
        let ser = cfg.wire_time(512);
        let penalty = (cfg.retransmit_timeout + ser).as_ns();
        let mut total_retries = 0u64;
        for i in 0..200u64 {
            // 10ms spacing dwarfs any retransmit penalty: no queueing.
            let at = VTime::from_us(i * 10_000);
            let r = ads[0].send_at(at, 1, 512, i);
            assert_eq!(r.injected_at, at + ser, "injection link must be idle");
            let pkt = ads[1].rx().recv_merge(ads[1].clock()).unwrap();
            assert_eq!(pkt.at, r.delivered_at);
            let base =
                r.injected_at + cfg.fabric_latency + ser + cfg.route_skew * pkt.item.route as u64;
            let slack = (r.delivered_at - base).as_ns();
            assert_eq!(
                slack % penalty,
                0,
                "pkt {i}: residual {slack}ns is not a whole number of retransmit penalties"
            );
            total_retries += slack / penalty;
        }
        assert_eq!(total_retries, ads[0].stats().retransmits.get());
        assert!(total_retries > 0, "25% drop over 200 packets must retry");
    }

    #[test]
    fn routes_still_reorder_under_drops() {
        // The reordering property must survive loss: retransmit penalties
        // only widen arrival spread, they never serialize routes.
        let cfg = Arc::new(clean().with_drop_prob(0.2));
        let ads = Network::new(2, cfg, 77).into_adapters();
        let n = 300u64;
        let mut arrivals = Vec::new();
        for i in 0..n {
            let r = ads[0].send_at(VTime::from_us(i / 10), 1, 64, i);
            arrivals.push(r.delivered_at);
        }
        let inversions = arrivals.windows(2).filter(|w| w[1] < w[0]).count();
        assert!(inversions > 0, "expected out-of-order arrivals under loss");
        // and every packet still arrives exactly once
        for _ in 0..n {
            ads[1].rx().recv_merge(ads[1].clock()).unwrap();
        }
        assert!(ads[1].rx().is_empty());
    }

    #[test]
    fn really_dropped_packet_is_recovered_by_retransmission() {
        // The acceptance-criteria witness: a packet whose *first* copy never
        // reached the destination (trace shows its drop strictly before any
        // eject) still arrives, exactly once, via retransmission.
        let mut proved = false;
        for seed in 0..20 {
            let session = spsim::trace::session();
            let cfg = Arc::new(clean().with_drop_prob(0.5).with_ack_drop_prob(0.0));
            let ads = Network::new(2, cfg, seed).into_adapters();
            let r = ads[0].send_at(VTime::ZERO, 1, 256, 42u64);
            let t = session.finish();
            let first_drop = t
                .events
                .iter()
                .find(|e| e.kind == spsim::EventKind::Drop)
                .map(|e| e.vtime);
            let eject = t
                .events
                .iter()
                .find(|e| e.kind == spsim::EventKind::Eject)
                .map(|e| e.vtime)
                .expect("packet must eventually eject");
            if let Some(d) = first_drop {
                if d < eject {
                    // First transmission really was lost in the fabric…
                    assert!(ads[0].stats().retransmits.get() > 0);
                    // …and recovery delivered exactly one copy.
                    let got = ads[1].rx().recv_merge(ads[1].clock()).unwrap();
                    assert_eq!(got.item.body, 42);
                    assert_eq!(got.at, r.delivered_at);
                    assert!(ads[1].rx().is_empty(), "exactly once");
                    proved = true;
                    break;
                }
            }
        }
        assert!(proved, "no seed in 0..20 dropped the first copy at p=0.5?");
    }

    #[test]
    fn fabric_duplicates_are_suppressed_exactly_once() {
        let session = spsim::trace::session();
        let cfg = Arc::new(clean().with_dup_prob(1.0));
        let ads = Network::new(2, cfg, 11).into_adapters();
        let n = 40u64;
        for i in 0..n {
            ads[0].send_at(VTime::from_us(i * 100), 1, 128, i);
        }
        for _ in 0..n {
            ads[1].rx().recv_merge(ads[1].clock()).unwrap();
        }
        assert!(ads[1].rx().is_empty(), "every duplicate was suppressed");
        assert_eq!(ads[1].stats().dups_suppressed.get(), n);
        assert_eq!(ads[0].stats().retransmits.get(), 0, "dup is not loss");
        let t = session.finish();
        assert_eq!(t.count(spsim::EventKind::Eject), n as usize);
        assert_eq!(t.count(spsim::EventKind::Dup), n as usize);
    }

    #[test]
    fn lost_acks_cause_suppressed_spurious_retransmissions() {
        // Data path clean, ACK path lossy: the sender must retransmit
        // (it cannot see the delivery) and the receiver must dedup every
        // spurious copy.
        let cfg = Arc::new(clean().with_ack_drop_prob(0.5));
        let ads = Network::new(2, cfg, 21).into_adapters();
        let n = 200u64;
        for i in 0..n {
            ads[0].send_at(VTime::from_us(i * 1000), 1, 128, i);
        }
        for _ in 0..n {
            ads[1].rx().recv_merge(ads[1].clock()).unwrap();
        }
        assert!(ads[1].rx().is_empty(), "exactly once despite ack loss");
        let retr = ads[0].stats().retransmits.get();
        assert!(retr > 0, "50% ack loss must force retransmissions");
        assert_eq!(
            ads[1].stats().dups_suppressed.get(),
            retr,
            "every ack-loss retransmission delivers a duplicate to suppress"
        );
    }

    #[test]
    fn acks_are_coalesced_and_charged_to_the_wire() {
        let session = spsim::trace::session();
        let cfg = Arc::new(clean().with_drop_prob(0.05));
        let ack_every = cfg.ack_every as u64;
        let ads = Network::new(2, cfg, 31).into_adapters();
        let n = 160u64;
        for i in 0..n {
            ads[0].send_at(VTime::from_us(i * 10), 1, 128, i);
        }
        ads[1].shutdown();
        ads[0].shutdown(); // flushes the final partial batch
        let acks = ads[1].stats().acks_sent.get();
        assert!(acks > 0, "a lossy run must ack");
        // Each retransmission stall can flush one partial batch at the
        // deadline, so the coalescing bound is full batches + stalls.
        let stalls = ads[0].stats().retransmits.get();
        assert!(
            acks <= n / ack_every + stalls + 2,
            "coalescing: {acks} wire acks for {n} packets (every {ack_every}, {stalls} stalls)"
        );
        let t = session.finish();
        assert_eq!(t.count(spsim::EventKind::Ack) as u64, acks);
        // Ack events live on the receiver's timeline.
        assert!(t
            .events
            .iter()
            .filter(|e| e.kind == spsim::EventKind::Ack)
            .all(|e| e.node == 1));
    }

    #[test]
    fn dead_link_surfaces_structured_delivery_timeout() {
        let cfg = Arc::new(
            clean()
                .with_faults(FaultPlan::new().with_link_dead(0, 1, VTime::ZERO))
                .with_max_retransmits(8),
        );
        let ads = Network::new(3, cfg.clone(), 7).into_adapters();
        // An unaffected flow still works…
        let ok = ads[2].try_send_at(VTime::ZERO, 1, 64, 1u64);
        assert!(ok.is_ok(), "only 0→1 is dead");
        // …the reverse flow 1→0 delivers its data but cannot hear its ACKs
        // (they ride the dead 0→1 link), so the sender still times out —
        // the classic false-negative a dead reverse path forces…
        let rev = ads[1]
            .try_send_at(VTime::ZERO, 0, 64, 3u64)
            .expect_err("acks for 1→0 ride the dead 0→1 link");
        assert!(rev.delivered, "data arrived; only the acks died");
        // …while the dead flow itself times out with full diagnostics.
        let err = ads[0]
            .try_send_at(VTime::ZERO, 1, 64, 2u64)
            .expect_err("link 0→1 is dead");
        assert_eq!((err.src, err.dst), (0, 1));
        assert_eq!(err.seq, 0);
        assert_eq!(err.retries, cfg.max_retransmits);
        assert!(!err.delivered, "black-holed: nothing ever arrived");
        assert!(err.report.contains("flow 0→1"), "report: {}", err.report);
        assert!(err.last_attempt > err.first_attempt);
        assert_eq!(ads[0].stats().timeouts.get(), 1);
        // Node 1's queue saw only the healthy 2→1 packet, never the
        // black-holed one.
        let got = ads[1].rx().recv_merge(ads[1].clock()).unwrap();
        assert_eq!(got.item.src, 2);
        assert!(ads[1].rx().is_empty());
    }

    #[test]
    fn black_hole_window_delays_then_recovers() {
        // Link 0→1 black-holes [5ms, 8ms): a packet sent mid-window must
        // survive via retransmissions that land after the window closes.
        let cfg = Arc::new(clean().with_faults(FaultPlan::new().with_black_hole(
            0,
            1,
            VTime::from_us(5_000),
            VTime::from_us(8_000),
        )));
        let ads = Network::new(2, cfg, 5).into_adapters();
        let before = ads[0].send_at(VTime::from_us(1_000), 1, 64, 1u64);
        assert!(
            before.delivered_at < VTime::from_us(5_000),
            "pre-window send unaffected: {before:?}"
        );
        let during = ads[0].send_at(VTime::from_us(5_500), 1, 64, 2u64);
        assert!(
            during.delivered_at >= VTime::from_us(8_000),
            "mid-window send must wait out the outage: {during:?}"
        );
        assert!(ads[0].stats().retransmits.get() > 0);
        for _ in 0..2 {
            ads[1].rx().recv_merge(ads[1].clock()).unwrap();
        }
        assert!(ads[1].rx().is_empty(), "exactly once around the outage");
    }

    #[test]
    fn send_emits_wire_trace_events() {
        let session = spsim::trace::session();
        let cfg = Arc::new(clean().with_drop_prob(0.3));
        let ads = Network::new(2, cfg, 5).into_adapters();
        for i in 0..50u64 {
            ads[0].send_at(VTime::ZERO, 1, 256, i);
        }
        let sink = session.sink();
        assert_eq!(sink.injected(), 50);
        assert_eq!(sink.in_flight(), 50, "nothing consumed the packets yet");
        let t = session.finish();
        assert_eq!(t.count(spsim::EventKind::Inject), 50);
        assert_eq!(t.count(spsim::EventKind::Eject), 50);
        assert_eq!(
            t.count(spsim::EventKind::Drop),
            t.count(spsim::EventKind::Retransmit),
            "every drop (data or ack) charges exactly one retransmit"
        );
        assert!(t.count(spsim::EventKind::Drop) > 0, "30% drop must show up");
    }

    #[test]
    fn lossless_pays_nothing_for_the_protocol() {
        // Pay-for-what-you-use: with a clean config no ack/dup/retransmit
        // machinery may appear — neither in the trace nor in the stats.
        let session = spsim::trace::session();
        let ads = pair();
        for i in 0..50u64 {
            ads[0].send_at(VTime::from_us(i), 1, 256, i);
        }
        ads[0].pump(VTime::from_us(10_000)); // must be free too
        ads[0].shutdown();
        assert_eq!(ads[1].stats().acks_sent.get(), 0);
        assert_eq!(ads[0].stats().retransmits.get(), 0);
        let t = session.finish();
        assert_eq!(t.count(spsim::EventKind::Ack), 0);
        assert_eq!(t.count(spsim::EventKind::Dup), 0);
        assert_eq!(t.count(spsim::EventKind::Drop), 0);
    }

    #[test]
    fn stats_count_traffic() {
        let ads = pair();
        ads[0].send_at(VTime::ZERO, 1, 200, 1);
        ads[0].send_at(VTime::ZERO, 1, 300, 2);
        assert_eq!(ads[0].stats().packets_sent.get(), 2);
        assert_eq!(ads[0].stats().bytes_sent.get(), 500);
        assert_eq!(ads[1].stats().packets_received.get(), 2);
    }

    #[test]
    fn shutdown_closes_rx() {
        let ads = pair();
        ads[1].shutdown();
        assert!(ads[1].rx().try_recv().is_err());
    }

    #[test]
    fn send_now_uses_clock() {
        let ads = pair();
        ads[0].clock().advance(VDur::from_us(25));
        let r = ads[0].send_now(1, 64, 0);
        assert!(r.injected_at >= VTime::from_us(25));
    }

    #[test]
    fn batched_send_matches_sequential_sends_exactly() {
        // Two identical clean networks, same seed: one injects a mixed-size
        // fragment train through one `try_send_batch_at`, the other
        // fragment-at-a-time. Receipts and the receiver-side stamped stream
        // must be bit-identical — batching is a locking optimisation, not a
        // timing change.
        let cfg = Arc::new(clean());
        let step = VDur::from_ns(1500);
        let sizes = [1024usize, 1024, 1024, 512, 64, 16];
        let a = Network::new(2, Arc::clone(&cfg), 77).into_adapters();
        let b = Network::new(2, cfg, 77).into_adapters();
        let frags: Vec<(usize, u64)> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i as u64))
            .collect();
        let batch = a[0].try_send_batch_at(VTime::ZERO, step, 1, frags).unwrap();
        let mut seq = Vec::new();
        let mut at = VTime::ZERO;
        for (i, &s) in sizes.iter().enumerate() {
            if i > 0 {
                at += step;
            }
            seq.push(b[0].try_send_at(at, 1, s, i as u64).unwrap());
        }
        assert_eq!(batch.len(), seq.len());
        for (x, y) in batch.iter().zip(&seq) {
            assert_eq!(x.injected_at, y.injected_at);
            assert_eq!(x.delivered_at, y.delivered_at);
        }
        for _ in 0..sizes.len() {
            let ga = a[1].rx().recv_merge(a[1].clock()).unwrap();
            let gb = b[1].rx().recv_merge(b[1].clock()).unwrap();
            assert_eq!(ga.at, gb.at);
            assert_eq!(ga.item.body, gb.item.body);
            assert_eq!(ga.item.seq, gb.item.seq);
            assert_eq!(ga.item.route, gb.item.route);
        }
    }

    #[test]
    fn batched_send_under_faults_still_delivers_exactly_once() {
        // With the reliability protocol armed the batch entry point falls
        // back to per-packet injection (retransmit re-reservations must
        // interleave with initial reservations); semantics are unchanged.
        let cfg = Arc::new(clean().with_drop_prob(0.3).with_dup_prob(0.3));
        let ads = Network::new(2, cfg, 5).into_adapters();
        let n = 30u64;
        let frags: Vec<(usize, u64)> = (0..n).map(|i| (256usize, i)).collect();
        ads[0]
            .try_send_batch_at(VTime::ZERO, VDur::from_us(200), 1, frags)
            .unwrap();
        for want in 0..n {
            let got = ads[1].rx().recv_merge(ads[1].clock()).unwrap();
            assert_eq!(got.item.seq, want);
            assert_eq!(got.item.body, want);
        }
        assert!(ads[1].rx().is_empty(), "exactly once");
    }

    #[test]
    fn adaptive_rto_backs_off_exponentially_and_caps() {
        // Dead link, adaptive RTO (the default): retransmission gaps must
        // grow round over round (exponential backoff) until the rto_max
        // cap, and never exceed cap + cap/8 jitter + serialization.
        let session = spsim::trace::session();
        let cfg = Arc::new(
            clean()
                .with_faults(FaultPlan::new().with_link_dead(0, 1, VTime::ZERO))
                .with_max_retransmits(10),
        );
        let ads = Network::new(2, Arc::clone(&cfg), 42).into_adapters();
        let err = ads[0]
            .try_send_at(VTime::ZERO, 1, 64, 1u64)
            .expect_err("link is dead");
        assert!(!err.fast_failed, "first detection pays the full budget");
        let t = session.finish();
        let times: Vec<u64> = t
            .events
            .iter()
            .filter(|e| e.kind == spsim::EventKind::Retransmit)
            .map(|e| e.vtime.as_ns())
            .collect();
        assert_eq!(times.len(), 10);
        let gaps: Vec<u64> = times.windows(2).map(|w| w[1] - w[0]).collect();
        let ser = cfg.wire_time(64).as_ns();
        let cap = cfg.rto_max.as_ns();
        // Uncapped prefix grows strictly: doubling dominates the ≤RTO/8
        // jitter. Every gap respects the cap (+ jitter + serialization).
        for w in gaps.windows(2) {
            if w[1] < cap {
                assert!(w[1] > w[0], "backoff must grow: {gaps:?}");
            }
        }
        assert!(
            gaps.iter().all(|&g| g <= cap + cap / 8 + ser),
            "gap exceeds rto_max + jitter: {gaps:?}"
        );
        assert!(
            *gaps.last().unwrap() >= cap,
            "ten doublings from rto_min must reach the cap: {gaps:?}"
        );
    }

    #[test]
    fn rtt_samples_shrink_the_rto_below_the_initial_timeout() {
        // Warm a flow on a fast, lightly lossy fabric, then black-hole it:
        // the first retransmission gap must reflect the *measured* RTT
        // (≪ the initial retransmit_timeout), not the fixed constant.
        let session = spsim::trace::session();
        let cfg = Arc::new(clean().with_drop_prob(0.01).with_faults(
            FaultPlan::new().with_black_hole(0, 1, VTime::from_us(900_000), VTime::MAX),
        ));
        let ads = Network::new(2, Arc::clone(&cfg), 7).into_adapters();
        for i in 0..100u64 {
            // widely spaced: every send completes its exchange
            ads[0]
                .try_send_at(VTime::from_us(i * 1000), 1, 256, i)
                .unwrap();
        }
        let err = ads[0]
            .try_send_at(VTime::from_us(950_000), 1, 256, 999u64)
            .expect_err("link is black-holed forever");
        assert!(!err.fast_failed);
        let t = session.finish();
        let mut retrans: Vec<u64> = t
            .events
            .iter()
            .filter(|e| e.kind == spsim::EventKind::Retransmit)
            .map(|e| e.vtime.as_ns())
            .collect();
        retrans.retain(|&ns| ns >= VTime::from_us(950_000).as_ns());
        // First gap = injected→first retransmit ≈ clamp(srtt+4·rttvar,
        // rto_min, ..) + jitter. The measured RTT is a few µs, so the gap
        // must sit near rto_min — far below the initial timeout.
        let first_gap = retrans[0] - err.first_attempt.as_ns();
        assert!(
            first_gap < cfg.retransmit_timeout.as_ns(),
            "measured RTO {}ns should undercut the initial timeout {}ns",
            first_gap,
            cfg.retransmit_timeout.as_ns()
        );
        assert!(
            first_gap >= cfg.rto_min.as_ns(),
            "RTO must respect rto_min: {first_gap}ns"
        );
    }

    #[test]
    fn second_send_to_a_dead_peer_fast_fails_at_zero_cost() {
        // The fast-fail ledger: detection pays the full retransmission
        // budget once; every later send to the latched peer costs zero
        // virtual time and leaves zero wire footprint.
        let session = spsim::trace::session();
        let cfg = Arc::new(
            clean()
                .with_faults(FaultPlan::new().with_link_dead(0, 1, VTime::ZERO))
                .with_max_retransmits(6),
        );
        let ads = Network::new(2, Arc::clone(&cfg), 3).into_adapters();
        let e1 = ads[0]
            .try_send_at(VTime::ZERO, 1, 64, 1u64)
            .expect_err("detection send");
        assert!(!e1.fast_failed);
        assert_eq!(e1.retries, 6);
        assert!(ads[0].peer_health().is_dead(1));
        let vt1 = (e1.last_attempt - e1.first_attempt).as_ns();
        assert!(vt1 > 0);

        let e2 = ads[0]
            .try_send_at(e1.last_attempt, 1, 64, 2u64)
            .expect_err("latched peer");
        assert!(e2.fast_failed);
        assert_eq!(e2.retries, 0);
        let vt2 = (e2.last_attempt - e2.first_attempt).as_ns();
        assert!(
            vt2 * 10 <= vt1,
            "fast fail must be ≥10× cheaper: first {vt1}ns, second {vt2}ns"
        );
        assert_eq!(ads[0].stats().timeouts.get(), 1, "one real detection");
        assert_eq!(ads[0].stats().fast_fails.get(), 1);
        assert_eq!(ads[0].peer_health().dead_peers(), vec![1]);
        // No wire footprint for the refused send, and the write-off keeps
        // the quiescence ledger balanced for the detection send.
        let sink = session.sink();
        assert_eq!(sink.injected(), 1, "fast fail never injects");
        sink.assert_quiescent();
        let t = session.finish();
        assert_eq!(t.count(spsim::EventKind::WriteOff), 1);
    }

    #[test]
    fn crashed_destination_black_holes_and_writes_off() {
        // A node crash composes with the reliability protocol exactly like
        // a dead link: sends to the crashed node from *any* peer time out,
        // are written off, and latch the peer dead per-adapter.
        let cfg = Arc::new(
            clean()
                .with_faults(FaultPlan::new().with_crash(2, VTime::from_us(10)))
                .with_max_retransmits(4),
        );
        let ads = Network::new(3, Arc::clone(&cfg), 9).into_adapters();
        // Before the crash instant the node is reachable.
        let ok = ads[0].try_send_at(VTime::ZERO, 2, 64, 1u64);
        assert!(ok.is_ok(), "node 2 is alive until 10µs: {ok:?}");
        // After it, every flow touching node 2 is black-holed.
        let e = ads[1]
            .try_send_at(VTime::from_us(20), 2, 64, 2u64)
            .expect_err("node 2 crashed");
        assert!(!e.delivered);
        assert!(ads[1].peer_health().is_dead(2));
        // The crashed node's own sends die too (crash-stop: no injection).
        let own = ads[2]
            .try_send_at(VTime::from_us(20), 0, 64, 3u64)
            .expect_err("crashed node cannot inject");
        assert_eq!((own.src, own.dst), (2, 0));
    }

    #[test]
    fn slow_factor_multiplies_serialization_times() {
        // slow(1, 4): node 1's injection and ejection serialize 4× slower;
        // node 0's timings are untouched.
        let cfg = Arc::new(clean().with_faults(FaultPlan::new().with_slow(1, 4)));
        let ads = Network::new(2, Arc::clone(&cfg), 5).into_adapters();
        let ser = cfg.wire_time(512);
        // 0→1: sender fast, receiver slow — ejection serialization is 4×.
        let r = ads[0].try_send_at(VTime::ZERO, 1, 512, 1u64).unwrap();
        assert_eq!(r.injected_at, VTime::ZERO + ser, "node 0 injects at 1×");
        let min = r.injected_at + cfg.fabric_latency + ser * 4;
        assert!(
            r.delivered_at >= min,
            "node 1 must eject at 4×: {r:?} vs min {min:?}"
        );
        // 1→0: sender slow — injection serialization is 4×.
        let r2 = ads[1].try_send_at(VTime::ZERO, 0, 512, 2u64).unwrap();
        assert_eq!(
            r2.injected_at,
            VTime::ZERO + ser * 4,
            "node 1 injects at 4×"
        );
    }

    #[test]
    fn stalled_window_delays_then_recovers_like_a_black_hole() {
        // stall(1, 5ms, 8ms): node 1 makes no protocol progress in the
        // window; a mid-window send survives via retransmissions landing
        // after recovery, exactly once.
        let cfg = Arc::new(clean().with_faults(FaultPlan::new().with_stall(
            1,
            VTime::from_us(5_000),
            VTime::from_us(8_000),
        )));
        let ads = Network::new(2, cfg, 5).into_adapters();
        let during = ads[0].send_at(VTime::from_us(5_500), 1, 64, 2u64);
        assert!(
            during.delivered_at >= VTime::from_us(8_000),
            "mid-stall send must wait out the window: {during:?}"
        );
        let got = ads[1].rx().recv_merge(ads[1].clock()).unwrap();
        assert_eq!(got.item.body, 2);
        assert!(ads[1].rx().is_empty(), "exactly once around the stall");
    }

    #[test]
    fn retransmit_and_dup_clones_share_the_body_allocation() {
        // The dup/retransmit paths clone the body; with a shared-ownership
        // body type every such clone must be a reference-count bump into
        // the sender's original allocation, not a fresh buffer. This is
        // the adapter-level contract behind the protocol layers' `Bytes`
        // payloads.
        let cfg = Arc::new(clean().with_ack_drop_prob(0.5).with_dup_prob(0.5));
        let ads = Network::new(2, cfg, 21).into_adapters();
        let body: Arc<[u8]> = vec![7u8; 64].into();
        let n = 50u64;
        for i in 0..n {
            ads[0].send_at(VTime::from_us(i * 1000), 1, 128, Arc::clone(&body));
        }
        let mut delivered = 0u64;
        for _ in 0..n {
            let got = ads[1].rx().recv_merge(ads[1].clock()).unwrap();
            assert!(
                Arc::ptr_eq(&got.item.body, &body),
                "delivered body must share the sender's allocation"
            );
            delivered += 1;
        }
        assert_eq!(delivered, n);
        assert!(
            ads[0].stats().retransmits.get() > 0,
            "50% ack loss must force retransmissions for this ledger to mean anything"
        );
    }
}
