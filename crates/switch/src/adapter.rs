//! The per-node communication adapter.
//!
//! An [`Adapter`] is a node's endpoint on the switch: it owns the node's
//! virtual clock, its injection link, and its receive queue, and it knows how
//! to push packets through the fabric to any other adapter. The protocol
//! layers above (LAPI, MPL) charge their own CPU costs to the clock and then
//! hand packets to [`Adapter::send_at`]; the adapter models only wire-level
//! behaviour: serialization, routing, loss and retransmission.
//!
//! When [`spsim::trace`] is enabled, `send_at` emits wire-level events:
//! `inject` (on the sender, `msg_id` = destination), `drop`/`retransmit`
//! per forced retry, and `eject` (on the destination's timeline at delivery
//! time, `msg_id` = source). Protocol engines emit the matching `deliver`
//! when they consume the packet, which is what
//! [`spsim::trace::TraceSink::assert_quiescent`] balances against `inject`.

use std::sync::Arc;

use parking_lot::Mutex;
use spsim::{trace, MachineConfig, NodeId, SimRng, StatCounter, TimedQueue, VClock, VTime};

use crate::link::Link;
use crate::packet::WirePacket;

/// Wire-level statistics kept by each adapter.
#[derive(Clone, Debug, Default)]
pub struct AdapterStats {
    /// Packets handed to the fabric (including retried ones once).
    pub packets_sent: StatCounter,
    /// Total wire bytes injected.
    pub bytes_sent: StatCounter,
    /// Retransmissions forced by drop injection.
    pub retransmits: StatCounter,
    /// Packets delivered into this adapter's receive queue.
    pub packets_received: StatCounter,
}

/// What a send cost at the wire level.
#[derive(Debug, Clone, Copy)]
pub struct SendReceipt {
    /// When the packet's last byte left the sender's injection link — the
    /// point at which LAPI may consider origin buffers reusable.
    pub injected_at: VTime,
    /// When the packet lands in the destination receive queue. **Protocol
    /// code must not use this for completion semantics** (the origin cannot
    /// observe remote delivery without a protocol-level acknowledgement);
    /// it exists for tests and statistics.
    pub delivered_at: VTime,
}

/// Shared per-node receive-side resources, indexed by node id.
pub(crate) struct Port<M> {
    pub(crate) ejection: Link,
    pub(crate) rx: TimedQueue<WirePacket<M>>,
    pub(crate) stats: AdapterStats,
}

/// A node's endpoint on the simulated SP switch.
pub struct Adapter<M> {
    id: NodeId,
    clock: VClock,
    cfg: Arc<MachineConfig>,
    injection: Link,
    ports: Arc<Vec<Port<M>>>,
    rng: Mutex<SimRng>,
}

impl<M: Send + 'static> Adapter<M> {
    pub(crate) fn new(
        id: NodeId,
        cfg: Arc<MachineConfig>,
        ports: Arc<Vec<Port<M>>>,
        rng: SimRng,
    ) -> Self {
        Adapter {
            id,
            clock: VClock::new(),
            cfg,
            injection: Link::new(),
            ports,
            rng: Mutex::new(rng),
        }
    }

    /// This adapter's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Number of nodes on the switch.
    pub fn nodes(&self) -> usize {
        self.ports.len()
    }

    /// The node's virtual clock (shared with the protocol layer and app).
    pub fn clock(&self) -> &VClock {
        &self.clock
    }

    /// The machine cost model.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// This node's receive queue of arrived packets (in arrival-time order).
    pub fn rx(&self) -> &TimedQueue<WirePacket<M>> {
        &self.ports[self.id].rx
    }

    /// This node's wire statistics.
    pub fn stats(&self) -> &AdapterStats {
        &self.ports[self.id].stats
    }

    /// Send a packet whose serialized size is `wire_bytes` to `dst`,
    /// handing it to the NIC at virtual time `at` (usually `clock().now()`
    /// after the caller charged its CPU overhead).
    ///
    /// Models: injection-link serialization → route selection → fabric
    /// latency (+ per-route skew) → optional drop + retransmission →
    /// ejection-link serialization → receive-queue insertion.
    pub fn send_at(&self, at: VTime, dst: NodeId, wire_bytes: usize, body: M) -> SendReceipt {
        assert!(dst < self.ports.len(), "destination {dst} out of range");
        assert!(
            wire_bytes <= self.cfg.packet_size,
            "packet of {wire_bytes}B exceeds the {}B switch MTU",
            self.cfg.packet_size
        );
        let ser = self.cfg.wire_time(wire_bytes);
        let injected_at = self.injection.reserve(at, ser);
        trace::emit(
            self.id,
            injected_at,
            trace::EventKind::Inject,
            "pkt",
            dst as u64,
            wire_bytes,
        );

        let (route, extra_delay, retries) = {
            let mut rng = self.rng.lock();
            let route = rng.next_below(self.cfg.num_routes as u64) as usize;
            // Drop injection: the adapter-level reliability protocol
            // retransmits after a timeout; we model the latency penalty
            // without physically duplicating the packet.
            let mut extra = spsim::VDur::ZERO;
            let mut retries = 0u64;
            while rng.chance(self.cfg.drop_prob) {
                trace::emit(
                    self.id,
                    injected_at + self.cfg.fabric_latency + extra,
                    trace::EventKind::Drop,
                    "pkt",
                    dst as u64,
                    wire_bytes,
                );
                extra += self.cfg.retransmit_timeout + ser;
                retries += 1;
                trace::emit(
                    self.id,
                    injected_at + self.cfg.fabric_latency + extra,
                    trace::EventKind::Retransmit,
                    "pkt",
                    dst as u64,
                    wire_bytes,
                );
                if retries > 1_000 {
                    panic!("retransmit storm: drop_prob too close to 1");
                }
            }
            (route, extra, retries)
        };

        let my = &self.ports[self.id].stats;
        my.packets_sent.incr();
        my.bytes_sent.add(wire_bytes as u64);
        my.retransmits.add(retries);

        let at_ejection = injected_at + self.cfg.fabric_latency + extra_delay;
        let port = &self.ports[dst];
        let delivered_at = if dst == self.id {
            // Loopback: skip the fabric, the adapter hairpins the packet.
            injected_at
        } else {
            // The ejection link enforces receive-side bandwidth; the
            // per-route skew lands *after* it so that packets of one
            // message taking different routes really can arrive out of
            // order (the property LAPI's reassembly must handle).
            port.ejection.reserve(at_ejection, ser) + self.cfg.route_skew * route as u64
        };
        port.stats.packets_received.incr();
        trace::emit(
            dst,
            delivered_at,
            trace::EventKind::Eject,
            "pkt",
            self.id as u64,
            wire_bytes,
        );
        port.rx.push(
            delivered_at,
            WirePacket {
                src: self.id,
                dst,
                wire_bytes,
                route,
                injected_at,
                body,
            },
        );
        SendReceipt {
            injected_at,
            delivered_at,
        }
    }

    /// Convenience: send at the node's current virtual time.
    pub fn send_now(&self, dst: NodeId, wire_bytes: usize, body: M) -> SendReceipt {
        self.send_at(self.clock.now(), dst, wire_bytes, body)
    }

    /// Close this node's receive queue (end of job).
    pub fn shutdown(&self) {
        self.ports[self.id].rx.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use spsim::VDur;

    fn pair() -> Vec<Adapter<u64>> {
        Network::new(2, Arc::new(MachineConfig::default()), 1).into_adapters()
    }

    #[test]
    fn single_packet_latency_decomposes() {
        let mut ads = pair();
        let b = ads.pop().unwrap();
        let a = ads.pop().unwrap();
        let cfg = MachineConfig::default();
        let r = a.send_at(VTime::ZERO, 1, 100, 7);
        assert_eq!(r.injected_at, VTime::ZERO + cfg.wire_time(100));
        // delivered = injected + fabric + ejection serialization (+skew*route)
        let min = r.injected_at + cfg.fabric_latency + cfg.wire_time(100);
        let max = min + cfg.route_skew * (cfg.num_routes as u64 - 1);
        assert!(r.delivered_at >= min && r.delivered_at <= max, "{r:?}");
        let got = b.rx().recv_merge(b.clock()).unwrap();
        assert_eq!(got.item.body, 7);
        assert_eq!(got.at, r.delivered_at);
        assert_eq!(b.clock().now(), r.delivered_at);
    }

    #[test]
    fn oversized_packet_panics() {
        let ads = pair();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ads[0].send_at(VTime::ZERO, 1, 4096, 0)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn streams_are_wire_limited() {
        let ads = pair();
        let cfg = MachineConfig::default();
        let n = 500usize;
        let mut last = VTime::ZERO;
        for i in 0..n {
            last = ads[0]
                .send_at(VTime::ZERO, 1, cfg.packet_size, i as u64)
                .delivered_at;
        }
        let rate = (last - VTime::ZERO).rate_mb_s((n * cfg.packet_size) as u64);
        assert!((rate - cfg.wire_bw_mb_s).abs() < 2.0, "rate {rate}");
    }

    #[test]
    fn routes_cause_reordering() {
        // With route skew, a later-injected packet on a fast route can
        // arrive before an earlier one on a slow route. Verify at least one
        // inversion across many sends.
        let ads = pair();
        let mut inversions = 0;
        let mut prev_arrival = VTime::ZERO;
        for i in 0..200u64 {
            // spread injections so the ejection link never queues
            let t = VTime::from_us(i * 50);
            let r = ads[0].send_at(t, 1, 64, i);
            if r.delivered_at < prev_arrival {
                inversions += 1;
            }
            prev_arrival = r.delivered_at;
        }
        // with 0.4us skew over 4 routes and 50us spacing there are no
        // inversions; tighten spacing to force them
        let mut tight_inversions = 0;
        let mut prev = VTime::ZERO;
        for i in 0..200u64 {
            let r = ads[1].send_at(VTime::from_us(i / 10), 0, 64, i);
            if r.delivered_at < prev {
                tight_inversions += 1;
            }
            prev = r.delivered_at;
        }
        assert_eq!(inversions, 0);
        assert!(tight_inversions > 0, "expected some out-of-order arrivals");
    }

    #[test]
    fn loopback_skips_fabric() {
        let ads = pair();
        let r = ads[0].send_at(VTime::ZERO, 0, 128, 9);
        assert_eq!(r.delivered_at, r.injected_at);
        let got = ads[0].rx().recv_merge(ads[0].clock()).unwrap();
        assert_eq!(got.item.body, 9);
    }

    #[test]
    fn drops_delay_but_deliver() {
        let cfg = Arc::new(MachineConfig::default().with_drop_prob(0.3));
        let ads = Network::new(2, cfg.clone(), 99).into_adapters();
        let n = 300;
        for i in 0..n {
            ads[0].send_at(VTime::ZERO, 1, 512, i);
        }
        // all packets arrive despite drops
        let mut got = 0;
        while got < n {
            ads[1].rx().recv_merge(ads[1].clock()).unwrap();
            got += 1;
        }
        let retr = ads[0].stats().retransmits.get();
        assert!(retr > 0, "expected retransmissions at 30% drop");
        // expected ~ n * p/(1-p) retries
        let expect = n as f64 * 0.3 / 0.7;
        assert!(
            (retr as f64) > expect * 0.5 && (retr as f64) < expect * 2.0,
            "retr {retr}"
        );
    }

    #[test]
    fn timestamp_algebra_exact_under_drops() {
        // DESIGN §4 audit: with widely spaced sends the ejection link is
        // always idle, so each packet must decompose exactly as
        //   delivered = injected + fabric + k*(retransmit_timeout + ser)
        //             + ser + route_skew * route
        // with k >= 0 an integer and sum(k) equal to the retransmit stat.
        let cfg = Arc::new(MachineConfig::default().with_drop_prob(0.25));
        let ads = Network::new(2, cfg.clone(), 1234).into_adapters();
        let ser = cfg.wire_time(512);
        let penalty = (cfg.retransmit_timeout + ser).as_ns();
        let mut total_retries = 0u64;
        for i in 0..200u64 {
            // 10ms spacing dwarfs any retransmit penalty: no queueing.
            let at = VTime::from_us(i * 10_000);
            let r = ads[0].send_at(at, 1, 512, i);
            assert_eq!(r.injected_at, at + ser, "injection link must be idle");
            let pkt = ads[1].rx().recv_merge(ads[1].clock()).unwrap();
            assert_eq!(pkt.at, r.delivered_at);
            let base =
                r.injected_at + cfg.fabric_latency + ser + cfg.route_skew * pkt.item.route as u64;
            let slack = (r.delivered_at - base).as_ns();
            assert_eq!(
                slack % penalty,
                0,
                "pkt {i}: residual {slack}ns is not a whole number of retransmit penalties"
            );
            total_retries += slack / penalty;
        }
        assert_eq!(total_retries, ads[0].stats().retransmits.get());
        assert!(total_retries > 0, "25% drop over 200 packets must retry");
    }

    #[test]
    fn routes_still_reorder_under_drops() {
        // The reordering property must survive loss: retransmit penalties
        // only widen arrival spread, they never serialize routes.
        let cfg = Arc::new(MachineConfig::default().with_drop_prob(0.2));
        let ads = Network::new(2, cfg, 77).into_adapters();
        let n = 300u64;
        let mut arrivals = Vec::new();
        for i in 0..n {
            let r = ads[0].send_at(VTime::from_us(i / 10), 1, 64, i);
            arrivals.push(r.delivered_at);
        }
        let inversions = arrivals.windows(2).filter(|w| w[1] < w[0]).count();
        assert!(inversions > 0, "expected out-of-order arrivals under loss");
        // and every packet still arrives exactly once
        for _ in 0..n {
            ads[1].rx().recv_merge(ads[1].clock()).unwrap();
        }
        assert!(ads[1].rx().is_empty());
    }

    #[test]
    fn send_emits_wire_trace_events() {
        let session = spsim::trace::session();
        let cfg = Arc::new(MachineConfig::default().with_drop_prob(0.3));
        let ads = Network::new(2, cfg, 5).into_adapters();
        for i in 0..50u64 {
            ads[0].send_at(VTime::ZERO, 1, 256, i);
        }
        let sink = session.sink();
        assert_eq!(sink.injected(), 50);
        assert_eq!(sink.in_flight(), 50, "nothing consumed the packets yet");
        let t = session.finish();
        assert_eq!(t.count(spsim::EventKind::Inject), 50);
        assert_eq!(t.count(spsim::EventKind::Eject), 50);
        assert_eq!(
            t.count(spsim::EventKind::Drop),
            t.count(spsim::EventKind::Retransmit),
            "every drop charges exactly one retransmit"
        );
        assert!(t.count(spsim::EventKind::Drop) > 0, "30% drop must show up");
    }

    #[test]
    fn stats_count_traffic() {
        let ads = pair();
        ads[0].send_at(VTime::ZERO, 1, 200, 1);
        ads[0].send_at(VTime::ZERO, 1, 300, 2);
        assert_eq!(ads[0].stats().packets_sent.get(), 2);
        assert_eq!(ads[0].stats().bytes_sent.get(), 500);
        assert_eq!(ads[1].stats().packets_received.get(), 2);
    }

    #[test]
    fn shutdown_closes_rx() {
        let ads = pair();
        ads[1].shutdown();
        assert!(ads[1].rx().try_recv().is_err());
    }

    #[test]
    fn send_now_uses_clock() {
        let ads = pair();
        ads[0].clock().advance(VDur::from_us(25));
        let r = ads[0].send_now(1, 64, 0);
        assert!(r.injected_at >= VTime::from_us(25));
    }
}
