//! The wire packet envelope.
//!
//! The switch carries opaque protocol bodies (`M`) inside a small envelope
//! recording source, destination and wire size. The wire size — body payload
//! plus the *protocol's* packet header (48 bytes for LAPI, 16 for MPL) — is
//! what the links serialize; this is how the paper's header-tax bandwidth
//! difference enters the model.

use spsim::{NodeId, VTime};

/// A packet as delivered to a destination adapter's receive queue.
#[derive(Debug, Clone)]
pub struct WirePacket<M> {
    /// Sending node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Total bytes serialized on each link (protocol header + payload).
    pub wire_bytes: usize,
    /// Route index the fabric chose (exposed for tests/statistics).
    pub route: usize,
    /// Per-flow sequence number assigned by the sending adapter's
    /// reliability protocol (consecutive within each `src → dst` flow; the
    /// receiving adapter uses it to suppress duplicates).
    pub seq: u64,
    /// Virtual time the packet left the sender's injection link.
    pub injected_at: VTime,
    /// The protocol body.
    pub body: M,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_is_plain_data() {
        let p = WirePacket {
            src: 0,
            dst: 1,
            wire_bytes: 1024,
            route: 2,
            seq: 5,
            injected_at: VTime::from_us(3),
            body: vec![1u8, 2, 3],
        };
        let q = p.clone();
        assert_eq!(q.body, vec![1, 2, 3]);
        assert_eq!(q.route, 2);
    }
}
