//! GA over LAPI — the paper's §5.3 implementation.
//!
//! Protocol structure reproduced from the paper:
//!
//! * **Hybrid protocols**: small and noncontiguous requests travel as
//!   active messages whose entire payload rides in the ≤900-byte AM user
//!   header ("a substantial room for user data in the AM header"), medium
//!   requests are *pipelined* as a stream of such single-packet AMs, and
//!   large contiguous requests use `LAPI_Put`/`LAPI_Get` directly — with
//!   ≥0.5 MB 2-D patches switching to per-column RMC.
//! * **Generalized counters** (§5.3.2): one per remote node, counting the
//!   completion of every store-type operation sent there; GA's fence waits
//!   on them (covering completion handlers, which `LAPI_Fence` alone does
//!   not) and then on the LAPI-level fence.
//! * **AM buffer pool** (§5.3.1): bulk accumulates carry their payload as
//!   AM `udata` landing in preallocated pool buffers, combined by the
//!   completion handler (which is where up to three "threads" touch the
//!   same element — the mutual exclusion of §5.3.3 is the arena lock).
//! * **`read_inc` via `LAPI_Rmw`** (FetchAndAdd) and **locks via
//!   compare-and-swap** with backoff.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use lapi::{Addr, Counter, HdrOutcome, IoVec, LapiContext, RemoteCounter, RmwOp};
use parking_lot::Mutex;
use spsim::{NodeId, VClock, VDur};

use crate::backend::{GaBackend, GaStats, Segment};
use crate::config::GaConfig;
use crate::reqwire::{bytes_to_f64s, f64s_to_bytes, GaReq, Op};

/// The AM handler id GA registers on every node.
pub const GA_HANDLER: u32 = 0x6A;

/// Per-remote-node generalized counter (§5.3.2).
struct GenCntr {
    cntr: Counter,
    issued: AtomicI64,
}

/// State shared with the AM handler closures.
struct Shared {
    stats: GaStats,
    cfg: GaConfig,
    pool: Mutex<Vec<Addr>>,
}

impl Shared {
    fn take_pool_buffer(&self, need: usize) -> (Addr, bool) {
        if need <= self.cfg.pool_buffer_bytes {
            if let Some(a) = self.pool.lock().pop() {
                return (a, true);
            }
        }
        self.stats.pool_exhausted.incr();
        (Addr(0), false) // caller allocates
    }
}

/// GA's LAPI backend: owns the task's [`LapiContext`].
pub struct LapiGaBackend {
    ctx: LapiContext,
    shared: Arc<Shared>,
    gen: Vec<GenCntr>,
    /// Reused origin counter for blocking waits (single app thread).
    org_cntr: Counter,
    /// Reused reply counter for blocking gets.
    reply_cntr: Counter,
    /// Reusable landing area for get replies.
    scratch: Mutex<(Addr, usize)>,
    /// Mutex cell bases per owner task (set by `setup_mutexes`).
    mutex_bases: Mutex<Vec<Addr>>,
}

impl LapiGaBackend {
    /// Wrap a LAPI context (one per task; collective — all tasks must
    /// construct theirs before any communicates).
    pub fn new(ctx: LapiContext, cfg: GaConfig) -> Arc<Self> {
        let shared = Arc::new(Shared {
            stats: GaStats::default(),
            cfg: cfg.clone(),
            pool: Mutex::new(
                (0..cfg.pool_buffers)
                    .map(|_| ctx.alloc(cfg.pool_buffer_bytes))
                    .collect(),
            ),
        });
        let gen = (0..ctx.tasks())
            .map(|_| GenCntr {
                cntr: ctx.new_counter(),
                issued: AtomicI64::new(0),
            })
            .collect();
        let org_cntr = ctx.new_counter();
        let reply_cntr = ctx.new_counter();
        let h_shared = Arc::clone(&shared);
        ctx.register_handler(GA_HANDLER, move |hctx, info| {
            ga_header_handler(&h_shared, hctx, info)
        });
        Arc::new(LapiGaBackend {
            ctx,
            shared,
            gen,
            org_cntr,
            reply_cntr,
            scratch: Mutex::new((Addr(0), 0)),
            mutex_bases: Mutex::new(Vec::new()),
        })
    }

    /// Access the underlying LAPI context (e.g. for its statistics).
    pub fn lapi(&self) -> &LapiContext {
        &self.ctx
    }

    /// Usable request budget of one AM user header.
    fn uhdr_budget(&self) -> usize {
        self.ctx.machine().lapi_max_uhdr
    }

    fn ensure_scratch(&self, bytes: usize) -> Addr {
        let mut s = self.scratch.lock();
        if s.1 < bytes {
            let cap = bytes.next_power_of_two().max(4096);
            *s = (self.ctx.alloc(cap), cap);
        }
        s.0
    }

    /// Split `(segs, data)` into requests whose encoding fits one AM
    /// header, splitting long segments as needed.
    fn chunk_requests(
        &self,
        segs: &[Segment],
        data_elems: usize,
        with_data: bool,
    ) -> Vec<(Vec<Segment>, usize, usize)> {
        // Returns (segments, data element offset, data element count).
        let budget = self.uhdr_budget();
        let mut out = Vec::new();
        let mut cur: Vec<Segment> = Vec::new();
        let mut cur_elems = 0usize;
        let mut done_elems = 0usize;
        let fits = |nsegs: usize, nelems: usize| {
            GaReq::encoded_len(nsegs, if with_data { nelems } else { 0 }) <= budget
        };
        let mut pending: Vec<Segment> = segs.to_vec();
        pending.reverse(); // pop from the front cheaply
        while let Some(seg) = pending.pop() {
            if fits(cur.len() + 1, cur_elems + seg.len) {
                cur_elems += seg.len;
                cur.push(seg);
                continue;
            }
            // How much of this segment still fits in the current request?
            let mut room = 0usize;
            if with_data {
                while fits(cur.len() + 1, cur_elems + room + 1) {
                    room += 1;
                }
                room = room.min(seg.len);
            }
            if room > 0 {
                cur.push(Segment {
                    off: seg.off,
                    len: room,
                });
                cur_elems += room;
                pending.push(Segment {
                    off: seg.off + room,
                    len: seg.len - room,
                });
            } else if cur.is_empty() {
                // A single segment too large even alone (get path): split
                // at the largest size that fits.
                let mut cap = seg.len;
                while !fits(1, cap) {
                    cap /= 2;
                }
                let cap = cap.max(1);
                cur.push(Segment {
                    off: seg.off,
                    len: cap.min(seg.len),
                });
                cur_elems += cap.min(seg.len);
                if seg.len > cap {
                    pending.push(Segment {
                        off: seg.off + cap,
                        len: seg.len - cap,
                    });
                }
            } else {
                pending.push(seg);
            }
            out.push((std::mem::take(&mut cur), done_elems, cur_elems));
            done_elems += cur_elems;
            cur_elems = 0;
        }
        if !cur.is_empty() {
            out.push((cur, done_elems, cur_elems));
            done_elems += cur_elems;
        }
        debug_assert_eq!(done_elems, Segment::total(segs));
        debug_assert!(!with_data || done_elems == data_elems);
        out
    }

    fn gen_issue(&self, target: NodeId, k: i64) {
        // ordering: issue tally read only by this rank's own fence() —
        // single-writer, single-reader on the same thread.
        self.gen[target].issued.fetch_add(k, Ordering::Relaxed);
    }

    /// Trace which arm of the hybrid protocol (§5.3/§6) an operation took.
    #[inline]
    fn trace_branch(&self, taken: &'static str, bytes: usize) {
        spsim::trace::emit(
            self.ctx.id(),
            self.ctx.clock().now(),
            spsim::trace::EventKind::Branch,
            taken,
            0,
            bytes,
        );
    }

    /// Segment list → per-message vector tables (≤ the putv/getv limit),
    /// with the matching element ranges of the contiguous stream.
    fn vec_groups(&self, token: u64, segs: &[Segment]) -> Vec<(Vec<IoVec>, usize, usize)> {
        let max = self.ctx.max_vecs();
        let mut out = Vec::new();
        let mut elem_off = 0usize;
        for group in segs.chunks(max) {
            let vecs: Vec<IoVec> = group
                .iter()
                .map(|s| IoVec {
                    addr: Addr(token + s.off as u64 * 8),
                    len: s.len * 8,
                })
                .collect();
            let n: usize = group.iter().map(|s| s.len).sum();
            out.push((vecs, elem_off, n));
            elem_off += n;
        }
        out
    }
}

/// The GA header handler: decodes requests and serves them (§5.3).
fn ga_header_handler(
    shared: &Arc<Shared>,
    hctx: &lapi::HandlerCtx<'_>,
    info: lapi::AmInfo<'_>,
) -> HdrOutcome {
    let m = hctx.machine();
    let req = GaReq::decode(info.uhdr);
    match req.op {
        Op::Put => {
            hctx.charge(m.ga_serve_overhead);
            let mut pos = 0;
            hctx.mem_update(|sp| {
                for s in &req.segs {
                    sp.write_f64s(
                        Addr(req.token + s.off as u64 * 8),
                        &req.data[pos..pos + s.len],
                    );
                    pos += s.len;
                }
            });
            HdrOutcome::none()
        }
        Op::Acc if info.data_len == 0 => {
            // Short accumulate: applied right here in the header handler
            // (the paper's "header handler thread" case of §5.3.3).
            hctx.charge(m.ga_serve_overhead + m.ga_acc_per_elem * req.data.len() as u64);
            shared.stats.accs_applied.incr();
            apply_acc(hctx, &req);
            HdrOutcome::none()
        }
        Op::Acc => {
            // Bulk accumulate: payload (an encoded request) lands in a pool
            // buffer; the completion handler combines it (§5.3.1).
            let (buf, from_pool) = shared.take_pool_buffer(info.data_len);
            let buf = if from_pool {
                buf
            } else {
                hctx.alloc(info.data_len)
            };
            let shared = Arc::clone(shared);
            let len = info.data_len;
            HdrOutcome::into_buffer(buf).with_completion(Box::new(move |c| {
                let m = c.machine();
                let inner = GaReq::decode(&c.mem_read(buf, len));
                c.charge(m.ga_serve_overhead + m.ga_acc_per_elem * inner.data.len() as u64);
                shared.stats.accs_applied.incr();
                apply_acc(c, &inner);
                if from_pool {
                    shared.pool.lock().push(buf);
                }
            }))
        }
        Op::Get => {
            hctx.charge(m.ga_serve_overhead);
            // Gather the segments into a contiguous reply (the target-side
            // packing copy the paper says direct RMC avoids).
            let total = Segment::total(&req.segs);
            hctx.charge(m.memcpy_time(total * 8));
            let mut vals = Vec::with_capacity(total);
            for s in &req.segs {
                vals.extend(hctx.mem_read_f64s(Addr(req.token + s.off as u64 * 8), s.len));
            }
            hctx.reply_put(
                info.src,
                Addr(req.reply.0),
                &f64s_to_bytes(&vals),
                Some(RemoteCounter(req.reply.1)),
                None,
                None,
            )
            .expect("reply_put");
            HdrOutcome::none()
        }
        Op::ReadInc | Op::Lock | Op::Unlock | Op::Flush => {
            unreachable!(
                "{:?} is not an AM-served operation on the LAPI backend",
                req.op
            )
        }
    }
}

fn apply_acc(hctx: &lapi::HandlerCtx<'_>, req: &GaReq) {
    let mut pos = 0;
    hctx.mem_update(|sp| {
        for s in &req.segs {
            let addr = Addr(req.token + s.off as u64 * 8);
            let mut cur = sp.read_f64s(addr, s.len);
            for (c, v) in cur.iter_mut().zip(&req.data[pos..pos + s.len]) {
                *c += req.alpha * v;
            }
            sp.write_f64s(addr, &cur);
            pos += s.len;
        }
    });
}

impl GaBackend for LapiGaBackend {
    fn id(&self) -> NodeId {
        self.ctx.id()
    }

    fn tasks(&self) -> usize {
        self.ctx.tasks()
    }

    fn clock(&self) -> &VClock {
        self.ctx.clock()
    }

    fn memcpy_cost(&self, bytes: usize) -> VDur {
        self.ctx.machine().memcpy_time(bytes)
    }

    fn exchange(&self, value: u64) -> Vec<u64> {
        self.ctx.exchange(value)
    }

    fn sync(&self) {
        self.fence_all();
        self.ctx.gfence().expect("gfence");
    }

    fn create_block(&self, elems: usize) -> u64 {
        self.ctx.alloc(elems * 8).0
    }

    fn local_write(&self, token: u64, off: usize, data: &[f64]) {
        self.ctx.mem_write_f64s(Addr(token + off as u64 * 8), data);
    }

    fn local_read(&self, token: u64, off: usize, n: usize) -> Vec<f64> {
        self.ctx.mem_read_f64s(Addr(token + off as u64 * 8), n)
    }

    fn put(&self, target: NodeId, token: u64, segs: &[Segment], data: &[f64]) {
        debug_assert_eq!(Segment::total(segs), data.len());
        let m = self.ctx.machine();
        self.ctx.compute(m.ga_op_overhead);
        let cfg = &self.shared.cfg;
        let bytes = data.len() * 8;
        let stats = &self.shared.stats;
        if segs.len() == 1 && bytes >= cfg.direct_min_bytes {
            // Large contiguous: direct RMC, no copies (the 1-D fast path).
            stats.direct_rmc.incr();
            self.trace_branch("put-direct", bytes);
            self.gen_issue(target, 1);
            self.ctx
                .put(
                    target,
                    Addr(token + segs[0].off as u64 * 8),
                    &f64s_to_bytes(data),
                    None,
                    Some(&self.org_cntr),
                    Some(&self.gen[target].cntr),
                )
                .expect("put");
            self.ctx.waitcntr(&self.org_cntr, 1);
        } else if segs.len() > 1 && bytes >= cfg.direct_2d_min_bytes {
            // Very large 2-D: one LAPI_Put per column (§5.4).
            stats.per_column_rmc.incr();
            self.trace_branch("put-per-col", bytes);
            self.gen_issue(target, segs.len() as i64);
            let mut pos = 0;
            for s in segs {
                self.ctx
                    .put(
                        target,
                        Addr(token + s.off as u64 * 8),
                        &f64s_to_bytes(&data[pos..pos + s.len]),
                        None,
                        Some(&self.org_cntr),
                        Some(&self.gen[target].cntr),
                    )
                    .expect("put");
                pos += s.len;
            }
            self.ctx.waitcntr(&self.org_cntr, segs.len() as i64);
        } else if cfg.use_vector_rmc && segs.len() > 1 && bytes >= cfg.vector_min_bytes {
            // §6 extension: one putv message scatters the whole patch —
            // no per-segment messages, no packing copies.
            let groups = self.vec_groups(token, segs);
            stats.vector_rmc.add(groups.len() as u64);
            self.trace_branch("put-vector", bytes);
            self.gen_issue(target, groups.len() as i64);
            let k = groups.len() as i64;
            for (vecs, eoff, elems) in groups {
                self.ctx
                    .putv(
                        target,
                        &vecs,
                        &f64s_to_bytes(&data[eoff..eoff + elems]),
                        None,
                        Some(&self.org_cntr),
                        Some(&self.gen[target].cntr),
                    )
                    .expect("putv");
            }
            self.ctx.waitcntr(&self.org_cntr, k);
        } else {
            // Small/medium (incl. noncontiguous): pipelined header-payload
            // AMs, each a single switch packet.
            let chunks = self.chunk_requests(segs, data.len(), true);
            stats.am_requests.add(chunks.len() as u64);
            self.trace_branch("put-am", bytes);
            self.gen_issue(target, chunks.len() as i64);
            let k = chunks.len() as i64;
            for (csegs, doff, dlen) in chunks {
                let req = GaReq {
                    op: Op::Put,
                    token,
                    alpha: 1.0,
                    reply: (0, 0),
                    inc: 0,
                    segs: csegs,
                    data: data[doff..doff + dlen].to_vec(),
                };
                self.ctx
                    .amsend(
                        target,
                        GA_HANDLER,
                        &req.encode(),
                        &[],
                        None,
                        Some(&self.org_cntr),
                        Some(&self.gen[target].cntr),
                    )
                    .expect("amsend");
            }
            self.ctx.waitcntr(&self.org_cntr, k);
        }
    }

    fn get(&self, target: NodeId, token: u64, segs: &[Segment]) -> Vec<f64> {
        let m = self.ctx.machine();
        self.ctx.compute(m.ga_op_overhead);
        let cfg = &self.shared.cfg;
        let total = Segment::total(segs);
        let bytes = total * 8;
        let stats = &self.shared.stats;
        if segs.len() == 1 && bytes >= cfg.direct_min_bytes {
            // Direct LAPI_Get: avoids both packing copies (the 1-D path).
            stats.direct_rmc.incr();
            self.trace_branch("get-direct", bytes);
            let dst = self.ensure_scratch(bytes);
            self.ctx
                .get(
                    target,
                    Addr(token + segs[0].off as u64 * 8),
                    bytes,
                    dst,
                    None,
                    Some(&self.reply_cntr),
                )
                .expect("get");
            self.ctx.waitcntr(&self.reply_cntr, 1);
            bytes_to_f64s(&self.ctx.mem_read(dst, bytes))
        } else if segs.len() > 1 && bytes >= cfg.direct_2d_min_bytes {
            // Per-column LAPI_Get for huge 2-D patches.
            stats.per_column_rmc.incr();
            self.trace_branch("get-per-col", bytes);
            let dst = self.ensure_scratch(bytes);
            let mut pos = 0usize;
            for s in segs {
                self.ctx
                    .get(
                        target,
                        Addr(token + s.off as u64 * 8),
                        s.len * 8,
                        dst.offset(pos * 8),
                        None,
                        Some(&self.reply_cntr),
                    )
                    .expect("get");
                pos += s.len;
            }
            self.ctx.waitcntr(&self.reply_cntr, segs.len() as i64);
            bytes_to_f64s(&self.ctx.mem_read(dst, bytes))
        } else if cfg.use_vector_rmc && segs.len() > 1 && bytes >= cfg.vector_min_bytes {
            // §6 extension: one getv gathers the patch remotely.
            let dst = self.ensure_scratch(bytes);
            let groups = self.vec_groups(token, segs);
            stats.vector_rmc.add(groups.len() as u64);
            self.trace_branch("get-vector", bytes);
            let k = groups.len() as i64;
            for (vecs, eoff, _) in groups {
                self.ctx
                    .getv(
                        target,
                        &vecs,
                        dst.offset(eoff * 8),
                        None,
                        Some(&self.reply_cntr),
                    )
                    .expect("getv");
            }
            self.ctx.waitcntr(&self.reply_cntr, k);
            bytes_to_f64s(&self.ctx.mem_read(dst, bytes))
        } else {
            // AM request(s); target packs and reply_puts into our scratch.
            let dst = self.ensure_scratch(bytes);
            let chunks = self.chunk_requests(segs, 0, false);
            stats.am_requests.add(chunks.len() as u64);
            self.trace_branch("get-am", bytes);
            let k = chunks.len() as i64;
            let mut elem_off = 0usize;
            for (csegs, _, _) in chunks {
                let n: usize = csegs.iter().map(|s| s.len).sum();
                let req = GaReq {
                    op: Op::Get,
                    token,
                    alpha: 1.0,
                    reply: (dst.offset(elem_off * 8).0, self.reply_cntr.id()),
                    inc: 0,
                    segs: csegs,
                    data: vec![],
                };
                self.ctx
                    .amsend(target, GA_HANDLER, &req.encode(), &[], None, None, None)
                    .expect("amsend");
                elem_off += n;
            }
            self.ctx.waitcntr(&self.reply_cntr, k);
            bytes_to_f64s(&self.ctx.mem_read(dst, bytes))
        }
    }

    fn acc(&self, target: NodeId, token: u64, segs: &[Segment], alpha: f64, data: &[f64]) {
        debug_assert_eq!(Segment::total(segs), data.len());
        let m = self.ctx.machine();
        self.ctx.compute(m.ga_op_overhead);
        let cfg = &self.shared.cfg;
        let bytes = data.len() * 8;
        if bytes >= cfg.acc_udata_min_bytes {
            // Bulk: one AM with the encoded request as udata → pool buffer
            // → combined in the completion handler.
            self.shared.stats.am_bulk_requests.incr();
            self.trace_branch("acc-bulk", bytes);
            self.gen_issue(target, 1);
            let inner = GaReq {
                op: Op::Acc,
                token,
                alpha,
                reply: (0, 0),
                inc: 0,
                segs: segs.to_vec(),
                data: data.to_vec(),
            };
            let head = GaReq {
                op: Op::Acc,
                token,
                alpha,
                reply: (0, 0),
                inc: 0,
                segs: vec![],
                data: vec![],
            };
            // Building the udata image is a real packing copy: charge it.
            self.ctx.compute(m.memcpy_time(bytes));
            self.ctx
                .amsend(
                    target,
                    GA_HANDLER,
                    &head.encode(),
                    &inner.encode(),
                    None,
                    Some(&self.org_cntr),
                    Some(&self.gen[target].cntr),
                )
                .expect("amsend");
            self.ctx.waitcntr(&self.org_cntr, 1);
        } else {
            let chunks = self.chunk_requests(segs, data.len(), true);
            self.shared.stats.am_requests.add(chunks.len() as u64);
            self.trace_branch("acc-am", bytes);
            self.gen_issue(target, chunks.len() as i64);
            let k = chunks.len() as i64;
            for (csegs, doff, dlen) in chunks {
                let req = GaReq {
                    op: Op::Acc,
                    token,
                    alpha,
                    reply: (0, 0),
                    inc: 0,
                    segs: csegs,
                    data: data[doff..doff + dlen].to_vec(),
                };
                self.ctx
                    .amsend(
                        target,
                        GA_HANDLER,
                        &req.encode(),
                        &[],
                        None,
                        Some(&self.org_cntr),
                        Some(&self.gen[target].cntr),
                    )
                    .expect("amsend");
            }
            self.ctx.waitcntr(&self.org_cntr, k);
        }
    }

    fn read_inc(&self, target: NodeId, token: u64, off: usize, inc: i64) -> i64 {
        let m = self.ctx.machine();
        self.ctx.compute(m.ga_op_overhead);
        self.shared.stats.read_incs.incr();
        let fut = self
            .ctx
            .rmw(
                target,
                RmwOp::FetchAndAdd,
                Addr(token + off as u64 * 8),
                inc as u64,
                0,
            )
            .expect("rmw");
        fut.wait() as i64
    }

    fn setup_mutexes(&self, n: usize) {
        let p = self.tasks();
        let per = n.div_ceil(p).max(1);
        let base = self.ctx.alloc(per * 8);
        let bases = self
            .ctx
            .address_init(base)
            .into_iter()
            .collect::<Vec<Addr>>();
        *self.mutex_bases.lock() = bases;
    }

    fn lock(&self, mutex: usize) {
        let p = self.tasks();
        let owner = mutex % p;
        let addr = {
            let bases = self.mutex_bases.lock();
            assert!(!bases.is_empty(), "setup_mutexes not called");
            bases[owner].offset((mutex / p) * 8)
        };
        let backoff = VDur::from_us(self.shared.cfg.lock_backoff_us);
        loop {
            let prev = self
                .ctx
                .rmw(owner, RmwOp::CompareAndSwap, addr, 1, 0)
                .expect("rmw")
                .wait();
            if prev == 0 {
                return;
            }
            self.ctx.compute(backoff);
        }
    }

    fn unlock(&self, mutex: usize) {
        let p = self.tasks();
        let owner = mutex % p;
        let addr = {
            let bases = self.mutex_bases.lock();
            bases[owner].offset((mutex / p) * 8)
        };
        let prev = self
            .ctx
            .rmw(owner, RmwOp::Swap, addr, 0, 0)
            .expect("rmw")
            .wait();
        assert_eq!(prev, 1, "unlock of a mutex not held");
    }

    fn fence(&self, target: NodeId) {
        // Generalized-counter fence: wait for the completion of every
        // store-type operation issued toward `target`, including the
        // completion handlers of bulk accumulates (§5.3.2).
        // ordering: same-thread pairing with gen_issue — the issuing rank is
        // the fencing rank, so no cross-thread visibility is needed.
        let want = self.gen[target].issued.swap(0, Ordering::Relaxed);
        if want > 0 {
            self.ctx.waitcntr(&self.gen[target].cntr, want);
        }
        self.ctx.fence(target).expect("fence");
    }

    fn stats(&self) -> &GaStats {
        &self.shared.stats
    }
}
