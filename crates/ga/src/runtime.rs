//! The per-task GA runtime: array creation, synchronization, mutexes.

use std::sync::Arc;

use spsim::{NodeId, VDur, VTime};

use crate::array::{ArrayMeta, GaKind, GlobalArray};
use crate::backend::{GaBackend, GaStats};
use crate::dist::Distribution;

/// One task's Global Arrays runtime. Cheap to clone (shares the backend).
#[derive(Clone)]
pub struct Ga {
    backend: Arc<dyn GaBackend>,
    created: Arc<parking_lot::Mutex<u32>>,
}

impl Ga {
    /// Wrap a backend (one per task; construction is local, creation of
    /// arrays is collective).
    pub fn new(backend: Arc<dyn GaBackend>) -> Ga {
        Ga {
            backend,
            created: Arc::new(parking_lot::Mutex::new(0)),
        }
    }

    /// This task's id.
    pub fn id(&self) -> NodeId {
        self.backend.id()
    }

    /// Number of tasks.
    pub fn tasks(&self) -> usize {
        self.backend.tasks()
    }

    /// Current virtual time.
    pub fn now(&self) -> VTime {
        self.backend.clock().now()
    }

    /// Charge local computation (models application work).
    pub fn compute(&self, cost: VDur) {
        self.backend.clock().advance(cost);
    }

    /// The backend (e.g. for protocol statistics).
    pub fn backend(&self) -> &Arc<dyn GaBackend> {
        &self.backend
    }

    /// Protocol statistics.
    pub fn stats(&self) -> &GaStats {
        self.backend.stats()
    }

    /// Collective: create a `rows × cols` global array. Every task must
    /// call with identical arguments, in the same creation order.
    pub fn create(&self, name: &str, rows: usize, cols: usize, kind: GaKind) -> GlobalArray {
        let dist = Distribution::new(rows, cols, self.tasks());
        let elems = dist.local_elems(self.id());
        let token = self.backend.create_block(elems.max(1));
        let tokens = self.backend.exchange(token);
        let id = {
            let mut c = self.created.lock();
            *c += 1;
            *c - 1
        };
        GlobalArray::new(
            Arc::clone(&self.backend),
            Arc::new(ArrayMeta {
                id,
                name: name.to_string(),
                kind,
                dist,
                tokens,
            }),
        )
    }

    /// Collective: complete all outstanding GA operations everywhere and
    /// synchronize (GA `ga_sync`).
    pub fn sync(&self) {
        self.backend.sync();
    }

    /// Wait until every store this task issued toward `target` has been
    /// applied (GA fence, §5.3.2).
    pub fn fence(&self, target: NodeId) {
        self.backend.fence(target);
    }

    /// Fence against all tasks.
    pub fn fence_all(&self) {
        self.backend.fence_all();
    }

    /// Collective: create `n` global mutexes.
    pub fn create_mutexes(&self, n: usize) {
        self.backend.setup_mutexes(n);
    }

    /// Acquire global mutex `m`.
    pub fn lock(&self, m: usize) {
        self.backend.lock(m);
    }

    /// Release global mutex `m`.
    pub fn unlock(&self, m: usize) {
        self.backend.unlock(m);
    }
}

impl std::fmt::Debug for Ga {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ga")
            .field("task", &self.id())
            .field("tasks", &self.tasks())
            .finish()
    }
}
