//! Block distribution and 2-D patch arithmetic.
//!
//! GA distributes a `rows × cols` array over the `p` tasks of the job as a
//! regular 2-D block grid (as square as `p` allows), each task owning one
//! contiguous block stored **column-major** (GA is Fortran-born; columns
//! are the contiguous unit — which is why the paper's large 2-D transfers
//! switch to *per-column* `LAPI_Put`).
//!
//! Coordinates follow GA conventions: patches are inclusive `[lo, hi]`
//! pairs of `(row, col)`.

#![allow(clippy::needless_range_loop)] // index-as-coordinate loops are clearer here

use spsim::NodeId;

/// An inclusive 2-D index range `[lo, hi]` (GA-style patch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Patch {
    /// Upper-left corner `(row, col)`.
    pub lo: (usize, usize),
    /// Lower-right corner `(row, col)`, inclusive.
    pub hi: (usize, usize),
}

impl Patch {
    /// Construct, checking orientation.
    pub fn new(lo: (usize, usize), hi: (usize, usize)) -> Self {
        assert!(
            lo.0 <= hi.0 && lo.1 <= hi.1,
            "inverted patch {lo:?}..{hi:?}"
        );
        Patch { lo, hi }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.hi.0 - self.lo.0 + 1
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.hi.1 - self.lo.1 + 1
    }

    /// Number of elements.
    pub fn elems(&self) -> usize {
        self.rows() * self.cols()
    }

    /// Is this a single row or single column (the paper's "1-D" request)?
    pub fn is_1d(&self) -> bool {
        self.rows() == 1 || self.cols() == 1
    }

    /// Does the patch contain the element?
    pub fn contains(&self, i: usize, j: usize) -> bool {
        (self.lo.0..=self.hi.0).contains(&i) && (self.lo.1..=self.hi.1).contains(&j)
    }

    /// Intersection, if non-empty.
    pub fn intersect(&self, other: &Patch) -> Option<Patch> {
        let lo = (self.lo.0.max(other.lo.0), self.lo.1.max(other.lo.1));
        let hi = (self.hi.0.min(other.hi.0), self.hi.1.min(other.hi.1));
        if lo.0 <= hi.0 && lo.1 <= hi.1 {
            Some(Patch { lo, hi })
        } else {
            None
        }
    }
}

/// Split `n` items into `parts` near-even chunks; returns `(start, len)` of
/// chunk `idx` (first `n % parts` chunks get one extra).
fn split(n: usize, parts: usize, idx: usize) -> (usize, usize) {
    let base = n / parts;
    let rem = n % parts;
    let len = base + usize::from(idx < rem);
    let start = idx * base + idx.min(rem);
    (start, len)
}

/// The regular block distribution of one array.
#[derive(Debug, Clone)]
pub struct Distribution {
    /// Array rows.
    pub rows: usize,
    /// Array cols.
    pub cols: usize,
    /// Process-grid rows.
    pub pr: usize,
    /// Process-grid cols.
    pub pc: usize,
}

impl Distribution {
    /// Distribute `rows × cols` over `p` tasks on an as-square-as-possible
    /// `pr × pc` grid (`pr * pc == p`).
    pub fn new(rows: usize, cols: usize, p: usize) -> Self {
        assert!(p > 0 && rows > 0 && cols > 0);
        let mut pr = (p as f64).sqrt() as usize;
        while pr > 1 && !p.is_multiple_of(pr) {
            pr -= 1;
        }
        let pr = pr.max(1);
        Distribution {
            rows,
            cols,
            pr,
            pc: p / pr,
        }
    }

    /// Number of tasks.
    pub fn tasks(&self) -> usize {
        self.pr * self.pc
    }

    /// Grid coordinates of task `p` (row-major over the grid).
    pub fn grid_coords(&self, p: NodeId) -> (usize, usize) {
        assert!(p < self.tasks());
        (p / self.pc, p % self.pc)
    }

    /// The block owned by task `p`, or `None` if its block is empty
    /// (more grid rows/cols than array rows/cols).
    pub fn block(&self, p: NodeId) -> Option<Patch> {
        let (gi, gj) = self.grid_coords(p);
        let (r0, nr) = split(self.rows, self.pr, gi);
        let (c0, nc) = split(self.cols, self.pc, gj);
        if nr == 0 || nc == 0 {
            return None;
        }
        Some(Patch::new((r0, c0), (r0 + nr - 1, c0 + nc - 1)))
    }

    /// Rows of task `p`'s local block (its storage leading dimension).
    pub fn local_ld(&self, p: NodeId) -> usize {
        self.block(p).map(|b| b.rows()).unwrap_or(0)
    }

    /// Elements in task `p`'s local block.
    pub fn local_elems(&self, p: NodeId) -> usize {
        self.block(p).map(|b| b.elems()).unwrap_or(0)
    }

    /// Which task owns element `(i, j)`?
    pub fn locate(&self, i: usize, j: usize) -> NodeId {
        assert!(i < self.rows && j < self.cols, "({i},{j}) out of bounds");
        let gi = locate_1d(self.rows, self.pr, i);
        let gj = locate_1d(self.cols, self.pc, j);
        gi * self.pc + gj
    }

    /// Element offset of `(i, j)` within its owner's column-major block.
    pub fn local_offset(&self, i: usize, j: usize) -> usize {
        let p = self.locate(i, j);
        let b = self.block(p).expect("owner has a block");
        (j - b.lo.1) * b.rows() + (i - b.lo.0)
    }

    /// All tasks whose blocks intersect `patch`, with the intersections.
    pub fn owners(&self, patch: &Patch) -> Vec<(NodeId, Patch)> {
        assert!(
            patch.hi.0 < self.rows && patch.hi.1 < self.cols,
            "patch {patch:?} exceeds array {}x{}",
            self.rows,
            self.cols
        );
        let mut out = Vec::new();
        for p in 0..self.tasks() {
            if let Some(b) = self.block(p) {
                if let Some(inter) = b.intersect(patch) {
                    out.push((p, inter));
                }
            }
        }
        out
    }

    /// The column segments of `inter` (a sub-patch of `owner`'s block) as
    /// element offsets within the owner's column-major local storage —
    /// one [`crate::Segment`]-shaped `(offset, len)` per column.
    pub fn column_segments(&self, owner: NodeId, inter: &Patch) -> Vec<(usize, usize)> {
        let b = self.block(owner).expect("owner has a block");
        debug_assert!(b.intersect(inter) == Some(*inter));
        let ld = b.rows();
        let seg_rows = inter.rows();
        (inter.lo.1..=inter.hi.1)
            .map(|j| ((j - b.lo.1) * ld + (inter.lo.0 - b.lo.0), seg_rows))
            .collect()
    }
}

fn locate_1d(n: usize, parts: usize, idx: usize) -> usize {
    let base = n / parts;
    let rem = n % parts;
    let big = rem * (base + 1);
    if idx < big {
        idx / (base + 1)
    } else {
        rem + (idx - big) / base.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_everything() {
        for n in [1usize, 7, 100, 101, 1024] {
            for parts in [1usize, 2, 3, 4, 7] {
                let mut covered = 0;
                for idx in 0..parts {
                    let (start, len) = split(n, parts, idx);
                    assert_eq!(start, covered);
                    covered += len;
                }
                assert_eq!(covered, n);
            }
        }
    }

    #[test]
    fn grid_is_square_when_possible() {
        let d = Distribution::new(100, 100, 4);
        assert_eq!((d.pr, d.pc), (2, 2));
        let d = Distribution::new(100, 100, 6);
        assert_eq!((d.pr, d.pc), (2, 3));
        let d = Distribution::new(100, 100, 7);
        assert_eq!((d.pr, d.pc), (1, 7));
        let d = Distribution::new(100, 100, 16);
        assert_eq!((d.pr, d.pc), (4, 4));
    }

    #[test]
    fn blocks_tile_the_array() {
        let d = Distribution::new(17, 23, 6);
        let mut seen = vec![vec![false; 23]; 17];
        for p in 0..6 {
            let b = d.block(p).expect("non-empty");
            for i in b.lo.0..=b.hi.0 {
                for j in b.lo.1..=b.hi.1 {
                    assert!(!seen[i][j], "overlap at ({i},{j})");
                    seen[i][j] = true;
                }
            }
        }
        assert!(seen.iter().flatten().all(|&s| s));
    }

    #[test]
    fn locate_agrees_with_blocks() {
        let d = Distribution::new(31, 19, 4);
        for i in 0..31 {
            for j in 0..19 {
                let p = d.locate(i, j);
                assert!(d.block(p).expect("block").contains(i, j));
            }
        }
    }

    #[test]
    fn local_offset_is_column_major() {
        let d = Distribution::new(8, 8, 4); // 2x2 grid, blocks 4x4
                                            // task 0 owns rows 0..=3, cols 0..=3 with ld=4
        assert_eq!(d.local_offset(0, 0), 0);
        assert_eq!(d.local_offset(1, 0), 1);
        assert_eq!(d.local_offset(0, 1), 4);
        assert_eq!(d.local_offset(3, 3), 15);
        // task 3 owns rows 4..=7, cols 4..=7
        assert_eq!(d.local_offset(4, 4), 0);
        assert_eq!(d.local_offset(5, 6), 2 * 4 + 1);
    }

    #[test]
    fn owners_decompose_patches() {
        let d = Distribution::new(10, 10, 4);
        let patch = Patch::new((3, 3), (7, 7)); // spans all 4 blocks
        let owners = d.owners(&patch);
        assert_eq!(owners.len(), 4);
        let total: usize = owners.iter().map(|(_, p)| p.elems()).sum();
        assert_eq!(total, patch.elems());
    }

    #[test]
    fn column_segments_match_layout() {
        let d = Distribution::new(8, 8, 4);
        // patch inside task 0's block: rows 1..=2, cols 1..=2
        let segs = d.column_segments(0, &Patch::new((1, 1), (2, 2)));
        assert_eq!(segs, vec![(4 + 1, 2), (8 + 1, 2)]);
    }

    #[test]
    fn patch_helpers() {
        let p = Patch::new((2, 3), (5, 3));
        assert_eq!(p.rows(), 4);
        assert_eq!(p.cols(), 1);
        assert!(p.is_1d());
        assert_eq!(p.elems(), 4);
        assert!(p.contains(3, 3));
        assert!(!p.contains(3, 4));
        let q = Patch::new((0, 0), (2, 10));
        assert_eq!(p.intersect(&q), Some(Patch::new((2, 3), (2, 3))));
        assert_eq!(p.intersect(&Patch::new((6, 0), (7, 7))), None);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_patch_rejected() {
        let _ = Patch::new((3, 0), (2, 0));
    }

    #[test]
    #[should_panic(expected = "exceeds array")]
    fn oob_patch_rejected() {
        let d = Distribution::new(4, 4, 1);
        let _ = d.owners(&Patch::new((0, 0), (4, 4)));
    }

    #[test]
    fn uneven_distribution_locate_1d() {
        // 10 rows over 3 parts: 4,3,3
        assert_eq!(locate_1d(10, 3, 0), 0);
        assert_eq!(locate_1d(10, 3, 3), 0);
        assert_eq!(locate_1d(10, 3, 4), 1);
        assert_eq!(locate_1d(10, 3, 6), 1);
        assert_eq!(locate_1d(10, 3, 7), 2);
        assert_eq!(locate_1d(10, 3, 9), 2);
    }
}
