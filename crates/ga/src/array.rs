//! The [`GlobalArray`] handle: shared-memory-style 2-D array operations.
//!
//! All patch data moves in **column-major patch order** (leading dimension
//! = patch rows), matching the Fortran conventions of real GA. Operations
//! are unilateral: `put`/`acc` return when the origin buffer is reusable,
//! `get`/`read_inc` are blocking, and ordering between conflicting
//! operations requires `Ga::fence`/`Ga::sync` — exactly the §5.1 model
//! (out-of-order completion is allowed only for non-overlapping sections,
//! which is what fencing enforces for the overlapping ones).

use std::sync::Arc;

use spsim::NodeId;

use crate::backend::{GaBackend, Segment};
use crate::dist::{Distribution, Patch};

/// Element type of a global array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GaKind {
    /// IEEE double (`MT_F_DBL`): put/get/acc/scatter/gather.
    Double,
    /// 64-bit integer (`MT_F_INT`), stored as raw bits in the 8-byte
    /// cells: put/get (as bits) and the atomic `read_inc`.
    Int,
}

/// Immutable metadata of one created array.
pub struct ArrayMeta {
    /// Creation index (same on every task).
    pub id: u32,
    /// Debug name.
    pub name: String,
    /// Element type.
    pub kind: GaKind,
    /// Block distribution.
    pub dist: Distribution,
    /// Per-owner block tokens (LAPI: remote arena addresses).
    pub tokens: Vec<u64>,
}

/// A handle to a distributed 2-D array.
#[derive(Clone)]
pub struct GlobalArray {
    backend: Arc<dyn GaBackend>,
    meta: Arc<ArrayMeta>,
}

impl GlobalArray {
    pub(crate) fn new(backend: Arc<dyn GaBackend>, meta: Arc<ArrayMeta>) -> Self {
        GlobalArray { backend, meta }
    }

    /// Array dimensions `(rows, cols)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.meta.dist.rows, self.meta.dist.cols)
    }

    /// Element type.
    pub fn kind(&self) -> GaKind {
        self.meta.kind
    }

    /// Debug name.
    pub fn name(&self) -> &str {
        &self.meta.name
    }

    /// Which task owns element `(i, j)` (full locality information, §5.1).
    pub fn locate(&self, i: usize, j: usize) -> NodeId {
        self.meta.dist.locate(i, j)
    }

    /// The block owned by `task` (`ga_distribution`).
    pub fn distribution(&self, task: NodeId) -> Option<Patch> {
        self.meta.dist.block(task)
    }

    /// The calling task's own block.
    pub fn local_patch(&self) -> Option<Patch> {
        self.distribution(self.backend.id())
    }

    /// Whole-patch helper covering the full array.
    pub fn full_patch(&self) -> Patch {
        Patch::new((0, 0), (self.meta.dist.rows - 1, self.meta.dist.cols - 1))
    }

    // ------------------------------------------------------- data movement

    /// Store `data` (patch column-major) into the global `patch`.
    /// Unilateral; returns when `data` is reusable.
    pub fn put(&self, patch: Patch, data: &[f64]) {
        assert_eq!(data.len(), patch.elems(), "put data/patch size mismatch");
        let me = self.backend.id();
        for (owner, inter) in self.meta.dist.owners(&patch) {
            let segs = segments(&self.meta.dist, owner, &inter);
            let sub = extract(&*self.backend, &patch, &inter, data);
            if owner == me {
                // Local portion: plain stores, no communication (GA makes
                // locality visible precisely so applications can rely on
                // this being cheap).
                let mut pos = 0;
                for s in &segs {
                    self.backend
                        .local_write(self.meta.tokens[me], s.off, &sub[pos..pos + s.len]);
                    pos += s.len;
                }
            } else {
                self.backend
                    .put(owner, self.meta.tokens[owner], &segs, &sub);
            }
        }
    }

    /// Fetch the global `patch` (blocking); returns it column-major.
    pub fn get(&self, patch: Patch) -> Vec<f64> {
        let me = self.backend.id();
        let mut out = vec![0.0; patch.elems()];
        for (owner, inter) in self.meta.dist.owners(&patch) {
            let segs = segments(&self.meta.dist, owner, &inter);
            let sub = if owner == me {
                let mut sub = Vec::with_capacity(inter.elems());
                for s in &segs {
                    sub.extend(self.backend.local_read(self.meta.tokens[me], s.off, s.len));
                }
                sub
            } else {
                self.backend.get(owner, self.meta.tokens[owner], &segs)
            };
            place(&*self.backend, &patch, &inter, &sub, &mut out);
        }
        out
    }

    /// Atomically `global[patch] += alpha * data` (GA accumulate; §5.1:
    /// commutative, so concurrent accumulates need no ordering).
    pub fn acc(&self, patch: Patch, alpha: f64, data: &[f64]) {
        assert_eq!(
            self.meta.kind,
            GaKind::Double,
            "acc requires a Double array"
        );
        assert_eq!(data.len(), patch.elems(), "acc data/patch size mismatch");
        for (owner, inter) in self.meta.dist.owners(&patch) {
            let segs = segments(&self.meta.dist, owner, &inter);
            let sub = extract(&*self.backend, &patch, &inter, data);
            // Remote *and* local accumulates go through the backend: the
            // update must be atomic against concurrent remote accumulates,
            // and only the backend can serialize with its handlers.
            self.backend
                .acc(owner, self.meta.tokens[owner], &segs, alpha, &sub);
        }
    }

    /// Atomic fetch-and-add on integer element `(i, j)` (GA
    /// read-and-increment; the nxtval counter of SCF-style codes).
    pub fn read_inc(&self, i: usize, j: usize, inc: i64) -> i64 {
        assert_eq!(
            self.meta.kind,
            GaKind::Int,
            "read_inc requires an Int array"
        );
        let owner = self.meta.dist.locate(i, j);
        let off = self.meta.dist.local_offset(i, j);
        self.backend
            .read_inc(owner, self.meta.tokens[owner], off, inc)
    }

    /// Scatter `values[k]` to element `points[k]` (unilateral).
    pub fn scatter(&self, points: &[(usize, usize)], values: &[f64]) {
        assert_eq!(points.len(), values.len(), "scatter points/values mismatch");
        for (owner, segs, vals) in self.group_points(points, Some(values)) {
            let vals = vals.expect("values grouped");
            if owner == self.backend.id() {
                for (s, v) in segs.iter().zip(&vals) {
                    self.backend
                        .local_write(self.meta.tokens[owner], s.off, &[*v]);
                }
            } else {
                self.backend
                    .put(owner, self.meta.tokens[owner], &segs, &vals);
            }
        }
    }

    /// Gather the elements at `points` (blocking).
    pub fn gather(&self, points: &[(usize, usize)]) -> Vec<f64> {
        let mut out = vec![0.0; points.len()];
        // Remember each point's position to restore request order. BTreeMap,
        // not HashMap: gather issues one get per owner in iteration order, so
        // the map order shapes the wire traffic (lint rule L2).
        let mut index: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (k, &(i, j)) in points.iter().enumerate() {
            index
                .entry(self.meta.dist.locate(i, j))
                .or_default()
                .push(k);
        }
        for (owner, segs, _) in self.group_points(points, None) {
            let vals = if owner == self.backend.id() {
                segs.iter()
                    .map(|s| self.backend.local_read(self.meta.tokens[owner], s.off, 1)[0])
                    .collect()
            } else {
                self.backend.get(owner, self.meta.tokens[owner], &segs)
            };
            for (k, v) in index[&owner].iter().zip(vals) {
                out[*k] = v;
            }
        }
        out
    }

    /// Collective: fill every element with `v` (each task fills its own
    /// block; follow with `Ga::sync` before depending on remote values).
    pub fn fill(&self, v: f64) {
        let me = self.backend.id();
        if let Some(b) = self.local_patch() {
            self.backend
                .local_write(self.meta.tokens[me], 0, &vec![v; b.elems()]);
        }
    }

    /// Collective fill for Int arrays.
    pub fn fill_int(&self, v: i64) {
        assert_eq!(self.meta.kind, GaKind::Int);
        self.fill(f64::from_bits(v as u64));
    }

    /// Read integer element(s) of an Int array (blocking).
    pub fn get_int(&self, patch: Patch) -> Vec<i64> {
        assert_eq!(self.meta.kind, GaKind::Int);
        self.get(patch)
            .into_iter()
            .map(|v| v.to_bits() as i64)
            .collect()
    }

    // ------------------------------------------------- whole-array helpers
    //
    // The classic GA convenience operations (ga_copy, ga_scale, ga_ddot,
    // ga_symmetrize). All are collective: every task operates on its own
    // block; call `Ga::sync` afterwards before depending on remote values
    // (done internally where the result requires it).

    /// Collective: copy this array into `dst` (same dims/distribution).
    pub fn copy_to(&self, dst: &GlobalArray) {
        assert_eq!(self.dims(), dst.dims(), "copy between mismatched arrays");
        let me = self.backend.id();
        if let Some(b) = self.local_patch() {
            let mine = self.backend.local_read(self.meta.tokens[me], 0, b.elems());
            dst.backend.local_write(dst.meta.tokens[me], 0, &mine);
            self.backend
                .clock()
                .advance(self.backend.memcpy_cost(b.elems() * 8));
        }
    }

    /// Collective: multiply every element by `alpha` (ga_scale).
    pub fn scale(&self, alpha: f64) {
        let me = self.backend.id();
        if let Some(b) = self.local_patch() {
            let mut mine = self.backend.local_read(self.meta.tokens[me], 0, b.elems());
            for v in &mut mine {
                *v *= alpha;
            }
            self.backend.local_write(self.meta.tokens[me], 0, &mine);
            self.backend
                .clock()
                .advance(self.backend.memcpy_cost(b.elems() * 8));
        }
    }

    /// Collective: global dot product `sum(self .* other)` (ga_ddot).
    /// Every task contributes its local block; the reduced value is
    /// returned on all tasks.
    pub fn dot(&self, other: &GlobalArray) -> f64 {
        assert_eq!(self.dims(), other.dims(), "dot between mismatched arrays");
        let me = self.backend.id();
        let local = match self.local_patch() {
            Some(b) => {
                let a = self.backend.local_read(self.meta.tokens[me], 0, b.elems());
                let o = other
                    .backend
                    .local_read(other.meta.tokens[me], 0, b.elems());
                self.backend
                    .clock()
                    .advance(self.backend.memcpy_cost(b.elems() * 8));
                a.iter().zip(&o).map(|(x, y)| x * y).sum()
            }
            None => 0.0,
        };
        // reduce via the exchange board (MP_REDUCE-style helper)
        self.backend
            .exchange(local.to_bits())
            .into_iter()
            .map(f64::from_bits)
            .sum()
    }

    /// Collective: `A := (A + A^T) / 2` for square arrays (ga_symmetrize —
    /// a staple of the quantum-chemistry codes the paper targets).
    /// Remote transposed patches are fetched with `get`, so this exercises
    /// strided communication; internally synchronizes.
    pub fn symmetrize(&self) {
        let (rows, cols) = self.dims();
        assert_eq!(rows, cols, "symmetrize requires a square array");
        let me = self.backend.id();
        let Some(b) = self.local_patch() else {
            self.backend.sync();
            self.backend.sync();
            return;
        };
        // fetch the transposed counterpart of the local block
        let tp = Patch::new((b.lo.1, b.lo.0), (b.hi.1, b.hi.0));
        let t = self.get(tp); // (cols x rows) of the mirror patch
        self.backend.sync(); // everyone has read the old values
        let mine = self.backend.local_read(self.meta.tokens[me], 0, b.elems());
        // mirror patch is column-major with ld = tp.rows() = b.cols()
        let mut out = Vec::with_capacity(b.elems());
        for j in 0..b.cols() {
            for i in 0..b.rows() {
                let a_ij = mine[j * b.rows() + i];
                let a_ji = t[i * tp.rows() + j];
                out.push(0.5 * (a_ij + a_ji));
            }
        }
        self.backend.local_write(self.meta.tokens[me], 0, &out);
        self.backend.sync();
    }

    /// Read this task's local block (no communication), column-major.
    pub fn local_data(&self) -> Vec<f64> {
        match self.local_patch() {
            Some(b) => self
                .backend
                .local_read(self.meta.tokens[self.backend.id()], 0, b.elems()),
            None => Vec::new(),
        }
    }

    /// Group scatter/gather points by owner into length-1 segments (and
    /// optionally the matching values), owners in ascending id order.
    fn group_points(
        &self,
        points: &[(usize, usize)],
        values: Option<&[f64]>,
    ) -> Vec<(NodeId, Vec<Segment>, Option<Vec<f64>>)> {
        let mut by_owner: std::collections::BTreeMap<NodeId, (Vec<Segment>, Vec<f64>)> =
            std::collections::BTreeMap::new();
        for (k, &(i, j)) in points.iter().enumerate() {
            let owner = self.meta.dist.locate(i, j);
            let off = self.meta.dist.local_offset(i, j);
            let e = by_owner.entry(owner).or_default();
            e.0.push(Segment { off, len: 1 });
            if let Some(vals) = values {
                e.1.push(vals[k]);
            }
        }
        by_owner
            .into_iter()
            .map(|(o, (segs, vals))| (o, segs, values.map(|_| vals)))
            .collect()
    }
}

impl std::fmt::Debug for GlobalArray {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GlobalArray")
            .field("name", &self.meta.name)
            .field("dims", &self.dims())
            .field("kind", &self.meta.kind)
            .finish()
    }
}

/// Column segments of `inter` within `owner`'s block.
fn segments(dist: &Distribution, owner: NodeId, inter: &Patch) -> Vec<Segment> {
    dist.column_segments(owner, inter)
        .into_iter()
        .map(|(off, len)| Segment { off, len })
        .collect()
}

/// Copy the `inter` sub-patch out of the user's `patch`-shaped buffer
/// (column-major), charging the packing copy unless it is the whole patch.
fn extract(backend: &dyn GaBackend, patch: &Patch, inter: &Patch, data: &[f64]) -> Vec<f64> {
    if inter == patch {
        return data.to_vec();
    }
    backend
        .clock()
        .advance(backend.memcpy_cost(inter.elems() * 8));
    let ld = patch.rows();
    let mut out = Vec::with_capacity(inter.elems());
    for j in inter.lo.1..=inter.hi.1 {
        let col = (j - patch.lo.1) * ld;
        let r0 = inter.lo.0 - patch.lo.0;
        out.extend_from_slice(&data[col + r0..col + r0 + inter.rows()]);
    }
    out
}

/// Place `sub` (an `inter`-shaped column-major buffer) into the user's
/// `patch`-shaped output buffer.
fn place(backend: &dyn GaBackend, patch: &Patch, inter: &Patch, sub: &[f64], out: &mut [f64]) {
    if inter == patch {
        out.copy_from_slice(sub);
        return;
    }
    backend
        .clock()
        .advance(backend.memcpy_cost(inter.elems() * 8));
    let ld = patch.rows();
    let mut pos = 0;
    for j in inter.lo.1..=inter.hi.1 {
        let col = (j - patch.lo.1) * ld;
        let r0 = inter.lo.0 - patch.lo.0;
        out[col + r0..col + r0 + inter.rows()].copy_from_slice(&sub[pos..pos + inter.rows()]);
        pos += inter.rows();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_is_plain_data() {
        assert_ne!(GaKind::Double, GaKind::Int);
    }
}
