//! GA over MPL — the paper's previous-generation §5.2 implementation,
//! reproduced as the baseline for Figures 3–4 and the application study.
//!
//! Every remote access is a *request message* to an interrupt-driven
//! `rcvncall` handler at the owner:
//!
//! * the request header and any data must travel in **one MPL message**
//!   (MPL's in-order progress rules prevent separating them), so the
//!   origin pays a packing copy on every store and the handler pays an
//!   unpacking copy — the two extra copies the paper blames for MPL's
//!   bandwidth ceiling;
//! * each request invocation pays the AIX `rcvncall` handler-context cost
//!   (the >300 µs get latency of the previous-generation SP, ≈221 µs on
//!   the paper's hardware);
//! * atomicity of `accumulate`/`read_inc` comes from the single-threaded
//!   execution of the handler (the paper's `lockrnc` story);
//! * GA fence is a *flush* round trip: in-order delivery means a flush
//!   reply proves every earlier request from this origin was served.

use std::collections::VecDeque;
use std::sync::Arc;

use mpl::MplContext;
use parking_lot::Mutex;
use spsim::{NodeId, VClock, VDur};

use crate::backend::{GaBackend, GaStats, Segment};
use crate::reqwire::{GaReq, Op};

/// Tag of GA request messages (served by rcvncall).
pub const GA_REQ_TAG: i32 = 9000;
/// Tag of GA reply messages (get data, read_inc/lock/flush replies).
pub const GA_REPLY_TAG: i32 = 9001;

/// Handler-side state: block storage, locks.
struct Shared {
    stats: GaStats,
    blocks: Mutex<Vec<Vec<f64>>>,
    locks: Mutex<LockTable>,
}

#[derive(Default)]
struct LockTable {
    held: Vec<bool>,
    waiters: Vec<VecDeque<NodeId>>,
}

/// GA's MPL backend: owns the task's [`MplContext`].
pub struct MplGaBackend {
    ctx: MplContext,
    shared: Arc<Shared>,
}

impl MplGaBackend {
    /// Wrap an MPL context (collective; installs the rcvncall handler and
    /// switches the context to interrupt mode).
    pub fn new(ctx: MplContext) -> Arc<Self> {
        let shared = Arc::new(Shared {
            stats: GaStats::default(),
            blocks: Mutex::new(Vec::new()),
            locks: Mutex::new(LockTable::default()),
        });
        let h = Arc::clone(&shared);
        ctx.rcvncall(GA_REQ_TAG, move |hctx, data, st| {
            serve_request(&h, hctx, &data, st.src);
        });
        Arc::new(MplGaBackend { ctx, shared })
    }

    /// Access the underlying MPL context.
    pub fn mpl(&self) -> &MplContext {
        &self.ctx
    }

    fn request(&self, target: NodeId, req: &GaReq) {
        self.shared.stats.mpl_requests.incr();
        let bytes = req.encode();
        // The MPL backend has exactly one protocol arm (marshalled send /
        // rcvncall serve, §5.2) — traced so timelines show which backend a
        // GA operation went through.
        spsim::trace::emit(
            self.ctx.id(),
            self.ctx.clock().now(),
            spsim::trace::EventKind::Branch,
            "mpl-request",
            0,
            bytes.len(),
        );
        // Marshalling + the packing copy: header and data must share one
        // message under MPL's in-order progress rules (§5.2).
        let m = self.ctx.machine();
        self.ctx
            .compute(m.ga_mpl_request_overhead + m.memcpy_time(bytes.len()));
        self.ctx.send(target, GA_REQ_TAG, &bytes);
    }

    fn request_reply(&self, target: NodeId, req: &GaReq) -> Vec<u8> {
        self.request(target, req);
        let (data, _) = self.ctx.recv(Some(target), Some(GA_REPLY_TAG));
        data
    }
}

/// The rcvncall request handler (runs on the MPL dispatcher, one at a time
/// per node — which is what makes accumulate/read_inc atomic here).
fn serve_request(shared: &Arc<Shared>, hctx: &mpl::MplHandlerCtx<'_>, bytes: &[u8], src: NodeId) {
    let m = hctx.machine();
    let req = GaReq::decode(bytes);
    match req.op {
        Op::Put => {
            // Unpack into the block: the handler-side copy of §5.2.
            hctx.charge(m.ga_serve_overhead + m.memcpy_time(req.data.len() * 8));
            let mut blocks = shared.blocks.lock();
            let block = &mut blocks[req.token as usize];
            let mut pos = 0;
            for s in &req.segs {
                block[s.off..s.off + s.len].copy_from_slice(&req.data[pos..pos + s.len]);
                pos += s.len;
            }
        }
        Op::Acc => {
            hctx.charge(m.ga_serve_overhead + m.ga_acc_per_elem * req.data.len() as u64);
            shared.stats.accs_applied.incr();
            let mut blocks = shared.blocks.lock();
            let block = &mut blocks[req.token as usize];
            let mut pos = 0;
            for s in &req.segs {
                for (c, v) in block[s.off..s.off + s.len]
                    .iter_mut()
                    .zip(&req.data[pos..pos + s.len])
                {
                    *c += req.alpha * v;
                }
                pos += s.len;
            }
        }
        Op::Get => {
            // Pack the requested elements and send them back: the copy
            // into the reply message buffer.
            let total = Segment::total(&req.segs);
            hctx.charge(m.ga_serve_overhead + m.memcpy_time(total * 8));
            let blocks = shared.blocks.lock();
            let block = &blocks[req.token as usize];
            let mut out = Vec::with_capacity(total * 8);
            for s in &req.segs {
                for v in &block[s.off..s.off + s.len] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            drop(blocks);
            hctx.isend(src, GA_REPLY_TAG, &out);
        }
        Op::ReadInc => {
            hctx.charge(m.ga_serve_overhead);
            shared.stats.read_incs.incr();
            let off = req.segs[0].off;
            let mut blocks = shared.blocks.lock();
            let cell = &mut blocks[req.token as usize][off];
            let prev = cell.to_bits() as i64;
            *cell = f64::from_bits((prev + req.inc) as u64);
            drop(blocks);
            hctx.isend(src, GA_REPLY_TAG, &prev.to_le_bytes());
        }
        Op::Lock => {
            hctx.charge(m.ga_serve_overhead);
            let mutex = req.inc as usize;
            let mut lt = shared.locks.lock();
            ensure_lock_slot(&mut lt, mutex);
            if lt.held[mutex] {
                lt.waiters[mutex].push_back(src);
            } else {
                lt.held[mutex] = true;
                drop(lt);
                hctx.isend(src, GA_REPLY_TAG, b"grant");
            }
        }
        Op::Unlock => {
            hctx.charge(m.ga_serve_overhead);
            let mutex = req.inc as usize;
            let mut lt = shared.locks.lock();
            ensure_lock_slot(&mut lt, mutex);
            assert!(lt.held[mutex], "unlock of free GA mutex {mutex}");
            match lt.waiters[mutex].pop_front() {
                Some(next) => {
                    drop(lt);
                    hctx.isend(next, GA_REPLY_TAG, b"grant");
                }
                None => lt.held[mutex] = false,
            }
        }
        Op::Flush => {
            // In-order delivery: replying proves all earlier requests from
            // `src` were already served.
            hctx.isend(src, GA_REPLY_TAG, b"flushed");
        }
    }
}

fn ensure_lock_slot(lt: &mut LockTable, mutex: usize) {
    if lt.held.len() <= mutex {
        lt.held.resize(mutex + 1, false);
        lt.waiters.resize_with(mutex + 1, VecDeque::new);
    }
}

impl GaBackend for MplGaBackend {
    fn id(&self) -> NodeId {
        self.ctx.id()
    }

    fn tasks(&self) -> usize {
        self.ctx.tasks()
    }

    fn clock(&self) -> &VClock {
        self.ctx.clock()
    }

    fn memcpy_cost(&self, bytes: usize) -> VDur {
        self.ctx.machine().memcpy_time(bytes)
    }

    fn exchange(&self, value: u64) -> Vec<u64> {
        self.ctx.exchange(value)
    }

    fn sync(&self) {
        self.fence_all();
        self.ctx.barrier();
    }

    fn create_block(&self, elems: usize) -> u64 {
        let mut blocks = self.shared.blocks.lock();
        blocks.push(vec![0.0; elems]);
        (blocks.len() - 1) as u64
    }

    fn local_write(&self, token: u64, off: usize, data: &[f64]) {
        self.shared.blocks.lock()[token as usize][off..off + data.len()].copy_from_slice(data);
    }

    fn local_read(&self, token: u64, off: usize, n: usize) -> Vec<f64> {
        self.shared.blocks.lock()[token as usize][off..off + n].to_vec()
    }

    fn put(&self, target: NodeId, token: u64, segs: &[Segment], data: &[f64]) {
        self.ctx.compute(self.ctx.machine().ga_op_overhead);
        self.request(
            target,
            &GaReq {
                op: Op::Put,
                token,
                alpha: 1.0,
                reply: (0, 0),
                inc: 0,
                segs: segs.to_vec(),
                data: data.to_vec(),
            },
        );
    }

    fn get(&self, target: NodeId, token: u64, segs: &[Segment]) -> Vec<f64> {
        self.ctx.compute(self.ctx.machine().ga_op_overhead);
        let reply = self.request_reply(
            target,
            &GaReq {
                op: Op::Get,
                token,
                alpha: 1.0,
                reply: (GA_REPLY_TAG as u64, 0),
                inc: 0,
                segs: segs.to_vec(),
                data: vec![],
            },
        );
        crate::reqwire::bytes_to_f64s(&reply)
    }

    fn acc(&self, target: NodeId, token: u64, segs: &[Segment], alpha: f64, data: &[f64]) {
        self.ctx.compute(self.ctx.machine().ga_op_overhead);
        self.request(
            target,
            &GaReq {
                op: Op::Acc,
                token,
                alpha,
                reply: (0, 0),
                inc: 0,
                segs: segs.to_vec(),
                data: data.to_vec(),
            },
        );
    }

    fn read_inc(&self, target: NodeId, token: u64, off: usize, inc: i64) -> i64 {
        self.ctx.compute(self.ctx.machine().ga_op_overhead);
        let reply = self.request_reply(
            target,
            &GaReq {
                op: Op::ReadInc,
                token,
                alpha: 1.0,
                reply: (GA_REPLY_TAG as u64, 0),
                inc,
                segs: vec![Segment { off, len: 1 }],
                data: vec![],
            },
        );
        i64::from_le_bytes(reply.try_into().expect("8-byte read_inc reply"))
    }

    fn setup_mutexes(&self, _n: usize) {
        // Lock table grows on demand at each owner; nothing to exchange.
        self.ctx.barrier();
    }

    fn lock(&self, mutex: usize) {
        let owner = mutex % self.tasks();
        let grant = self.request_reply(
            owner,
            &GaReq {
                op: Op::Lock,
                token: 0,
                alpha: 1.0,
                reply: (GA_REPLY_TAG as u64, 0),
                inc: mutex as i64,
                segs: vec![],
                data: vec![],
            },
        );
        assert_eq!(&grant, b"grant");
    }

    fn unlock(&self, mutex: usize) {
        let owner = mutex % self.tasks();
        self.request(
            owner,
            &GaReq {
                op: Op::Unlock,
                token: 0,
                alpha: 1.0,
                reply: (0, 0),
                inc: mutex as i64,
                segs: vec![],
                data: vec![],
            },
        );
    }

    fn fence(&self, target: NodeId) {
        let reply = self.request_reply(
            target,
            &GaReq {
                op: Op::Flush,
                token: 0,
                alpha: 1.0,
                reply: (GA_REPLY_TAG as u64, 0),
                inc: 0,
                segs: vec![],
                data: vec![],
            },
        );
        assert_eq!(&reply, b"flushed");
    }

    fn stats(&self) -> &GaStats {
        &self.shared.stats
    }
}
