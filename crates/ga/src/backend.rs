//! The backend abstraction: what a communication substrate must provide
//! for GA to run on it.
//!
//! The GA layer decomposes array patches into per-owner **segment lists**
//! (element offsets into the owner's column-major block) and hands them to
//! the backend; everything protocol-specific — hybrid AM/RMC switching,
//! rcvncall requests, fencing — lives behind this trait.

use spsim::{NodeId, StatCounter, VClock, VDur};

/// One contiguous run of elements within a remote block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Element offset within the owner's local block.
    pub off: usize,
    /// Run length in elements.
    pub len: usize,
}

impl Segment {
    /// Total elements across segments.
    pub fn total(segs: &[Segment]) -> usize {
        segs.iter().map(|s| s.len).sum()
    }
}

/// Counters of GA protocol activity (which protocol served which request —
/// the hybrid switching the paper describes is observable here).
#[derive(Clone, Debug, Default)]
pub struct GaStats {
    /// Requests served by the AM header-payload (pipelined ≤900 B) path.
    pub am_requests: StatCounter,
    /// Requests served by big-`udata` AMs (pool buffers).
    pub am_bulk_requests: StatCounter,
    /// Requests served by direct RMC (`LAPI_Put`/`LAPI_Get`).
    pub direct_rmc: StatCounter,
    /// Requests served by the §6 vector extension (`putv`/`getv`).
    pub vector_rmc: StatCounter,
    /// Per-column RMC transfers (large 2-D patches).
    pub per_column_rmc: StatCounter,
    /// MPL request messages (rcvncall path).
    pub mpl_requests: StatCounter,
    /// Times the AM buffer pool was empty and heap fallback was used.
    pub pool_exhausted: StatCounter,
    /// Atomic accumulates applied at this node.
    pub accs_applied: StatCounter,
    /// read_inc operations served.
    pub read_incs: StatCounter,
}

/// A communication substrate GA can run on (LAPI or MPL here).
///
/// `put`/`acc` return once the *origin buffer is reusable* (GA put is
/// non-blocking with respect to remote completion — §5.4); `get` and
/// `read_inc` are blocking. `fence(t)` waits until every put/acc this task
/// issued toward `t` has been applied remotely, including accumulate
/// arithmetic (GA's generalized-counter semantics, §5.3.2).
pub trait GaBackend: Send + Sync {
    /// This task's id.
    fn id(&self) -> NodeId;
    /// Number of tasks.
    fn tasks(&self) -> usize;
    /// The node's virtual clock.
    fn clock(&self) -> &VClock;
    /// Cost of a protocol memcpy of `bytes` (for the GA layer's own
    /// packing copies).
    fn memcpy_cost(&self, bytes: usize) -> VDur;
    /// Collective u64 exchange (block-token/address exchange at creation).
    fn exchange(&self, value: u64) -> Vec<u64>;
    /// Job-wide synchronization: complete all outstanding operations
    /// everywhere, then barrier (GA `sync`).
    fn sync(&self);

    /// Allocate a local block of `elems` f64/i64 cells; returns the token
    /// other tasks use to address it (for LAPI this is the raw arena
    /// address, exchanged exactly like `LAPI_Address_init` exchanges real
    /// addresses).
    fn create_block(&self, elems: usize) -> u64;
    /// Write into the local block (no communication).
    fn local_write(&self, token: u64, off: usize, data: &[f64]);
    /// Read from the local block (no communication).
    fn local_read(&self, token: u64, off: usize, n: usize) -> Vec<f64>;

    /// Store `data` into `target`'s block at `segs` (in order). Returns
    /// when the origin buffer is reusable.
    fn put(&self, target: NodeId, token: u64, segs: &[Segment], data: &[f64]);
    /// Fetch the elements of `segs` from `target`'s block (blocking).
    fn get(&self, target: NodeId, token: u64, segs: &[Segment]) -> Vec<f64>;
    /// Atomically `remote[seg] += alpha * data`. Returns when the origin
    /// buffer is reusable; remote application is atomic per request.
    fn acc(&self, target: NodeId, token: u64, segs: &[Segment], alpha: f64, data: &[f64]);
    /// Atomic integer fetch-and-add on one cell (blocking; returns the
    /// previous value). Cells hold i64 when used this way.
    fn read_inc(&self, target: NodeId, token: u64, off: usize, inc: i64) -> i64;

    /// Collective: create `n` global mutexes.
    fn setup_mutexes(&self, n: usize);
    /// Acquire global mutex `m` (blocking).
    fn lock(&self, m: usize);
    /// Release global mutex `m`.
    fn unlock(&self, m: usize);

    /// Wait until all put/acc this task issued toward `target` have been
    /// fully applied there.
    fn fence(&self, target: NodeId);
    /// Fence against every task.
    fn fence_all(&self) {
        for t in 0..self.tasks() {
            self.fence(t);
        }
    }

    /// Protocol statistics.
    fn stats(&self) -> &GaStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_totals() {
        let segs = [Segment { off: 0, len: 3 }, Segment { off: 10, len: 5 }];
        assert_eq!(Segment::total(&segs), 8);
        assert_eq!(Segment::total(&[]), 0);
    }
}
