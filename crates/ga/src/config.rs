//! Protocol thresholds of the GA hybrid protocols (§5.3).
//!
//! "The thresholds used for switching between different protocols are
//! selected empirically to maximize the performance" — these are the knobs.

/// Thresholds and sizes of the hybrid GA protocols.
#[derive(Debug, Clone)]
pub struct GaConfig {
    /// Contiguous transfers of at least this many **bytes** use direct
    /// remote memory copy (`LAPI_Put`/`LAPI_Get`) instead of active
    /// messages.
    pub direct_min_bytes: usize,
    /// 2-D patches of at least this many total bytes switch to per-column
    /// direct RMC (the paper's ≈0.5 MB switch point in Figures 3–4).
    pub direct_2d_min_bytes: usize,
    /// Accumulates larger than this use a single big active message with
    /// the data in `udata` (landing in a pool buffer, combined by the
    /// completion handler) instead of a pipelined header-payload stream.
    pub acc_udata_min_bytes: usize,
    /// Number of preallocated AM buffers per node (§5.3.1).
    pub pool_buffers: usize,
    /// Size of each pool buffer in bytes.
    pub pool_buffer_bytes: usize,
    /// Backoff charged between lock CAS retries (virtual µs).
    pub lock_backoff_us: u64,
    /// Use the §6 vector (`putv`/`getv`) extension for noncontiguous
    /// transfers instead of AM streams. Off by default — the paper's 1998
    /// protocols predate it; the ablation bench turns it on to quantify
    /// the improvement the paper predicts.
    pub use_vector_rmc: bool,
    /// Minimum bytes before a noncontiguous transfer uses the vector path
    /// (tiny requests still ride a single AM header).
    pub vector_min_bytes: usize,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            direct_min_bytes: 976,
            direct_2d_min_bytes: 512 * 1024,
            acc_udata_min_bytes: 64 * 1024,
            pool_buffers: 16,
            pool_buffer_bytes: 256 * 1024,
            lock_backoff_us: 5,
            use_vector_rmc: false,
            vector_min_bytes: 2048,
        }
    }
}

impl GaConfig {
    /// Builder-style: enable the §6 vector-RMC extension.
    pub fn with_vector_rmc(mut self) -> Self {
        self.use_vector_rmc = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = GaConfig::default();
        assert!(c.direct_min_bytes < c.direct_2d_min_bytes);
        assert!(c.pool_buffers > 0 && c.pool_buffer_bytes > 0);
    }
}
