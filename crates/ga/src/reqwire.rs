//! Encoding of GA request messages.
//!
//! Both backends ship GA requests as byte strings — inside LAPI AM user
//! headers (≤ `MAX_UHDR_SZ`) or as MPL messages — so the encoding is manual
//! little-endian (the paper's SP is homogeneous; no cross-endian concerns).

use crate::backend::Segment;

/// Operation codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Op {
    /// Store the carried elements at the carried segments.
    Put = 1,
    /// Fetch the elements of the carried segments and reply.
    Get = 2,
    /// Atomically add `alpha *` carried elements at the segments.
    Acc = 3,
    /// Atomic fetch-and-add on one cell; reply with the previous value.
    ReadInc = 4,
    /// Acquire a mutex (reply = grant).
    Lock = 5,
    /// Release a mutex.
    Unlock = 6,
    /// Flush marker (MPL backend fence; reply = all prior requests done).
    Flush = 7,
}

impl Op {
    /// Decode an op byte.
    pub fn from_u8(b: u8) -> Op {
        match b {
            1 => Op::Put,
            2 => Op::Get,
            3 => Op::Acc,
            4 => Op::ReadInc,
            5 => Op::Lock,
            6 => Op::Unlock,
            7 => Op::Flush,
            other => panic!("bad GA op byte {other}"),
        }
    }
}

/// A decoded GA request.
#[derive(Debug, Clone, PartialEq)]
pub struct GaReq {
    /// Operation.
    pub op: Op,
    /// Remote block token (LAPI: target arena address; MPL: block index).
    pub token: u64,
    /// Scale factor (Acc) — 1.0 otherwise.
    pub alpha: f64,
    /// Reply routing, op-specific:
    /// Get (LAPI): `(origin reply address, origin counter id)`;
    /// Get/ReadInc/Lock/Flush (MPL): `(reply tag, 0)`;
    /// ReadInc: increment is stored in `alpha` as bits? — no: see `inc`.
    pub reply: (u64, u32),
    /// Increment for ReadInc / mutex id for Lock/Unlock.
    pub inc: i64,
    /// Target segments (element offsets/lengths in the remote block).
    pub segs: Vec<Segment>,
    /// Element payload (Put/Acc), in segment order.
    pub data: Vec<f64>,
}

impl GaReq {
    /// Fixed header bytes before the segment list.
    pub const HEADER_BYTES: usize = 1 + 8 + 8 + 8 + 4 + 8 + 4;
    /// Bytes per encoded segment.
    pub const SEG_BYTES: usize = 8 + 4;

    /// Encoded size of a request with `nsegs` segments and `nelems`
    /// payload elements.
    pub fn encoded_len(nsegs: usize, nelems: usize) -> usize {
        Self::HEADER_BYTES + nsegs * Self::SEG_BYTES + nelems * 8
    }

    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::encoded_len(self.segs.len(), self.data.len()));
        out.push(self.op as u8);
        out.extend_from_slice(&self.token.to_le_bytes());
        out.extend_from_slice(&self.alpha.to_le_bytes());
        out.extend_from_slice(&self.reply.0.to_le_bytes());
        out.extend_from_slice(&self.reply.1.to_le_bytes());
        out.extend_from_slice(&self.inc.to_le_bytes());
        out.extend_from_slice(&(self.segs.len() as u32).to_le_bytes());
        for s in &self.segs {
            out.extend_from_slice(&(s.off as u64).to_le_bytes());
            out.extend_from_slice(&(s.len as u32).to_le_bytes());
        }
        for v in &self.data {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Deserialize (panics on malformed input — requests are
    /// library-generated, so corruption is an internal bug).
    pub fn decode(bytes: &[u8]) -> GaReq {
        let mut r = Reader { b: bytes, pos: 0 };
        let op = Op::from_u8(r.u8());
        let token = r.u64();
        let alpha = f64::from_bits(r.u64());
        let reply0 = r.u64();
        let reply1 = r.u32();
        let inc = r.u64() as i64;
        let nsegs = r.u32() as usize;
        let mut segs = Vec::with_capacity(nsegs);
        for _ in 0..nsegs {
            let off = r.u64() as usize;
            let len = r.u32() as usize;
            segs.push(Segment { off, len });
        }
        let mut data = Vec::with_capacity(r.remaining() / 8);
        while r.remaining() >= 8 {
            data.push(f64::from_bits(r.u64()));
        }
        assert_eq!(r.remaining(), 0, "trailing bytes in GA request");
        GaReq {
            op,
            token,
            alpha,
            reply: (reply0, reply1),
            inc,
            segs,
            data,
        }
    }
}

struct Reader<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn u8(&mut self) -> u8 {
        let v = self.b[self.pos];
        self.pos += 1;
        v
    }
    fn u32(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.b[self.pos..self.pos + 4].try_into().expect("4"));
        self.pos += 4;
        v
    }
    fn u64(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.b[self.pos..self.pos + 8].try_into().expect("8"));
        self.pos += 8;
        v
    }
    fn remaining(&self) -> usize {
        self.b.len() - self.pos
    }
}

/// Pack f64s as LE bytes (for RMC transfers).
pub fn f64s_to_bytes(vals: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 8);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Unpack LE bytes into f64s.
pub fn bytes_to_f64s(bytes: &[u8]) -> Vec<f64> {
    assert_eq!(bytes.len() % 8, 0, "ragged f64 byte buffer");
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(req: &GaReq) {
        let enc = req.encode();
        assert_eq!(
            enc.len(),
            GaReq::encoded_len(req.segs.len(), req.data.len())
        );
        assert_eq!(&GaReq::decode(&enc), req);
    }

    #[test]
    fn encode_decode_put() {
        roundtrip(&GaReq {
            op: Op::Put,
            token: 0xabcd_ef01,
            alpha: 1.0,
            reply: (0, 0),
            inc: 0,
            segs: vec![Segment { off: 5, len: 3 }, Segment { off: 100, len: 1 }],
            data: vec![1.5, -2.0, 3.0, 4.0],
        });
    }

    #[test]
    fn encode_decode_get() {
        roundtrip(&GaReq {
            op: Op::Get,
            token: 7,
            alpha: 1.0,
            reply: (0xdead_beef, 42),
            inc: 0,
            segs: vec![Segment { off: 0, len: 1000 }],
            data: vec![],
        });
    }

    #[test]
    fn encode_decode_read_inc_negative() {
        roundtrip(&GaReq {
            op: Op::ReadInc,
            token: 1,
            alpha: 1.0,
            reply: (9, 1),
            inc: -17,
            segs: vec![],
            data: vec![],
        });
    }

    #[test]
    fn encode_decode_acc_alpha() {
        roundtrip(&GaReq {
            op: Op::Acc,
            token: 3,
            alpha: -0.25,
            reply: (0, 0),
            inc: 0,
            segs: vec![Segment { off: 9, len: 2 }],
            data: vec![10.0, 20.0],
        });
    }

    #[test]
    fn f64_bytes_roundtrip() {
        let vals = vec![0.0, 1.5, -3.25, f64::MAX, f64::MIN_POSITIVE];
        assert_eq!(bytes_to_f64s(&f64s_to_bytes(&vals)), vals);
    }

    #[test]
    #[should_panic(expected = "bad GA op")]
    fn bad_op_rejected() {
        let mut enc = GaReq {
            op: Op::Put,
            token: 0,
            alpha: 1.0,
            reply: (0, 0),
            inc: 0,
            segs: vec![],
            data: vec![],
        }
        .encode();
        enc[0] = 99;
        let _ = GaReq::decode(&enc);
    }
}
