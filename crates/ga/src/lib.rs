//! # ga — the Global Arrays toolkit over LAPI and MPL
//!
//! A Rust reproduction of the Global Arrays (GA) library as described in
//! §5 of the LAPI paper: a portable shared-memory-style view of dense
//! 2-D arrays block-distributed over the tasks of a message-passing job.
//! GA operations are *unilateral* — their progress never depends on the
//! target task making calls — which is why the paper pairs GA with LAPI
//! and why the older MPL port needed `rcvncall` interrupt handlers.
//!
//! Two complete backends are provided, exactly as in the paper's
//! evaluation:
//!
//! * [`backend_lapi::LapiGaBackend`] — the §5.3 design: **hybrid
//!   protocols** that switch between active messages (small/noncontiguous
//!   requests ride entirely in the ~900-byte AM user header, pipelined one
//!   packet each) and direct remote memory copy (`LAPI_Put`/`LAPI_Get` for
//!   large contiguous data; per-column RMC for ≥0.5 MB 2-D patches);
//!   **generalized counters** (one per remote task) for fence/ordering;
//!   a fixed **AM buffer pool** for the large-accumulate path; atomic
//!   accumulate in handlers; `read_inc` via `LAPI_Rmw`; locks via
//!   compare-and-swap.
//! * [`backend_mpl::MplGaBackend`] — the §5.2 design it replaced: request
//!   messages to `rcvncall` interrupt handlers, with the unavoidable
//!   extra copies (the request header and data must travel in one message
//!   because MPL delivery is in-order) and the expensive AIX handler
//!   context per request.
//!
//! The user-facing API ([`Ga`], [`GlobalArray`]) is backend-agnostic:
//! `put`/`get`/`acc` on 2-D patches, `scatter`/`gather`, atomic
//! `read_inc`, mutexes, `fence` and `sync` — the operation set §5.1 lists.

#![warn(missing_docs)]

pub mod array;
pub mod backend;
pub mod backend_lapi;
pub mod backend_mpl;
pub mod config;
pub mod dist;
pub mod reqwire;
pub mod runtime;

pub use array::{GaKind, GlobalArray};
pub use backend::{GaBackend, GaStats, Segment};
pub use backend_lapi::LapiGaBackend;
pub use backend_mpl::MplGaBackend;
pub use config::GaConfig;
pub use dist::{Distribution, Patch};
pub use runtime::Ga;
