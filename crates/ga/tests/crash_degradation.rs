//! Acceptance test for the node-failure domain, at the Global Arrays
//! layer: a 4-node GA workload with one node crash-stopped mid-run must
//! *terminate* — no hang — with the dead peer reported by `err_hndlr`
//! exactly once per survivor, every outstanding op toward it unwound
//! with a structured error, and `gfence_surviving` completing over the
//! three live nodes.
//!
//! The victim participates in the setup collectives (they ride the
//! side-channel exchange board, not the wire) and then crash-stops, so
//! the survivors hold complete address tables and a fully created
//! array whose fourth block is owned by a corpse.

use std::sync::Arc;

use ga::{Distribution, Ga, GaBackend, GaConfig, GaKind, LapiGaBackend, Patch};
use lapi::{LapiContext, LapiError, LapiWorld, Mode};
use parking_lot::Mutex;
use spsim::{run_spmd_with, FaultPlan, MachineConfig, VTime};

const ROWS: usize = 16;
const COLS: usize = 16;
const TASKS: usize = 4;
const VICTIM: usize = 3;

enum Role {
    Survivor { ga: Ga, be: Arc<LapiGaBackend> },
    Victim(LapiContext),
}

fn col_major(patch: &Patch, f: impl Fn(usize, usize) -> f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(patch.elems());
    for j in patch.lo.1..=patch.hi.1 {
        for i in patch.lo.0..=patch.hi.0 {
            out.push(f(i, j));
        }
    }
    out
}

/// The victim's side of the run: mirror the survivors' setup collectives
/// op for op (array-token exchange, probe-address exchange, the global
/// fence inside the first `ga.sync()`), then crash-stop without serving
/// another request.
fn run_victim(rank: usize, ctx: &mut LapiContext) {
    let dist = Distribution::new(ROWS, COLS, TASKS);
    let token = ctx.alloc(dist.local_elems(rank).max(1) * 8).0;
    let _tokens = ctx.exchange(token);
    let _probe_addrs = ctx.address_init(ctx.alloc(64));
    ctx.gfence().expect("pre-crash gfence");
    ctx.crash_stop();
}

fn run_survivor(rank: usize, ga: &Ga, be: &LapiGaBackend) {
    let ctx = be.lapi();

    // Exactly-once audit: record every err_hndlr fire.
    let fires: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    {
        let fires = fires.clone();
        ctx.register_err_hndlr(move |e| {
            if let LapiError::DeliveryTimeout { target, .. } = e {
                fires.lock().push(*target);
            }
        });
    }

    // Collective setup, victim participating: create the array, exchange
    // a probe buffer address, sync.
    let a = ga.create("a", ROWS, COLS, GaKind::Double);
    let probe_addrs = ctx.address_init(ctx.alloc(64));
    ga.sync();

    // Healthy GA workload among the survivors: each writes the full
    // block of the next survivor, fences it, reads it back.
    let tgt = (rank + 1) % 3;
    let block = a.distribution(tgt).expect("survivor block");
    let data = col_major(&block, |i, j| (i * 100 + j) as f64 + rank as f64 / 8.0);
    a.put(block, &data);
    ga.fence(tgt);
    assert_eq!(a.get(block), data, "survivor-to-survivor GA traffic");

    // Ops toward the dead node, at the LAPI layer where the structured
    // errors are visible. An op issued near the crash instant may still
    // be accepted (its completion is then credited by peer-death
    // unwinding) or may fail outright — both must leave the counters
    // balanced and neither may hang.
    let org = ctx.new_counter();
    let cmpl = ctx.new_counter();
    let mut org_exp = 0i64;
    let mut cmpl_exp = 0i64;
    let mut errors = 0usize;
    let payload = [0x5Au8; 48];
    match ctx.put(
        VICTIM,
        probe_addrs[VICTIM],
        &payload,
        None,
        Some(&org),
        Some(&cmpl),
    ) {
        Ok(_) => {
            org_exp += 1;
            cmpl_exp += 1;
        }
        Err(LapiError::DeliveryTimeout { .. }) => errors += 1,
        Err(other) => panic!("expected DeliveryTimeout, got {other}"),
    }
    // liveness: each probe burns virtual time on the wire; once the
    // clock passes the crash instant a probe exhausts its retransmits
    // and that failure latches the peer dead, ending the loop.
    while !ctx.dead_peers().contains(&VICTIM) {
        match ctx.put(
            VICTIM,
            probe_addrs[VICTIM],
            &[],
            None,
            Some(&org),
            Some(&cmpl),
        ) {
            Ok(_) => {
                org_exp += 1;
                cmpl_exp += 1;
            }
            Err(_) => errors += 1,
        }
    }
    // Death latched: subsequent ops fast-fail with zero wire activity.
    let scratch = ctx.alloc(8);
    let e = ctx
        .get(VICTIM, probe_addrs[VICTIM], 8, scratch, None, Some(&org))
        .expect_err("get toward a declared-dead peer must fail");
    assert!(
        matches!(
            e,
            LapiError::DeliveryTimeout {
                fast_failed: true,
                ..
            }
        ),
        "post-death op must fast-fail, got {e}"
    );
    errors += 1;
    assert!(errors > 0, "at least one op toward the corpse must error");

    // Every accepted op was either completed or death-credited, so the
    // waits return instead of deadlocking, with zero residue.
    ctx.waitcntr(&org, org_exp);
    ctx.waitcntr(&cmpl, cmpl_exp);
    assert_eq!(ctx.getcntr(&org), 0);
    assert_eq!(ctx.getcntr(&cmpl), 0);

    // Degraded global fence over the survivor set.
    let live = ctx.gfence_surviving().expect("survivor gfence");
    assert_eq!(live, vec![0, 1, 2], "three live nodes");

    // Exactly one err_hndlr fire, for the victim.
    assert_eq!(
        *fires.lock(),
        vec![VICTIM],
        "err_hndlr must fire exactly once, for the dead peer only"
    );

    // The survivors' shared state is intact: my block holds what the
    // previous survivor wrote (its fence happened before the degraded
    // gfence above).
    let writer = (rank + 2) % 3;
    let mine = a.local_patch().expect("survivor owns a block");
    let expect = col_major(&mine, |i, j| (i * 100 + j) as f64 + writer as f64 / 8.0);
    assert_eq!(
        a.get(mine),
        expect,
        "surviving state intact after the crash"
    );
}

#[test]
fn four_node_ga_workload_survives_mid_run_crash() {
    let cfg = MachineConfig::default()
        .with_no_faults()
        .with_faults(FaultPlan::new().with_crash(VICTIM, VTime::from_us(300)));
    let roles: Vec<Role> = LapiWorld::init_seeded(TASKS, cfg, Mode::Interrupt, 7)
        .into_iter()
        .enumerate()
        .map(|(i, ctx)| {
            if i == VICTIM {
                Role::Victim(ctx)
            } else {
                let be = LapiGaBackend::new(ctx, GaConfig::default());
                let ga = Ga::new(be.clone() as Arc<dyn GaBackend>);
                Role::Survivor { ga, be }
            }
        })
        .collect();
    run_spmd_with(roles, |rank, role| match role {
        Role::Victim(mut ctx) => run_victim(rank, &mut ctx),
        Role::Survivor { ga, be } => run_survivor(rank, &ga, &be),
    });
}
