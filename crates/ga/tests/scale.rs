//! 1024-node scale smoke test — the acceptance gate for M:N node
//! scheduling (ROADMAP item 1): a four-figure node count, which would need
//! ~3000 OS threads under the legacy thread-per-node runtime, must
//! complete on the pooled scheduler with a worker set sized to the host.
//!
//! The workload is deliberately short — create one distributed array, fill
//! every block locally, then pull a single remote element from the ring
//! neighbor — because what is under test is the scheduler (spawn, yield
//! points, engine service tasks, barrier parks, teardown at n = 1024),
//! not GA throughput. `#[ignore]`d in the default lane: it is quick under
//! `--release` (CI runs it there with `-- --ignored`) but slow in debug.

use std::sync::Arc;

use ga::{Ga, GaBackend, GaConfig, GaKind, LapiGaBackend, Patch};
use lapi::{LapiWorld, Mode};
use spsim::{run_spmd_with, MachineConfig};

const TASKS: usize = 1024;
const ROWS: usize = 128;
const COLS: usize = 128;

fn col_major(patch: &Patch, f: impl Fn(usize, usize) -> f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(patch.elems());
    for j in patch.lo.1..=patch.hi.1 {
        for i in patch.lo.0..=patch.hi.0 {
            out.push(f(i, j));
        }
    }
    out
}

#[test]
#[ignore = "1024 nodes: run with --release (CI's ga-scale job does)"]
fn thousand_node_ga_workload_completes_pooled() {
    let gas: Vec<Ga> = LapiWorld::init(TASKS, MachineConfig::default(), Mode::Interrupt)
        .into_iter()
        .map(|ctx| Ga::new(LapiGaBackend::new(ctx, GaConfig::default()) as Arc<dyn GaBackend>))
        .collect();
    run_spmd_with(gas, |rank, ga| {
        let a = ga.create("scale", ROWS, COLS, GaKind::Double);
        ga.sync();

        // Everyone writes its own block (exercises the put path and the
        // owner-local fast path at full node count).
        let mine = a
            .local_patch()
            .expect("1024 = 32x32 grid, every task owns a block");
        a.put(mine, &col_major(&mine, |_, _| rank as f64));
        ga.sync();

        // One remote element from the ring neighbor: 1024 simultaneous
        // interrupt-mode gets, each served by a pooled dispatcher task.
        let next = (rank + 1) % TASKS;
        let theirs = a.distribution(next).expect("neighbor owns a block");
        let corner = Patch::new(theirs.lo, theirs.lo);
        assert_eq!(a.get(corner), vec![next as f64]);
        ga.sync();
    });
}
