//! End-to-end Global Arrays tests, run against BOTH backends and
//! cross-checked element-wise against a sequential reference.

use std::sync::Arc;

use ga::{Ga, GaBackend, GaConfig, GaKind, LapiGaBackend, MplGaBackend, Patch};
use lapi::{LapiWorld, Mode};
use mpl::{MplMode, MplWorld};
use spsim::{run_spmd_with, MachineConfig};

/// Build a GA world on the LAPI backend.
fn lapi_world(n: usize) -> Vec<Ga> {
    LapiWorld::init(n, MachineConfig::default(), Mode::Interrupt)
        .into_iter()
        .map(|ctx| Ga::new(LapiGaBackend::new(ctx, GaConfig::default()) as Arc<dyn GaBackend>))
        .collect()
}

/// Build a GA world on the MPL backend.
fn mpl_world(n: usize) -> Vec<Ga> {
    MplWorld::init(n, MachineConfig::default(), MplMode::Interrupt)
        .into_iter()
        .map(|ctx| Ga::new(MplGaBackend::new(ctx) as Arc<dyn GaBackend>))
        .collect()
}

/// Run the same closure on both backends.
fn both(n: usize, f: impl Fn(usize, &Ga) + Sync + Send + Copy) {
    run_spmd_with(lapi_world(n), |rank, ga| f(rank, &ga));
    run_spmd_with(mpl_world(n), |rank, ga| f(rank, &ga));
}

fn col_major(patch: &Patch, f: impl Fn(usize, usize) -> f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(patch.elems());
    for j in patch.lo.1..=patch.hi.1 {
        for i in patch.lo.0..=patch.hi.0 {
            out.push(f(i, j));
        }
    }
    out
}

#[test]
fn put_get_roundtrip_single_owner() {
    both(4, |rank, ga| {
        let a = ga.create("a", 16, 16, GaKind::Double);
        ga.sync();
        if rank == 0 {
            // patch inside task 3's block (blocks are 8x8 on a 2x2 grid)
            let p = Patch::new((9, 9), (12, 13));
            let data = col_major(&p, |i, j| (i * 100 + j) as f64);
            a.put(p, &data);
            ga.fence(3);
            assert_eq!(a.get(p), data);
        }
        ga.sync();
    });
}

#[test]
fn put_get_spanning_all_owners() {
    both(4, |rank, ga| {
        let a = ga.create("a", 20, 20, GaKind::Double);
        ga.sync();
        if rank == 1 {
            let p = Patch::new((5, 5), (14, 14)); // spans all 4 blocks
            let data = col_major(&p, |i, j| (i as f64) * 1000.0 + j as f64);
            a.put(p, &data);
            ga.fence_all();
            assert_eq!(a.get(p), data);
        }
        ga.sync();
        // every task verifies its local view
        if let Some(b) = a.local_patch() {
            if let Some(inter) = b.intersect(&Patch::new((5, 5), (14, 14))) {
                let got = a.get(inter);
                assert_eq!(
                    got,
                    col_major(&inter, |i, j| (i as f64) * 1000.0 + j as f64)
                );
            }
        }
        ga.sync();
    });
}

#[test]
fn one_d_row_and_column_patches() {
    both(4, |rank, ga| {
        let a = ga.create("a", 64, 64, GaKind::Double);
        ga.sync();
        if rank == 2 {
            // a full column (contiguous at owners) and a full row (strided)
            let col = Patch::new((0, 10), (63, 10));
            let cdata = col_major(&col, |i, _| i as f64 + 0.5);
            a.put(col, &cdata);
            // The two patches overlap at (20,10): §5.1 — overlapping stores
            // need a fence between them or their order is undefined.
            ga.fence_all();
            let row = Patch::new((20, 0), (20, 63));
            let rdata = col_major(&row, |_, j| j as f64 * 2.0);
            a.put(row, &rdata);
            ga.fence_all();
            assert_eq!(a.get(row), rdata);
            // crossing element got both writes; row came second and the
            // fence ordered them
            assert_eq!(a.get(Patch::new((20, 10), (20, 10))), vec![20.0]);
            // the column keeps its values everywhere except the crossing
            let col_now = a.get(col);
            for (k, v) in col_now.iter().enumerate() {
                let expect = if k == 20 { 20.0 } else { cdata[k] };
                assert_eq!(*v, expect, "row {k}");
            }
        }
        ga.sync();
    });
}

#[test]
fn large_transfers_use_direct_rmc_on_lapi() {
    let n = 2;
    run_spmd_with(lapi_world(n), |rank, ga| {
        let a = ga.create("big", 1 << 16, 2, GaKind::Double); // 64Ki x 2
        ga.sync();
        if rank == 0 {
            // One full column living on task 1 (blocks split columns).
            let owner_block = a.distribution(1).expect("block");
            let p = owner_block; // whole remote block: contiguous columns
            let data = col_major(&p, |i, j| (i + j) as f64);
            a.put(p, &data);
            ga.fence(1);
            let got = a.get(p);
            assert_eq!(got.len(), data.len());
            assert_eq!(got, data);
            let s = ga.stats();
            assert!(
                s.direct_rmc.get() + s.per_column_rmc.get() > 0,
                "large contiguous transfers should use direct RMC"
            );
        }
        ga.sync();
    });
}

#[test]
fn small_transfers_use_am_on_lapi() {
    run_spmd_with(lapi_world(2), |rank, ga| {
        let a = ga.create("small", 32, 32, GaKind::Double);
        ga.sync();
        if rank == 0 {
            let other = a.distribution(1).expect("block");
            let p = Patch::new(other.lo, other.lo); // one element
            a.put(p, &[3.25]);
            ga.fence(1);
            assert_eq!(a.get(p), vec![3.25]);
            assert!(ga.stats().am_requests.get() >= 2, "expected the AM path");
            assert_eq!(ga.stats().direct_rmc.get(), 0);
        }
        ga.sync();
    });
}

#[test]
fn accumulate_is_atomic_and_commutative() {
    both(4, |_rank, ga| {
        let a = ga.create("acc", 10, 10, GaKind::Double);
        a.fill(0.0);
        ga.sync();
        // Everyone accumulates into the same full array, repeatedly.
        let p = a.full_patch();
        let ones = vec![1.0; p.elems()];
        for _ in 0..5 {
            a.acc(p, 2.0, &ones);
        }
        ga.sync();
        // 4 tasks x 5 rounds x alpha 2.0 = 40 in every element
        let got = a.get(p);
        assert!(got.iter().all(|&v| v == 40.0), "{got:?}");
        ga.sync();
    });
}

#[test]
fn bulk_accumulate_uses_pool_buffers_on_lapi() {
    run_spmd_with(lapi_world(2), |rank, ga| {
        let a = ga.create("bigacc", 256, 256, GaKind::Double); // 512KB total
        a.fill(1.0);
        ga.sync();
        if rank == 0 {
            let p = a.full_patch();
            let data = col_major(&p, |i, j| (i + j) as f64);
            a.acc(p, 1.0, &data); // 512KB ≥ bulk threshold
            ga.fence_all();
            let got = a.get(p);
            for (k, (g, d)) in got.iter().zip(&data).enumerate() {
                assert_eq!(*g, 1.0 + d, "element {k}");
            }
            assert!(
                ga.stats().am_bulk_requests.get() > 0,
                "expected the bulk AM path"
            );
        }
        ga.sync();
    });
}

#[test]
fn scatter_gather_roundtrip() {
    both(4, |rank, ga| {
        let a = ga.create("sg", 40, 40, GaKind::Double);
        a.fill(0.0);
        ga.sync();
        if rank == 3 {
            let points: Vec<(usize, usize)> =
                (0..50).map(|k| ((k * 7) % 40, (k * 13) % 40)).collect();
            // make points unique to avoid overlapping-store ambiguity
            let mut seen = std::collections::HashSet::new();
            let points: Vec<(usize, usize)> =
                points.into_iter().filter(|p| seen.insert(*p)).collect();
            let values: Vec<f64> = (0..points.len()).map(|k| k as f64 + 0.25).collect();
            a.scatter(&points, &values);
            ga.fence_all();
            assert_eq!(a.gather(&points), values);
        }
        ga.sync();
    });
}

#[test]
fn read_inc_is_a_global_atomic_counter() {
    both(4, |_rank, ga| {
        let c = ga.create("nxtval", 1, 1, GaKind::Int);
        c.fill_int(0);
        ga.sync();
        // All tasks pull tickets; union must be exactly 0..4*25
        let mine: Vec<i64> = (0..25).map(|_| c.read_inc(0, 0, 1)).collect();
        // strictly increasing per task
        assert!(mine.windows(2).all(|w| w[0] < w[1]));
        ga.sync();
        let total = c.get_int(Patch::new((0, 0), (0, 0)))[0];
        assert_eq!(total, 100);
        ga.sync();
    });
}

#[test]
fn mutexes_provide_mutual_exclusion() {
    both(4, |_rank, ga| {
        ga.create_mutexes(2);
        let a = ga.create("prot", 1, 1, GaKind::Double);
        a.fill(0.0);
        ga.sync();
        let p = Patch::new((0, 0), (0, 0));
        // classic non-atomic read-modify-write made safe by the lock
        for _ in 0..10 {
            ga.lock(1);
            let v = a.get(p)[0];
            a.put(p, &[v + 1.0]);
            ga.fence(a.locate(0, 0));
            ga.unlock(1);
        }
        ga.sync();
        assert_eq!(a.get(p), vec![40.0]);
        ga.sync();
    });
}

#[test]
fn fence_orders_overlapping_puts() {
    both(2, |rank, ga| {
        let a = ga.create("ord", 8, 8, GaKind::Double);
        ga.sync();
        if rank == 0 {
            let p = a.distribution(1).expect("block");
            for round in 1..=10 {
                a.put(p, &vec![round as f64; p.elems()]);
                ga.fence(1);
            }
        }
        ga.sync();
        if rank == 1 {
            let b = a.local_patch().expect("block");
            assert!(a.get(b).iter().all(|&v| v == 10.0));
        }
        ga.sync();
    });
}

#[test]
fn locality_information_is_exact() {
    both(4, |rank, ga| {
        let a = ga.create("loc", 30, 30, GaKind::Double);
        ga.sync();
        // locate() agrees with distribution()
        for i in (0..30).step_by(7) {
            for j in (0..30).step_by(5) {
                let owner = a.locate(i, j);
                assert!(a.distribution(owner).expect("block").contains(i, j));
            }
        }
        // the local block is mine
        if let Some(b) = a.local_patch() {
            assert_eq!(a.locate(b.lo.0, b.lo.1), rank);
        }
        ga.sync();
    });
}

#[test]
fn local_data_matches_gets() {
    both(4, |_rank, ga| {
        let a = ga.create("ld", 12, 12, GaKind::Double);
        ga.sync();
        let full = a.full_patch();
        let data = col_major(&full, |i, j| (i * 31 + j * 17) as f64);
        // task 0 writes everything
        if a.locate(0, 0) == 0 {
            // only one task puts (task owning (0,0) is always 0)
        }
        ga.sync();
        if spsim::NodeId::from(0u8 as usize) == 0 {
            // no-op; keep structure simple
        }
        a.put(full, &data); // everyone puts the same values — idempotent
        ga.sync();
        if let Some(b) = a.local_patch() {
            let mine = a.local_data();
            let expect = col_major(&b, |i, j| (i * 31 + j * 17) as f64);
            assert_eq!(mine, expect);
        }
        ga.sync();
    });
}

#[test]
fn int_arrays_roundtrip_bits() {
    both(2, |rank, ga| {
        let a = ga.create("ints", 4, 4, GaKind::Int);
        a.fill_int(-7);
        ga.sync();
        if rank == 0 {
            let p = a.full_patch();
            let got = a.get_int(p);
            assert!(got.iter().all(|&v| v == -7));
        }
        ga.sync();
    });
}

#[test]
fn many_concurrent_writers_disjoint_patches() {
    both(4, |rank, ga| {
        let a = ga.create("conc", 32, 32, GaKind::Double);
        ga.sync();
        // each task writes a disjoint row band of 8 rows — no ordering
        // needed for non-overlapping sections (§5.1)
        let p = Patch::new((rank * 8, 0), (rank * 8 + 7, 31));
        let data = col_major(&p, |i, j| (rank * 10_000 + i * 100 + j) as f64);
        a.put(p, &data);
        ga.sync();
        // verify someone else's band
        let other = (rank + 1) % 4;
        let q = Patch::new((other * 8, 0), (other * 8 + 7, 31));
        assert_eq!(
            a.get(q),
            col_major(&q, |i, j| (other * 10_000 + i * 100 + j) as f64)
        );
        ga.sync();
    });
}

#[test]
fn lossy_network_does_not_corrupt_ga() {
    let cfg = MachineConfig::default().with_drop_prob(0.1);
    let gas: Vec<Ga> = LapiWorld::init_seeded(3, cfg, Mode::Interrupt, 5)
        .into_iter()
        .map(|ctx| Ga::new(LapiGaBackend::new(ctx, GaConfig::default()) as Arc<dyn GaBackend>))
        .collect();
    run_spmd_with(gas, |rank, ga| {
        let a = ga.create("lossy", 24, 24, GaKind::Double);
        a.fill(0.0);
        ga.sync();
        let p = a.full_patch();
        let ones = vec![1.0; p.elems()];
        a.acc(p, 1.0, &ones);
        ga.sync();
        if rank == 0 {
            assert!(a.get(p).iter().all(|&v| v == 3.0));
        }
        ga.sync();
    });
}

#[test]
fn backends_agree_elementwise() {
    // The same program must produce identical arrays on both backends.
    let run = |gas: Vec<Ga>| -> Vec<f64> {
        let results = run_spmd_with(gas, |rank, ga| {
            let a = ga.create("agree", 16, 16, GaKind::Double);
            a.fill(0.5);
            ga.sync();
            let p = Patch::new((rank * 4, 0), (rank * 4 + 3, 15));
            let data = col_major(&p, |i, j| ((i * 16 + j) as f64).sin());
            a.put(p, &data);
            ga.sync();
            a.acc(a.full_patch(), 0.25, &vec![1.0; 256]);
            ga.sync();
            let out = if rank == 0 {
                a.get(a.full_patch())
            } else {
                vec![]
            };
            // keep every task alive until rank 0's remote gets completed
            ga.sync();
            out
        });
        results.into_iter().next().expect("rank 0 result")
    };
    let lapi_result = run(lapi_world(4));
    let mpl_result = run(mpl_world(4));
    assert_eq!(lapi_result, mpl_result);
}

#[test]
fn vector_rmc_extension_agrees_with_hybrid_protocols() {
    // The §6 vector interface must produce identical arrays while using
    // the putv/getv path for noncontiguous transfers.
    let run = |cfg: GaConfig| -> (Vec<f64>, u64) {
        let gas: Vec<Ga> = LapiWorld::init(2, MachineConfig::default(), Mode::Interrupt)
            .into_iter()
            .map(|ctx| {
                let be = ga::LapiGaBackend::new(ctx, cfg.clone());
                Ga::new(be as Arc<dyn GaBackend>)
            })
            .collect();
        let out = run_spmd_with(gas, |rank, ga| {
            let a = ga.create("vec", 128, 128, GaKind::Double);
            a.fill(0.0);
            ga.sync();
            let mut result = (Vec::new(), 0);
            if rank == 0 {
                let other = a.distribution(1).expect("block");
                // strided 2-D patch: 40x40 inside the remote block
                let p = Patch::new(other.lo, (other.lo.0 + 39, other.lo.1 + 39));
                let data = col_major(&p, |i, j| (i * 131 + j) as f64);
                a.put(p, &data);
                ga.fence(1);
                let got = a.get(p);
                assert_eq!(got, data);
                result = (got, ga.stats().vector_rmc.get());
            }
            ga.sync();
            result
        });
        out.into_iter().next().expect("rank 0")
    };
    let (hybrid_data, hybrid_vec_ops) = run(GaConfig::default());
    let (vector_data, vector_vec_ops) = run(GaConfig::default().with_vector_rmc());
    assert_eq!(hybrid_data, vector_data);
    assert_eq!(hybrid_vec_ops, 0, "hybrid mode must not use putv/getv");
    assert!(vector_vec_ops > 0, "vector mode must use putv/getv");
}

#[test]
fn vector_mode_full_workload_matches_mpl() {
    let lapi_vec: Vec<Ga> = LapiWorld::init(4, MachineConfig::default(), Mode::Interrupt)
        .into_iter()
        .map(|ctx| {
            Ga::new(
                ga::LapiGaBackend::new(ctx, GaConfig::default().with_vector_rmc())
                    as Arc<dyn GaBackend>,
            )
        })
        .collect();
    let run = |gas: Vec<Ga>| {
        let out = run_spmd_with(gas, |rank, ga| {
            let a = ga.create("w", 32, 32, GaKind::Double);
            a.fill(1.0);
            ga.sync();
            let p = Patch::new((rank * 8, 0), (rank * 8 + 7, 31));
            a.put(p, &col_major(&p, |i, j| (i + j) as f64));
            ga.sync();
            a.acc(a.full_patch(), 2.0, &vec![0.5; 1024]);
            ga.sync();
            let r = if rank == 0 {
                a.get(a.full_patch())
            } else {
                vec![]
            };
            ga.sync();
            r
        });
        out.into_iter().next().expect("rank 0")
    };
    let vec_result = run(lapi_vec);
    let mpl_result = run(mpl_world(4));
    assert_eq!(vec_result, mpl_result);
}

#[test]
fn whole_array_helpers_copy_scale_dot() {
    both(4, |_rank, ga| {
        let a = ga.create("ha", 12, 12, GaKind::Double);
        let b = ga.create("hb", 12, 12, GaKind::Double);
        a.fill(2.0);
        ga.sync();
        a.copy_to(&b);
        ga.sync();
        b.scale(3.0);
        ga.sync();
        // dot(a, b) = sum(2 * 6) over 144 elements
        let d = a.dot(&b);
        assert_eq!(d, 144.0 * 12.0);
        ga.sync();
    });
}

#[test]
fn symmetrize_makes_arrays_symmetric() {
    both(4, |rank, ga| {
        let a = ga.create("sym", 16, 16, GaKind::Double);
        ga.sync();
        // fill with an asymmetric function, each owner writes its block
        if let Some(b) = a.local_patch() {
            let data = col_major(&b, |i, j| (3 * i + 7 * j * j) as f64);
            a.put(b, &data);
        }
        ga.sync();
        a.symmetrize();
        if rank == 0 {
            let full = a.get(a.full_patch());
            for i in 0..16 {
                for j in 0..16 {
                    let ij = full[j * 16 + i];
                    let ji = full[i * 16 + j];
                    assert_eq!(ij, ji, "asymmetry at ({i},{j})");
                    let expect = 0.5 * ((3 * i + 7 * j * j) as f64 + (3 * j + 7 * i * i) as f64);
                    assert_eq!(ij, expect);
                }
            }
        }
        ga.sync();
    });
}
