//! Item-level parser: the layer between the lexer and the interprocedural
//! rules (A1–A4). One pass over a file's (test-stripped) token stream
//! recovers the *items* the call-graph rules need — `fn` items with their
//! owners (impl/trait types), call expressions, lock acquisitions, wall-
//! clock uses, wait-probe calls and `// liveness:` annotations — without
//! pulling in syn or a real grammar. Precision contract: see DESIGN §10.
//! Everything here is deliberately conservative: a construct the parser
//! cannot resolve degrades to a name-level match, never to silence.

use crate::lexer::{strip_test_items, Lexed, Tok, Token};

/// A lock guard live at some point in a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeldLock {
    /// Qualified lock name, `crate:field` (e.g. `lapi:outstanding`).
    pub lock: String,
    /// Line the guard was taken on.
    pub line: u32,
}

/// One call expression inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee's simple name (`recv_timeout`, `process_packet`).
    pub name: String,
    /// `Type` for `Type::name(…)` paths, `self` for `self.name(…)` method
    /// calls, `None` for everything else.
    pub qual: Option<String>,
    /// 1-based line of the call.
    pub line: u32,
    /// Lock guards live at the call site (for A2).
    pub held: Vec<HeldLock>,
}

/// One direct lock acquisition (`….lock()`, `….read()`, `….write()` with
/// empty argument lists, or `Mutex::lock(&x)`).
#[derive(Debug, Clone)]
pub struct LockAcq {
    /// Qualified lock name (`crate:field`); `crate:?` when the receiver is
    /// an expression the parser cannot name.
    pub lock: String,
    /// 1-based line of the acquisition.
    pub line: u32,
    /// Guards already held when this one is taken (for A2 edges).
    pub held: Vec<HeldLock>,
}

/// Everything the interprocedural rules need to know about one `fn` item.
/// Closures are *not* separate functions: their bodies' calls, probes and
/// clock uses land in the enclosing `FnInfo`, so a closure inherits (and
/// propagates) the enclosing function's taint by construction.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Simple name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, if any.
    pub owner: Option<String>,
    /// Display stem (file stem: `engine`, `queue`), used in witness chains.
    pub stem: String,
    /// Real on-disk repo-relative path (what findings report).
    pub path: String,
    /// Effective path after `// lint-as:` (what classification uses).
    pub effective: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Last line of the body.
    pub end_line: u32,
    /// Call expressions, in order.
    pub calls: Vec<CallSite>,
    /// Subset of `calls` whose callee is a wait/park/recv-family primitive.
    pub probes: Vec<CallSite>,
    /// Direct lock acquisitions.
    pub acquires: Vec<LockAcq>,
    /// Wall-clock tokens: `(line, which)` for `Instant`/`SystemTime`/
    /// `thread::sleep`.
    pub clock_uses: Vec<(u32, String)>,
    /// Does a `// liveness:` comment cover this function (inside the body
    /// or within 3 lines above the `fn` keyword)?
    pub has_liveness: bool,
}

impl FnInfo {
    /// `stem::name` — the short label used in witness chains.
    pub fn label(&self) -> String {
        format!("{}::{}", self.stem, self.name)
    }
}

/// One thread-primitive site for A4: `(line, what)`.
#[derive(Debug, Clone)]
pub struct SpawnSite {
    /// 1-based line.
    pub line: u32,
    /// What was seen (`thread::spawn`, `JoinHandle`, `.spawn(`).
    pub what: String,
}

/// The parse result for one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// All `fn` items (free, impl and trait-default methods, nested fns).
    pub fns: Vec<FnInfo>,
    /// Raw OS-thread sites anywhere in the file, including outside `fn`
    /// bodies (struct fields, use declarations) — A4 material.
    pub spawns: Vec<SpawnSite>,
}

/// Calls that block, park, yield or pump: each makes the *caller* a
/// blocking function for A3. Mirrors (and extends) L6's `WAIT_PROBES`.
pub const WAIT_PROBES: &[&str] = &[
    "wait",
    "wait_for",
    "wait_until",
    "wait_while",
    "recv",
    "recv_merge",
    "recv_timeout",
    "park",
    "park_timeout",
    "yield_now",
];

/// Guard-producing method names (empty-argument form only).
const GUARD_CALLS: &[&str] = &["lock", "read", "write"];

/// Keywords that precede `(` without being calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "let", "fn", "move", "in", "as", "ref", "mut",
    "else", "unsafe", "dyn", "impl", "where", "use", "pub", "crate", "super", "box", "break",
    "continue", "yield", "true", "false",
];

/// Crate segment of an effective repo-relative path: `crates/lapi/src/…` →
/// `lapi`; `src/…` (the facade crate) → `spsim-lapi`.
pub fn crate_of(effective: &str) -> &str {
    if let Some(rest) = effective.strip_prefix("crates/") {
        rest.split('/').next().unwrap_or("?")
    } else {
        "spsim-lapi"
    }
}

/// File stem of an effective path (`crates/sim/src/queue.rs` → `queue`).
pub fn stem_of(effective: &str) -> &str {
    effective
        .rsplit('/')
        .next()
        .unwrap_or(effective)
        .trim_end_matches(".rs")
}

/// Parse one file. `real` is the on-disk repo-relative path (reported in
/// findings); `effective` is the classification path (after `// lint-as:`).
pub fn parse_file(real: &str, effective: &str, lexed: &Lexed) -> ParsedFile {
    let toks = strip_test_items(&lexed.tokens);
    let mut out = ParsedFile::default();
    scan_items(&toks, 0, toks.len(), None, real, effective, lexed, &mut out);
    scan_spawns(&toks, &mut out);
    out
}

fn ident(t: Option<&Token>) -> Option<&str> {
    match t.map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn is_punct(t: Option<&Token>, c: char) -> bool {
    matches!(t.map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

fn matching_brace(toks: &[Token], open: usize, end: usize) -> usize {
    let mut d = 0usize;
    let mut i = open;
    while i < end {
        match toks[i].tok {
            Tok::Punct('{') => d += 1,
            Tok::Punct('}') => {
                d -= 1;
                if d == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    end.saturating_sub(1)
}

/// Walk `toks[i..end]` at item level, descending into `impl`/`trait`/`mod`
/// blocks and parsing every `fn` body encountered.
#[allow(clippy::too_many_arguments)]
fn scan_items(
    toks: &[Token],
    mut i: usize,
    end: usize,
    owner: Option<&str>,
    real: &str,
    effective: &str,
    lexed: &Lexed,
    out: &mut ParsedFile,
) {
    while i < end {
        match ident(toks.get(i)) {
            Some("impl") => {
                let (name, open) = impl_owner(toks, i, end);
                if let Some(open) = open {
                    let close = matching_brace(toks, open, end);
                    scan_items(
                        toks,
                        open + 1,
                        close,
                        name.as_deref(),
                        real,
                        effective,
                        lexed,
                        out,
                    );
                    i = close + 1;
                    continue;
                }
                i += 1;
            }
            Some("trait") => {
                let name = ident(toks.get(i + 1)).map(str::to_string);
                if let Some(open) = (i + 1..end).find(|&j| is_punct(toks.get(j), '{')) {
                    let close = matching_brace(toks, open, end);
                    scan_items(
                        toks,
                        open + 1,
                        close,
                        name.as_deref(),
                        real,
                        effective,
                        lexed,
                        out,
                    );
                    i = close + 1;
                    continue;
                }
                i += 1;
            }
            Some("mod") if ident(toks.get(i + 1)).is_some() && is_punct(toks.get(i + 2), '{') => {
                // Inline module: items inside keep the (lack of an) owner.
                let close = matching_brace(toks, i + 2, end);
                scan_items(toks, i + 3, close, owner, real, effective, lexed, out);
                i = close + 1;
            }
            Some("fn") => {
                i = parse_fn(toks, i, end, owner, real, effective, lexed, out);
            }
            _ => i += 1,
        }
    }
}

/// Owner type of an `impl` block: the ident after `for` in trait impls,
/// else the first type ident after the (skipped) generic parameter list.
/// Returns `(owner, Some(body_open_index))`.
fn impl_owner(toks: &[Token], i: usize, end: usize) -> (Option<String>, Option<usize>) {
    let mut j = i + 1;
    // Skip `<…>` generics directly after `impl`.
    if is_punct(toks.get(j), '<') {
        let mut d = 0i32;
        while j < end {
            match toks[j].tok {
                Tok::Punct('<') => d += 1,
                Tok::Punct('>') => {
                    d -= 1;
                    if d == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    let mut first_ident: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    let mut open = None;
    while j < end {
        match &toks[j].tok {
            Tok::Punct('{') => {
                open = Some(j);
                break;
            }
            Tok::Ident(s) if s == "for" => saw_for = true,
            Tok::Ident(s) if s == "where" => {
                // `where` clause: the owner is settled; find the body brace.
                if let Some(o) = (j..end).find(|&k| is_punct(toks.get(k), '{')) {
                    open = Some(o);
                }
                break;
            }
            Tok::Ident(s) => {
                if saw_for {
                    if after_for.is_none() {
                        after_for = Some(s.clone());
                    }
                } else {
                    // Track the *last* path segment before generics: for
                    // `spsim::queue::TimedQueue<M>` keep `TimedQueue`.
                    if !is_punct(toks.get(j + 1), '<')
                        || first_ident.is_none()
                        || is_punct(toks.get(j.wrapping_sub(1)), ':')
                    {
                        first_ident = Some(s.clone());
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    (after_for.or(first_ident), open)
}

/// Parse the `fn` item starting at `toks[i]` (`== fn`). Returns the index
/// to resume scanning from.
#[allow(clippy::too_many_arguments)]
fn parse_fn(
    toks: &[Token],
    i: usize,
    end: usize,
    owner: Option<&str>,
    real: &str,
    effective: &str,
    lexed: &Lexed,
    out: &mut ParsedFile,
) -> usize {
    let Some(name) = ident(toks.get(i + 1)) else {
        return i + 1;
    };
    let name = name.to_string();
    let fn_line = toks[i].line;
    // Find the body `{` (or a `;` for bodiless trait declarations) at
    // paren/bracket depth 0.
    let mut j = i + 2;
    let mut d = 0i32;
    let mut open = None;
    while j < end {
        match toks[j].tok {
            Tok::Punct('(') | Tok::Punct('[') => d += 1,
            Tok::Punct(')') | Tok::Punct(']') => d -= 1,
            Tok::Punct('{') if d == 0 => {
                open = Some(j);
                break;
            }
            Tok::Punct(';') if d == 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    let Some(open) = open else { return j };
    let close = matching_brace(toks, open, end);
    let end_line = toks.get(close).map(|t| t.line).unwrap_or(fn_line);

    let mut info = FnInfo {
        name,
        owner: owner.map(str::to_string),
        stem: stem_of(effective).to_string(),
        path: real.to_string(),
        effective: effective.to_string(),
        line: fn_line,
        end_line,
        calls: Vec::new(),
        probes: Vec::new(),
        acquires: Vec::new(),
        clock_uses: Vec::new(),
        has_liveness: false,
    };
    scan_body(
        toks,
        open + 1,
        close,
        effective,
        real,
        lexed,
        &mut info,
        out,
    );
    // A `// liveness:` marker covers the fn if it sits inside the item or
    // in a comment block contiguous with the `fn` line (same convention as
    // L6: multi-line explanations above the item stay legal).
    let comment_lines = lexed.comment_lines_containing("");
    info.has_liveness = lexed
        .comments
        .iter()
        .filter(|(_, t)| t.contains("liveness:"))
        .any(|(l, _)| {
            (*l >= fn_line && *l <= end_line)
                || (*l < fn_line && (*l + 1..fn_line).all(|x| comment_lines.contains(&x)))
        });
    out.fns.push(info);
    close + 1
}

#[derive(Debug)]
struct Guard {
    name: String,
    lock: String,
    line: u32,
    depth: usize,
    /// Token index from which the binding is live (its statement's `;`).
    from: usize,
}

/// Scan one fn body, collecting calls, probes, acquisitions and clock
/// uses. Nested `fn` items are parsed as their own `FnInfo` (and skipped
/// here); closures are scanned inline, so they fold into the enclosing fn.
#[allow(clippy::too_many_arguments)]
fn scan_body(
    toks: &[Token],
    start: usize,
    close: usize,
    effective: &str,
    real: &str,
    lexed: &Lexed,
    info: &mut FnInfo,
    out: &mut ParsedFile,
) {
    let krate = crate_of(effective);
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut i = start;
    while i < close {
        match &toks[i].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
            }
            Tok::Ident(w) if w == "fn" => {
                // A nested fn is its own item; don't fold it in here.
                i = parse_fn(toks, i, close, None, real, effective, lexed, out);
                continue;
            }
            Tok::Ident(w) if w == "let" => {
                if let Some((name, (line, lock_tok), semi)) = guard_binding(toks, i, close, krate) {
                    let lock = lock_name_at(toks, lock_tok, krate);
                    guards.push(Guard {
                        name,
                        lock,
                        line,
                        depth,
                        from: semi,
                    });
                }
            }
            Tok::Ident(w) if w == "drop" && is_punct(toks.get(i + 1), '(') => {
                if let Some(name) = ident(toks.get(i + 2)) {
                    guards.retain(|g| g.name != name);
                }
            }
            Tok::Ident(w) if w == "Instant" || w == "SystemTime" => {
                info.clock_uses.push((toks[i].line, w.clone()));
            }
            Tok::Ident(w)
                if GUARD_CALLS.contains(&w.as_str())
                    && is_punct(toks.get(i.wrapping_sub(1)), '.')
                    && is_punct(toks.get(i + 1), '(')
                    && is_punct(toks.get(i + 2), ')') =>
            {
                // Direct acquisition `recv.lock()` / `x.read()` / `x.write()`.
                let lock = lock_name_at(toks, i, krate);
                let held = held_snapshot(&guards, i);
                info.acquires.push(LockAcq {
                    lock,
                    line: toks[i].line,
                    held,
                });
                i += 3;
                continue;
            }
            Tok::Ident(w)
                if GUARD_CALLS.contains(&w.as_str())
                    && is_punct(toks.get(i.wrapping_sub(1)), ':')
                    && is_punct(toks.get(i.wrapping_sub(2)), ':')
                    && matches!(ident(toks.get(i.wrapping_sub(3))), Some("Mutex" | "RwLock"))
                    && is_punct(toks.get(i + 1), '(') =>
            {
                // UFCS form `Mutex::lock(&x)`: name the lock from the first
                // argument ident.
                let mut k = i + 2;
                while k < close && ident(toks.get(k)).is_none() {
                    k += 1;
                }
                let lock = match ident(toks.get(k)) {
                    // `Mutex::lock(&self.field)`
                    Some("self") if is_punct(toks.get(k + 1), '.') => {
                        ident(toks.get(k + 2)).unwrap_or("?")
                    }
                    Some("self") => "?",
                    Some(n) => n,
                    None => "?",
                };
                let held = held_snapshot(&guards, i);
                info.acquires.push(LockAcq {
                    lock: format!("{krate}:{lock}"),
                    line: toks[i].line,
                    held,
                });
            }
            Tok::Ident(w) if is_punct(toks.get(i + 1), '(') => {
                if NON_CALL_KEYWORDS.contains(&w.as_str()) {
                    i += 1;
                    continue;
                }
                let qual = call_qual(toks, i);
                if w == "sleep" && qual.as_deref() == Some("thread") {
                    info.clock_uses.push((toks[i].line, "thread::sleep".into()));
                }
                let site = CallSite {
                    name: w.clone(),
                    qual,
                    line: toks[i].line,
                    held: held_snapshot(&guards, i),
                };
                if WAIT_PROBES.contains(&w.as_str()) {
                    info.probes.push(site.clone());
                }
                info.calls.push(site);
            }
            _ => {}
        }
        i += 1;
    }
}

fn held_snapshot(guards: &[Guard], at: usize) -> Vec<HeldLock> {
    guards
        .iter()
        .filter(|g| g.from <= at)
        .map(|g| HeldLock {
            lock: g.lock.clone(),
            line: g.line,
        })
        .collect()
}

/// Qualifier of a call at token `i`: `Some(type)` for `Type::name(…)`,
/// `Some("self")` for `self.name(…)`, else `None`.
fn call_qual(toks: &[Token], i: usize) -> Option<String> {
    if i >= 2 && is_punct(toks.get(i - 1), ':') && is_punct(toks.get(i - 2), ':') {
        return ident(toks.get(i.wrapping_sub(3))).map(str::to_string);
    }
    if i >= 2 && is_punct(toks.get(i - 1), '.') && ident(toks.get(i - 2)) == Some("self") {
        return Some("self".to_string());
    }
    None
}

/// Name the lock acquired by the guard-call token at `i` (`lock`/`read`/
/// `write`): the identifier directly before the `.`, qualified by crate.
fn lock_name_at(toks: &[Token], i: usize, krate: &str) -> String {
    let base = if i >= 2 && is_punct(toks.get(i - 1), '.') {
        match ident(toks.get(i - 2)) {
            Some(n) if n != "self" => n,
            _ => "?",
        }
    } else {
        "?"
    };
    format!("{krate}:{base}")
}

/// If the statement starting at `let` (index `i`) binds a plain identifier
/// to an expression ending in a guard call, return `(name, (line, lock
/// token index), semi index)`.
fn guard_binding(
    toks: &[Token],
    i: usize,
    end: usize,
    _krate: &str,
) -> Option<(String, (u32, usize), usize)> {
    let mut j = i + 1;
    if ident(toks.get(j)) == Some("mut") {
        j += 1;
    }
    let name = ident(toks.get(j))?.to_string();
    if !is_punct(toks.get(j + 1), '=') {
        return None;
    }
    let mut k = j + 2;
    let mut d = 0i32;
    while k < end {
        match toks[k].tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => d += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => d -= 1,
            Tok::Punct(';') if d == 0 => break,
            _ => {}
        }
        k += 1;
    }
    if k >= 4
        && is_punct(toks.get(k - 1), ')')
        && is_punct(toks.get(k - 2), '(')
        && ident(toks.get(k - 3)).is_some_and(|m| GUARD_CALLS.contains(&m))
        && is_punct(toks.get(k - 4), '.')
    {
        let lock_tok = k - 3;
        Some((name, (toks[lock_tok].line, lock_tok), k))
    } else {
        None
    }
}

/// File-wide A4 scan: raw OS-thread primitives anywhere in the token
/// stream, including struct fields and `use` declarations. Besides thread
/// creation, this also collects the primitives that *block* an OS thread
/// behind the scheduler's back — `thread::park`/`park_timeout` and raw
/// `Condvar` waits — which would pin a pooled worker instead of yielding
/// the fiber (use `spsim::SimCondvar` / the runtime's park instead).
fn scan_spawns(toks: &[Token], out: &mut ParsedFile) {
    for (i, t) in toks.iter().enumerate() {
        let Tok::Ident(w) = &t.tok else { continue };
        match w.as_str() {
            "JoinHandle" => out.spawns.push(SpawnSite {
                line: t.line,
                what: "JoinHandle".into(),
            }),
            "Condvar" => out.spawns.push(SpawnSite {
                line: t.line,
                what: "Condvar".into(),
            }),
            "spawn" | "scope" | "Builder" | "spawn_scoped" | "park" | "park_timeout"
                if i >= 3
                    && is_punct(toks.get(i - 1), ':')
                    && is_punct(toks.get(i - 2), ':')
                    && ident(toks.get(i - 3)) == Some("thread") =>
            {
                out.spawns.push(SpawnSite {
                    line: t.line,
                    what: format!("thread::{w}"),
                });
            }
            "spawn" | "spawn_scoped"
                if is_punct(toks.get(i.wrapping_sub(1)), '.') && is_punct(toks.get(i + 1), '(') =>
            {
                out.spawns.push(SpawnSite {
                    line: t.line,
                    what: format!(".{w}(…)"),
                });
            }
            _ => {}
        }
    }
}
