//! `lint.toml` — the machine-readable suppression list.
//!
//! The file is a TOML *subset* parsed by hand (the registry is offline, so
//! no toml crate): comments, blank lines, `[[allow]]` array-of-tables
//! headers, and `key = "string"` assignments. Every entry must name a rule
//! and carry a non-empty `reason`; an entry with neither `path` nor
//! `contains` would suppress a rule globally and is rejected.

use std::cell::Cell;

use crate::rules::{Finding, Rule};

/// One suppression entry.
#[derive(Debug)]
pub struct Allow {
    /// Rule the entry suppresses.
    pub rule: Rule,
    /// Substring the finding's path must contain.
    pub path: Option<String>,
    /// Substring the offending *source line* must contain.
    pub contains: Option<String>,
    /// Why the violation is acceptable. Required, surfaced in reports.
    pub reason: String,
    hits: Cell<u32>,
}

/// The parsed allowlist.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<Allow>,
}

/// A parse/validation error with its `lint.toml` line.
#[derive(Debug, PartialEq, Eq)]
pub struct AllowlistError {
    /// 1-based line in the allowlist file.
    pub line: u32,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for AllowlistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.msg)
    }
}

impl Allowlist {
    /// Parse the subset-TOML text.
    pub fn parse(text: &str) -> Result<Allowlist, AllowlistError> {
        let mut entries: Vec<(u32, PartialEntry)> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                entries.push((lineno, PartialEntry::default()));
                continue;
            }
            let (key, value) = parse_assignment(line).ok_or(AllowlistError {
                line: lineno,
                msg: format!("expected `[[allow]]` or `key = \"value\"`, got `{line}`"),
            })?;
            let Some((_, cur)) = entries.last_mut() else {
                return Err(AllowlistError {
                    line: lineno,
                    msg: "assignment before the first [[allow]] header".into(),
                });
            };
            let slot = match key {
                "rule" => &mut cur.rule,
                "path" => &mut cur.path,
                "contains" => &mut cur.contains,
                "reason" => &mut cur.reason,
                _ => {
                    return Err(AllowlistError {
                        line: lineno,
                        msg: format!("unknown key `{key}` (rule/path/contains/reason)"),
                    })
                }
            };
            if slot.replace(value.to_string()).is_some() {
                return Err(AllowlistError {
                    line: lineno,
                    msg: format!("duplicate key `{key}` in one [[allow]] entry"),
                });
            }
        }
        let mut out = Vec::with_capacity(entries.len());
        for (lineno, e) in entries {
            let rule_str = e.rule.ok_or(AllowlistError {
                line: lineno,
                msg: "entry is missing `rule`".into(),
            })?;
            let rule = Rule::from_code(&rule_str).ok_or(AllowlistError {
                line: lineno,
                msg: format!("unknown rule `{rule_str}`"),
            })?;
            let reason = e.reason.unwrap_or_default();
            if reason.trim().is_empty() {
                return Err(AllowlistError {
                    line: lineno,
                    msg: "entry is missing a non-empty `reason` — every suppression \
                          must say why"
                        .into(),
                });
            }
            if e.path.is_none() && e.contains.is_none() {
                return Err(AllowlistError {
                    line: lineno,
                    msg: "entry needs `path` and/or `contains` — suppressing a rule \
                          everywhere defeats it"
                        .into(),
                });
            }
            out.push(Allow {
                rule,
                path: e.path,
                contains: e.contains,
                reason,
                hits: Cell::new(0),
            });
        }
        Ok(Allowlist { entries: out })
    }

    /// Does some entry suppress this finding? `line_text` is the offending
    /// source line (for `contains` matching). Hit counts are recorded so
    /// stale entries can be reported.
    pub fn suppresses(&self, f: &Finding, line_text: &str) -> bool {
        for a in &self.entries {
            if a.rule != f.rule {
                continue;
            }
            if let Some(p) = &a.path {
                if !f.path.contains(p.as_str()) {
                    continue;
                }
            }
            if let Some(c) = &a.contains {
                if !line_text.contains(c.as_str()) {
                    continue;
                }
            }
            a.hits.set(a.hits.get() + 1);
            return true;
        }
        false
    }

    /// Entries that never matched a finding (candidates for deletion).
    pub fn unused(&self) -> Vec<String> {
        self.entries
            .iter()
            .filter(|a| a.hits.get() == 0)
            .map(|a| {
                format!(
                    "unused suppression: rule={} path={} contains={}",
                    a.rule.code(),
                    a.path.as_deref().unwrap_or("*"),
                    a.contains.as_deref().unwrap_or("*"),
                )
            })
            .collect()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the list empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[derive(Default)]
struct PartialEntry {
    rule: Option<String>,
    path: Option<String>,
    contains: Option<String>,
    reason: Option<String>,
}

/// Strip a `#` comment, respecting `#` inside double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

/// Parse `key = "value"`.
fn parse_assignment(line: &str) -> Option<(&str, String)> {
    let (key, rest) = line.split_once('=')?;
    let key = key.trim();
    let rest = rest.trim();
    if !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') || key.is_empty() {
        return None;
    }
    let inner = rest.strip_prefix('"')?.strip_suffix('"')?;
    // Minimal escape handling: the workspace only needs \" and \\.
    Some((key, inner.replace("\\\"", "\"").replace("\\\\", "\\")))
}
