//! The interprocedural rules A1–A4, run over a [`Workspace`] call graph.
//! Every finding carries a witness chain: the call path from the flagged
//! function (or engine entry point) down to the offending primitive, one
//! `file:line` per hop, so a violation three crates away is actionable.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::allowlist::Allowlist;
use crate::graph::Workspace;
use crate::parser::crate_of;
use crate::rules::{classify, Finding, Hop, Rule};

/// Engine entry points for A3: the functions the dispatcher/completion
/// machinery and user-facing progress calls run on a hot path. A function
/// with one of these names in a hot-path file is a BFS root.
const ENTRY_NAMES: &[&str] = &[
    "dispatcher_loop",
    "completion_loop",
    "poll_step",
    "probe",
    "drain_arrived",
    "pump",
    "progress",
];

/// The modules allowed to touch raw OS threads (A4): the SPMD runtime
/// (legacy thread-per-node path, service threads) and the M:N scheduler
/// (worker pool, fiber park/unpark, the `SimCondvar` thread fallback).
const THREAD_HOMES: &[&str] = &["crates/sim/src/runtime.rs", "crates/sim/src/sched.rs"];

/// Run all four interprocedural rules. `lines` maps each real path to its
/// source lines (used to honor existing L1 suppressions when computing
/// taint bridges). Findings are *not* allowlist-filtered here — the caller
/// applies `lint.toml` the same way it does for L-rules.
pub fn run(
    ws: &Workspace,
    allow: &Allowlist,
    lines: &BTreeMap<String, Vec<String>>,
) -> Vec<Finding> {
    let mut out = Vec::new();
    rule_a1(ws, allow, lines, &mut out);
    rule_a2(ws, &mut out);
    rule_a3(ws, &mut out);
    rule_a4(ws, &mut out);
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out.dedup_by(|a, b| (a.rule, &a.path, a.line) == (b.rule, &b.path, b.line));
    out
}

fn line_text<'a>(lines: &'a BTreeMap<String, Vec<String>>, path: &str, line: u32) -> &'a str {
    lines
        .get(path)
        .and_then(|v| v.get(line as usize - 1))
        .map(String::as_str)
        .unwrap_or("")
}

// --------------------------------------------------------------------- A1

/// Transitive virtual-time taint. A function's *direct* wall-clock uses are
/// L1's business; A1 flags a simulated function that reaches a clock only
/// through its callees. A function whose direct uses are all suppressed by
/// `lint.toml` L1 entries is a sanctioned *real-time bridge*: it is not
/// tainted and stops propagation (that is the point of the suppression).
fn rule_a1(
    ws: &Workspace,
    allow: &Allowlist,
    lines: &BTreeMap<String, Vec<String>>,
    out: &mut Vec<Finding>,
) {
    let n = ws.fns.len();
    // Per-fn direct status: (has unsuppressed source, is bridge).
    let mut source: Vec<Option<(u32, String)>> = vec![None; n];
    let mut bridge = vec![false; n];
    for (i, f) in ws.fns.iter().enumerate() {
        let mut unsuppressed = None;
        for (line, which) in &f.clock_uses {
            let probe = Finding {
                rule: Rule::L1,
                path: f.path.clone(),
                line: *line,
                msg: String::new(),
                witness: Vec::new(),
            };
            if !allow.suppresses(&probe, line_text(lines, &f.path, *line)) {
                unsuppressed = Some((*line, which.clone()));
                break;
            }
        }
        source[i] = unsuppressed;
        bridge[i] = !f.clock_uses.is_empty() && source[i].is_none();
    }
    // Taint fixpoint over call edges; bridges stay clean.
    let mut tainted: Vec<bool> = (0..n).map(|i| source[i].is_some()).collect();
    loop {
        let mut changed = false;
        for i in 0..n {
            if tainted[i] || bridge[i] {
                continue;
            }
            if ws.callees(i).iter().any(|(c, _)| tainted[*c]) {
                tainted[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Flag virtual-time fns tainted only via callees.
    for (i, f) in ws.fns.iter().enumerate() {
        let class = classify(&f.effective).unwrap_or_default();
        if !class.virtual_time || !tainted[i] || source[i].is_some() {
            continue;
        }
        // Shortest chain from i to a direct source through tainted nodes.
        let Some((chain, src)) = taint_chain(ws, i, &tainted, &source) else {
            continue;
        };
        // The chain's first entry is the flagged fn at the line where it
        // calls into the tainted subgraph — that is the actionable line.
        let first_call_line = chain.first().map(|&(_, l)| l).unwrap_or(f.line);
        let mut witness: Vec<Hop> = chain
            .iter()
            .map(|&(fx, l)| Hop {
                label: ws.fns[fx].label(),
                path: ws.fns[fx].path.clone(),
                line: l,
            })
            .collect();
        let (src_line, src_which) = src;
        witness.push(Hop {
            label: src_which.clone(),
            path: ws.fns[chain.last().unwrap().0].path.clone(),
            line: src_line,
        });
        out.push(Finding {
            rule: Rule::A1,
            path: f.path.clone(),
            line: first_call_line,
            msg: format!(
                "`{}` transitively reaches wall-clock `{}` through its callees — \
                 virtual-time code must not depend on the host clock",
                f.label(),
                src_which
            ),
            witness,
        });
    }
}

/// BFS from `start` through tainted callees to the nearest function with a
/// direct unsuppressed clock use. Returns the chain as `(fn, line)` pairs —
/// the first entry is `start` at its call-site line toward the next hop —
/// plus the source's `(line, which)`.
#[allow(clippy::type_complexity)]
fn taint_chain(
    ws: &Workspace,
    start: usize,
    tainted: &[bool],
    source: &[Option<(u32, String)>],
) -> Option<(Vec<(usize, u32)>, (u32, String))> {
    let mut prev: BTreeMap<usize, (usize, u32)> = BTreeMap::new();
    let mut q = VecDeque::new();
    q.push_back(start);
    let mut found = None;
    'bfs: while let Some(f) = q.pop_front() {
        for (c, site) in ws.callees(f) {
            if !tainted[c] || prev.contains_key(&c) || c == start {
                continue;
            }
            prev.insert(c, (f, site.line));
            if source[c].is_some() {
                found = Some(c);
                break 'bfs;
            }
            q.push_back(c);
        }
    }
    let end = found?;
    // Reconstruct: walk back from `end` to `start`.
    let mut rev = vec![(end, ws.fns[end].line)];
    let mut cur = end;
    while cur != start {
        let &(p, call_line) = prev.get(&cur)?;
        rev.push((p, call_line));
        cur = p;
    }
    rev.reverse();
    let src = source[end].clone()?;
    Some((rev, src))
}

// --------------------------------------------------------------------- A2

/// One acquired-while-held edge with its first-seen witness.
struct Edge {
    witness: Vec<Hop>,
}

/// Lock-order inversion. Build the acquired-while-held graph across
/// function boundaries (a call made with guard `a` held contributes edges
/// `a → l` for every lock `l` the callee can transitively take), then flag
/// every cycle, including re-entrant self-loops. Locks the parser cannot
/// name (`crate:?`) are excluded from edges — see the precision contract.
fn rule_a2(ws: &Workspace, out: &mut Vec<Finding>) {
    let n = ws.fns.len();
    // Transitive lock sets per fn (fixpoint).
    let mut trans: Vec<BTreeSet<String>> = (0..n)
        .map(|i| ws.fns[i].acquires.iter().map(|a| a.lock.clone()).collect())
        .collect();
    loop {
        let mut changed = false;
        for i in 0..n {
            let mut add = Vec::new();
            for (c, _) in ws.callees(i) {
                for l in &trans[c] {
                    if !trans[i].contains(l) {
                        add.push(l.clone());
                    }
                }
            }
            if !add.is_empty() {
                changed = true;
                trans[i].extend(add);
            }
        }
        if !changed {
            break;
        }
    }
    let named = |l: &str| !l.ends_with(":?");
    let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();
    for (i, f) in ws.fns.iter().enumerate() {
        // Direct nested acquisitions.
        for acq in &f.acquires {
            for h in &acq.held {
                if h.lock == acq.lock || !named(&h.lock) || !named(&acq.lock) {
                    // A self-edge from a literal re-acquisition is still a
                    // deadlock; record it.
                    if h.lock == acq.lock && named(&h.lock) {
                        edges
                            .entry((h.lock.clone(), acq.lock.clone()))
                            .or_insert_with(|| Edge {
                                witness: vec![Hop {
                                    label: f.label(),
                                    path: f.path.clone(),
                                    line: acq.line,
                                }],
                            });
                    }
                    continue;
                }
                edges
                    .entry((h.lock.clone(), acq.lock.clone()))
                    .or_insert_with(|| Edge {
                        witness: vec![Hop {
                            label: f.label(),
                            path: f.path.clone(),
                            line: acq.line,
                        }],
                    });
            }
        }
        // Calls made while holding: edge to everything the callee can take.
        for (c, site) in ws.callees(i) {
            if site.held.is_empty() {
                continue;
            }
            for l in trans[c].iter().filter(|l| named(l)) {
                for h in site.held.iter().filter(|h| named(&h.lock)) {
                    edges.entry((h.lock.clone(), l.clone())).or_insert_with(|| {
                        let mut w = vec![Hop {
                            label: f.label(),
                            path: f.path.clone(),
                            line: site.line,
                        }];
                        w.extend(acquire_chain(ws, c, l, &trans));
                        Edge { witness: w }
                    });
                }
            }
        }
    }
    // Cycle detection: adjacency over lock names; report each cycle once.
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from.as_str()).or_default().push(to.as_str());
    }
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for ((from, to), edge) in &edges {
        let cycle = if from == to {
            Some(vec![from.clone()])
        } else {
            // BFS from `to` back to `from`.
            path_between(&adj, to, from).map(|mut p| {
                p.insert(0, from.clone());
                p
            })
        };
        let Some(cycle) = cycle else { continue };
        let mut key = cycle.clone();
        key.sort();
        key.dedup();
        if !reported.insert(key) {
            continue;
        }
        let site = &edge.witness[0];
        let kind = if from == to {
            format!("lock `{from}` re-acquired while already held")
        } else {
            format!(
                "lock-order inversion: cycle {} — two threads interleaving these \
                 acquisitions deadlock",
                cycle.join(" → ")
            )
        };
        out.push(Finding {
            rule: Rule::A2,
            path: site.path.clone(),
            line: site.line,
            msg: kind,
            witness: edge.witness.clone(),
        });
    }
}

/// Chain of hops from `f` down to a function that directly acquires `lock`.
fn acquire_chain(ws: &Workspace, f: usize, lock: &str, trans: &[BTreeSet<String>]) -> Vec<Hop> {
    let mut hops = Vec::new();
    let mut cur = f;
    let mut seen = BTreeSet::new();
    loop {
        if !seen.insert(cur) {
            break;
        }
        if let Some(acq) = ws.fns[cur].acquires.iter().find(|a| a.lock == lock) {
            hops.push(Hop {
                label: ws.fns[cur].label(),
                path: ws.fns[cur].path.clone(),
                line: acq.line,
            });
            break;
        }
        let Some((next, site)) = ws
            .callees(cur)
            .into_iter()
            .find(|(c, _)| trans[*c].contains(lock))
        else {
            break;
        };
        hops.push(Hop {
            label: ws.fns[cur].label(),
            path: ws.fns[cur].path.clone(),
            line: site.line,
        });
        cur = next;
    }
    hops
}

/// BFS path from `a` to `b` over the lock adjacency (exclusive of `a`,
/// inclusive of `b`).
fn path_between(adj: &BTreeMap<&str, Vec<&str>>, a: &str, b: &str) -> Option<Vec<String>> {
    let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
    let mut q = VecDeque::new();
    q.push_back(a);
    while let Some(x) = q.pop_front() {
        for &y in adj.get(x).into_iter().flatten() {
            if prev.contains_key(y) || y == a {
                continue;
            }
            prev.insert(y, x);
            if y == b {
                let mut path = vec![b.to_string()];
                let mut cur = b;
                while cur != a {
                    cur = prev[cur];
                    path.push(cur.to_string());
                }
                path.reverse();
                return Some(path);
            }
            q.push_back(y);
        }
    }
    None
}

// --------------------------------------------------------------------- A3

/// Blocking reachability: L6 made interprocedural. From every *unannotated*
/// engine entry point, walk the call graph; a function with a `// liveness:`
/// annotation is absorbing (its contract covers everything below it). Any
/// reached function that directly parks or waits without an annotation is
/// flagged, with the chain from the entry as witness.
fn rule_a3(ws: &Workspace, out: &mut Vec<Finding>) {
    let entries: Vec<usize> = ws
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            ENTRY_NAMES.contains(&f.name.as_str())
                && classify(&f.effective).unwrap_or_default().hot_path
        })
        .map(|(i, _)| i)
        .collect();
    let mut flagged: BTreeSet<usize> = BTreeSet::new();
    for &e in &entries {
        if ws.fns[e].has_liveness {
            continue;
        }
        // BFS with parent links for witness reconstruction.
        let mut prev: BTreeMap<usize, (usize, u32)> = BTreeMap::new();
        let mut q = VecDeque::new();
        q.push_back(e);
        let mut seen = BTreeSet::new();
        seen.insert(e);
        while let Some(f) = q.pop_front() {
            let info = &ws.fns[f];
            if !info.probes.is_empty() && !info.has_liveness && flagged.insert(f) {
                let probe = &info.probes[0];
                let mut chain = vec![(f, probe.line)];
                let mut cur = f;
                while cur != e {
                    let &(p, l) = &prev[&cur];
                    chain.push((p, l));
                    cur = p;
                }
                chain.reverse();
                let mut witness: Vec<Hop> = chain
                    .iter()
                    .map(|&(fx, l)| Hop {
                        label: ws.fns[fx].label(),
                        path: ws.fns[fx].path.clone(),
                        line: l,
                    })
                    .collect();
                witness.push(Hop {
                    label: format!("{}::{}", info.stem, probe.name),
                    path: info.path.clone(),
                    line: probe.line,
                });
                out.push(Finding {
                    rule: Rule::A3,
                    path: info.path.clone(),
                    line: probe.line,
                    msg: format!(
                        "`{}` can block (`{}`) and is reachable from engine entry \
                         `{}` without a `// liveness:` annotation — name the wakeup \
                         source or annotate an ancestor on the chain",
                        info.label(),
                        probe.name,
                        ws.fns[e].label()
                    ),
                    witness,
                });
            }
            for (c, site) in ws.callees(f) {
                if seen.contains(&c) || ws.fns[c].has_liveness {
                    continue;
                }
                seen.insert(c);
                prev.insert(c, (f, site.line));
                q.push_back(c);
            }
        }
    }
}

// --------------------------------------------------------------------- A4

/// Raw OS-thread primitives outside `spsim::runtime`/`spsim::sched`. M:N
/// node scheduling (ROADMAP item 1) requires every simulated thread to be
/// created and joined by the runtime, so `thread::spawn`/`Builder`/`scope`
/// and `JoinHandle` are banned in virtual-time crates everywhere else.
/// Blocking primitives — `thread::park`/`park_timeout` and raw `Condvar`
/// waits — are banned too: they pin a pooled worker without yielding to the
/// scheduler, which livelocks a single-worker pool.
fn rule_a4(ws: &Workspace, out: &mut Vec<Finding>) {
    for (real, effective, sites) in &ws.spawns {
        if THREAD_HOMES.contains(&effective.as_str()) {
            continue;
        }
        if !classify(effective).unwrap_or_default().virtual_time {
            continue;
        }
        let stem = crate::parser::stem_of(effective);
        for s in sites {
            let advice = if matches!(s.what.as_str(), "thread::park" | "thread::park_timeout") {
                "these bypass the scheduler's yield points and pin a pooled \
                 worker; block through `spsim::SimCondvar` or the runtime's \
                 queues instead"
            } else if s.what == "Condvar" {
                "a raw condvar wait pins a pooled worker without yielding; \
                 use `spsim::SimCondvar`, which parks fibers scheduler-side"
            } else {
                "only spsim::runtime may create or hold threads; use \
                 `spsim::runtime::spawn_service`/`ServiceHandle`"
            };
            out.push(Finding {
                rule: Rule::A4,
                path: real.clone(),
                line: s.line,
                msg: format!(
                    "raw OS-thread primitive `{}` in simulated code ({} crate) — {}",
                    s.what,
                    crate_of(effective),
                    advice
                ),
                witness: vec![Hop {
                    label: format!("{}::{}", stem, s.what),
                    path: real.clone(),
                    line: s.line,
                }],
            });
        }
    }
}
