//! A small Rust lexer: just enough to tokenize the workspace sources with
//! line numbers, keep comments separate, and never mistake the inside of a
//! string literal for code. Handles line and (nested) block comments,
//! plain / raw / byte strings, char-vs-lifetime disambiguation, and
//! numeric literals. Everything else is a one-character punct token.

/// One lexical token (comments are reported separately).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// A single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
    /// A string, char, byte or numeric literal (contents dropped).
    Lit,
    /// A lifetime such as `'a` (distinct from a char literal).
    Lifetime,
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// The result of lexing one file.
pub struct Lexed {
    /// Code tokens in order, comments excluded.
    pub tokens: Vec<Token>,
    /// `(line, text)` of every comment, `//` markers stripped for line
    /// comments, block comments kept whole on their starting line.
    pub comments: Vec<(u32, String)>,
}

impl Lexed {
    /// Lines (1-based) whose comments contain `needle`.
    pub fn comment_lines_containing(&self, needle: &str) -> Vec<u32> {
        self.comments
            .iter()
            .filter(|(_, t)| t.contains(needle))
            .map(|(l, _)| *l)
            .collect()
    }
}

/// Tokenize `src`.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut tokens = Vec::new();
    let mut comments = Vec::new();

    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if b.get(i + 1) == Some(&'/') => {
                let start = i;
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
                let text: String = b[start..i].iter().collect();
                let text = text.trim_start_matches('/').trim_start_matches('!');
                comments.push((line, text.trim().to_string()));
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                let start_line = line;
                let start = i;
                i += 2;
                let mut depth = 1;
                while i < b.len() && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let text: String = b[start..i.min(b.len())].iter().collect();
                comments.push((start_line, text));
            }
            '"' => {
                i = skip_string(&b, i, &mut line);
                tokens.push(Token {
                    tok: Tok::Lit,
                    line,
                });
            }
            'r' | 'b' if starts_raw_or_byte_string(&b, i) => {
                let tok_line = line;
                i = skip_raw_or_byte(&b, i, &mut line);
                tokens.push(Token {
                    tok: Tok::Lit,
                    line: tok_line,
                });
            }
            '\'' => {
                // Lifetime iff a label-like char follows and no close quote
                // directly after it (`'a` vs `'a'`).
                let is_lifetime = matches!(b.get(i + 1), Some(ch) if ch.is_alphabetic() || *ch == '_')
                    && b.get(i + 2) != Some(&'\'');
                if is_lifetime {
                    i += 1;
                    while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                    tokens.push(Token {
                        tok: Tok::Lifetime,
                        line,
                    });
                } else {
                    i += 1; // opening quote
                    if b.get(i) == Some(&'\\') {
                        i += 2; // escape + escaped char
                    } else {
                        i += 1;
                    }
                    while i < b.len() && b[i] != '\'' {
                        i += 1; // e.g. '\u{1F600}'
                    }
                    i += 1; // closing quote
                    tokens.push(Token {
                        tok: Tok::Lit,
                        line,
                    });
                }
            }
            _ if c.is_ascii_digit() => {
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_' || b[i] == '.') {
                    // Stop a range expression `0..n` from being eaten.
                    if b[i] == '.' && b.get(i + 1) == Some(&'.') {
                        break;
                    }
                    i += 1;
                }
                tokens.push(Token {
                    tok: Tok::Lit,
                    line,
                });
            }
            _ if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                tokens.push(Token {
                    tok: Tok::Ident(b[start..i].iter().collect()),
                    line,
                });
            }
            _ => {
                tokens.push(Token {
                    tok: Tok::Punct(c),
                    line,
                });
                i += 1;
            }
        }
    }
    Lexed { tokens, comments }
}

fn starts_raw_or_byte_string(b: &[char], i: usize) -> bool {
    match b[i] {
        'r' => matches!(b.get(i + 1), Some('"') | Some('#')),
        'b' => match b.get(i + 1) {
            Some('"') => true,
            Some('r') => matches!(b.get(i + 2), Some('"') | Some('#')),
            Some('\'') => true,
            _ => false,
        },
        _ => false,
    }
}

/// Skip a plain `"…"` string starting at the opening quote; returns the
/// index past the closing quote.
fn skip_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            '\\' => {
                // A `\` line continuation still ends the physical line.
                if b.get(i + 1) == Some(&'\n') {
                    *line += 1;
                }
                i += 2;
            }
            '\n' => {
                *line += 1;
                i += 1;
            }
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skip `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` or `b'…'` starting at the
/// `r`/`b`; returns the index past the end.
fn skip_raw_or_byte(b: &[char], mut i: usize, line: &mut u32) -> usize {
    if b[i] == 'b' {
        i += 1;
        if b.get(i) == Some(&'\'') {
            // byte char b'x'
            i += 1;
            if b.get(i) == Some(&'\\') {
                i += 2;
            } else {
                i += 1;
            }
            return i + 1; // closing quote
        }
        if b.get(i) == Some(&'"') {
            return skip_string(b, i, line);
        }
        // fallthrough: br…
    }
    debug_assert_eq!(b[i], 'r');
    i += 1;
    let mut hashes = 0;
    while b.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    debug_assert_eq!(b.get(i), Some(&'"'));
    i += 1;
    while i < b.len() {
        if b[i] == '\n' {
            *line += 1;
            i += 1;
        } else if b[i] == '"' {
            let mut j = i + 1;
            let mut seen = 0;
            while seen < hashes && b.get(j) == Some(&'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    i
}

/// Remove every item annotated `#[cfg(test)]` (and `#[cfg(all(test, …))]`)
/// from the token stream: attributes, the item keyword, and its braced body
/// or trailing semicolon. Rules run on the filtered stream so test code is
/// exempt by construction.
pub fn strip_test_items(tokens: &[Token]) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].tok == Tok::Punct('#')
            && matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('[')))
        {
            let close = matching(tokens, i + 1, '[', ']');
            let attr = &tokens[i + 1..close];
            let is_test = attr.iter().any(|t| t.tok == Tok::Ident("cfg".into()))
                && attr.iter().any(|t| t.tok == Tok::Ident("test".into()))
                // `#[cfg(not(test))]` is live (non-test) code.
                && !attr.iter().any(|t| t.tok == Tok::Ident("not".into()));
            if is_test {
                // Skip this attribute, any further attributes, then the item.
                i = close + 1;
                while i < tokens.len()
                    && tokens[i].tok == Tok::Punct('#')
                    && matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('[')))
                {
                    i = matching(tokens, i + 1, '[', ']') + 1;
                }
                i = skip_item(tokens, i);
                continue;
            }
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

/// Skip one item starting at `i`: everything up to and including either a
/// top-level `;` or the brace block that opens first.
fn skip_item(tokens: &[Token], mut i: usize) -> usize {
    while i < tokens.len() {
        match tokens[i].tok {
            Tok::Punct(';') => return i + 1,
            Tok::Punct('{') => return matching(tokens, i, '{', '}') + 1,
            // A nested bracket group before the body (generics use <>,
            // which we don't need to balance to find `{` or `;`).
            _ => i += 1,
        }
    }
    i
}

/// Index of the token closing the group opened at `open_idx`.
fn matching(tokens: &[Token], open_idx: usize, open: char, close: char) -> usize {
    let mut depth = 0usize;
    let mut i = open_idx;
    while i < tokens.len() {
        match tokens[i].tok {
            Tok::Punct(c) if c == open => depth += 1,
            Tok::Punct(c) if c == close => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    tokens.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        assert_eq!(
            idents(r#"let x = "HashMap Instant"; y"#),
            vec!["let", "x", "y"]
        );
        assert_eq!(
            idents(r##"let x = r#"Ordering::Relaxed"#; y"##),
            vec!["let", "x", "y"]
        );
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = l.tokens.iter().filter(|t| t.tok == Tok::Lifetime).count();
        assert_eq!(lifetimes, 2);
        assert!(idents("let c = 'x'; done").contains(&"done".to_string()));
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let l = lex("let a = 1;\n// ordering: fine\nlet b = 2; // trailing\n");
        assert_eq!(l.comment_lines_containing("ordering:"), vec![2]);
        assert_eq!(l.comment_lines_containing("trailing"), vec![3]);
    }

    #[test]
    fn nested_block_comments() {
        let ids = idents("a /* x /* y */ z */ b");
        assert_eq!(ids, vec!["a", "b"]);
    }

    #[test]
    fn test_items_are_stripped() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }\n\
                   fn also_live() {}";
        let toks = strip_test_items(&lex(src).tokens);
        let ids: Vec<_> = toks
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert!(ids.contains(&"live"));
        assert!(ids.contains(&"also_live"));
        assert!(!ids.contains(&"tests"));
        assert!(ids.iter().filter(|s| **s == "unwrap").count() == 1);
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let l = lex("let a = \"one\ntwo\";\nlet b = 1;");
        let b_line = l
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("b".into()))
            .unwrap()
            .line;
        assert_eq!(b_line, 3);
    }
}
