//! Workspace symbol table and call graph over parsed `fn` items.
//!
//! Resolution is *conservative by name*: a call site resolves to every
//! workspace function that could plausibly be its target, never to none
//! when a workspace target exists. `self.f(…)` prefers a method named `f`
//! on the caller's own impl type; `Type::f(…)` prefers `f` owned by
//! `Type`; everything else — including trait-object and generic method
//! calls — degrades to "all workspace fns named `f`". Calls that match no
//! workspace function are treated as external (std or stubs) and produce
//! no edge. A short stoplist of ubiquitous trait-method names is excluded
//! from edge building to keep the fan-out honest; the list is part of the
//! documented precision contract (DESIGN §10).

use std::collections::BTreeMap;

use crate::parser::{CallSite, FnInfo, ParsedFile, SpawnSite};

/// Ubiquitous method names that would connect everything to everything:
/// structural trait methods and std container/primitive methods whose
/// workspace namesakes are almost never the real target (`v.push(x)` is
/// `Vec::push`, not `TimedQueue::push`; `a.min(b)` is `Ord::min`, not
/// `Hist::min`). Excluding them from edge building keeps the conservative
/// resolver's fan-out honest at the cost of missing chains that really do
/// route through a workspace fn with one of these names — the documented
/// precision trade (DESIGN §10).
const UBIQUITOUS: &[&str] = &[
    "new",
    "clone",
    "default",
    "fmt",
    "drop",
    "from",
    "into",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "to_string",
    "as_ref",
    "as_mut",
    "deref",
    "index",
    "next",
    "get",
    "get_mut",
    "set",
    "push",
    "pop",
    "insert",
    "remove",
    "take",
    "min",
    "max",
    "len",
    "is_empty",
    "contains",
    "clear",
    "extend",
];

/// The workspace-wide function table plus name indexes.
pub struct Workspace {
    /// All parsed functions, indexed by position.
    pub fns: Vec<FnInfo>,
    /// Raw thread-primitive sites per real file path (for A4).
    pub spawns: Vec<(String, String, Vec<SpawnSite>)>,
    by_name: BTreeMap<String, Vec<usize>>,
    by_owner_name: BTreeMap<(String, String), Vec<usize>>,
}

impl Workspace {
    /// Build the table from per-file parse results: `(real path,
    /// effective path, parsed)`.
    pub fn build(files: Vec<(String, String, ParsedFile)>) -> Self {
        let mut fns = Vec::new();
        let mut spawns = Vec::new();
        for (real, effective, parsed) in files {
            if !parsed.spawns.is_empty() {
                spawns.push((real, effective, parsed.spawns));
            }
            fns.extend(parsed.fns);
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_owner_name: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
            if let Some(o) = &f.owner {
                by_owner_name
                    .entry((o.clone(), f.name.clone()))
                    .or_default()
                    .push(i);
            }
        }
        Workspace {
            fns,
            spawns,
            by_name,
            by_owner_name,
        }
    }

    /// Resolve one call site from `caller` to candidate workspace targets.
    /// Empty result = external call, no edge.
    pub fn resolve(&self, caller: usize, site: &CallSite) -> Vec<usize> {
        if UBIQUITOUS.contains(&site.name.as_str()) {
            return Vec::new();
        }
        // `self.f(…)`: a method named `f` on the caller's own type wins.
        if site.qual.as_deref() == Some("self") {
            if let Some(owner) = &self.fns[caller].owner {
                if let Some(v) = self.by_owner_name.get(&(owner.clone(), site.name.clone())) {
                    return v.clone();
                }
            }
        }
        // `Type::f(…)`: owner match wins when the type is known.
        if let Some(q) = &site.qual {
            if q != "self" {
                if let Some(v) = self.by_owner_name.get(&(q.clone(), site.name.clone())) {
                    return v.clone();
                }
            }
        }
        // Conservative fallback: every workspace fn with this name. This is
        // where trait-object and generic method calls land.
        self.by_name.get(&site.name).cloned().unwrap_or_default()
    }

    /// All `(callee index, call site)` edges out of `f`, resolved.
    pub fn callees(&self, f: usize) -> Vec<(usize, &CallSite)> {
        let mut out = Vec::new();
        for site in &self.fns[f].calls {
            for target in self.resolve(f, site) {
                if target != f {
                    out.push((target, site));
                }
            }
        }
        out
    }
}
