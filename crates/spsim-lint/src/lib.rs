//! spsim-lint: project-specific static analysis for the LAPI simulator.
//!
//! The simulator's guarantees (same-seed byte-identical traces, virtual-time
//! purity, diagnosable failures) rest on conventions the compiler cannot
//! check. This crate walks every `.rs` file under `crates/` and `src/` and
//! enforces them as ten rules — see [`rules::Rule`] and DESIGN §10.
//!
//! Per-file token rules (PR 4/PR 7):
//!
//! * **L1** virtual-time purity — no `Instant`/`SystemTime`/`thread::sleep`
//!   in simulated code outside allowlisted real-time bridges.
//! * **L2** determinism — no `HashMap`/`HashSet` on ordering-sensitive paths.
//! * **L3** atomics hygiene — `Relaxed`/`SeqCst` need `// ordering:` comments.
//! * **L4** no lock guard held across a blocking wait/recv/pump/send call.
//! * **L5** panic discipline — hot paths use the diagnostic helpers.
//! * **L6** liveness — wait loops on hot paths carry a `// liveness:`
//!   comment naming their wakeup source (and its peer-death poison path).
//!
//! Interprocedural rules, run over a workspace-wide call graph built by the
//! item [`parser`] and [`graph`] modules:
//!
//! * **A1** transitive virtual-time taint — indirectly reaching a wall clock.
//! * **A2** lock-order inversion — cycles in the acquired-while-held graph.
//! * **A3** blocking reachability — L6 across function boundaries, from the
//!   engine entry points.
//! * **A4** raw `thread::spawn`/`JoinHandle` ban outside `spsim::runtime`.
//!
//! A-rule findings carry a *witness chain*: the call path from the flagged
//! function to the offending primitive, one `file:line` per hop.
//!
//! Suppressions live in `lint.toml` at the repo root; every entry carries a
//! required reason string ([`allowlist::Allowlist`]).

#![warn(missing_docs)]

pub mod allowlist;
pub mod arules;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod rules;

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use allowlist::Allowlist;
use rules::{classify, lint_source, FileClass, Finding};

/// Result of a full lint run.
pub struct Report {
    /// Findings that survived the allowlist, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// Non-fatal notes (unreadable files).
    pub warnings: Vec<String>,
    /// Suppressions that never matched — warnings normally, errors under
    /// `--strict`.
    pub stale: Vec<String>,
    /// Files inspected.
    pub files: usize,
}

/// Lint one file on disk with the per-file L-rules. `rel` is the
/// repo-relative path used for classification and reporting; fixture files
/// may override their class with a first-line `// lint-as: <path>` comment.
pub fn lint_file(rel: &str, src: &str, allow: &Allowlist) -> Vec<Finding> {
    let class = match fixture_class(src).or_else(|| classify(rel)) {
        Some(c) => c,
        None => return Vec::new(),
    };
    let lines: Vec<&str> = src.lines().collect();
    lint_source(rel, src, class)
        .into_iter()
        .filter(|f| {
            let text = lines.get(f.line as usize - 1).copied().unwrap_or("");
            !allow.suppresses(f, text)
        })
        .collect()
}

/// Honor a `// lint-as: crates/lapi/src/engine.rs` header comment, which
/// lets fixture files borrow the class of a real path.
fn fixture_class(src: &str) -> Option<FileClass> {
    classify(fixture_as(src)?)
}

/// The `// lint-as:` header path itself, if present.
fn fixture_as(src: &str) -> Option<&str> {
    let first = src.lines().next()?.trim();
    Some(first.strip_prefix("// lint-as:")?.trim())
}

/// Run the interprocedural analyzer (A1–A4) over a set of files given as
/// `(repo-relative path, source)` pairs. Files out of lint scope are
/// skipped; `// lint-as:` headers pick each file's effective path. Findings
/// are allowlist-filtered like the L-rules.
pub fn analyze_set(files: &[(String, String)], allow: &Allowlist) -> Vec<Finding> {
    let mut parsed = Vec::new();
    let mut lines: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for (real, src) in files {
        let effective = fixture_as(src).unwrap_or(real).to_string();
        if classify(&effective).is_none() {
            continue;
        }
        let lexed = lexer::lex(src);
        parsed.push((
            real.clone(),
            effective.clone(),
            parser::parse_file(real, &effective, &lexed),
        ));
        lines.insert(real.clone(), src.lines().map(str::to_string).collect());
    }
    let ws = graph::Workspace::build(parsed);
    arules::run(&ws, allow, &lines)
        .into_iter()
        .filter(|f| {
            let text = lines
                .get(&f.path)
                .and_then(|v| v.get(f.line as usize - 1))
                .map(String::as_str)
                .unwrap_or("");
            !allow.suppresses(f, text)
        })
        .collect()
}

/// Walk `crates/` and `src/` under `root` and lint everything in scope:
/// the per-file L-rules, then the interprocedural A-rules over the whole
/// set at once.
pub fn lint_root(root: &Path, allow: &Allowlist) -> Report {
    let mut files = Vec::new();
    for top in ["crates", "src"] {
        collect_rs(&root.join(top), &mut files);
    }
    files.sort();
    let mut findings = Vec::new();
    let mut warnings = Vec::new();
    let mut sources: Vec<(String, String)> = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        if rules::excluded(&rel) {
            continue;
        }
        match fs::read_to_string(path) {
            Ok(src) => {
                findings.extend(lint_file(&rel, &src, allow));
                sources.push((rel, src));
            }
            Err(e) => warnings.push(format!("{rel}: unreadable: {e}")),
        }
    }
    let inspected = sources.len();
    findings.extend(analyze_set(&sources, allow));
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Report {
        findings,
        warnings,
        stale: allow.unused(),
        files: inspected,
    }
}

/// Render a lint run as flat, hand-rolled JSON (no serde — the registry is
/// offline). Shape:
///
/// ```json
/// {"tool":"spsim-lint","files":N,"suppressions":N,"strict":bool,
///  "findings":[{"rule":"A3","path":"…","line":N,"msg":"…",
///               "witness":[{"label":"…","path":"…","line":N}]}],
///  "stale_suppressions":["…"],"warnings":["…"]}
/// ```
pub fn render_json(report: &Report, suppressions: usize, strict: bool) -> String {
    let mut s = String::from("{");
    s.push_str(&format!(
        "\"tool\":\"spsim-lint\",\"files\":{},\"suppressions\":{},\"strict\":{},",
        report.files, suppressions, strict
    ));
    s.push_str("\"findings\":[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"msg\":\"{}\",\"witness\":[",
            f.rule.code(),
            json_escape(&f.path),
            f.line,
            json_escape(&f.msg)
        ));
        for (j, h) in f.witness.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"label\":\"{}\",\"path\":\"{}\",\"line\":{}}}",
                json_escape(&h.label),
                json_escape(&h.path),
                h.line
            ));
        }
        s.push_str("]}");
    }
    s.push_str("],\"stale_suppressions\":[");
    for (i, w) in report.stale.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\"{}\"", json_escape(w)));
    }
    s.push_str("],\"warnings\":[");
    for (i, w) in report.warnings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\"{}\"", json_escape(w)));
    }
    s.push_str("]}");
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = fs::read_dir(dir) else { return };
    for entry in rd.flatten() {
        let p = entry.path();
        if p.is_dir() {
            if p.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}
