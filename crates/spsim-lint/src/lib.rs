//! spsim-lint: project-specific static analysis for the LAPI simulator.
//!
//! The simulator's guarantees (same-seed byte-identical traces, virtual-time
//! purity, diagnosable failures) rest on conventions the compiler cannot
//! check. This crate walks every `.rs` file under `crates/` and `src/` and
//! enforces them as six rules — see [`rules::Rule`] and DESIGN §10:
//!
//! * **L1** virtual-time purity — no `Instant`/`SystemTime`/`thread::sleep`
//!   in simulated code outside allowlisted real-time bridges.
//! * **L2** determinism — no `HashMap`/`HashSet` on ordering-sensitive paths.
//! * **L3** atomics hygiene — `Relaxed`/`SeqCst` need `// ordering:` comments.
//! * **L4** no lock guard held across a blocking wait/recv/pump/send call.
//! * **L5** panic discipline — hot paths use the diagnostic helpers.
//! * **L6** liveness — wait loops on hot paths carry a `// liveness:`
//!   comment naming their wakeup source (and its peer-death poison path).
//!
//! Suppressions live in `lint.toml` at the repo root; every entry carries a
//! required reason string ([`allowlist::Allowlist`]).

#![warn(missing_docs)]

pub mod allowlist;
pub mod lexer;
pub mod rules;

use std::fs;
use std::path::{Path, PathBuf};

use allowlist::Allowlist;
use rules::{classify, lint_source, FileClass, Finding};

/// Result of a full lint run.
pub struct Report {
    /// Findings that survived the allowlist, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// Non-fatal notes (unused suppressions, unreadable files).
    pub warnings: Vec<String>,
    /// Files inspected.
    pub files: usize,
}

/// Lint one file on disk. `rel` is the repo-relative path used for
/// classification and reporting; fixture files may override their class
/// with a first-line `// lint-as: <path>` comment.
pub fn lint_file(rel: &str, src: &str, allow: &Allowlist) -> Vec<Finding> {
    let class = match fixture_class(src).or_else(|| classify(rel)) {
        Some(c) => c,
        None => return Vec::new(),
    };
    let lines: Vec<&str> = src.lines().collect();
    lint_source(rel, src, class)
        .into_iter()
        .filter(|f| {
            let text = lines.get(f.line as usize - 1).copied().unwrap_or("");
            !allow.suppresses(f, text)
        })
        .collect()
}

/// Honor a `// lint-as: crates/lapi/src/engine.rs` header comment, which
/// lets fixture files borrow the class of a real path.
fn fixture_class(src: &str) -> Option<FileClass> {
    let first = src.lines().next()?.trim();
    let as_path = first.strip_prefix("// lint-as:")?.trim();
    classify(as_path)
}

/// Walk `crates/` and `src/` under `root` and lint everything in scope.
pub fn lint_root(root: &Path, allow: &Allowlist) -> Report {
    let mut files = Vec::new();
    for top in ["crates", "src"] {
        collect_rs(&root.join(top), &mut files);
    }
    files.sort();
    let mut findings = Vec::new();
    let mut warnings = Vec::new();
    let mut inspected = 0usize;
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        if rules::excluded(&rel) {
            continue;
        }
        match fs::read_to_string(path) {
            Ok(src) => {
                inspected += 1;
                findings.extend(lint_file(&rel, &src, allow));
            }
            Err(e) => warnings.push(format!("{rel}: unreadable: {e}")),
        }
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    warnings.extend(allow.unused());
    Report {
        findings,
        warnings,
        files: inspected,
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = fs::read_dir(dir) else { return };
    for entry in rd.flatten() {
        let p = entry.path();
        if p.is_dir() {
            if p.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}
